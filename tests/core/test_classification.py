"""Criteria Z and the Table 3 branch assignment (Sec. 4.2)."""

import pytest

from repro.core import (
    ALPHA,
    BETA,
    GAMMA,
    ClassifierConfig,
    SequenceClassifier,
    classify,
    compute_criteria,
)
from repro.core.classification import (
    BINARY,
    HIGH_RATE,
    LOW_RATE,
    NOMINAL,
    NUMERIC,
    NUMERIC_TYPE,
    ORDINAL,
    STRING_TYPE,
)


def times(n, dt=0.1):
    return [dt * i for i in range(n)]


class TestCriteria:
    def test_numeric_type(self):
        z = compute_criteria(times(10), list(range(10)))
        assert z.z_type == NUMERIC_TYPE

    def test_string_type(self):
        z = compute_criteria(times(4), ["a", "b", "a", "c"])
        assert z.z_type == STRING_TYPE

    def test_bool_counts_as_non_numeric(self):
        z = compute_criteria(times(4), [True, False, True, False])
        assert z.z_type == STRING_TYPE

    def test_z_num_counts_distinct(self):
        z = compute_criteria(times(6), [1, 1, 2, 2, 3, 3])
        assert z.z_num == 3

    def test_z_num_ignores_validity_values(self):
        z = compute_criteria(
            times(5), ["low", "high", "invalid", "low", "high"]
        )
        assert z.z_num == 2

    def test_high_rate_fast_signal(self):
        z = compute_criteria(times(100, dt=0.01), list(range(100)))
        assert z.z_rate == HIGH_RATE

    def test_low_rate_slow_signal(self):
        z = compute_criteria(times(10, dt=5.0), list(range(10)))
        assert z.z_rate == LOW_RATE

    def test_rate_uses_active_segments(self):
        """A fast burst followed by a long silence is still high-rate:
        Eq. 2 measures n/dt over active segments only."""
        burst = [0.01 * i for i in range(50)]
        sparse = burst + [100.0, 200.0, 300.0]
        z = compute_criteria(sparse, list(range(len(sparse))))
        assert z.z_rate == HIGH_RATE

    def test_single_element_low_rate(self):
        z = compute_criteria([0.0], [5])
        assert z.z_rate == LOW_RATE

    def test_valence_numeric_always_true(self):
        z = compute_criteria(times(3), [1, 2, 3])
        assert z.z_val is True

    def test_valence_ordinal_vocabulary(self):
        z = compute_criteria(times(3), ["low", "medium", "high"])
        assert z.z_val is True

    def test_valence_binary_vocabulary(self):
        z = compute_criteria(times(4), ["ON", "OFF", "ON", "OFF"])
        assert z.z_val is True

    def test_valence_nominal_false(self):
        z = compute_criteria(times(3), ["driving", "parking", "standby"])
        assert z.z_val is False

    def test_valence_numeric_strings(self):
        z = compute_criteria(times(3), ["1", "2", "10"])
        assert z.z_val is True


class TestTable3:
    """One test per row of Table 3."""

    def test_row1_numeric_high_many_true_alpha(self):
        c = classify(times(200, 0.01), [0.5 * i for i in range(200)])
        assert (c.data_type, c.branch) == (NUMERIC, ALPHA)

    def test_row2_numeric_low_many_true_beta(self):
        c = classify(times(10, 5.0), list(range(10)))
        assert (c.data_type, c.branch) == (ORDINAL, BETA)

    def test_row3_string_many_true_beta(self):
        c = classify(times(9), ["low", "medium", "high"] * 3)
        assert (c.data_type, c.branch) == (ORDINAL, BETA)

    def test_row4_string_two_true_binary_gamma(self):
        c = classify(times(8), ["ON", "OFF"] * 4)
        assert (c.data_type, c.branch) == (BINARY, GAMMA)

    def test_row5_string_many_false_nominal_gamma(self):
        c = classify(times(9), ["driving", "parking", "standby"] * 3)
        assert (c.data_type, c.branch) == (NOMINAL, GAMMA)

    def test_row6_numeric_two_true_binary_gamma(self):
        c = classify(times(8), [0, 1] * 4)
        assert (c.data_type, c.branch) == (BINARY, GAMMA)

    def test_row3_applies_at_any_rate(self):
        fast = classify(times(90, 0.001), ["low", "medium", "high"] * 30)
        slow = classify(times(9, 10.0), ["low", "medium", "high"] * 3)
        assert fast.branch == slow.branch == BETA


class TestFallbacks:
    def test_constant_signal_gamma(self):
        c = classify(times(5), [7] * 5)
        assert c.branch == GAMMA

    def test_two_valued_nominal_strings_gamma(self):
        c = classify(times(4), ["apple", "pear"] * 2)
        assert c.branch == GAMMA

    def test_empty_sequence_gamma(self):
        c = classify([], [])
        assert c.branch == GAMMA


class TestConfig:
    def test_rate_threshold_moves_boundary(self):
        slow_config = ClassifierConfig(rate_threshold=100.0)
        c = classify(times(100, 0.05), list(range(100)), slow_config)
        # 20 Hz < 100 Hz threshold -> low rate -> β instead of α.
        assert c.branch == BETA

    def test_custom_ordinal_vocabulary(self):
        config = ClassifierConfig(
            ordinal_vocabularies=(("cold", "warm", "hot"),)
        )
        c = classify(times(9), ["cold", "warm", "hot"] * 3, config)
        assert c.branch == BETA

    def test_custom_validity_values(self):
        config = ClassifierConfig(validity_values=frozenset({"broken"}))
        z = compute_criteria(times(4), [1, 2, "broken", 3], config)
        assert z.z_type == NUMERIC_TYPE
        assert z.z_num == 3


class TestSequenceClassifier:
    def test_classify_table(self, ctx):
        rows = [(0.01 * i, float(i), "s", "FC") for i in range(200)]
        table = ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)
        c = SequenceClassifier().classify_table(table)
        assert c.branch == ALPHA

    def test_affiliation_mask(self):
        clf = SequenceClassifier()
        mask = clf.affiliation_mask(["low", "invalid", "high"])
        assert mask == [True, False, True]
