"""End-to-end pipeline (Algorithm 1) on the simulated wiper vehicle."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    ExtensionSet,
    GapExtension,
    PipelineConfig,
    PipelineError,
    PreprocessingPipeline,
    RuleCatalog,
    UnchangedWithinCycle,
)


@pytest.fixture
def config(wiper_simulation):
    db = wiper_simulation.database
    return PipelineConfig(
        catalog=db.translation_catalog(["wpos", "wvel", "heat", "belt"]),
        constraints=ConstraintSet(
            (
                Constraint("wvel", True, (UnchangedWithinCycle(0.1),)),
                Constraint("heat", True, (UnchangedWithinCycle(0.5),)),
                Constraint("belt", True, (UnchangedWithinCycle(0.2),)),
            )
        ),
        extensions=ExtensionSet((GapExtension("wpos"),)),
    )


@pytest.fixture
def result(config, wiper_trace):
    return PreprocessingPipeline(config).run(wiper_trace)


class TestPipelineRun:
    def test_all_signals_processed(self, result):
        assert set(result.outcomes) == {"wpos", "wvel", "heat", "belt"}

    def test_classification_matches_construction(self, result):
        summary = result.classification_summary()
        assert summary["wpos"] == ("numeric", "alpha")
        assert summary["heat"] == ("ordinal", "beta")
        assert summary["belt"] == ("binary", "gamma")
        # Constant wvel is reduced to one value -> γ fallback.
        assert summary["wvel"][1] == "gamma"

    def test_gateway_dedup_found(self, result):
        groups = result.outcomes["wpos"].groups
        assert len(groups) == 1
        assert set(groups[0].all_channels()) == {"FC", "BC"}

    def test_reduction_compresses_constant_signal(self, result):
        outcome = result.outcomes["wvel"]
        assert outcome.rows_before_reduction > 100
        assert outcome.rows_after_reduction == 1

    def test_reduction_keeps_changing_signal(self, result):
        outcome = result.outcomes["wpos"]
        assert outcome.rows_after_reduction == outcome.rows_before_reduction

    def test_r_out_layout_homogeneous(self, result):
        assert result.r_out.columns == [
            "t", "s_id", "b_id", "kind", "value", "trend",
        ]

    def test_extension_rows_present(self, result):
        w = result.outcomes["wpos"].extension_table
        assert w.count() > 0
        gaps = [r[1] for r in w.collect()]
        assert all(g == pytest.approx(0.1, abs=0.02) for g in gaps)

    def test_timings_cover_stages(self, result):
        assert set(result.timings) >= {
            "preselect", "interpret", "split", "reduce", "extend",
            "branch", "merge",
        }

    def test_counts_recorded(self, result):
        assert result.counts["k_pre"] > 0
        assert result.counts["k_s"] > result.counts["r_out"]


STAGES = (
    "preselect", "interpret", "split", "reduce", "extend", "branch", "merge",
)


class TestRunReport:
    def test_report_validates_against_schema(self, result):
        from repro.obs import validate_report

        validate_report(result.report.to_json())

    def test_every_stage_has_a_span_with_row_counts(self, result):
        spans = {s.name: s for s in result.report.spans.spans}
        for stage in STAGES:
            assert stage in spans, stage
            assert "rows_in" in spans[stage].attrs, stage
            assert "rows_out" in spans[stage].attrs, stage

    def test_row_counters_match_span_attrs(self, result):
        counters = result.report.metrics.counters()
        spans = {s.name: s for s in result.report.spans.spans}
        for stage in STAGES:
            key = "pipeline.{}.rows_in".format(stage)
            assert counters[key] == spans[stage].attrs["rows_in"]

    def test_stage_row_flow_is_consistent(self, result):
        spans = {s.name: s for s in result.report.spans.spans}
        assert (
            spans["preselect"].attrs["rows_out"]
            == spans["interpret"].attrs["rows_in"]
            == result.counts["k_pre"]
        )
        assert spans["reduce"].attrs["rows_out"] <= \
            spans["reduce"].attrs["rows_in"]
        assert spans["merge"].attrs["rows_out"] == result.counts["r_out"]

    def test_selectivity_and_reduction_gauges(self, result):
        gauges = result.report.metrics.gauges()
        assert 0.0 < gauges["pipeline.preselect.selectivity"] <= 1.0
        # wvel collapses to one row, so reduction strictly compresses.
        assert 0.0 < gauges["pipeline.reduce.reduction_ratio"] < 1.0

    def test_split_stage_uses_single_routed_pass(self, result):
        # Per-signal splitting is one SplitByKey pass (plus one per-
        # channel pass per deduped signal), never one scan per signal:
        # 1 for the s_id split + 4 for the four signals' b_id splits.
        gauges = result.report.metrics.gauges()
        assert gauges["pipeline.split.shuffle_stages"] == 5

    def test_executor_counters_merged_in(self, result):
        counters = result.report.metrics.counters()
        assert counters["executor.tasks_run"] > 0
        assert "executor.retries" in counters
        assert "executor.faults_injected" in counters

    def test_timings_are_span_seconds(self, result):
        for stage in STAGES:
            assert result.timings[stage] == \
                result.report.spans.seconds(stage)

    def test_caller_supplied_report_aggregates(self, config, wiper_trace):
        from repro.obs import RunReport

        report = RunReport("batch")
        PreprocessingPipeline(config).run(wiper_trace, report=report)
        first = report.metrics.counter("pipeline.preselect.rows_in").value
        PreprocessingPipeline(config).run(wiper_trace, report=report)
        second = report.metrics.counter("pipeline.preselect.rows_in").value
        assert second == 2 * first


class TestStateRepresentationIntegration:
    def test_pivot_columns(self, result):
        rep = result.state_representation(["wpos", "heat", "belt"])
        assert rep.columns == ("wpos", "heat", "belt")
        assert len(rep) > 0

    def test_cells_filled_after_start(self, result):
        rep = result.state_representation(["wpos", "heat", "belt"])
        late = [r for r in rep.rows if r[0] > 5.0]
        assert all(None not in row[1:] for row in late)


class TestDeterminism:
    def test_same_trace_same_result(self, config, wiper_trace):
        a = PreprocessingPipeline(config).run(wiper_trace)
        b = PreprocessingPipeline(config).run(wiper_trace)
        assert sorted(a.r_out.collect()) == sorted(b.r_out.collect())
        assert a.classification_summary() == b.classification_summary()

    def test_serial_and_parallel_agree(self, config, wiper_simulation):
        from repro.engine import EngineContext

        serial_ctx = EngineContext.serial()
        k_b = wiper_simulation.record_table(serial_ctx, 10.0)
        expected = sorted(
            PreprocessingPipeline(config).run(k_b).r_out.collect()
        )
        with EngineContext.parallel(num_workers=2) as par_ctx:
            k_b_par = wiper_simulation.record_table(par_ctx, 10.0)
            actual = sorted(
                PreprocessingPipeline(config).run(k_b_par).r_out.collect()
            )
        assert actual == expected


class TestExtractSignals:
    def test_prefix_produces_k_s(self, config, wiper_trace):
        pipe = PreprocessingPipeline(config)
        k_s = pipe.extract_signals(wiper_trace)
        assert k_s.columns == ["t", "v", "s_id", "b_id"]
        assert k_s.count() > 0

    def test_dedup_can_be_disabled(self, wiper_simulation, wiper_trace):
        db = wiper_simulation.database
        config = PipelineConfig(
            catalog=db.translation_catalog(["wpos"]),
            dedup_channels=False,
        )
        result = PreprocessingPipeline(config).run(wiper_trace)
        outcome = result.outcomes["wpos"]
        assert outcome.groups == []
        # Both channels processed: double the representative rows.
        assert outcome.rows_before_reduction > 500


class TestInterpretationStrategyOption:
    def test_fused_pipeline_matches_join_pipeline(self, wiper_simulation, wiper_trace):
        db = wiper_simulation.database
        base = dict(catalog=db.translation_catalog(["wpos", "heat"]))
        join_result = PreprocessingPipeline(
            PipelineConfig(interpretation_strategy="join", **base)
        ).run(wiper_trace)
        fused_result = PreprocessingPipeline(
            PipelineConfig(interpretation_strategy="fused", **base)
        ).run(wiper_trace)
        assert sorted(join_result.r_out.collect()) == sorted(
            fused_result.r_out.collect()
        )

    def test_unknown_strategy_rejected(self, wiper_simulation):
        db = wiper_simulation.database
        with pytest.raises(PipelineError):
            PipelineConfig(
                catalog=db.translation_catalog(["wpos"]),
                interpretation_strategy="magic",
            )


class TestValidation:
    def test_empty_catalog_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(catalog=RuleCatalog(()))

    def test_config_type_enforced(self):
        with pytest.raises(PipelineError):
            PreprocessingPipeline({"catalog": None})
