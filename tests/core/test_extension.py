"""Extension rules (line 12, Table 2)."""

import pytest

from repro.core import (
    CycleViolationExtension,
    DerivedValueExtension,
    ExtensionSet,
    GapExtension,
    RollingAggregateExtension,
    apply_extensions,
)
from repro.core.extension import ExtensionError


@pytest.fixture
def wpos_table(ctx):
    """The K_red behind Table 2: wpos at 2.0, 2.5, 2.9, 3.35 s."""
    rows = [
        (2.0, 10.0, "wpos", "FC"),
        (2.5, 20.0, "wpos", "FC"),
        (2.9, 30.0, "wpos", "FC"),
        (3.35, 40.0, "wpos", "FC"),
    ]
    return ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)


class TestGapExtension:
    def test_table2_gaps(self, wpos_table):
        """Table 2: wposGap = 0.5, 0.4, 0.45."""
        w = apply_extensions(wpos_table, [GapExtension("wpos")])
        assert w.columns == ["t", "v", "w_id", "s_id", "b_id"]
        rows = w.collect()
        assert [r[1] for r in rows] == [0.5, 0.4, 0.45]
        assert all(r[2] == "wposGap" for r in rows)
        assert all(r[3] == "wpos" for r in rows)

    def test_first_element_has_no_gap(self, wpos_table):
        w = apply_extensions(wpos_table, [GapExtension("wpos")])
        assert w.count() == wpos_table.count() - 1

    def test_w_id_suffix(self):
        assert GapExtension("speed", suffix="Delta").w_id == "speedDelta"


class TestCycleViolationExtension:
    def test_flags_only_excessive_gaps(self, ctx):
        rows = [
            (0.0, 1, "s", "FC"),
            (0.1, 1, "s", "FC"),
            (0.5, 1, "s", "FC"),  # 0.4 s gap on a 0.1 s cycle
        ]
        table = ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)
        rule = CycleViolationExtension("s", expected_cycle=0.1, tolerance=1.5)
        w = apply_extensions(table, [rule])
        rows = w.collect()
        assert len(rows) == 1
        assert rows[0][0] == 0.5
        assert rows[0][1] == pytest.approx(4.0)  # gap / cycle

    def test_validation(self):
        with pytest.raises(ExtensionError):
            CycleViolationExtension("s", expected_cycle=0)
        with pytest.raises(ExtensionError):
            CycleViolationExtension("s", expected_cycle=1.0, tolerance=0.5)


class TestDerivedValueExtension:
    def test_applies_function(self, wpos_table):
        rule = DerivedValueExtension("wpos", "wposTwice", _double)
        w = apply_extensions(wpos_table, [rule])
        assert [r[1] for r in w.collect()] == [20.0, 40.0, 60.0, 80.0]

    def test_none_skips_element(self, wpos_table):
        rule = DerivedValueExtension("wpos", "wposBig", _only_big)
        w = apply_extensions(wpos_table, [rule])
        assert w.count() == 2


class TestRollingAggregateExtension:
    def test_rolling_mean(self, wpos_table):
        rule = RollingAggregateExtension("wpos", window=1.0, statistic="mean")
        w = apply_extensions(wpos_table, [rule])
        values = [r[1] for r in w.collect()]
        assert values[0] == 10.0
        assert values[1] == 15.0  # (10+20)/2 within 1 s

    def test_rolling_count(self, wpos_table):
        rule = RollingAggregateExtension("wpos", window=1.0, statistic="count")
        w = apply_extensions(wpos_table, [rule])
        assert [r[1] for r in w.collect()] == [1, 2, 3, 3]

    def test_rolling_min_max(self, wpos_table):
        w_min = apply_extensions(
            wpos_table,
            [RollingAggregateExtension("wpos", window=10.0, statistic="min")],
        )
        w_max = apply_extensions(
            wpos_table,
            [RollingAggregateExtension("wpos", window=10.0, statistic="max")],
        )
        assert [r[1] for r in w_min.collect()] == [10.0] * 4
        assert [r[1] for r in w_max.collect()] == [10.0, 20.0, 30.0, 40.0]

    def test_validation(self):
        with pytest.raises(ExtensionError):
            RollingAggregateExtension("s", window=0)
        with pytest.raises(ExtensionError):
            RollingAggregateExtension("s", window=1.0, statistic="median")


class TestExtensionSet:
    def test_for_signal(self):
        rules = ExtensionSet((GapExtension("a"), GapExtension("b")))
        assert len(rules.for_signal("a")) == 1
        assert rules.for_signal("ghost") == []
        assert len(rules) == 2

    def test_apply_multiple_rules(self, wpos_table):
        w = apply_extensions(
            wpos_table,
            [GapExtension("wpos"), DerivedValueExtension("wpos", "x2", _double)],
        )
        w_ids = {r[2] for r in w.collect()}
        assert w_ids == {"wposGap", "x2"}

    def test_no_rules_empty_table(self, wpos_table):
        w = apply_extensions(wpos_table, [])
        assert w.count() == 0
        assert w.columns == ["t", "v", "w_id", "s_id", "b_id"]


def _double(t, v):
    return 2 * v


def _only_big(t, v):
    return v if v >= 30 else None
