"""Signal splitting and the gateway equality check e (lines 7-9)."""

import pytest

from repro.core import dedup_savings, equality_split, split_signal_types


@pytest.fixture
def k_s(ctx):
    """Signal instances: wpos duplicated on FC and BC (gateway), heat on
    K-LIN only, speed on DC with a diverging copy on FR."""
    rows = []
    for i in range(10):
        t = 0.1 * i
        rows.append((t, float(i), "wpos", "FC"))
        rows.append((t + 0.002, float(i), "wpos", "BC"))  # identical copy
        rows.append((t, "low", "heat", "K-LIN"))
        rows.append((t, float(i), "speed", "DC"))
        rows.append((t, float(i) + 99, "speed", "FR"))  # different values
    return ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)


class TestSplitSignalTypes:
    def test_explicit_ids(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos", "heat"])
        assert set(per_signal) == {"wpos", "heat"}
        assert per_signal["heat"].count() == 10

    def test_discovered_ids(self, k_s):
        per_signal = split_signal_types(k_s)
        assert set(per_signal) == {"wpos", "heat", "speed"}

    def test_split_tables_are_pure(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos"])
        assert all(r[2] == "wpos" for r in per_signal["wpos"].collect())

    def test_single_shuffle_pass(self, ctx, k_s):
        # The tentpole property: splitting S signal types costs exactly
        # one routed shuffle stage, not S filter scans.
        metrics = ctx.executor.metrics
        shuffles_before = metrics.shuffles
        per_signal = split_signal_types(k_s)
        assert len(per_signal) == 3
        assert metrics.splits == 1
        assert metrics.shuffles == shuffles_before + 1

    def test_absent_requested_id_yields_empty_table(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos", "ghost"])
        assert per_signal["ghost"].count() == 0


class TestEqualitySplit:
    def test_identical_copies_deduplicated(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos"])
        result = equality_split(per_signal["wpos"], "wpos")
        assert len(result.groups) == 1
        group = result.groups[0]
        assert set(group.all_channels()) == {"FC", "BC"}
        # Only one channel's rows survive.
        channels = {r[3] for r in result.k_sep.collect()}
        assert len(channels) == 1
        assert result.k_sep.count() == 10

    def test_diverging_copies_kept_separately(self, k_s):
        per_signal = split_signal_types(k_s, ["speed"])
        result = equality_split(per_signal["speed"], "speed")
        assert len(result.groups) == 2
        assert not result.groups[0].corresponding
        tables = result.tables()
        assert len(tables) == 2
        total = sum(t.count() for _g, t in tables)
        assert total == 20

    def test_single_channel_passthrough(self, k_s):
        per_signal = split_signal_types(k_s, ["heat"])
        result = equality_split(per_signal["heat"], "heat")
        assert len(result.groups) == 1
        assert result.groups[0].corresponding == ()
        assert result.k_sep.count() == 10

    def test_empty_table(self, ctx):
        empty = ctx.empty_table(["t", "v", "s_id", "b_id"])
        result = equality_split(empty, "ghost")
        assert result.groups == []
        assert result.k_sep.count() == 0

    def test_representative_choice_deterministic(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos"])
        a = equality_split(per_signal["wpos"], "wpos")
        b = equality_split(per_signal["wpos"], "wpos")
        assert a.groups == b.groups

    def test_representative_prefers_longest_sequence(self, ctx):
        rows = [(0.1 * i, float(i), "s", "SHORT") for i in range(3)]
        rows += [(0.1 * i, float(i), "s", "LONG") for i in range(8)]
        table = ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)
        result = equality_split(table, "s")
        assert result.groups[0].representative == "LONG"


class TestDedupSavings:
    def test_two_identical_channels_half_saved(self, k_s):
        per_signal = split_signal_types(k_s, ["wpos"])
        result = equality_split(per_signal["wpos"], "wpos")
        assert dedup_savings(result) == pytest.approx(0.5)

    def test_no_duplicates_no_savings(self, k_s):
        per_signal = split_signal_types(k_s, ["speed"])
        result = equality_split(per_signal["speed"], "speed")
        assert dedup_savings(result) == 0.0

    def test_empty(self, ctx):
        empty = ctx.empty_table(["t", "v", "s_id", "b_id"])
        assert dedup_savings(equality_split(empty, "x")) == 0.0

    def test_gateway_trace_end_to_end(self, ctx, wiper_simulation):
        """The simulated gateway duplication is found and collapsed."""
        from repro.core import interpret, preselect

        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos"])
        k_b = wiper_simulation.record_table(ctx, 5.0)
        k_s = interpret(preselect(k_b, catalog), catalog)
        result = equality_split(k_s, "wpos")
        assert len(result.groups) == 1
        assert set(result.groups[0].all_channels()) == {"FC", "BC"}
