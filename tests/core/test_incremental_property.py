"""Property: windowed IncrementalRunner == whole-trace pipeline.

Fuzz-generated vehicles (random messages, signals, constraints and
extension rules, with dropouts) are processed both ways; the merged
``R_out`` must match row-for-row regardless of where window boundaries
fall. This is the load-bearing guarantee of ``repro.core.incremental``:
daily windowed batches of a vehicle's history reduce to exactly what a
(hypothetical) whole-history run would produce.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalRunner, split_into_windows
from repro.core.params import config_from_dict
from repro.core.pipeline import PreprocessingPipeline
from repro.engine import EngineContext
from repro.protocols import ShortPayloadError
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.testing.generator import generate_journey_case


def _sorted_rows(table):
    # Mixed value types (numeric signals, ordinal labels) make tuple
    # comparison partial; repr gives a total order for multiset equality.
    return sorted(table.collect(), key=repr)


def _whole_trace_rows(ctx, config, records):
    k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), list(records))
    result = PreprocessingPipeline(config).run(k_b)
    return _sorted_rows(result.r_out)


def _windowed_rows(ctx, config, records, window_seconds):
    runner = IncrementalRunner(config)
    for window in split_into_windows(list(records), window_seconds):
        runner.process_window(
            ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
        )
    return _sorted_rows(runner.finalize(ctx).r_out)


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    window=st.sampled_from((0.3, 0.7, 1.1, 2.5)),
)
@settings(max_examples=20, deadline=None)
def test_windowed_run_matches_whole_trace(seed, window):
    case = generate_journey_case(random.Random(seed))
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    whole = _whole_trace_rows(ctx, config, case.records)
    windowed = _windowed_rows(ctx, config, case.records, window)
    assert windowed == whole


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_window_size_is_irrelevant(seed):
    """Any two window sizes agree with each other (transitivity check
    catching bugs that happen to cancel against the whole-trace path)."""
    case = generate_journey_case(random.Random(seed))
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    small = _windowed_rows(ctx, config, case.records, 0.4)
    large = _windowed_rows(ctx, config, case.records, 3.0)
    assert small == large


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    window=st.sampled_from((0.3, 0.7, 1.1, 2.5)),
)
@settings(max_examples=20, deadline=None)
def test_lossy_windowed_run_matches_whole_trace(seed, window):
    """Satellite regression: the incremental == whole-trace guarantee
    must survive transport corruption — non-monotonic timestamps from
    clock skew, exact gateway duplicates, dropped and truncated frames.
    Pre-fix code diverged here (windows split on raw record order and
    per-window dedup did not exist)."""
    case = generate_journey_case(random.Random(seed), lossy=True)
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    whole = _whole_trace_rows(ctx, config, case.records)
    windowed = _windowed_rows(ctx, config, case.records, window)
    assert windowed == whole


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_lossy_window_size_is_irrelevant(seed):
    case = generate_journey_case(random.Random(seed), lossy=True)
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    small = _windowed_rows(ctx, config, case.records, 0.4)
    large = _windowed_rows(ctx, config, case.records, 3.0)
    assert small == large


def _short_payload_outcome(fn):
    """Run a pipeline path; a ShortPayloadError anywhere in the cause
    chain becomes a comparable sentinel, everything else propagates."""
    try:
        return fn()
    except Exception as exc:
        seen = set()
        cause = exc
        while cause is not None and id(cause) not in seen:
            seen.add(id(cause))
            if isinstance(cause, ShortPayloadError):
                return "short-payload-raise"
            cause = getattr(cause, "cause", None) or cause.__cause__ \
                or cause.__context__
        raise


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    window=st.sampled_from((0.3, 0.7, 1.1, 2.5)),
    mode=st.sampled_from(("raise", "skip", "keep")),
)
@settings(max_examples=30, deadline=None)
def test_lossy_short_payload_mode_parity(seed, window, mode):
    """Satellite bugfix regression: every short_payload mode must give
    windowed == whole-trace on lossy journeys. Pre-fix,
    ``IncrementalRunner.process_window`` mapped "keep" to interpret's
    raise mode and then filtered TRUNCATED rows -- i.e. windowed "keep"
    silently implemented "skip" (and could abort where the whole-trace
    run kept rows). In raise mode parity means both paths surface a
    ShortPayloadError for the same trace."""
    case = generate_journey_case(random.Random(seed), lossy=True)
    params = dict(case.params)
    params["short_payload"] = mode
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(params, case.database)
    whole = _short_payload_outcome(
        lambda: _whole_trace_rows(ctx, config, case.records)
    )
    windowed = _short_payload_outcome(
        lambda: _windowed_rows(ctx, config, case.records, window)
    )
    assert windowed == whole


def test_keep_mode_is_not_skip_in_disguise():
    """On a journey with truncated frames (seed 0 is known to carry
    them), "keep" must produce *more* evidence than "skip": the
    TRUNCATED sentinel rows survive into the merged output instead of
    being silently filtered."""
    case = generate_journey_case(random.Random(0), lossy=True)
    ctx = EngineContext.serial(default_parallelism=3)
    rows = {}
    for mode in ("skip", "keep"):
        params = dict(case.params)
        params["short_payload"] = mode
        config = config_from_dict(params, case.database)
        rows[mode] = _windowed_rows(ctx, config, case.records, 0.7)
        assert rows[mode] == _whole_trace_rows(ctx, config, case.records)
    assert rows["keep"] != rows["skip"]
    assert any("TRUNCATED" in repr(r) for r in rows["keep"])
    assert not any("TRUNCATED" in repr(r) for r in rows["skip"])


def test_generated_journeys_are_deterministic():
    a = generate_journey_case(random.Random(1234))
    b = generate_journey_case(random.Random(1234))
    assert a.records == b.records
    assert a.params == b.params


def test_lossy_journeys_are_deterministic():
    a = generate_journey_case(random.Random(1234), lossy=True)
    b = generate_journey_case(random.Random(1234), lossy=True)
    assert a.records == b.records
    assert a.params == b.params


def test_lossy_mode_does_not_reshuffle_clean_journeys():
    """Corruption draws come after every clean draw, so the clean
    journey per seed is identical whether or not lossy mode exists."""
    for seed in (0, 7, 1234):
        clean = generate_journey_case(random.Random(seed))
        lossy = generate_journey_case(random.Random(seed), lossy=True)
        assert lossy.params["short_payload"] == "skip"
        assert clean.params == {
            k: v for k, v in lossy.params.items() if k != "short_payload"
        }
        assert clean.database.messages == lossy.database.messages


def test_lossy_journeys_have_corruption_substance():
    """Across a small corpus the lossy corpus must actually contain
    the frame defects the satellites fix: non-monotonic timestamps and
    exact duplicate frames."""
    saw_backwards = saw_duplicate = saw_changed = False
    for seed in range(40):
        case = generate_journey_case(random.Random(seed), lossy=True)
        times = [r[0] for r in case.records]
        if any(b < a for a, b in zip(times, times[1:])):
            saw_backwards = True
        if len(set(case.records)) < len(case.records):
            saw_duplicate = True
        clean = generate_journey_case(random.Random(seed))
        if case.records != clean.records:
            saw_changed = True
    assert saw_backwards and saw_duplicate and saw_changed


def test_generated_journeys_have_substance():
    """Guard against the generator degenerating into trivial traces."""
    saw_constraint = saw_extension = False
    for seed in range(30):
        case = generate_journey_case(random.Random(seed))
        assert len(case.records) >= 2
        assert case.params["signals"]
        assert case.params["dedup_channels"] is False
        saw_constraint = saw_constraint or bool(case.params["constraints"])
        saw_extension = saw_extension or bool(case.params["extensions"])
    assert saw_constraint and saw_extension
