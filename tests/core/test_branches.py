"""Type-dependent branch processing α/β/γ (lines 13-28)."""

import numpy as np
import pytest

from repro.core import (
    BranchConfig,
    KIND_BINARY,
    KIND_NOMINAL,
    KIND_OUTLIER,
    KIND_SYMBOL,
    KIND_VALIDITY,
    classify,
)
from repro.core.branches import (
    BranchError,
    process_alpha,
    process_beta,
    process_branch,
    process_gamma,
)
from repro.engine import Schema

SCHEMA = Schema.of("t", "v", "s_id", "b_id")


def rows_from_values(values, dt=0.05, s_id="s", b_id="FC"):
    return [(dt * i, v, s_id, b_id) for i, v in enumerate(values)]


class TestAlpha:
    def make_numeric_rows(self, n=200, outlier_at=(50,)):
        rng = np.random.default_rng(3)
        values = np.sin(np.linspace(0, 6 * np.pi, n)) * 10 + 20
        values += rng.normal(0, 0.1, n)
        values = list(values)
        for i in outlier_at:
            values[i] = 500.0
        return rows_from_values(values)

    def test_output_layout(self):
        out = process_alpha(self.make_numeric_rows(), SCHEMA)
        assert all(len(r) == 6 for r in out)

    def test_outliers_preserved_as_potential_errors(self):
        out = process_alpha(self.make_numeric_rows(), SCHEMA)
        outliers = [r for r in out if r[3] == KIND_OUTLIER]
        assert len(outliers) == 1
        assert outliers[0][4] == 500.0
        assert outliers[0][0] == pytest.approx(50 * 0.05)

    def test_segments_symbolized(self):
        out = process_alpha(self.make_numeric_rows(outlier_at=()), SCHEMA)
        symbols = [r for r in out if r[3] == KIND_SYMBOL]
        assert symbols
        labels = {r[4] for r in symbols}
        assert labels <= {"low", "medium", "high"}
        trends = {r[5] for r in symbols}
        assert trends <= {"increasing", "decreasing", "steady"}

    def test_sine_has_both_trends(self):
        out = process_alpha(self.make_numeric_rows(outlier_at=()), SCHEMA)
        trends = {r[5] for r in out if r[3] == KIND_SYMBOL}
        assert "increasing" in trends
        assert "decreasing" in trends

    def test_compresses_to_fewer_rows(self):
        rows = self.make_numeric_rows(outlier_at=())
        out = process_alpha(rows, SCHEMA)
        assert len(out) < len(rows) / 2

    def test_output_time_sorted(self):
        out = process_alpha(self.make_numeric_rows(), SCHEMA)
        times = [r[0] for r in out]
        assert times == sorted(times)

    def test_embedded_strings_peeled_off(self):
        rows = rows_from_values([1.0, 2.0, "invalid", 3.0, 4.0, 5.0, 6.0])
        out = process_alpha(rows, SCHEMA)
        validity = [r for r in out if r[3] == KIND_VALIDITY]
        assert len(validity) == 1

    def test_empty(self):
        assert process_alpha([], SCHEMA) == []

    def test_all_outliers_edge_case(self):
        # Two extreme populations; nothing crashes and rows survive.
        rows = rows_from_values([0.0] * 50 + [1000.0])
        out = process_alpha(rows, SCHEMA)
        assert len(out) >= 1


class TestBeta:
    LEVELS = ["low", "medium", "high", "medium", "low"] * 4

    def test_levels_translated_with_trend(self):
        out = process_beta(rows_from_values(self.LEVELS, dt=2.0), SCHEMA)
        symbols = [r for r in out if r[3] == KIND_SYMBOL]
        assert len(symbols) == len(self.LEVELS)
        assert {r[4] for r in symbols} == {"low", "medium", "high"}
        assert "increasing" in {r[5] for r in symbols}

    def test_validity_split(self):
        values = ["low", "invalid", "high", "invalid", "medium"]
        out = process_beta(rows_from_values(values, dt=2.0), SCHEMA)
        validity = [r for r in out if r[3] == KIND_VALIDITY]
        assert len(validity) == 2
        assert all(r[4] == "invalid" for r in validity)

    def test_numeric_ordinals(self):
        values = [10.0, 11.0, 12.0, 12.0, 11.0]
        out = process_beta(rows_from_values(values, dt=5.0), SCHEMA)
        symbols = [r for r in out if r[3] == KIND_SYMBOL]
        assert len(symbols) == 5

    def test_numeric_outlier_detected(self):
        values = [10.0, 11.0, 12.0, 9999.0] + [10.0, 11.0, 12.0] * 10
        out = process_beta(rows_from_values(values, dt=5.0), SCHEMA)
        outliers = [r for r in out if r[3] == KIND_OUTLIER]
        assert len(outliers) == 1
        assert outliers[0][4] == 9999.0

    def test_vocabulary_order_used_for_ranks(self):
        """Trends must follow low<medium<high, not alphabetical order."""
        values = ["low", "medium", "high"] * 5
        out = process_beta(rows_from_values(values, dt=2.0), SCHEMA)
        first_trend = [r for r in out if r[3] == KIND_SYMBOL][0][5]
        assert first_trend == "increasing"

    def test_only_validity_values(self):
        out = process_beta(rows_from_values(["invalid"] * 3), SCHEMA)
        assert all(r[3] == KIND_VALIDITY for r in out)

    def test_empty(self):
        assert process_beta([], SCHEMA) == []


class TestGamma:
    def test_binary_kind(self):
        out = process_gamma(
            rows_from_values(["ON", "OFF"] * 3), SCHEMA, "binary"
        )
        assert all(r[3] == KIND_BINARY for r in out)
        assert all(r[5] is None for r in out)

    def test_nominal_kind(self):
        out = process_gamma(
            rows_from_values(["driving", "parking"]), SCHEMA, "nominal"
        )
        assert all(r[3] == KIND_NOMINAL for r in out)

    def test_validity_split(self):
        out = process_gamma(
            rows_from_values(["ON", "invalid", "OFF"]), SCHEMA, "binary"
        )
        kinds = [r[3] for r in out]
        assert kinds.count(KIND_VALIDITY) == 1
        assert kinds.count(KIND_BINARY) == 2

    def test_no_transformation_row_count(self):
        rows = rows_from_values(["a", "b", "c"])
        assert len(process_gamma(rows, SCHEMA, "nominal")) == len(rows)


class TestDispatch:
    def test_dispatch_matches_classification(self):
        values = ["ON", "OFF"] * 4
        rows = rows_from_values(values)
        c = classify([r[0] for r in rows], values)
        out = process_branch(rows, SCHEMA, c)
        assert all(r[3] == KIND_BINARY for r in out)

    def test_unknown_branch_rejected(self):
        class Fake:
            branch = "delta"
            data_type = "numeric"

        with pytest.raises(BranchError):
            process_branch([], SCHEMA, Fake())


class TestBranchConfig:
    def test_level_label_known_sizes(self):
        from repro.analysis import SaxEncoder

        config = BranchConfig(sax=SaxEncoder(alphabet_size=5))
        assert config.level_label(0) == "very_low"
        assert config.level_label(4) == "very_high"

    def test_level_label_falls_back_to_letters(self):
        from repro.analysis import SaxEncoder

        config = BranchConfig(sax=SaxEncoder(alphabet_size=7))
        assert config.level_label(0) == "a"
