"""Merging (line 29) and the state representation (Sec. 4.3, Table 4)."""

import pytest

from repro.core import (
    KIND_BINARY,
    KIND_NOMINAL,
    KIND_OUTLIER,
    KIND_SYMBOL,
    R_COLUMNS,
    build_state_representation,
    format_cell,
    merge_results,
)
from repro.core.representation import RepresentationError


@pytest.fixture
def branch_tables(ctx):
    lights = ctx.table_from_rows(
        list(R_COLUMNS),
        [
            (2.0, "headlight", "BC", KIND_NOMINAL, "off", None),
            (20.1, "headlight", "BC", KIND_NOMINAL, "parklight on", None),
            (23.5, "headlight", "BC", KIND_NOMINAL, "headlight on", None),
        ],
    )
    speed = ctx.table_from_rows(
        list(R_COLUMNS),
        [
            (2.0, "speed", "DC", KIND_SYMBOL, "high", "increasing"),
            (14.0, "speed", "DC", KIND_SYMBOL, "high", "steady"),
            (22.0, "speed", "DC", KIND_OUTLIER, 800, None),
            (23.0, "speed", "DC", KIND_SYMBOL, "high", "steady"),
        ],
    )
    return [lights, speed]


class TestFormatCell:
    def test_symbol_with_trend(self):
        assert format_cell(KIND_SYMBOL, "high", "steady") == "(high,steady)"

    def test_outlier_matches_table4(self):
        assert format_cell(KIND_OUTLIER, 800, None) == "outlier v = 800"

    def test_nominal_plain(self):
        assert format_cell(KIND_NOMINAL, "off", None) == "off"

    def test_binary_plain(self):
        assert format_cell(KIND_BINARY, "ON", None) == "ON"


class TestMergeResults:
    def test_union_of_branches(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        assert merged.count() == 7
        assert merged.columns == list(R_COLUMNS)

    def test_sorted_by_time(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        times = [r[0] for r in merged.collect()]
        assert times == sorted(times)

    def test_extension_tables_reshaped(self, ctx, branch_tables):
        w = ctx.table_from_rows(
            ["t", "v", "w_id", "s_id", "b_id"],
            [(2.5, 0.5, "speedGap", "speed", "DC")],
        )
        merged = merge_results(ctx, branch_tables, [w])
        row = [r for r in merged.collect() if r[1] == "speedGap"]
        assert len(row) == 1
        assert row[0][3] == "extension"
        assert row[0][4] == 0.5

    def test_wrong_layout_rejected(self, ctx):
        bad = ctx.table_from_rows(["a", "b"], [(1, 2)])
        with pytest.raises(RepresentationError):
            merge_results(ctx, [bad])

    def test_empty_inputs_give_empty_table(self, ctx):
        merged = merge_results(ctx, [])
        assert merged.count() == 0
        assert merged.columns == list(R_COLUMNS)


class TestStateRepresentation:
    def test_one_row_per_timestamp(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged)
        # Timestamps: 2.0 (both), 14.0, 20.1, 22.0, 23.0, 23.5.
        assert len(rep) == 6

    def test_forward_fill_carries_last_value(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        state = rep.state_at(21.0)
        assert state["headlight"] == "parklight on"
        assert state["speed"] == "(high,steady)"

    def test_outlier_row_rendered(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        state = rep.state_at(22.0)
        assert state["speed"] == "outlier v = 800"
        # Table 4: the other columns keep their last values.
        assert state["headlight"] == "parklight on"

    def test_column_order_respected(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["speed", "headlight"])
        assert rep.columns == ("speed", "headlight")

    def test_leading_cells_none_before_first_occurrence(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        # Insert nothing before 2.0; at 2.0 both signals appear.
        first = rep.rows[0]
        assert first[0] == 2.0

    def test_signal_column(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        column = rep.signal_column("headlight")
        assert column[0] == (2.0, "off")

    def test_state_before_data_raises(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged)
        with pytest.raises(RepresentationError):
            rep.state_at(0.1)

    def test_iter_states_dicts(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        states = list(rep.iter_states())
        assert states[0]["t"] == 2.0
        assert set(states[0]) == {"t", "headlight", "speed"}

    def test_to_markdown_contains_header_and_outlier(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        text = rep.to_markdown()
        assert "| t | headlight | speed |" in text
        assert "outlier v = 800" in text

    def test_transitions(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight", "speed"])
        transitions = rep.transitions("headlight")
        assert ("off", "parklight on") in transitions

    def test_unknown_signals_ignored(self, ctx, branch_tables):
        merged = merge_results(ctx, branch_tables)
        rep = build_state_representation(merged, ["headlight"])
        assert rep.columns == ("headlight",)
        assert all(len(row) == 2 for row in rep.rows)

    def test_empty_representation(self, ctx):
        merged = merge_results(ctx, [])
        rep = build_state_representation(merged)
        assert len(rep) == 0
