"""Property-based tests on the pipeline's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Constraint,
    KIND_OUTLIER,
    KIND_SYMBOL,
    KIND_VALIDITY,
    R_COLUMNS,
    UnchangedValue,
    UnchangedWithinCycle,
    build_state_representation,
    classify,
    compute_criteria,
    reduce_signal,
)
from repro.core.branches import process_beta, process_branch, process_gamma
from repro.engine import EngineContext, Schema

SCHEMA = Schema.of("t", "v", "s_id", "b_id")

# Strictly increasing time stamps.
times_strategy = st.lists(
    st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=40,
).map(lambda gaps: [round(sum(gaps[: i + 1]), 6) for i in range(len(gaps))])

mixed_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    st.sampled_from(["low", "medium", "high", "ON", "OFF", "driving", "invalid"]),
)


def make_rows(times, values):
    return [(t, v, "s", "FC") for t, v in zip(times, values)]


@given(times=times_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_classification_is_total_and_deterministic(times, data):
    values = data.draw(
        st.lists(mixed_values, min_size=len(times), max_size=len(times))
    )
    first = classify(times, values)
    second = classify(times, values)
    assert first == second
    assert first.branch in ("alpha", "beta", "gamma")
    criteria = compute_criteria(times, values)
    assert criteria.z_num <= len(set(map(str, values)))


@given(times=times_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_branch_output_is_homogeneous(times, data):
    values = data.draw(
        st.lists(mixed_values, min_size=len(times), max_size=len(times))
    )
    rows = make_rows(times, values)
    classification = classify(times, values)
    out = process_branch(rows, SCHEMA, classification)
    assert all(len(r) == len(R_COLUMNS) for r in out)
    out_times = [r[0] for r in out]
    assert out_times == sorted(out_times)
    # No branch invents timestamps.
    assert set(out_times) <= set(times)


@given(times=times_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_gamma_preserves_every_element(times, data):
    values = data.draw(
        st.lists(
            st.sampled_from(["a", "b", "invalid"]),
            min_size=len(times),
            max_size=len(times),
        )
    )
    out = process_gamma(make_rows(times, values), SCHEMA, "nominal")
    assert len(out) == len(times)
    validity = [r for r in out if r[3] == KIND_VALIDITY]
    assert len(validity) == values.count("invalid")


@given(times=times_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_beta_partitions_elements(times, data):
    values = data.draw(
        st.lists(
            st.sampled_from(["low", "medium", "high", "invalid"]),
            min_size=len(times),
            max_size=len(times),
        )
    )
    out = process_beta(make_rows(times, values), SCHEMA)
    kinds = [r[3] for r in out]
    # Every input element lands in exactly one of the three outcomes.
    assert len(out) == len(times)
    assert kinds.count(KIND_VALIDITY) == values.count("invalid")
    assert set(kinds) <= {KIND_SYMBOL, KIND_OUTLIER, KIND_VALIDITY}


@given(
    times=times_strategy,
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_reduction_is_a_subsequence_keeping_changes(times, data):
    values = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(times),
            max_size=len(times),
        )
    )
    ctx = EngineContext.serial()
    table = ctx.table_from_rows(
        list(SCHEMA.names), make_rows(times, values), num_partitions=3
    )
    reduced = reduce_signal(
        table, [Constraint("s", True, (UnchangedValue(),))]
    ).collect()
    original = sorted(make_rows(times, values))
    # Subsequence of the input.
    assert all(r in original for r in reduced)
    # First element always survives.
    assert reduced[0] == original[0]
    # Exactly the value-change points survive.
    expected = [original[0]]
    for row in original[1:]:
        if row[1] != expected[-1][1]:
            expected.append(row)
    assert reduced == expected


@given(
    times=times_strategy,
    cycle=st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_cycle_aware_reduction_never_hides_violations(times, cycle):
    """Constant-valued sequences reduce, but any gap beyond the tolerance
    must survive -- the paper's "important state changes such as
    violations of cycle times need to be preserved"."""
    values = [7] * len(times)
    ctx = EngineContext.serial()
    table = ctx.table_from_rows(
        list(SCHEMA.names), make_rows(times, values), num_partitions=2
    )
    tolerance = 1.5
    reduced = reduce_signal(
        table,
        [Constraint("s", True, (UnchangedWithinCycle(cycle, tolerance),))],
    ).collect()
    kept_times = {r[0] for r in reduced}
    previous = None
    for t in times:
        if previous is not None and (t - previous) > cycle * tolerance:
            assert t in kept_times
        previous = t


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_state_representation_forward_fill_invariant(data):
    n = data.draw(st.integers(min_value=1, max_value=20))
    rows = []
    signals = ["a", "b"]
    for i in range(n):
        signal = data.draw(st.sampled_from(signals))
        rows.append(
            (float(i), signal, "FC", "nominal", "v{}".format(i % 3), None)
        )
    ctx = EngineContext.serial()
    table = ctx.table_from_rows(list(R_COLUMNS), rows)
    rep = build_state_representation(table, signals)
    # After a signal's first occurrence its column is never None again.
    seen = set()
    for state in rep.iter_states():
        for signal in signals:
            if state[signal] is not None:
                seen.add(signal)
            if signal in seen:
                assert state[signal] is not None
