"""Constraint reduction (lines 10-11, Eq. 1)."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    MinimumGap,
    OutsideQuantileRange,
    Predicate,
    UnchangedValue,
    UnchangedWithinCycle,
    ValueInSet,
    reduce_signal,
    reduction_ratio,
)
from repro.core.reduction import ReductionError


@pytest.fixture
def cyclic_table(ctx):
    """A 0.1 s cyclic signal repeating its value, with one late message
    (cycle violation at t=2.0) that also repeats the value."""
    rows = []
    t = 0.0
    value = 5.0
    while t < 1.0:
        rows.append((round(t, 3), value, "s", "FC"))
        t += 0.1
    rows.append((2.0, value, "s", "FC"))  # late repeat = violation
    rows.append((2.1, 7.0, "s", "FC"))  # value change
    return ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)


class TestMarkers:
    def test_unchanged_value_flags_repeats(self):
        flags = UnchangedValue().flags(
            [1, 2, 3, 4], [5, 5, 6, 6], prev=None
        )
        assert flags == [False, True, False, True]

    def test_unchanged_value_uses_carry(self):
        flags = UnchangedValue().flags([2], [5], prev=(1, 5))
        assert flags == [True]

    def test_unchanged_within_cycle_preserves_violations(self):
        marker = UnchangedWithinCycle(cycle_time=0.1, tolerance=1.5)
        times = [0.0, 0.1, 0.2, 1.0]
        values = [5, 5, 5, 5]
        flags = marker.flags(times, values, prev=None)
        # Repeats within cycle tolerance dropped; the late one kept.
        assert flags == [False, True, True, False]

    def test_unchanged_within_cycle_validation(self):
        with pytest.raises(ReductionError):
            UnchangedWithinCycle(0.0)

    def test_minimum_gap_decimates(self):
        marker = MinimumGap(min_gap=0.25)
        flags = marker.flags([0.0, 0.1, 0.2, 0.3, 0.6], [1] * 5, prev=None)
        assert flags == [False, True, True, False, False]

    def test_value_in_set(self):
        marker = ValueInSet(frozenset({"idle"}))
        flags = marker.flags([1, 2], ["idle", "go"], prev=None)
        assert flags == [True, False]

    def test_predicate(self):
        marker = Predicate(_is_negative)
        assert marker.flags([1, 2], [-5, 5], prev=None) == [True, False]

    def test_quantile_marker(self):
        marker = OutsideQuantileRange(0.05, 0.95)
        values = list(range(100)) + [10_000]
        flags = marker.flags(list(range(101)), values, prev=None)
        assert flags[-1] is True or flags[-1] == True  # noqa: E712
        assert sum(flags) < 15

    def test_quantile_marker_validation(self):
        with pytest.raises(ReductionError):
            OutsideQuantileRange(0.9, 0.1)


class TestConstraintSet:
    def test_for_signal_filters_by_id_and_enable(self):
        c1 = Constraint("a", True, (UnchangedValue(),))
        c2 = Constraint("a", False, (MinimumGap(1.0),))
        c3 = Constraint("b", True, (UnchangedValue(),))
        cs = ConstraintSet((c1, c2, c3))
        assert cs.for_signal("a") == [c1]
        assert cs.for_signal("b") == [c3]
        assert cs.for_signal("ghost") == []

    def test_non_marker_function_rejected(self):
        with pytest.raises(ReductionError):
            Constraint("a", True, (lambda t, v: True,))

    def test_len_and_iter(self):
        cs = ConstraintSet((Constraint("a", True, ()),))
        assert len(cs) == 1
        assert [c.signal_id for c in cs] == ["a"]


class TestReduceSignal:
    def test_no_constraints_passthrough(self, cyclic_table):
        out = reduce_signal(cyclic_table, [])
        assert out.count() == cyclic_table.count()

    def test_unchanged_value_reduction(self, cyclic_table):
        constraints = [Constraint("s", True, (UnchangedValue(),))]
        out = reduce_signal(cyclic_table, constraints)
        # Only first occurrence and the value change at 2.1 survive.
        assert [r[0] for r in out.collect()] == [0.0, 2.1]

    def test_cycle_aware_reduction_keeps_violation(self, cyclic_table):
        constraints = [
            Constraint("s", True, (UnchangedWithinCycle(0.1, 1.5),))
        ]
        out = reduce_signal(cyclic_table, constraints)
        times = [r[0] for r in out.collect()]
        assert 2.0 in times  # the late message is preserved
        assert 2.1 in times
        assert 0.0 in times
        assert len(times) == 3

    def test_disjunction_of_markers(self, ctx):
        """Eq. 1: e is true if ANY f fires."""
        rows = [(0.0, 1, "s", "FC"), (0.1, 1, "s", "FC"), (0.2, "idle", "s", "FC")]
        table = ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)
        constraints = [
            Constraint(
                "s", True, (UnchangedValue(), ValueInSet(frozenset({"idle"})))
            )
        ]
        out = reduce_signal(table, constraints)
        assert out.collect() == [(0.0, 1, "s", "FC")]

    def test_reduction_crosses_partitions(self, ctx):
        rows = [(float(i), 7, "s", "FC") for i in range(100)]
        table = ctx.table_from_rows(
            ["t", "v", "s_id", "b_id"], rows, num_partitions=8
        )
        out = reduce_signal(table, [Constraint("s", True, (UnchangedValue(),))])
        assert out.count() == 1

    def test_minimum_gap_is_partition_invariant(self, ctx):
        """Serial-state markers must not depend on partitioning.

        MinimumGap's kept/dropped phase propagates from the start of the
        sequence; with a one-row carry each partition restarted the
        phase, so the output used to change with ``num_partitions``.
        """
        rows = [(round(i * 0.1, 6), i, "s", "FC") for i in range(60)]
        constraints = [Constraint("s", True, (MinimumGap(0.25),))]
        expected = None
        for parts in (1, 3, 8):
            table = ctx.table_from_rows(
                ["t", "v", "s_id", "b_id"], rows, num_partitions=parts
            )
            got = reduce_signal(table, constraints).collect()
            if expected is None:
                expected = got
                assert 1 < len(got) < len(rows)
            assert got == expected

    def test_result_sorted_by_time(self, ctx):
        rows = [(2.0, 1, "s", "FC"), (1.0, 2, "s", "FC"), (3.0, 3, "s", "FC")]
        table = ctx.table_from_rows(["t", "v", "s_id", "b_id"], rows)
        out = reduce_signal(table, [])
        assert [r[0] for r in out.collect()] == [1.0, 2.0, 3.0]


class TestReductionRatio:
    def test_half(self):
        assert reduction_ratio(10, 5) == 0.5

    def test_empty(self):
        assert reduction_ratio(0, 0) == 0.0


def _is_negative(t, v):
    return v < 0
