"""Declarative parameterization documents (core.params)."""

import json

import pytest

from repro.core import (
    CycleViolationExtension,
    GapExtension,
    MinimumGap,
    RollingAggregateExtension,
    UnchangedValue,
    UnchangedWithinCycle,
    ValueInSet,
)
from repro.core.params import (
    ParameterizationError,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


@pytest.fixture
def document():
    return {
        "signals": ["wpos", "wvel", "heat"],
        "constraints": [
            {
                "signal": "wvel",
                "type": "unchanged_within_cycle",
                "cycle_time": 0.1,
                "tolerance": 2.0,
            },
            {"signal": "heat", "type": "unchanged"},
            {"signal": "wpos", "type": "minimum_gap", "min_gap": 0.5},
            {"signal": "heat", "type": "value_in_set", "values": ["off"]},
        ],
        "extensions": [
            {"signal": "wpos", "type": "gap"},
            {
                "signal": "wvel",
                "type": "cycle_violation",
                "expected_cycle": 0.1,
                "tolerance": 1.8,
            },
            {
                "signal": "wpos",
                "type": "rolling",
                "window": 5.0,
                "statistic": "max",
            },
        ],
        "branch": {"sax_alphabet": 5, "trend_fraction": 0.01},
        "dedup_channels": False,
    }


class TestFromDict:
    def test_catalog_selected(self, document, wiper_database):
        config = config_from_dict(document, wiper_database)
        assert set(config.catalog.signal_ids()) == {"wpos", "wvel", "heat"}

    def test_constraints_built(self, document, wiper_database):
        config = config_from_dict(document, wiper_database)
        (c,) = config.constraints.for_signal("wvel")
        assert isinstance(c.functions[0], UnchangedWithinCycle)
        assert c.functions[0].tolerance == 2.0
        types = {
            type(c.functions[0])
            for c in config.constraints
        }
        assert types == {
            UnchangedWithinCycle, UnchangedValue, MinimumGap, ValueInSet,
        }

    def test_extensions_built(self, document, wiper_database):
        config = config_from_dict(document, wiper_database)
        types = {type(e) for e in config.extensions}
        assert types == {
            GapExtension, CycleViolationExtension, RollingAggregateExtension,
        }

    def test_branch_config(self, document, wiper_database):
        config = config_from_dict(document, wiper_database)
        assert config.branch_config.sax.alphabet_size == 5
        assert config.branch_config.trend_fraction == 0.01
        assert config.dedup_channels is False

    def test_missing_signals_rejected(self, wiper_database):
        with pytest.raises(ParameterizationError):
            config_from_dict({}, wiper_database)

    def test_unknown_constraint_type_rejected(self, wiper_database):
        document = {
            "signals": ["wpos"],
            "constraints": [{"signal": "wpos", "type": "fancy"}],
        }
        with pytest.raises(ParameterizationError):
            config_from_dict(document, wiper_database)

    def test_unknown_extension_type_rejected(self, wiper_database):
        document = {
            "signals": ["wpos"],
            "extensions": [{"signal": "wpos", "type": "fancy"}],
        }
        with pytest.raises(ParameterizationError):
            config_from_dict(document, wiper_database)

    def test_constraint_without_signal_rejected(self, wiper_database):
        document = {
            "signals": ["wpos"],
            "constraints": [{"type": "unchanged"}],
        }
        with pytest.raises(ParameterizationError):
            config_from_dict(document, wiper_database)


class TestRoundTrip:
    def test_dict_round_trip(self, document, wiper_database):
        config = config_from_dict(document, wiper_database)
        rebuilt = config_from_dict(
            config_to_dict(config), wiper_database
        )
        assert config_to_dict(rebuilt) == config_to_dict(config)

    def test_file_round_trip(self, document, wiper_database, tmp_path):
        config = config_from_dict(document, wiper_database)
        path = tmp_path / "params.json"
        saved = save_config(config, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(saved)
        )
        loaded = load_config(path, wiper_database)
        assert config_to_dict(loaded) == config_to_dict(config)

    def test_round_tripped_config_runs(self, document, wiper_database,
                                        wiper_trace, tmp_path):
        from repro.core import PreprocessingPipeline

        config = config_from_dict(document, wiper_database)
        path = tmp_path / "params.json"
        save_config(config, path)
        loaded = load_config(path, wiper_database)
        result = PreprocessingPipeline(loaded).run(wiper_trace)
        assert set(result.outcomes) == {"wpos", "wvel", "heat"}
