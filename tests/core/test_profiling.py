"""Per-signal profiling."""

import pytest

from repro.core import interpret, preselect
from repro.core.profiling import profile_report, profile_signal, profile_trace
from repro.obs import median, percentile


def rows_for(times, values, s_id="s", b_id="FC"):
    return [(t, v, s_id, b_id) for t, v in zip(times, values)]


def times_with_gaps(gaps):
    """21 timestamps whose consecutive gaps are exactly *gaps*."""
    times = [0.0]
    for gap in gaps:
        times.append(times[-1] + gap)
    return times


class TestProfileSignal:
    def test_basic_statistics(self):
        rows = rows_for([0.0, 0.1, 0.2, 0.3], [1.0, 1.0, 2.0, 3.0])
        p = profile_signal(rows, "s")
        assert p.count == 4
        assert p.first_seen == 0.0
        assert p.last_seen == pytest.approx(0.3)
        assert p.distinct_values == 3
        assert p.numeric
        assert p.value_min == 1.0
        assert p.value_max == 3.0

    def test_rate_and_duration(self):
        rows = rows_for([0.0, 1.0, 2.0], [1, 2, 3])
        p = profile_signal(rows, "s")
        assert p.duration == 2.0
        assert p.rate == pytest.approx(1.0)

    def test_median_gap(self):
        rows = rows_for([0.0, 0.1, 0.2, 1.2], [1, 2, 3, 4])
        p = profile_signal(rows, "s")
        assert p.median_gap == pytest.approx(0.1)
        assert p.suggested_cycle_time() == pytest.approx(0.1)

    def test_change_ratio(self):
        rows = rows_for([0.0, 0.1, 0.2, 0.3], [5, 5, 5, 6])
        p = profile_signal(rows, "s")
        assert p.change_ratio == pytest.approx(1 / 3)

    def test_non_numeric_profile(self):
        rows = rows_for([0.0, 0.5], ["ON", "OFF"])
        p = profile_signal(rows, "s")
        assert not p.numeric
        assert p.value_min is None

    def test_rows_sorted_internally(self):
        rows = rows_for([0.2, 0.0, 0.1], [3, 1, 2])
        p = profile_signal(rows, "s")
        assert p.first_seen == 0.0

    def test_classification_attached(self):
        rows = rows_for(
            [0.01 * i for i in range(200)], [float(i) for i in range(200)]
        )
        p = profile_signal(rows, "s")
        assert p.branch == "alpha"

    def test_single_instance(self):
        p = profile_signal(rows_for([1.0], [5]), "s")
        assert p.rate == 0.0
        assert p.change_ratio == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_signal([], "s")

    def test_channels_collected(self):
        rows = rows_for([0.0], [1]) + rows_for([0.1], [1], b_id="BC")
        p = profile_signal(rows, "s")
        assert p.channels == ("BC", "FC")

    def test_two_row_sequence(self):
        p = profile_signal(rows_for([0.0, 0.5], [1, 2]), "s")
        assert p.count == 2
        # One gap: it is simultaneously the median and every percentile.
        assert p.median_gap == pytest.approx(0.5)
        assert p.p95_gap == pytest.approx(0.5)
        assert p.change_ratio == pytest.approx(1.0)

    def test_constant_value_sequence(self):
        p = profile_signal(
            rows_for([0.1 * i for i in range(10)], [7] * 10), "s"
        )
        assert p.distinct_values == 1
        assert p.change_ratio == 0.0
        assert p.value_min == p.value_max == 7
        assert p.median_gap == pytest.approx(0.1)
        assert p.p95_gap == pytest.approx(0.1)


class TestPercentileRegressions:
    """The old hand-rolled indexing returned p100 as p95 at n = 20."""

    GAPS = [float(g) for g in range(1, 21)]  # 20 distinct gaps: 1..20

    def profile(self):
        times = times_with_gaps(self.GAPS)
        return profile_signal(rows_for(times, range(len(times))), "s")

    def test_p95_gap_is_nearest_rank_not_maximum(self):
        p = self.profile()
        # Nearest rank: ceil(0.95 * 20) - 1 == index 18 -> gap 19. The
        # old int(len * 0.95) indexing picked index 19 == max(gaps),
        # i.e. p100 masquerading as p95.
        assert p.p95_gap == 19.0
        assert p.p95_gap != max(self.GAPS)
        assert p.p95_gap == percentile(self.GAPS, 95)

    def test_median_gap_even_length_takes_lower_middle(self):
        p = self.profile()
        # 20 gaps: nearest-rank median is the 10th value (10.0); the
        # old // 2 indexing took the upper middle (11.0).
        assert p.median_gap == 10.0
        assert p.median_gap == median(self.GAPS)

    def test_profiling_and_classification_medians_agree(self):
        # Both modules route median_gap through repro.obs.median, so an
        # even-length gap sequence yields one answer everywhere.
        from repro.core.classification import _change_rate, ClassifierConfig

        gaps = [0.1, 0.1, 5.0, 5.0]  # even length; lower middle = 0.1
        times = times_with_gaps(gaps)
        p = profile_signal(rows_for(times, range(len(times))), "s")
        assert p.median_gap == pytest.approx(0.1)
        # With median 0.1 the active-segment limit (factor 10 -> 1.0 s)
        # excludes the 5.0 s gaps: 3 active points over 0.2 s -> high
        # rate. The old upper-middle median (5.0 -> limit 50 s) kept
        # every gap active: 5 points over 10.2 s -> low rate.
        assert _change_rate(times, ClassifierConfig()) == "H"


class TestProfileTrace:
    def test_profiles_every_signal(self, ctx, wiper_simulation):
        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos", "heat", "belt"])
        k_b = wiper_simulation.record_table(ctx, 20.0)
        k_s = interpret(preselect(k_b, catalog), catalog)
        profiles = profile_trace(k_s)
        assert set(profiles) == {"wpos", "heat", "belt"}
        assert profiles["wpos"].rate > profiles["heat"].rate

    def test_suggested_cycle_matches_schedule(self, ctx, wiper_simulation):
        db = wiper_simulation.database
        catalog = db.translation_catalog(["heat"])
        k_b = wiper_simulation.record_table(ctx, 20.0)
        k_s = interpret(preselect(k_b, catalog), catalog)
        profiles = profile_trace(k_s)
        # Heater is sent every 0.5 s.
        assert profiles["heat"].suggested_cycle_time() == pytest.approx(
            0.5, abs=0.05
        )


class TestProfileReport:
    def make_profiles(self):
        rows_a = rows_for([0.0, 0.1, 0.2], [1, 2, 3], s_id="a")
        rows_b = rows_for([0.0, 1.0], ["x", "y"], s_id="b")
        return {
            "a": profile_signal(rows_a, "a"),
            "b": profile_signal(rows_b, "b"),
        }

    def test_report_contains_all_signals(self):
        text = profile_report(self.make_profiles())
        assert "a" in text and "b" in text
        assert "rate/s" in text

    def test_sorting_modes(self):
        profiles = self.make_profiles()
        by_count = profile_report(profiles, sort_by="count").splitlines()
        assert by_count[2].startswith("a")  # 3 instances > 2
        by_name = profile_report(profiles, sort_by="signal").splitlines()
        assert by_name[2].startswith("a")

    def test_unknown_sort_rejected(self):
        with pytest.raises(ValueError):
            profile_report(self.make_profiles(), sort_by="magic")
