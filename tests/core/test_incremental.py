"""Incremental (windowed) processing: equivalence with whole-trace runs."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    GapExtension,
    ExtensionSet,
    PipelineConfig,
    UnchangedWithinCycle,
    interpret,
    preselect,
    reduce_signal,
)
from repro.core.incremental import (
    IncrementalError,
    IncrementalRunner,
    split_into_windows,
)
from repro.engine import col
from repro.protocols.frames import BYTE_RECORD_COLUMNS


@pytest.fixture
def setup(ctx, wiper_simulation):
    db = wiper_simulation.database
    catalog = db.translation_catalog(["wvel", "heat"]).restrict_channels(
        ["FC", "K-LIN"]
    )
    config = PipelineConfig(
        catalog=catalog,
        constraints=ConstraintSet(
            (
                Constraint("wvel", True, (UnchangedWithinCycle(0.1),)),
                Constraint("heat", True, (UnchangedWithinCycle(0.5),)),
            )
        ),
        extensions=ExtensionSet((GapExtension("heat"),)),
    )
    records = wiper_simulation.byte_records(30.0)
    return config, records


class TestSplitIntoWindows:
    def test_covers_all_records(self, setup):
        _config, records = setup
        windows = split_into_windows(records, 5.0)
        assert sum(len(w) for w in windows) == len(records)
        assert len(windows) == 6

    def test_window_bounds(self, setup):
        _config, records = setup
        for window in split_into_windows(records, 5.0):
            span = window[-1][0] - window[0][0]
            assert span < 5.0 + 1e-6

    def test_empty_input(self):
        assert split_into_windows([], 5.0) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(IncrementalError):
            split_into_windows([], 0.0)


class TestIncrementalEquivalence:
    def test_reduction_matches_whole_trace(self, ctx, setup):
        """Windowed reduction with carry must keep exactly the rows a
        whole-trace reduction keeps."""
        config, records = setup
        runner = IncrementalRunner(config)
        for window in split_into_windows(records, 4.0):
            table = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
            runner.process_window(table)

        whole_k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records)
        k_s = interpret(preselect(whole_k_b, config.catalog), config.catalog)
        for s_id, b_id in ((u.signal_id, u.channel_id) for u in config.catalog):
            whole = reduce_signal(
                k_s.filter(col("s_id") == s_id).filter(col("b_id") == b_id),
                config.constraints.for_signal(s_id),
            ).collect()
            incremental = runner.reduced_rows(s_id, b_id)
            assert incremental == whole, (s_id, b_id)

    def test_finalize_produces_homogeneous_output(self, ctx, setup):
        config, records = setup
        runner = IncrementalRunner(config)
        for window in split_into_windows(records, 6.0):
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
            )
        result = runner.finalize(ctx)
        assert result.r_out.count() > 0
        assert result.r_out.columns == [
            "t", "s_id", "b_id", "kind", "value", "trend",
        ]
        rep = result.state_representation(["wvel", "heat", "heatGap"])
        assert len(rep) > 0

    def test_extensions_span_window_boundaries(self, ctx, setup):
        """heatGap values must reflect gaps in the *reduced* sequence,
        not artifacts of the windowing."""
        config, records = setup
        runner = IncrementalRunner(config)
        for window in split_into_windows(records, 3.0):
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
            )
        result = runner.finalize(ctx)
        gaps = [
            r[4]
            for r in result.r_out.collect()
            if r[1] == "heatGap" and r[3] == "extension"
        ]
        assert gaps
        # Heater levels dwell 8 s; reduced gaps must be far above the
        # 3 s window size if windowing left no artifacts.
        assert min(gaps) > 3.0


class TestIncrementalProperty:
    def test_equivalence_for_random_window_sizes(self, ctx, setup):
        """Any window size gives reduction-identical results (the carry
        makes boundaries invisible)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        config, records = setup
        whole_k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records)
        k_s = interpret(preselect(whole_k_b, config.catalog), config.catalog)
        expected = {}
        for u in config.catalog:
            expected[(u.signal_id, u.channel_id)] = reduce_signal(
                k_s.filter(col("s_id") == u.signal_id).filter(
                    col("b_id") == u.channel_id
                ),
                config.constraints.for_signal(u.signal_id),
            ).collect()

        @given(window=st.floats(min_value=0.5, max_value=20.0))
        @settings(max_examples=10, deadline=None)
        def check(window):
            runner = IncrementalRunner(config)
            for chunk in split_into_windows(records, window):
                runner.process_window(
                    ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), chunk)
                )
            for key, rows in expected.items():
                assert runner.reduced_rows(*key) == rows

        check()


class TestRunnerProtocol:
    def test_out_of_order_window_rejected(self, ctx, setup):
        config, records = setup
        runner = IncrementalRunner(config)
        windows = split_into_windows(records, 5.0)
        runner.process_window(
            ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), windows[1])
        )
        with pytest.raises(IncrementalError):
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), windows[0])
            )

    def test_finalize_twice_rejected(self, ctx, setup):
        config, _records = setup
        runner = IncrementalRunner(config)
        runner.finalize(ctx)
        with pytest.raises(IncrementalError):
            runner.finalize(ctx)

    def test_process_after_finalize_rejected(self, ctx, setup):
        config, records = setup
        runner = IncrementalRunner(config)
        runner.finalize(ctx)
        with pytest.raises(IncrementalError):
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), records[:5])
            )
