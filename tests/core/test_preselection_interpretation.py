"""Preselection (lines 2-3) and interpretation (lines 4-6), incl. the
wiper example of Fig. 2 / Table 1."""

import pytest

from repro.core import (
    InterpretationRule,
    RuleCatalog,
    TranslationTuple,
    interpret,
    preselect,
    preselection_ratio,
)
from repro.core.interpretation import (
    evaluate_signals,
    extract_relevant_bytes,
    join_rules,
)
from repro.engine import col
from repro.protocols import SignalEncoding


@pytest.fixture
def fig2_trace(ctx):
    """The K_b of Fig. 2: two wiper messages plus unrelated traffic."""
    rows = [
        # t, l, b_id, m_id, m_info  (l encodes wpos=45deg, wvel=1)
        (2.0, (90).to_bytes(2, "little") + (1).to_bytes(2, "little"), "FC", 3, ()),
        (2.5, (120).to_bytes(2, "little") + (1).to_bytes(2, "little"), "FC", 3, ()),
        (2.1, b"\xff", "FC", 9, ()),  # irrelevant message type
        (2.2, b"\x01\x02", "DC", 3, ()),  # same id, wrong channel
    ]
    return ctx.table_from_rows(["t", "l", "b_id", "m_id", "m_info"], rows)


@pytest.fixture
def wiper_catalog():
    return RuleCatalog(
        (
            TranslationTuple(
                "wpos", "FC", 3,
                InterpretationRule(SignalEncoding(0, 16, scale=0.5)),
            ),
            TranslationTuple(
                "wvel", "FC", 3,
                InterpretationRule(SignalEncoding(16, 16)),
            ),
        )
    )


class TestPreselection:
    def test_filters_to_relevant_keys(self, fig2_trace, wiper_catalog):
        k_pre = preselect(fig2_trace, wiper_catalog)
        rows = k_pre.collect()
        assert len(rows) == 2
        assert all(r[2] == "FC" and r[3] == 3 for r in rows)

    def test_channel_matters_not_just_id(self, fig2_trace, wiper_catalog):
        k_pre = preselect(fig2_trace, wiper_catalog)
        assert all(r[2] != "DC" for r in k_pre.collect())

    def test_requires_catalog_type(self, fig2_trace):
        with pytest.raises(TypeError):
            preselect(fig2_trace, ["not", "a", "catalog"])

    def test_ratio(self, fig2_trace, wiper_catalog):
        k_pre = preselect(fig2_trace, wiper_catalog)
        assert preselection_ratio(fig2_trace, k_pre) == 0.5

    def test_ratio_empty_trace(self, ctx, wiper_catalog):
        empty = ctx.empty_table(["t", "l", "b_id", "m_id", "m_info"])
        assert preselection_ratio(empty, empty) == 0.0


class TestJoin:
    def test_join_replicates_per_rule(self, fig2_trace, wiper_catalog, ctx):
        k_pre = preselect(fig2_trace, wiper_catalog)
        k_join = join_rules(k_pre, wiper_catalog.to_table(ctx))
        # 2 relevant messages x 2 rules = 4 rows (line 4 of Algorithm 1).
        assert k_join.count() == 4
        assert "u_info" in k_join.schema

    def test_missing_join_columns_detected(self, fig2_trace, ctx):
        bad = ctx.table_from_rows(["s_id", "u_info"], [("x", None)])
        with pytest.raises(ValueError):
            join_rules(fig2_trace, bad)


class TestInterpretation:
    def test_fig2_values(self, fig2_trace, wiper_catalog):
        """K_s must contain (2s, 45deg, wpos), (2s, 1, wvel), ..."""
        k_pre = preselect(fig2_trace, wiper_catalog)
        k_s = interpret(k_pre, wiper_catalog)
        rows = sorted(k_s.collect())
        assert k_s.columns == ["t", "v", "s_id", "b_id"]
        assert (2.0, 45.0, "wpos", "FC") in rows
        assert (2.0, 1, "wvel", "FC") in rows
        assert (2.5, 60.0, "wpos", "FC") in rows
        assert (2.5, 1, "wvel", "FC") in rows
        assert len(rows) == 4

    def test_u1_stage_adds_relevant_bytes(self, fig2_trace, wiper_catalog, ctx):
        k_pre = preselect(fig2_trace, wiper_catalog)
        k_join2 = extract_relevant_bytes(
            join_rules(k_pre, wiper_catalog.to_table(ctx))
        )
        l_rels = {
            (r_s_id, l_rel)
            for _t, _l, _b, _m, _mi, r_s_id, _u, l_rel in k_join2.collect()
        }
        assert ("wpos", (90).to_bytes(2, "little")) in l_rels
        assert ("wvel", (1).to_bytes(2, "little")) in l_rels

    def test_absent_sectioned_signals_dropped(self, ctx):
        from repro.protocols.someip import ConditionalLayout, OptionalSection

        layout = ConditionalLayout((OptionalSection(0, 2),))
        catalog = RuleCatalog(
            (
                TranslationTuple(
                    "wstat", "ETH", 212,
                    InterpretationRule(
                        SignalEncoding(0, 16), layout=layout, section_bit=0
                    ),
                ),
            )
        )
        present = layout.build_payload({0: (77).to_bytes(2, "little")})
        absent = layout.build_payload({})
        trace = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"],
            [(1.0, present, "ETH", 212, ()), (2.0, absent, "ETH", 212, ())],
        )
        k_s = interpret(preselect(trace, catalog), catalog)
        assert k_s.collect() == [(1.0, 77, "wstat", "ETH")]

    def test_multi_protocol_catalog(self, ctx, wiper_simulation):
        """Table 1: one U_rel combining CAN and LIN signals."""
        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos", "heat"])
        k_b = wiper_simulation.record_table(ctx, 3.0)
        k_s = interpret(preselect(k_b, catalog), catalog)
        signals = {r[2] for r in k_s.collect()}
        assert signals == {"wpos", "heat"}

    def test_simulated_values_match_ground_truth(self, ctx, wiper_simulation):
        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos", "wvel"]).restrict_channels(["FC"])
        k_b = wiper_simulation.record_table(ctx, 3.0)
        k_s = interpret(preselect(k_b, catalog), catalog).cache()
        wiper = db.message("FC", 3)
        for t, payload, b_id, m_id, _mi in k_b.collect():
            if b_id != "FC" or m_id != 3:
                continue
            truth = wiper.decode(payload)
            got = {
                r[2]: r[1]
                for r in k_s.filter(col("t") == t).collect()
            }
            assert got == {"wpos": truth["wpos"], "wvel": truth["wvel"]}

    def test_m_info_dependent_rule_in_pipeline(self, ctx):
        """End to end: the same payload bytes interpret only for rows
        whose m_info satisfies the rule's protocol-field precondition."""
        catalog = RuleCatalog(
            (
                TranslationTuple(
                    "note", "ETH", 99,
                    InterpretationRule(
                        SignalEncoding(0, 8),
                        required_info=(("message_type", 2),),
                    ),
                ),
            )
        )
        trace = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"],
            [
                (1.0, b"\x05", "ETH", 99, (("message_type", 2),)),
                (2.0, b"\x06", "ETH", 99, (("message_type", 0x81),)),
            ],
        )
        k_s = interpret(preselect(trace, catalog), catalog)
        assert k_s.collect() == [(1.0, 5, "note", "ETH")]

    def test_interpret_accepts_preloaded_table(self, fig2_trace, wiper_catalog, ctx):
        table = wiper_catalog.to_table(ctx)
        k_s = interpret(preselect(fig2_trace, wiper_catalog), table)
        assert k_s.count() == 4


class TestFusedInterpretation:
    def test_fused_matches_join_strategy(self, ctx, wiper_simulation):
        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos", "wvel", "heat", "belt"])
        k_b = wiper_simulation.record_table(ctx, 10.0)
        k_pre = preselect(k_b, catalog).cache()
        joined = sorted(interpret(k_pre, catalog, strategy="join").collect())
        fused = sorted(interpret(k_pre, catalog, strategy="fused").collect())
        assert fused == joined

    def test_fused_handles_absent_signals(self, ctx):
        from repro.protocols.someip import ConditionalLayout, OptionalSection

        layout = ConditionalLayout((OptionalSection(0, 2),))
        catalog = RuleCatalog(
            (
                TranslationTuple(
                    "opt", "ETH", 7,
                    InterpretationRule(
                        SignalEncoding(0, 16), layout=layout, section_bit=0
                    ),
                ),
            )
        )
        trace = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"],
            [
                (1.0, layout.build_payload({0: b"\x09\x00"}), "ETH", 7, ()),
                (2.0, layout.build_payload({}), "ETH", 7, ()),
            ],
        )
        k_s = interpret(trace, catalog, strategy="fused")
        assert k_s.collect() == [(1.0, 9, "opt", "ETH")]

    def test_fused_requires_rule_catalog(self, fig2_trace, wiper_catalog, ctx):
        table = wiper_catalog.to_table(ctx)
        with pytest.raises(ValueError):
            interpret(fig2_trace, table, strategy="fused")

    def test_unknown_strategy_rejected(self, fig2_trace, wiper_catalog):
        with pytest.raises(ValueError):
            interpret(fig2_trace, wiper_catalog, strategy="quantum")

    def test_fused_single_narrow_stage(self, ctx, wiper_simulation):
        """The fused plan contains no join (one narrow stage only)."""
        from repro.engine import plan as logical

        db = wiper_simulation.database
        catalog = db.translation_catalog(["wpos"])
        k_b = wiper_simulation.record_table(ctx, 2.0)
        k_s = interpret(preselect(k_b, catalog), catalog, strategy="fused")

        def contains_join(node):
            if isinstance(node, logical.Join):
                return True
            return any(contains_join(c) for c in node.children())

        assert not contains_join(k_s.plan)


class TestBatchInterpretation:
    """The columnar batch forms of u_1/u_2 equal their row forms."""

    def test_u1_batch_matches_rowwise(self, wiper_catalog):
        from repro.core.interpretation import _U1

        rules = [u.rule for u in wiper_catalog] * 3
        payloads = [
            (90).to_bytes(2, "little") + (i).to_bytes(2, "little")
            for i in range(len(rules))
        ]
        u1 = _U1()
        assert u1.batch_call(payloads, rules) == [
            u1(payload, rule) for payload, rule in zip(payloads, rules)
        ]

    def test_u2_batch_matches_rowwise(self, wiper_catalog):
        from repro.core.interpretation import _U2

        rules = [u.rule for u in wiper_catalog] * 3
        l_rels = [(2 * i).to_bytes(2, "little") for i in range(len(rules))]
        m_infos = [()] * len(rules)
        u2 = _U2()
        assert u2.batch_call(l_rels, m_infos, rules) == [
            u2(l_rel, m_info, rule)
            for l_rel, m_info, rule in zip(l_rels, m_infos, rules)
        ]

    def test_columnar_pipeline_matches_interpreted(
        self, fig2_trace, wiper_catalog, ctx
    ):
        from repro.engine import EngineContext
        from repro.engine.executor import SerialExecutor

        expected = sorted(
            interpret(preselect(fig2_trace, wiper_catalog), wiper_catalog)
            .collect()
        )
        with SerialExecutor(
            compile_kernels=True, columnar_kernels=True
        ) as executor:
            columnar_ctx = EngineContext(executor)
            trace = columnar_ctx.table_from_rows(
                ["t", "l", "b_id", "m_id", "m_info"],
                fig2_trace.collect(),
            )
            actual = sorted(
                interpret(preselect(trace, wiper_catalog), wiper_catalog)
                .collect()
            )
        assert actual == expected
