"""Satellite: truncated payloads fail identically across the matrix.

Every executor/optimizer/layout combo of the differential oracle must
surface a truncated frame as the same :class:`ShortPayloadError` (raise
mode) and produce the same interpreted rows (skip/keep modes), for both
interpretation strategies. Pre-fix, the interpreted row path raised
``CodecError``, the compiled path ``ValueError`` and the SOME/IP path
``SomeIpError`` -- three spellings of one transport defect.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TRUNCATED,
    InterpretationRule,
    RuleCatalog,
    TranslationTuple,
    interpret,
)
from repro.engine import EngineContext
from repro.engine.errors import EngineError
from repro.protocols import ShortPayloadError, SignalEncoding
from repro.testing.oracle import DEFAULT_COMBOS, REFERENCE_COMBO

ALL_COMBOS = (REFERENCE_COMBO,) + DEFAULT_COMBOS
K_PRE_COLUMNS = ["t", "l", "b_id", "m_id", "m_info"]

#: Two healthy 4-byte wiper frames around one truncated 1-byte frame.
ROWS = [
    (2.0, (90).to_bytes(2, "little") + (1).to_bytes(2, "little"),
     "FC", 3, ()),
    (2.5, b"\x2d", "FC", 3, ()),
    (3.0, (120).to_bytes(2, "little") + (1).to_bytes(2, "little"),
     "FC", 3, ()),
]


def _catalog():
    return RuleCatalog((
        TranslationTuple(
            "wpos", "FC", 3,
            InterpretationRule(SignalEncoding(0, 16, scale=0.5)),
        ),
        TranslationTuple(
            "wvel", "FC", 3,
            InterpretationRule(SignalEncoding(16, 16)),
        ),
    ))


def _short_payload_cause(exc):
    """Walk an engine error's cause chain to the ShortPayloadError."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        if isinstance(exc, ShortPayloadError):
            return exc
        exc = getattr(exc, "cause", None) or exc.__cause__
    return None


def _run_all_modes(combo):
    """Interpret ROWS under *combo*; returns per-mode observations."""
    out = {}
    executor = combo.build(3)
    try:
        ctx = EngineContext(executor)
        catalog = _catalog()
        for strategy in ("join", "fused"):
            k_pre = ctx.table_from_rows(K_PRE_COLUMNS, list(ROWS))
            with pytest.raises((ShortPayloadError, EngineError)) as info:
                interpret(
                    k_pre, catalog, context=ctx, strategy=strategy,
                ).collect()
            cause = (
                info.value
                if isinstance(info.value, ShortPayloadError)
                else _short_payload_cause(info.value)
            )
            out["raise", strategy] = cause
            for mode in ("skip", "keep"):
                rows = interpret(
                    k_pre, catalog, context=ctx, strategy=strategy,
                    on_short=mode,
                ).collect()
                out[mode, strategy] = sorted(rows, key=repr)
    finally:
        executor.close()
    return out


@pytest.fixture(scope="module")
def reference():
    return _run_all_modes(REFERENCE_COMBO)


@pytest.mark.parametrize(
    "combo", DEFAULT_COMBOS, ids=[c.name for c in DEFAULT_COMBOS]
)
def test_combo_matches_reference(combo, reference):
    observed = _run_all_modes(combo)
    for strategy in ("join", "fused"):
        ref_error = reference["raise", strategy]
        got_error = observed["raise", strategy]
        assert isinstance(ref_error, ShortPayloadError)
        assert isinstance(got_error, ShortPayloadError), (
            "{}: {} strategy surfaced no ShortPayloadError".format(
                combo.name, strategy
            )
        )
        assert str(got_error) == str(ref_error)
        for mode in ("skip", "keep"):
            assert observed[mode, strategy] == reference[mode, strategy]


def test_reference_modes_are_substantive(reference):
    for strategy in ("join", "fused"):
        # skip keeps the 2 healthy frames x 2 rules.
        skipped = reference["skip", strategy]
        assert len(skipped) == 4
        assert all(row[1] is not TRUNCATED for row in skipped)
        # keep adds one TRUNCATED sentinel row per (frame, rule) pair.
        kept = reference["keep", strategy]
        assert len(kept) == 6
        assert sum(1 for row in kept if row[1] is TRUNCATED) == 2


def test_strategies_agree_with_each_other(reference):
    assert reference["skip", "join"] == reference["skip", "fused"]
    assert str(reference["raise", "join"]) == str(reference["raise", "fused"])
