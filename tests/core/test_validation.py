"""Parameterization validation."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    ExtensionSet,
    GapExtension,
    PipelineConfig,
    UnchangedValue,
    UnchangedWithinCycle,
)
from repro.core.validation import ERROR, WARNING, validate_config


def make_config(db, signals=("wpos", "wvel"), constraints=(), extensions=(),
                dedup=True):
    return PipelineConfig(
        catalog=db.translation_catalog(list(signals)),
        constraints=ConstraintSet(tuple(constraints)),
        extensions=ExtensionSet(tuple(extensions)),
        dedup_channels=dedup,
    )


class TestCatalogCrossChecks:
    def test_clean_config_passes(self, wiper_database):
        config = make_config(
            wiper_database,
            constraints=[Constraint("wvel", True, (UnchangedWithinCycle(0.1),))],
        )
        result = validate_config(config, wiper_database)
        assert result.ok()
        assert not result.findings

    def test_constraint_on_unextracted_signal_is_error(self, wiper_database):
        config = make_config(
            wiper_database,
            signals=("wpos",),
            constraints=[Constraint("heat", True, (UnchangedValue(),))],
        )
        result = validate_config(config)
        assert not result.ok()
        assert any(f.subject == "heat" for f in result.errors)

    def test_extension_on_unextracted_signal_is_error(self, wiper_database):
        config = make_config(
            wiper_database, signals=("wpos",),
            extensions=[GapExtension("belt")],
        )
        result = validate_config(config)
        assert any(
            f.severity == ERROR and f.subject == "belt"
            for f in result.findings
        )

    def test_duplicate_constraints_warn(self, wiper_database):
        config = make_config(
            wiper_database,
            constraints=[
                Constraint("wvel", True, (UnchangedValue(),)),
                Constraint("wvel", True, (UnchangedWithinCycle(0.1),)),
            ],
        )
        result = validate_config(config)
        assert result.ok()  # warnings only
        assert any(f.severity == WARNING for f in result.findings)


class TestDatabaseCrossChecks:
    def test_cycle_mismatch_warns(self, wiper_database):
        config = make_config(
            wiper_database,
            constraints=[
                # Documented wiper cycle is 0.1 s; 5 s is off by 50x.
                Constraint("wvel", True, (UnchangedWithinCycle(5.0),)),
            ],
        )
        result = validate_config(config, wiper_database)
        assert any("far from documented" in f.message for f in result.warnings)

    def test_matching_cycle_silent(self, wiper_database):
        config = make_config(
            wiper_database,
            constraints=[Constraint("wvel", True, (UnchangedWithinCycle(0.15),))],
        )
        assert not validate_config(config, wiper_database).findings

    def test_dedup_disabled_with_duplicated_signals_warns(
        self, wiper_simulation
    ):
        db = wiper_simulation.database  # wpos exists on FC and BC
        config = PipelineConfig(
            catalog=db.translation_catalog(["wpos"]),
            dedup_channels=False,
        )
        result = validate_config(config, db)
        assert any("processed repeatedly" in f.message for f in result.warnings)

    def test_raise_on_error(self, wiper_database):
        config = make_config(
            wiper_database, signals=("wpos",),
            constraints=[Constraint("ghost", True, (UnchangedValue(),))],
        )
        with pytest.raises(ValueError):
            validate_config(config).raise_on_error()

    def test_raise_on_error_passes_clean(self, wiper_database):
        config = make_config(wiper_database)
        validate_config(config, wiper_database).raise_on_error()
