"""Formal model (Sec. 2) and translation tuples / catalogs (Sec. 3.1)."""

import pickle

import pytest

from repro.core import (
    ABSENT,
    Alphabet,
    InterpretationRule,
    MessageInstance,
    MessageType,
    RuleCatalog,
    SignalInstance,
    SignalType,
    TranslationTuple,
)
from repro.core.model import message_instances_from_k_s
from repro.core.rules import RuleError
from repro.protocols import ShortPayloadError, SignalEncoding
from repro.protocols.someip import ConditionalLayout, OptionalSection


class TestSignalType:
    def test_valid(self):
        s = SignalType("wpos", unit="deg")
        assert s.kind == "functional"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SignalType("")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            SignalType("x", kind="odd")


class TestMessageType:
    def test_paper_example(self):
        """m' = (S', m_id=3, b_id=FC) with S' = (wpos, wvel)."""
        m = MessageType(("wpos", "wvel"), 3, "FC")
        assert m.carries("wpos")
        assert not m.carries("speed")

    def test_duplicate_signals_rejected(self):
        with pytest.raises(ValueError):
            MessageType(("a", "a"), 1, "FC")


class TestMessageInstance:
    def test_signal_values(self):
        inst = MessageInstance(
            2.0,
            (SignalInstance(45.0, "wpos"), SignalInstance(1, "wvel")),
            3,
            "FC",
        )
        assert inst.signal_values() == {"wpos": 45.0, "wvel": 1}


class TestAlphabet:
    def test_membership_and_lookup(self):
        sigma = Alphabet((SignalType("a"), SignalType("b")))
        assert "a" in sigma
        assert sigma.get("b").signal_id == "b"
        assert len(sigma) == 2

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Alphabet((SignalType("a"), SignalType("a")))

    def test_restrict(self):
        sigma = Alphabet((SignalType("a"), SignalType("b"), SignalType("c")))
        sub = sigma.restrict(["c", "a"])
        assert sub.ids() == ("a", "c")

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            Alphabet(()).get("x")


class TestKsToKnCorrespondence:
    def test_grouping(self):
        rows = [
            (2.0, 45.0, "wpos", "FC", 3),
            (2.0, 1, "wvel", "FC", 3),
            (2.5, 60.0, "wpos", "FC", 3),
        ]
        instances = message_instances_from_k_s(rows)
        assert len(instances) == 2
        assert instances[0].signal_values() == {"wpos": 45.0, "wvel": 1}


class TestInterpretationRule:
    def test_u1_extracts_relevant_bytes(self):
        """Fig. 2: wvel lives in bytes 3-4 (0-based 2-3)."""
        rule = InterpretationRule(SignalEncoding(16, 16))
        assert rule.relevant_bytes() == (2, 3)
        assert rule.extract_relevant(b"\x5a\x01\x07\x00") == b"\x07\x00"

    def test_u2_evaluates_relative(self):
        rule = InterpretationRule(SignalEncoding(16, 16))
        assert rule.evaluate(b"\x07\x00") == 7

    def test_interpret_composes(self):
        rule = InterpretationRule(SignalEncoding(0, 16, scale=0.5))
        payload = (90).to_bytes(2, "little") + b"\x00\x00"
        assert rule.interpret(payload) == 45.0

    def test_short_payload_raises(self):
        rule = InterpretationRule(SignalEncoding(16, 16))
        with pytest.raises(ShortPayloadError):
            rule.extract_relevant(b"\x00\x01")

    def test_sectioned_signal_absent(self):
        layout = ConditionalLayout((OptionalSection(0, 2),))
        rule = InterpretationRule(
            SignalEncoding(0, 16), layout=layout, section_bit=0
        )
        assert rule.interpret(b"\x00") is ABSENT

    def test_sectioned_signal_present(self):
        layout = ConditionalLayout((OptionalSection(0, 2),))
        rule = InterpretationRule(
            SignalEncoding(0, 16), layout=layout, section_bit=0
        )
        payload = layout.build_payload({0: (500).to_bytes(2, "little")})
        assert rule.interpret(payload) == 500

    def test_section_without_layout_rejected(self):
        with pytest.raises(RuleError):
            InterpretationRule(SignalEncoding(0, 8), section_bit=0)

    def test_describe_mentions_rule_and_bytes(self):
        rule = InterpretationRule(SignalEncoding(0, 16, scale=0.5))
        text = rule.describe()
        assert "0.5" in text and "rel.B" in text

    def test_required_info_gates_presence(self):
        """u_2 uses m_info: here the signal exists only in SOME/IP
        notifications (message_type 2), not in error responses."""
        rule = InterpretationRule(
            SignalEncoding(0, 8), required_info=(("message_type", 2),)
        )
        payload = b"\x2a"
        assert rule.interpret(payload, (("message_type", 2),)) == 42
        assert rule.interpret(payload, (("message_type", 0x81),)) is ABSENT
        assert rule.interpret(payload, ()) is ABSENT

    def test_required_info_multiple_fields(self):
        rule = InterpretationRule(
            SignalEncoding(0, 8),
            required_info=(("message_type", 2), ("interface_version", 1)),
        )
        good = (("message_type", 2), ("interface_version", 1))
        bad = (("message_type", 2), ("interface_version", 3))
        assert rule.interpret(b"\x07", good) == 7
        assert rule.interpret(b"\x07", bad) is ABSENT

    def test_no_required_info_ignores_m_info(self):
        rule = InterpretationRule(SignalEncoding(0, 8))
        assert rule.interpret(b"\x07", (("anything", 9),)) == 7

    def test_rule_pickles(self):
        rule = InterpretationRule(SignalEncoding(8, 8, scale=2.0))
        clone = pickle.loads(pickle.dumps(rule))
        assert clone.interpret(b"\x00\x03") == 6


class TestRuleCatalog:
    @pytest.fixture
    def catalog(self):
        return RuleCatalog(
            (
                TranslationTuple(
                    "wpos", "FC", 3, InterpretationRule(SignalEncoding(0, 16, scale=0.5))
                ),
                TranslationTuple(
                    "wvel", "FC", 3, InterpretationRule(SignalEncoding(16, 16))
                ),
                TranslationTuple(
                    "wtype", "K-LIN", 11, InterpretationRule(SignalEncoding(0, 8, offset=2))
                ),
            )
        )

    def test_duplicate_tuple_rejected(self):
        rule = InterpretationRule(SignalEncoding(0, 8))
        with pytest.raises(RuleError):
            RuleCatalog(
                (
                    TranslationTuple("a", "FC", 1, rule),
                    TranslationTuple("a", "FC", 1, rule),
                )
            )

    def test_select_builds_u_comb(self, catalog):
        u_comb = catalog.select(["wpos", "wvel"])
        assert set(u_comb.signal_ids()) == {"wpos", "wvel"}

    def test_select_unknown_rejected(self, catalog):
        with pytest.raises(RuleError):
            catalog.select(["ghost"])

    def test_preselection_keys(self, catalog):
        assert catalog.preselection_keys() == frozenset(
            {(3, "FC"), (11, "K-LIN")}
        )

    def test_restrict_channels(self, catalog):
        sub = catalog.restrict_channels(["K-LIN"])
        assert sub.signal_ids() == ("wtype",)

    def test_to_table_layout(self, catalog, ctx):
        table = catalog.to_table(ctx)
        assert table.columns == ["s_id", "b_id", "m_id", "u_info"]
        assert table.count() == 3

    def test_get(self, catalog):
        assert len(catalog.get("wpos")) == 1
        with pytest.raises(KeyError):
            catalog.get("ghost")

    def test_merge(self, catalog):
        extra = RuleCatalog(
            (
                TranslationTuple(
                    "wstat", "ETH", 212, InterpretationRule(SignalEncoding(0, 8))
                ),
            )
        )
        merged = catalog.merge(extra)
        assert len(merged) == 4


class TestCompiledRulePaths:
    """compile_extractor/compile_evaluator mirror the row-wise methods.

    These closures are what the columnar batch interpretation runs, so
    every presence mechanism (sections, mux, required_info) and every
    error path must behave identically to extract_relevant/evaluate.
    """

    def test_extractor_plain_parity(self):
        rule = InterpretationRule(SignalEncoding(16, 16))
        payload = b"\x5a\x01\x07\x00"
        assert rule.compile_extractor()(payload) == \
            rule.extract_relevant(payload)

    def test_extractor_short_payload_raises_same_error(self):
        rule = InterpretationRule(SignalEncoding(16, 16))
        with pytest.raises(ShortPayloadError) as compiled:
            rule.compile_extractor()(b"\x00\x01")
        with pytest.raises(ShortPayloadError) as reference:
            rule.extract_relevant(b"\x00\x01")
        assert str(compiled.value) == str(reference.value)

    def test_extractor_sectioned_absent_and_present(self):
        layout = ConditionalLayout((OptionalSection(0, 2),))
        rule = InterpretationRule(
            SignalEncoding(0, 16), layout=layout, section_bit=0
        )
        extract = rule.compile_extractor()
        assert extract(b"\x00") is ABSENT
        payload = layout.build_payload({0: (500).to_bytes(2, "little")})
        assert extract(payload) == rule.extract_relevant(payload)

    def test_extractor_mux_gates_presence(self):
        rule = InterpretationRule(
            SignalEncoding(8, 8),
            mux_selector=SignalEncoding(0, 8),
            mux_value=2,
        )
        extract = rule.compile_extractor()
        assert extract(b"\x02\x2a") == rule.extract_relevant(b"\x02\x2a")
        assert extract(b"\x03\x2a") is ABSENT

    def test_evaluator_parity_with_required_info(self):
        rule = InterpretationRule(
            SignalEncoding(0, 8), required_info=(("message_type", 2),)
        )
        evaluate = rule.compile_evaluator()
        for m_info in ((("message_type", 2),), (("message_type", 3),), ()):
            assert evaluate(b"\x2a", m_info) == rule.evaluate(b"\x2a", m_info)
        assert evaluate(ABSENT, ()) is ABSENT

    def test_evaluator_uses_relative_encoding(self):
        # Non-zero byte span: evaluate sees the *sliced* bytes.
        rule = InterpretationRule(SignalEncoding(16, 16, scale=0.5))
        l_rel = rule.extract_relevant(b"\x00\x00\x5a\x00")
        assert rule.compile_evaluator()(l_rel) == rule.evaluate(l_rel) == 45.0
