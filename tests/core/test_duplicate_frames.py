"""Regression suite: exact duplicate frames must be absorbed, not counted.

Gateways replay frames byte-for-byte (same timestamp, same payload,
same channel). Pre-fix, those replays leaked through interpretation
into the reduction layer, where unchanged-value constraints and the
merged incremental state double-counted them. The fix deduplicates the
interpreted signal table -- ``distinct()`` in the whole-trace pipeline,
a per-window seen-set in the incremental runner -- and both paths must
agree with the duplicate-free run exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.incremental import IncrementalRunner, split_into_windows
from repro.core.params import config_from_dict, config_to_dict
from repro.core.pipeline import PreprocessingPipeline
from repro.engine import EngineContext
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.testing.generator import generate_journey_case
from repro.vehicle.corruption import GatewayDuplicate, corrupt

DUP_COUNTER = "pipeline.interpret.exact_duplicates_dropped"


@pytest.fixture(scope="module")
def case():
    return generate_journey_case(random.Random(42))


@pytest.fixture(scope="module")
def duplicated(case):
    records, log = corrupt(
        case.records, [GatewayDuplicate(rate=0.3)], seed=7
    )
    assert len(log) > 0
    return tuple(records)


@pytest.fixture(scope="module")
def ctx():
    return EngineContext.serial(default_parallelism=3)


def _run(ctx, case, records):
    config = config_from_dict(case.params, case.database)
    k_b = ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), list(records))
    return PreprocessingPipeline(config).run(k_b)


def _rows(table):
    return sorted(table.collect(), key=repr)


class TestPipelineDedup:
    def test_replays_do_not_change_output(self, ctx, case, duplicated):
        baseline = _run(ctx, case, case.records)
        lossy = _run(ctx, case, duplicated)
        assert _rows(lossy.k_s) == _rows(baseline.k_s)
        assert _rows(lossy.r_out) == _rows(baseline.r_out)
        assert lossy.counts["k_s"] == baseline.counts["k_s"]

    def test_duplicates_are_counted(self, ctx, case, duplicated):
        result = _run(ctx, case, duplicated)
        dropped = result.report.metrics.counters()[DUP_COUNTER]
        assert dropped == len(duplicated) - len(case.records)

    def test_clean_trace_counts_zero(self, ctx, case):
        result = _run(ctx, case, case.records)
        assert result.report.metrics.counters()[DUP_COUNTER] == 0

    def test_dedup_can_be_disabled(self, ctx, case, duplicated):
        config = config_from_dict(case.params, case.database)
        import dataclasses

        config = dataclasses.replace(config, drop_exact_duplicates=False)
        k_b = ctx.table_from_rows(
            list(BYTE_RECORD_COLUMNS), list(duplicated)
        )
        kept = PreprocessingPipeline(config).run(k_b)
        baseline = _run(ctx, case, case.records)
        assert kept.counts["k_s"] > baseline.counts["k_s"]
        assert DUP_COUNTER not in kept.report.metrics.counters()


class TestIncrementalDedup:
    def test_windowed_matches_whole_with_duplicates(
        self, ctx, case, duplicated
    ):
        config = config_from_dict(case.params, case.database)
        whole = _rows(_run(ctx, case, duplicated).r_out)
        runner = IncrementalRunner(config)
        for window in split_into_windows(list(duplicated), 0.7):
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
            )
        assert runner.exact_duplicates_dropped > 0
        assert _rows(runner.finalize(ctx).r_out) == whole

    def test_replay_straddling_a_window_boundary(self, ctx, case):
        """The replayed copy shares the original's timestamp, so the
        stable-by-time window split must land both copies in the same
        window; one seen-set then absorbs the pair."""
        records = list(case.records)
        records.append(records[0])  # replay of the very first frame
        config = config_from_dict(case.params, case.database)
        windows = split_into_windows(records, 0.5)
        first = windows[0]
        assert first.count(records[0]) == 2
        runner = IncrementalRunner(config)
        for window in windows:
            runner.process_window(
                ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
            )
        assert runner.exact_duplicates_dropped >= 1
        baseline = _run(ctx, case, case.records)
        assert _rows(runner.finalize(ctx).r_out) == _rows(baseline.r_out)


class TestConfigPlumbing:
    def test_round_trip_defaults_are_implicit(self, case):
        config = config_from_dict(case.params, case.database)
        assert config.drop_exact_duplicates is True
        document = config_to_dict(config)
        assert "drop_exact_duplicates" not in document
        assert "short_payload" not in document

    def test_round_trip_preserves_overrides(self, case):
        params = dict(case.params)
        params["drop_exact_duplicates"] = False
        params["short_payload"] = "skip"
        config = config_from_dict(params, case.database)
        assert config.drop_exact_duplicates is False
        assert config.short_payload == "skip"
        document = config_to_dict(config)
        assert document["drop_exact_duplicates"] is False
        assert document["short_payload"] == "skip"
