"""Docstring examples must stay executable."""

import doctest

import pytest

import repro.engine.context
import repro.engine.expressions
import repro.engine.schema
import repro.engine.table

MODULES = [
    repro.engine.schema,
    repro.engine.expressions,
    repro.engine.table,
    repro.engine.context,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0  # every listed module has runnable examples
