"""CLI subcommands, driven in-process through main()."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "j0.trc"
    code, _out = run_cli(
        "simulate", "--dataset", "SYN", "--duration", "10", "--out", str(path)
    )
    assert code == 0
    return path


class TestSimulate:
    def test_writes_trace(self, tmp_path):
        path = tmp_path / "t.trc"
        code, out = run_cli(
            "simulate", "--dataset", "SYN", "--duration", "5",
            "--out", str(path),
        )
        assert code == 0
        assert path.is_file()
        assert "records" in out

    def test_binary_format_by_suffix(self, tmp_path):
        path = tmp_path / "t.btrc"
        run_cli(
            "simulate", "--dataset", "SYN", "--duration", "5",
            "--out", str(path),
        )
        assert path.read_bytes()[:8] == b"IVNTRACE"

    def test_journey_seed_changes_trace(self, tmp_path):
        a, b = tmp_path / "a.trc", tmp_path / "b.trc"
        run_cli("simulate", "--dataset", "SYN", "--duration", "5",
                "--out", str(a))
        run_cli("simulate", "--dataset", "SYN", "--duration", "5",
                "--journey", "1", "--out", str(b))
        assert a.read_text() != b.read_text()


class TestStats:
    def test_reports_channels(self, trace_file):
        code, out = run_cli("stats", "--trace", str(trace_file))
        assert code == 0
        assert "rows" in out
        assert "channel FC" in out
        assert "channel K-LIN" in out


class TestExportDbc:
    def test_writes_one_file_per_channel(self, tmp_path):
        code, out = run_cli(
            "export-dbc", "--dataset", "SYN", "--out-dir", str(tmp_path)
        )
        assert code == 0
        files = sorted(p.name for p in tmp_path.glob("*.dbc"))
        assert len(files) == 5
        from repro.network.dbcio import load_database

        db = load_database(tmp_path / files[0])
        assert len(db) > 0


class TestExtract:
    def test_extracts_into_store(self, trace_file, tmp_path):
        store = tmp_path / "store"
        code, out = run_cli(
            "extract", "--dataset", "SYN", "--trace", str(trace_file),
            "--signals", "syn_num_000,syn_num_001",
            "--store", str(store),
        )
        assert code == 0
        assert "extracted" in out
        from repro.engine import EngineContext, TableStore

        loaded = TableStore(store).read(EngineContext.serial(), "extraction")
        signals = {r[2] for r in loaded.collect()}
        assert signals == {"syn_num_000", "syn_num_001"}


class TestPipeline:
    def test_default_parameterization(self, trace_file, tmp_path):
        output = tmp_path / "state.md"
        code, out = run_cli(
            "pipeline", "--dataset", "SYN", "--trace", str(trace_file),
            "--max-rows", "3", "--output", str(output),
        )
        assert code == 0
        assert "classification:" in out
        assert "| t |" in out
        assert output.is_file()

    def test_report_flag_writes_valid_schema(self, trace_file, tmp_path):
        report_path = tmp_path / "run-report.json"
        code, out = run_cli(
            "pipeline", "--dataset", "SYN", "--trace", str(trace_file),
            "--max-rows", "2", "--report", str(report_path),
        )
        assert code == 0
        assert "run report written to" in out
        from repro.obs import validate_report

        payload = validate_report(report_path.read_text())
        assert payload["meta"]["dataset"] == "SYN"
        span_names = {s["name"] for s in payload["spans"]}
        assert span_names >= {
            "preselect", "interpret", "split", "reduce", "extend",
            "branch", "merge",
        }
        assert payload["counters"]["pipeline.merge.rows_out"] > 0
        assert "executor.retries" in payload["counters"]

    def test_with_params_file(self, trace_file, tmp_path):
        params = {
            "signals": ["syn_num_000"],
            "constraints": [],
            "branch": {"sax_alphabet": 3},
        }
        params_path = tmp_path / "p.json"
        params_path.write_text(json.dumps(params))
        code, out = run_cli(
            "pipeline", "--dataset", "SYN", "--trace", str(trace_file),
            "--params", str(params_path), "--max-rows", "2",
        )
        assert code == 0
        assert "syn_num_000" in out
        assert "syn_num_001" not in out


class TestProfile:
    def test_profiles_all_signals(self, trace_file):
        code, out = run_cli(
            "profile", "--dataset", "SYN", "--trace", str(trace_file)
        )
        assert code == 0
        assert "rate/s" in out
        assert "syn_num_000" in out
        assert "alpha" in out

    def test_sort_by_signal(self, trace_file):
        code, out = run_cli(
            "profile", "--dataset", "SYN", "--trace", str(trace_file),
            "--sort", "signal",
        )
        assert code == 0
        lines = [l for l in out.splitlines()[2:] if l.strip()]
        names = [l.split()[0] for l in lines]
        assert names == sorted(names)


class TestReport:
    def test_report_to_stdout(self, trace_file):
        code, out = run_cli(
            "report", "--dataset", "SYN", "--trace", str(trace_file)
        )
        assert code == 0
        assert "# Verification report" in out
        assert "## Signals" in out

    def test_report_to_file(self, trace_file, tmp_path):
        path = tmp_path / "report.md"
        code, out = run_cli(
            "report", "--dataset", "SYN", "--trace", str(trace_file),
            "--out", str(path), "--state-rows", "3",
        )
        assert code == 0
        text = path.read_text()
        assert "## State representation (first 3 rows)" in text


class TestShowParams:
    def test_prints_valid_starter_document(self):
        code, out = run_cli("show-params", "--dataset", "SYN")
        assert code == 0
        document = json.loads(out)
        assert len(document["signals"]) == 13
        assert all(
            c["type"] == "unchanged_within_cycle"
            for c in document["constraints"]
        )


class TestDiscover:
    def test_happy_path_writes_loadable_dbc_and_valid_report(
        self, trace_file, tmp_path
    ):
        out_dir = tmp_path / "recovered"
        report_path = tmp_path / "report.json"
        code, out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(out_dir),
            "--dataset", "SYN", "--report", str(report_path),
        )
        assert code == 0
        assert "discovered" in out
        assert "translation tuples" in out
        assert "vs SYN ground truth" in out
        from repro.network.dbcio import load_database

        dbc_files = sorted(out_dir.glob("recovered_*.dbc"))
        assert dbc_files
        db = load_database(dbc_files[0])
        assert len(db) > 0
        from repro.discovery import validate_discovery_report

        payload = validate_discovery_report(report_path.read_text())
        assert payload["meta"]["trace"] == str(trace_file)
        assert payload["counters"]["discovery.messages"] > 0

    def test_coverage_flag_runs_the_pipeline(self, trace_file, tmp_path):
        code, out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(tmp_path / "d"),
            "--dataset", "SYN", "--coverage",
        )
        assert code == 0
        assert "pipeline coverage:" in out

    def test_report_without_dataset_is_unscored(
        self, trace_file, tmp_path
    ):
        report_path = tmp_path / "report.json"
        code, out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(tmp_path / "d"),
            "--report", str(report_path),
        )
        assert code == 0
        from repro.discovery import validate_discovery_report

        payload = validate_discovery_report(report_path.read_text())
        assert payload["messages"] == []
        assert payload["totals"]["f1"] == 0.0

    def test_partial_database_merges(self, trace_file, tmp_path):
        truth_dir = tmp_path / "truth"
        run_cli("export-dbc", "--dataset", "SYN",
                "--out-dir", str(truth_dir))
        code, out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(tmp_path / "d"),
            "--partial-dbc", str(truth_dir / "syn_FC.dbc"),
        )
        assert code == 0
        assert "merged partial database" in out

    def test_missing_trace_errors(self, tmp_path, capsys):
        code, _out = run_cli(
            "discover", "--trace", str(tmp_path / "ghost.trc"),
            "--out-dir", str(tmp_path / "d"),
        )
        assert code == 2
        assert "error: trace:" in capsys.readouterr().err

    def test_corrupt_trace_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_text("this is not a trace\n")
        code, _out = run_cli(
            "discover", "--trace", str(bad),
            "--out-dir", str(tmp_path / "d"),
        )
        assert code == 2
        assert "error: trace:" in capsys.readouterr().err

    def test_conflicting_partial_databases_error(
        self, trace_file, tmp_path, capsys
    ):
        truth_dir = tmp_path / "truth"
        run_cli("export-dbc", "--dataset", "SYN",
                "--out-dir", str(truth_dir))
        fc = str(truth_dir / "syn_FC.dbc")
        code, _out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(tmp_path / "d"),
            "--partial-dbc", fc, "--partial-dbc", fc,
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error: dbc: conflicting partial databases" in err

    def test_bad_min_frames_errors(self, trace_file, tmp_path, capsys):
        code, _out = run_cli(
            "discover", "--trace", str(trace_file),
            "--out-dir", str(tmp_path / "d"), "--min-frames", "1",
        )
        assert code == 2
        assert "error: params:" in capsys.readouterr().err


class TestDbcDiff:
    @pytest.fixture(scope="class")
    def truth_dir(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("dbc")
        code, _out = run_cli(
            "export-dbc", "--dataset", "SYN", "--out-dir", str(out_dir)
        )
        assert code == 0
        return out_dir

    def test_identical_databases_exit_zero(self, truth_dir):
        fc = str(truth_dir / "syn_FC.dbc")
        code, out = run_cli("dbc", "diff", "--actual", fc,
                            "--recovered", fc)
        assert code == 0
        assert "databases are structurally identical" in out

    def test_differing_databases_exit_one(self, truth_dir):
        code, out = run_cli(
            "dbc", "diff",
            "--actual", str(truth_dir / "syn_FC.dbc"),
            "--recovered", str(truth_dir / "syn_BC.dbc"),
        )
        assert code == 1
        assert "diff:" in out

    def test_missing_file_errors(self, truth_dir, tmp_path, capsys):
        code, _out = run_cli(
            "dbc", "diff",
            "--actual", str(truth_dir / "syn_FC.dbc"),
            "--recovered", str(tmp_path / "ghost.dbc"),
        )
        assert code == 2
        assert "error: dbc:" in capsys.readouterr().err


class TestStream:
    @pytest.fixture(scope="class")
    def short_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("stream") / "v0.trc"
        code, _out = run_cli(
            "simulate", "--dataset", "SYN", "--duration", "3",
            "--out", str(path),
        )
        assert code == 0
        return path

    def test_serve_drains_and_finalizes(self, short_trace, tmp_path):
        code, out = run_cli(
            "stream", "serve", "--dataset", "SYN",
            "--run-dir", str(tmp_path / "run"),
            "--traces", str(short_trace), "--finalize",
        )
        assert code == 0
        assert "session v0:" in out
        assert "drained=yes" in out
        assert "final  : v0 ->" in out

    def test_kill_and_resume_roundtrip(self, short_trace, tmp_path):
        run_dir = tmp_path / "run"
        code, out = run_cli(
            "stream", "serve", "--dataset", "SYN",
            "--run-dir", str(run_dir), "--traces", str(short_trace),
            "--max-frames", "200", "--checkpoint-every", "50",
        )
        assert code == 1
        assert "killed" in out
        assert "drained=no" in out

        code, out = run_cli("stream", "status", "--run-dir", str(run_dir))
        assert code == 0
        assert "session v0:" in out
        assert "drained=no" in out

        code, out = run_cli(
            "stream", "serve", "--dataset", "SYN",
            "--run-dir", str(run_dir), "--traces", str(short_trace),
            "--checkpoint-every", "50", "--finalize",
        )
        assert code == 0
        assert "resumed: 1 sessions from checkpoints" in out
        assert "drained=yes" in out

        code, out = run_cli("stream", "status", "--run-dir", str(run_dir))
        assert code == 0
        assert "drained=yes" in out

    def test_status_on_non_stream_directory_errors(self, tmp_path, capsys):
        code, _out = run_cli("stream", "status", "--run-dir", str(tmp_path))
        assert code == 2
        assert "error: stream:" in capsys.readouterr().err

    def test_serve_missing_trace_errors(self, tmp_path, capsys):
        code, _out = run_cli(
            "stream", "serve", "--dataset", "SYN",
            "--run-dir", str(tmp_path / "run"),
            "--traces", str(tmp_path / "ghost.trc"),
        )
        assert code == 2
        assert "error: trace:" in capsys.readouterr().err

    def test_serve_rejects_bad_window(self, short_trace, tmp_path, capsys):
        code, _out = run_cli(
            "stream", "serve", "--dataset", "SYN",
            "--run-dir", str(tmp_path / "run"),
            "--traces", str(short_trace), "--window", "0",
        )
        assert code == 2
        assert "error: stream:" in capsys.readouterr().err
