"""Property: noise-free single-signal messages are recovered exactly.

For every SignalEncoding width / byte-order / signedness combination,
a full-range ramp through one signal must hand back the exact bit
boundary from the tokenizer and the exact encoding (significance order
plus signedness) from inference. Widths above 8 bits are byte-aligned
(the tokenizer's cross-byte chains have no sub-byte anchor without
neighbouring signals); sub-byte widths float anywhere within a byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import MessageObservations, infer_signals, tokenize
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding

PAYLOAD_LENGTH = 3
MAX_WIDTH = 12


@st.composite
def encoding_case(draw):
    signed = draw(st.booleans())
    width = draw(
        st.integers(min_value=2 if signed else 1, max_value=MAX_WIDTH)
    )
    order = draw(st.sampled_from([INTEL, MOTOROLA]))
    if width <= 8:
        byte = draw(st.integers(min_value=0, max_value=PAYLOAD_LENGTH - 1))
        offset = draw(st.integers(min_value=0, max_value=8 - width))
        low_bit = byte * 8 + offset
        start = low_bit if order == INTEL else low_bit + width - 1
    else:
        byte = draw(
            st.integers(
                min_value=0, max_value=PAYLOAD_LENGTH - 1 - (width - 1) // 8
            )
        )
        start = byte * 8 if order == INTEL else byte * 8 + 7
    return SignalEncoding(
        start_bit=start, bit_length=width, byte_order=order, signed=signed
    )


def value_series(encoding):
    """A full-range ramp: every bit of the signal is exercised."""
    width = encoding.bit_length
    count = max(2 ** width + 2, 20)
    if not encoding.signed:
        return [i % 2 ** width for i in range(count)]
    half = 2 ** (width - 1)
    anchor = 2 ** (width - 2)
    return [((i + anchor) % half) - anchor for i in range(count)]


def observations_for(encoding):
    observations = MessageObservations("FC", 0x10)
    for index, value in enumerate(value_series(encoding)):
        payload = bytearray(PAYLOAD_LENGTH)
        encoding.insert_raw(payload, value)
        observations.append(index * 0.01, bytes(payload))
    return observations


@given(encoding=encoding_case())
@settings(max_examples=60, deadline=None)
def test_property_single_signal_recovered_exactly(encoding):
    observations = observations_for(encoding)
    tokens = tokenize(observations.stats())
    assert len(tokens) == 1, "expected one token, got {}".format(
        [t.positions for t in tokens]
    )
    (token,) = tokens
    # Exact boundary, in exact significance order. byte_order itself is
    # not comparable for single-byte tokens (Intel and Motorola coincide
    # there and the tokenizer canonicalizes to Intel).
    assert list(token.positions) == list(encoding.bit_positions())
    (signal,) = infer_signals(observations, tokens)
    assert signal.signed == encoding.signed
    assert signal.bit_length == encoding.bit_length
    recovered = signal.encoding()
    assert list(recovered.bit_positions()) == list(encoding.bit_positions())
    assert recovered.signed == encoding.signed
