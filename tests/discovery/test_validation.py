"""Validation harness: observed boundaries, scoring and report schema."""

import json

import pytest

from repro.discovery import (
    DISCOVERY_REPORT_FORMAT,
    discover,
    discoverable_signals,
    matched_signal_names,
    observed_boundary,
    score_discovery,
    unscored_report,
    validate_discovery_report,
)
from repro.discovery.observations import bit_statistics, collect_observations
from repro.network.database import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.obs.report import ReportSchemaError
from repro.protocols.signalcodec import SignalEncoding


def ramp_records(channel="FC", message_id=0x10, count=300):
    return [
        (i * 0.01, bytes([i % 256]), channel, message_id, ())
        for i in range(count)
    ]


def truth_database(message_id=0x10, bit_length=8, name="truth_sig"):
    return NetworkDatabase((
        MessageDefinition(
            name="TRUTH",
            message_id=message_id,
            channel="FC",
            protocol="CAN",
            payload_length=(bit_length + 7) // 8,
            signals=(
                SignalDefinition(name, SignalEncoding(0, bit_length)),
            ),
            cycle_time=0.01,
        ),
    ))


class TestObservedBoundary:
    def test_unexercised_top_bits_are_not_observed(self):
        # An 8-bit signal that only ever counts 0..15: the top nibble
        # is unobservable from payload statistics.
        stats = bit_statistics([bytes([i % 16]) for i in range(64)])
        encoding = SignalEncoding(0, 8)
        assert observed_boundary(encoding, stats) == [0, 1, 2, 3]

    def test_positions_beyond_the_trace_are_skipped(self):
        stats = bit_statistics([bytes([i % 4]) for i in range(32)])
        encoding = SignalEncoding(0, 16)
        assert observed_boundary(encoding, stats) == [0, 1]


class TestScoreDiscovery:
    def test_perfect_recovery_scores_one(self):
        records = ramp_records()
        result = discover(records=records)
        report = score_discovery(truth_database(), result)
        assert report.totals["precision"] == 1.0
        assert report.totals["recall"] == 1.0
        assert report.totals["f1"] == 1.0
        assert report.totals["encoding_accuracy"] == 1.0
        assert report.totals["spurious_messages"] == 0
        (row,) = report.messages
        assert row["channel"] == "FC"
        assert row["discoverable"] == row["matched"] == 1

    def test_observed_truth_is_self_consistent(self):
        # Truth documents a 16-bit signal but the trace only carries the
        # low byte -- the observed boundary is those 8 bits, which
        # discovery recovers, so recall does not punish the unobservable.
        records = ramp_records()
        result = discover(records=records)
        report = score_discovery(
            truth_database(bit_length=16), result
        )
        assert report.totals["recall"] == 1.0

    def test_spurious_message_is_counted(self):
        records = ramp_records() + ramp_records(message_id=0x77)
        result = discover(records=records)
        report = score_discovery(truth_database(), result)
        assert report.totals["spurious_messages"] == 1

    def test_gauges_are_exported(self):
        result = discover(records=ramp_records())
        report = score_discovery(truth_database(), result)
        gauges = report.metrics.snapshot()["gauges"]
        assert gauges["discovery.boundary_f1"] == 1.0
        assert gauges["discovery.encoding_accuracy"] == 1.0

    def test_degraded_observations_score_against_clean_truth(self):
        records = ramp_records()
        clean = collect_observations(records)
        # Corrupt the stream by dropping to the low nibble only.
        corrupted = [
            (t, bytes([p[0] & 0x0F]), b, m, i)
            for t, p, b, m, i in records
        ]
        result = discover(records=corrupted)
        report = score_discovery(
            truth_database(), result, truth_observations=clean
        )
        assert report.totals["recall"] < 1.0


class TestHelpers:
    def test_matched_signal_names(self):
        result = discover(records=ramp_records())
        names = matched_signal_names(truth_database(), result)
        assert names == {"truth_sig": "disc_fc_10_b0"}

    def test_discoverable_signals_skips_silent_messages(self):
        result = discover(records=ramp_records())
        truth = truth_database(message_id=0x99)
        assert discoverable_signals(truth, result.observations) == []


class TestReportSchema:
    def test_scored_report_validates(self):
        result = discover(records=ramp_records())
        report = score_discovery(truth_database(), result)
        payload = validate_discovery_report(report.to_dict())
        assert payload["format"] == DISCOVERY_REPORT_FORMAT
        assert validate_discovery_report(report.to_json())

    def test_unscored_report_validates_with_zero_scores(self):
        result = discover(records=ramp_records())
        report = unscored_report(result)
        payload = validate_discovery_report(report.to_dict())
        assert payload["messages"] == []
        assert payload["totals"]["recovered"] == 1
        assert payload["totals"]["f1"] == 0.0
        assert payload["counters"]["discovery.messages"] == 1

    def test_meta_round_trips(self):
        result = discover(records=ramp_records())
        report = unscored_report(result)
        report.set_meta(trace="/tmp/x.trc")
        payload = json.loads(report.to_json())
        assert payload["meta"]["trace"] == "/tmp/x.trc"

    def test_wrong_format_is_rejected(self):
        result = discover(records=ramp_records())
        payload = score_discovery(truth_database(), result).to_dict()
        payload["format"] = "repro.obs/1"
        with pytest.raises(ReportSchemaError):
            validate_discovery_report(payload)

    def test_missing_total_field_is_rejected(self):
        result = discover(records=ramp_records())
        payload = score_discovery(truth_database(), result).to_dict()
        del payload["totals"]["f1"]
        with pytest.raises(ReportSchemaError):
            validate_discovery_report(payload)

    def test_missing_message_field_is_rejected(self):
        result = discover(records=ramp_records())
        payload = score_discovery(truth_database(), result).to_dict()
        del payload["messages"][0]["precision"]
        with pytest.raises(ReportSchemaError):
            validate_discovery_report(payload)

    def test_non_numeric_score_is_rejected(self):
        result = discover(records=ramp_records())
        payload = score_discovery(truth_database(), result).to_dict()
        payload["totals"]["f1"] = "perfect"
        with pytest.raises(ReportSchemaError):
            validate_discovery_report(payload)
