"""Shared discovery fixtures: SYN traces and payload-stream builders."""

from __future__ import annotations

import pytest

from repro.datasets import SYN_SPEC, build_dataset
from repro.discovery import MessageObservations, discover


@pytest.fixture(scope="session")
def syn_bundle():
    return build_dataset(SYN_SPEC)


@pytest.fixture(scope="session")
def syn_records(syn_bundle):
    """A 60 s SYN trace: long enough that every active signal bit is
    exercised and the slowest messages clear ``min_frames``."""
    return list(syn_bundle.byte_records(60.0))


@pytest.fixture(scope="session")
def syn_truth(syn_bundle):
    return syn_bundle.database


@pytest.fixture(scope="session")
def syn_result(syn_records):
    return discover(records=syn_records)


def stream(values, channel="FC", message_id=0x10, width=1, period=0.01):
    """A MessageObservations over one payload per value (little-endian)."""
    observations = MessageObservations(channel, message_id)
    for index, value in enumerate(values):
        observations.append(
            index * period, int(value).to_bytes(width, "little")
        )
    return observations
