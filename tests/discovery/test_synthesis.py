"""Synthesis: databases and catalogs from discovered signals."""

import pytest

from repro.discovery import (
    DiscoveryError,
    discover,
    discover_message,
    message_name,
    signal_name,
)
from repro.network.database import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols.signalcodec import SignalEncoding
from repro.protocols.someip import ConditionalLayout, OptionalSection
from tests.discovery.conftest import stream


def counter_records(channel="FC", message_id=0x10, width=2, count=300):
    return [
        (
            i * 0.01,
            (i % (1 << (8 * width))).to_bytes(width, "little"),
            channel,
            message_id,
            (("protocol", "CAN"),),
        )
        for i in range(count)
    ]


class TestNames:
    def test_signal_name(self):
        assert signal_name("FC", 0x100, 5) == "disc_fc_100_b5"

    def test_message_name_sanitizes_channel(self):
        assert message_name("K-LIN", 0x11) == "DISC_K_LIN_11"


class TestDiscover:
    def test_requires_exactly_one_input(self):
        with pytest.raises(DiscoveryError):
            discover()
        with pytest.raises(DiscoveryError):
            discover(records=[], observations={})

    def test_records_to_catalog(self):
        result = discover(records=counter_records())
        assert result.message_keys() == (("FC", 0x10),)
        message = result.database.message("FC", 0x10)
        assert message.name == "DISC_FC_10"
        assert len(result.catalog) >= 1
        counters = result.metrics.counters()
        assert counters["discovery.frames"] == 300
        assert counters["discovery.messages"] == 1
        assert counters["discovery.tokens"] >= 1
        assert counters["discovery.synthesis.tuples"] == len(result.catalog)

    def test_message_metadata(self):
        result = discover(records=counter_records())
        discovery = result.messages[("FC", 0x10)]
        assert discovery.frames == 300
        assert discovery.payload_length == 2
        assert discovery.cycle_time == pytest.approx(0.01)

    def test_discover_message_alone(self):
        observations = stream([i % 256 for i in range(100)])
        discovery = discover_message(observations)
        assert discovery.channel == "FC"
        assert [s.data_class for s in discovery.signals] == ["counter"]


class TestMerge:
    def doc_message(self, **kwargs):
        defaults = dict(
            name="DOC",
            message_id=0x10,
            channel="FC",
            protocol="CAN",
            payload_length=1,
            signals=(
                SignalDefinition("doc_low", SignalEncoding(0, 8)),
            ),
            cycle_time=0.5,
        )
        defaults.update(kwargs)
        return MessageDefinition(**defaults)

    def test_documented_signals_win_on_overlap(self):
        partial = NetworkDatabase((self.doc_message(),))
        result = discover(records=counter_records(), partial=partial)
        merged = result.database.message("FC", 0x10)
        # The recovered 16-bit token overlaps doc_low and is dropped;
        # the documented signal survives untouched.
        assert [s.name for s in merged.signals] == ["doc_low"]
        assert result.merge_stats["overlap_dropped"] == 1
        assert result.merge_stats["documented_messages"] == 1
        assert merged.cycle_time == 0.5
        # Payload length grows to cover what the trace actually showed.
        assert merged.payload_length == 2

    def test_recovered_tokens_fill_undocumented_gaps(self):
        partial = NetworkDatabase(
            (self.doc_message(payload_length=3,
                              signals=(SignalDefinition(
                                  "doc_high", SignalEncoding(16, 8)),)),)
        )
        result = discover(records=counter_records(), partial=partial)
        merged = result.database.message("FC", 0x10)
        names = [s.name for s in merged.signals]
        assert names[0] == "doc_high"
        assert "disc_fc_10_b0" in names
        assert result.merge_stats["overlap_dropped"] == 0
        assert result.merge_stats["recovered_signals"] >= 1

    def test_conditional_layout_locks_the_message(self):
        layout = ConditionalLayout((OptionalSection(0, 2),))
        doc = MessageDefinition(
            name="SECTIONED",
            message_id=0x10,
            channel="FC",
            protocol="SOMEIP",
            payload_length=3,
            signals=(
                SignalDefinition(
                    "sec", SignalEncoding(0, 8), section_bit=0
                ),
            ),
            layout=layout,
        )
        partial = NetworkDatabase((doc,))
        result = discover(records=counter_records(), partial=partial)
        merged = result.database.message("FC", 0x10)
        assert merged is doc
        assert result.merge_stats["layout_locked"] == 1

    def test_documented_only_messages_survive(self):
        partial = NetworkDatabase((self.doc_message(message_id=0x99),))
        result = discover(records=counter_records(), partial=partial)
        assert result.database.message("FC", 0x99).name == "DOC"
        assert result.merge_stats["documented_only_messages"] == 1

    def test_documented_cycle_time_fills_from_trace(self):
        partial = NetworkDatabase((self.doc_message(cycle_time=None),))
        result = discover(records=counter_records(), partial=partial)
        merged = result.database.message("FC", 0x10)
        assert merged.cycle_time == pytest.approx(0.01)


class TestSynthesizedDatabase:
    def test_constant_tokens_become_documented_constants(self):
        records = [
            (i * 0.01, bytes([0x80 | (i % 8)]), "FC", 0x20, ())
            for i in range(100)
        ]
        result = discover(records=records)
        message = result.database.message("FC", 0x20)
        comments = {s.name: s.comment for s in message.signals}
        assert comments["disc_fc_20_b7"] == "discovered constant"

    def test_counters_are_ordinal_in_the_database(self):
        result = discover(records=counter_records())
        message = result.database.message("FC", 0x10)
        assert [s.data_class for s in message.signals] == ["ordinal"]

    def test_catalog_feeds_the_pipeline(self):
        from repro.core.pipeline import PipelineConfig, PreprocessingPipeline
        from repro.engine.context import EngineContext
        from repro.protocols.frames import BYTE_RECORD_COLUMNS

        records = counter_records()
        result = discover(records=records)
        context = EngineContext.serial()
        k_b = context.table_from_rows(
            list(BYTE_RECORD_COLUMNS), list(records)
        )
        pipeline = PreprocessingPipeline(
            PipelineConfig(catalog=result.catalog, short_payload="skip")
        )
        k_s = pipeline.extract_signals(k_b)
        assert "disc_fc_10_b0" in set(k_s.column_values("s_id"))
