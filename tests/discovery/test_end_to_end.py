"""End-to-end acceptance on the SYN fleet + lossy-input degradation."""

import pytest

from repro.discovery import (
    discover,
    discovery_degradation,
    pipeline_coverage,
    score_discovery,
    validate_discovery_report,
)
from repro.network.dbcio import dumps_database, loads_database


class TestCleanSyn:
    def test_boundaries_and_encodings_recover(self, syn_truth, syn_result):
        report = score_discovery(syn_truth, syn_result)
        assert report.totals["precision"] >= 0.95
        assert report.totals["recall"] >= 0.95
        assert report.totals["f1"] >= 0.95
        assert report.totals["encoding_accuracy"] >= 0.95
        assert report.totals["spurious_messages"] == 0
        assert report.totals["messages"] == len(report.messages)

    def test_report_validates(self, syn_truth, syn_result):
        report = score_discovery(syn_truth, syn_result)
        report.set_meta(dataset="SYN")
        payload = validate_discovery_report(report.to_dict())
        assert payload["counters"]["discovery.messages"] >= 10
        assert "discovery.token_width_bits" in payload["histograms"]

    def test_synthesized_database_round_trips(self, syn_result):
        # DBC files hold one bus each (SYN reuses gateway-copied ids
        # across FC and BC), so round-trip channel by channel.
        database = syn_result.database
        channels = {m.channel for m in database.messages}
        seen = 0
        for channel in sorted(channels):
            text = dumps_database(database, channels=(channel,))
            reloaded = loads_database(text)
            for message in database.messages:
                if message.channel != channel:
                    continue
                seen += 1
                clone = reloaded.message(
                    message.channel, message.message_id
                )
                # GenMsgCycleTime is stored in whole milliseconds.
                assert clone.cycle_time == pytest.approx(
                    message.cycle_time, abs=1e-3
                )
                for signal in message.signals:
                    assert (
                        clone.signal(signal.name).encoding
                        == signal.encoding
                    )
        assert seen == len(database)

    def test_pipeline_interprets_synthesized_catalog(
        self, syn_truth, syn_result, syn_records
    ):
        coverage, covered = pipeline_coverage(
            syn_truth, syn_result, syn_records
        )
        missing = [name for name, hit in covered.items() if not hit]
        assert coverage >= 0.9, "uncovered: {}".format(missing)

    def test_partial_database_merge_keeps_documented_names(
        self, syn_truth, syn_records
    ):
        # Hand discovery half the truth: documented messages keep their
        # names and signals, the rest are synthesized.
        partial_messages = syn_truth.messages[: len(syn_truth.messages) // 2]
        from repro.network.database import NetworkDatabase

        partial = NetworkDatabase(tuple(partial_messages))
        result = discover(records=syn_records, partial=partial)
        for message in partial_messages:
            merged = result.database.message(
                message.channel, message.message_id
            )
            assert merged.name == message.name
            documented = {s.name for s in message.signals}
            assert documented <= {s.name for s in merged.signals}
        assert result.merge_stats["documented_messages"] >= 1
        assert result.merge_stats["recovered_messages"] >= 1


class TestLossyInputs:
    @pytest.fixture(scope="class")
    def sweep(self, syn_records, syn_truth):
        return discovery_degradation(
            syn_records, syn_truth, severities=(0.0, 0.5, 1.0), seed=7
        )

    def test_degrades_monotonically_without_crashing(self, sweep):
        # Corruption may only *destroy* recoverability. A small
        # tolerance absorbs boundary-effect noise in the middle of the
        # severity grid.
        for knob, points in sweep.items():
            scores = [totals["f1"] for _severity, totals in points]
            assert scores[0] >= 0.95, knob
            for earlier, later in zip(scores, scores[1:]):
                assert later <= earlier + 0.05, (
                    "{} got better under corruption: {}".format(knob, scores)
                )

    def test_full_severity_actually_hurts(self, sweep):
        assert any(
            points[-1][1]["f1"] < points[0][1]["f1"]
            for points in sweep.values()
        )

    def test_truncation_threads_short_payload_path(self, syn_records):
        from repro.vehicle.corruption import PayloadTruncation, corrupt

        model = PayloadTruncation(rate=0.3).at_severity(1.0)
        corrupted, _log = corrupt(syn_records, [model], seed=7)
        result = discover(records=corrupted)
        counters = result.metrics.counters()
        assert counters["discovery.short_payload_skipped"] > 0
