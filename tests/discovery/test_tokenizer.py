"""Tokenizer: flip-statistics boundary cuts and cross-byte chains."""

import pytest

from repro.discovery import DiscoveryConfig, Token, bit_statistics, tokenize
from repro.discovery.tokenizer import _is_boundary
from repro.protocols.signalcodec import INTEL, MOTOROLA


def positions(tokens):
    return [t.positions for t in tokens if not t.constant]


class TestBitStatistics:
    def test_counts_flips_ones_and_coverage(self):
        stats = bit_statistics([b"\x01", b"\x00", b"\x01"])
        assert stats.samples == 3
        assert stats.flips[0] == 2
        assert stats.ones[0] == 2
        assert stats.covered[0] == 3
        assert stats.pairs[0] == 2
        assert stats.flip_rate(0) == 1.0

    def test_variable_payload_lengths_cover_fewer_bits(self):
        stats = bit_statistics([b"\xff\xff", b"\xff", b"\xff\xff"])
        assert stats.covered[0] == 3
        assert stats.covered[8] == 2
        # Consecutive comparisons only cover the common prefix.
        assert stats.pairs[8] == 0
        assert stats.flips[8] == 0

    def test_empty_stream(self):
        stats = bit_statistics([])
        assert stats.num_bits == 0
        assert stats.samples == 0


class TestByteCuts:
    def test_single_byte_counter_is_one_token(self):
        payloads = [bytes([i % 256]) for i in range(258)]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [tuple(range(8))]
        assert tokens[0].byte_order == INTEL

    def test_two_nibble_signals_split_on_rate_rise(self):
        # Slow counter in the low nibble, fast counter in the high one:
        # bit 4 flips far more often than bit 3, from a decayed tail.
        payloads = [
            bytes([((i // 4) % 16) | ((i % 16) << 4)]) for i in range(256)
        ]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_sawtooth_step_does_not_cut(self):
        # A sensor stepping by 7 makes bit 3 flip like a fresh LSB while
        # bits 0..2 count down (7 == -1 mod 8). The rate *rises* at bit 3
        # but from a still-busy bit -- the tail rule must refuse the cut.
        payloads = [bytes([(i * 7) % 256]) for i in range(512)]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [tuple(range(8))]

    def test_inactive_bits_split_runs(self):
        # Counter in bits 0..2, counter in bits 6..7, dead gap between.
        payloads = [
            bytes([(i % 8) | (((i // 2) % 4) << 6)]) for i in range(64)
        ]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [(0, 1, 2), (6, 7)]

    def test_below_min_frames_yields_no_tokens(self):
        payloads = [bytes([i]) for i in range(4)]
        assert tokenize(bit_statistics(payloads)) == []


class TestCrossByteChains:
    def test_intel_counter_spans_bytes(self):
        payloads = [
            (i % 65536).to_bytes(2, "little") for i in range(65538)
        ]
        tokens = tokenize(bit_statistics(payloads))
        assert len(tokens) == 1
        assert tokens[0].positions == tuple(range(16))
        assert tokens[0].byte_order == INTEL

    def test_motorola_counter_spans_bytes(self):
        payloads = [(i % 65536).to_bytes(2, "big") for i in range(65538)]
        tokens = tokenize(bit_statistics(payloads))
        assert len(tokens) == 1
        assert tokens[0].positions == tuple(
            list(range(8, 16)) + list(range(8))
        )
        assert tokens[0].byte_order == MOTOROLA

    def test_independent_byte_signals_stay_separate(self):
        # Two identical one-byte counters: each byte's bottom bit fires
        # from the other's decayed top -- a boundary signature on both
        # candidate links, so the bytes must not chain.
        payloads = [bytes([i % 256, i % 256]) for i in range(1024)]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [tuple(range(8)), tuple(range(8, 16))]


class TestConstantTokens:
    def test_stuck_at_one_run_becomes_constant_token(self):
        payloads = [bytes([0x80 | (i % 8)]) for i in range(64)]
        tokens = tokenize(bit_statistics(payloads))
        constants = [t for t in tokens if t.constant]
        assert [t.positions for t in constants] == [(7,)]
        assert positions(tokens) == [(0, 1, 2)]

    def test_never_set_bits_produce_nothing(self):
        payloads = [bytes([i % 8]) for i in range(64)]
        tokens = tokenize(bit_statistics(payloads))
        assert positions(tokens) == [(0, 1, 2)]
        assert not any(t.constant for t in tokens)

    def test_emit_constants_off(self):
        payloads = [bytes([0x80 | (i % 8)]) for i in range(64)]
        config = DiscoveryConfig(emit_constants=False)
        tokens = tokenize(bit_statistics(payloads), config)
        assert not any(t.constant for t in tokens)


class TestBoundaryRule:
    def test_rise_from_tail_is_a_boundary(self):
        config = DiscoveryConfig()
        assert _is_boundary(0.01, 0.5, config)

    def test_rise_from_busy_bit_is_not(self):
        config = DiscoveryConfig()
        assert not _is_boundary(0.4, 0.9, config)

    def test_fall_is_never_a_boundary(self):
        config = DiscoveryConfig()
        assert not _is_boundary(0.5, 0.25, config)
        assert not _is_boundary(0.05, 0.05, config)


class TestToken:
    def test_geometry_accessors(self):
        token = Token((4, 5, 6))
        assert token.first_bit == 4
        assert token.bit_length == 3
        assert token.bit_set() == frozenset({4, 5, 6})

    def test_encoding_round_trips_positions(self):
        token = Token(tuple(range(8, 16)) + tuple(range(8)), MOTOROLA)
        encoding = token.encoding()
        assert tuple(encoding.bit_positions()) == token.positions
        assert encoding.byte_order == MOTOROLA

    def test_encoding_rejects_non_contiguous_positions(self):
        from repro.protocols.signalcodec import CodecError

        with pytest.raises(CodecError):
            Token((0, 2)).encoding()
