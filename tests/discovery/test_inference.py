"""Inference: signedness, data class and scaling from raw value series."""

from repro.discovery import DiscoveryConfig, Token, infer_signals
from tests.discovery.conftest import stream


def infer_one(observations, token, config=None):
    (signal,) = infer_signals(observations, [token], config)
    return signal


class TestDataClass:
    def test_ramp_is_a_counter(self):
        observations = stream([i % 256 for i in range(300)])
        signal = infer_one(observations, Token(tuple(range(8))))
        assert signal.data_class == "counter"
        assert signal.samples == 300
        assert signal.distinct == 256

    def test_counter_survives_repeats(self):
        # Oversampled counter: repeated raws don't vote either way.
        observations = stream([(i // 3) % 16 for i in range(200)])
        signal = infer_one(observations, Token(tuple(range(4))))
        assert signal.data_class == "counter"

    def test_irregular_steps_are_a_sensor(self):
        values = []
        v = 0
        for i in range(300):
            v = (v + (3 if i % 2 else 11)) % 256
            values.append(v)
        signal = infer_one(stream(values), Token(tuple(range(8))))
        assert signal.data_class == "sensor"

    def test_single_value_is_constant(self):
        observations = stream([42] * 50)
        signal = infer_one(observations, Token(tuple(range(8))))
        assert signal.data_class == "constant"
        assert signal.distinct == 1

    def test_crc_like_byte_is_a_checksum(self):
        values = []
        state = 1
        for _ in range(300):
            state = (state * 1103515245 + 12345) % (1 << 31)
            values.append((state >> 16) & 0xFF)
        signal = infer_one(stream(values), Token(tuple(range(8))))
        assert signal.data_class == "checksum"

    def test_narrow_random_token_is_not_a_checksum(self):
        # Checksum needs width >= checksum_min_width.
        values = []
        state = 1
        for _ in range(300):
            state = (state * 1103515245 + 12345) % (1 << 31)
            values.append((state >> 16) & 0x0F)
        signal = infer_one(stream(values), Token(tuple(range(4))))
        assert signal.data_class == "sensor"


class TestSignedness:
    def test_triangle_around_zero_is_signed(self):
        values = []
        v, step = 0, 1
        for _ in range(400):
            values.append(v % 256)
            if v == 4:
                step = -1
            elif v == -4:
                step = 1
            v += step
        signal = infer_one(stream(values), Token(tuple(range(8))))
        assert signal.signed is True
        assert signal.data_class == "sensor"

    def test_unsigned_ramp_is_not_signed(self):
        observations = stream([i % 256 for i in range(300)])
        signal = infer_one(observations, Token(tuple(range(8))))
        assert signal.signed is False

    def test_never_negative_defaults_to_unsigned(self):
        # Top bit never set: indistinguishable from unsigned, so keep
        # the unsigned reading.
        observations = stream([i % 64 for i in range(200)])
        signal = infer_one(observations, Token(tuple(range(8))))
        assert signal.signed is False


class TestShortPayloads:
    def test_truncated_frames_are_counted_not_fatal(self):
        from repro.discovery import MessageObservations

        observations = MessageObservations("FC", 0x10)
        for i in range(100):
            if i % 4 == 0:
                observations.append(i * 0.01, bytes([i % 256]))
            else:
                observations.append(
                    i * 0.01, bytes([i % 256, (i // 2) % 256])
                )
        signal = infer_one(observations, Token(tuple(range(8, 16))))
        assert signal.short_payload_skipped == 25
        assert signal.samples == 75


class TestScaling:
    def test_range_hint_fits_scale_and_offset(self):
        config = DiscoveryConfig(
            range_hints={("FC", 0x10, 0): (-40.0, 215.0)}
        )
        observations = stream([i % 256 for i in range(300)])
        signal = infer_one(observations, Token(tuple(range(8))), config)
        assert signal.scale == (215.0 + 40.0) / 255
        assert signal.offset == -40.0
        encoding = signal.encoding()
        assert encoding.scale == signal.scale
        assert encoding.offset == signal.offset

    def test_without_hint_scale_is_identity(self):
        observations = stream([i % 256 for i in range(300)])
        signal = infer_one(observations, Token(tuple(range(8))))
        assert signal.scale == 1.0
        assert signal.offset == 0.0
