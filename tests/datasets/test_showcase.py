"""The showcase vehicle: advanced interpretation features end to end."""

import pytest

from repro.core import (
    PipelineConfig,
    PreprocessingPipeline,
    equality_split,
    interpret,
    preselect,
)
from repro.datasets.showcase import build_showcase


@pytest.fixture(scope="module")
def showcase():
    return build_showcase()


@pytest.fixture(scope="module")
def trace(showcase):
    from repro.engine import EngineContext

    ctx = EngineContext.serial()
    return ctx, showcase.record_table(ctx, 20.0).cache()


class TestMultiplexedExtraction:
    def test_pages_alternate(self, showcase, trace):
        ctx, k_b = trace
        catalog = showcase.catalog(["sus_front", "sus_rear"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        rows = k_s.collect()
        front = [r for r in rows if r[2] == "sus_front"]
        rear = [r for r in rows if r[2] == "sus_rear"]
        assert front and rear
        # Each frame carries exactly one page: no timestamp holds both.
        times_front = {r[0] for r in front}
        times_rear = {r[0] for r in rear}
        assert not times_front & times_rear
        # Every suspension frame yields exactly one of the two signals.
        from repro.engine import col

        suspension_frames = k_b.filter(col("m_id") == 0x310).count()
        assert len(front) + len(rear) == suspension_frames

    def test_values_plausible(self, showcase, trace):
        _ctx, k_b = trace
        catalog = showcase.catalog(["sus_front"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        values = [r[1] for r in k_s.collect()]
        assert all(25.0 <= v <= 75.0 for v in values)


class TestOptionalSections:
    def test_both_optional_signals_extracted(self, showcase, trace):
        _ctx, k_b = trace
        catalog = showcase.catalog(list(showcase.optional_signals))
        k_s = interpret(preselect(k_b, catalog), catalog)
        signals = {r[2] for r in k_s.collect()}
        assert signals == set(showcase.optional_signals)

    def test_class_labels_from_table(self, showcase, trace):
        _ctx, k_b = trace
        catalog = showcase.catalog(["obj_class"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        labels = {r[1] for r in k_s.collect()}
        assert labels <= {"none", "car", "truck", "pedestrian"}
        assert len(labels) >= 2


class TestRepackedSignal:
    def test_equality_split_matches_across_layouts(self, showcase, trace):
        _ctx, k_b = trace
        catalog = showcase.catalog([showcase.repacked_signal])
        k_s = interpret(preselect(k_b, catalog), catalog)
        result = equality_split(k_s, showcase.repacked_signal)
        assert len(result.groups) == 1
        assert set(result.groups[0].all_channels()) == {"CH", "DC"}


class TestNotificationCatalog:
    def test_notification_rule_extracts_door(self, showcase, trace):
        _ctx, k_b = trace
        catalog = showcase.notification_catalog()
        k_s = interpret(preselect(k_b, catalog), catalog)
        assert k_s.count() > 0
        assert {r[2] for r in k_s.collect()} == {showcase.notification_signal}


class TestFullPipeline:
    def test_pipeline_handles_all_features_at_once(self, showcase, trace):
        _ctx, k_b = trace
        config = PipelineConfig(catalog=showcase.catalog())
        result = PreprocessingPipeline(config).run(k_b)
        summary = result.classification_summary()
        assert summary["sus_front"][1] == "alpha"
        assert summary["yaw_rate"][1] == "alpha"
        assert summary["obj_class"][1] == "gamma"
        rep = result.state_representation(
            ["sus_front", "sus_rear", "obj_class", "door_open"]
        )
        assert len(rep) > 10
