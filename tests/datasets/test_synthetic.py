"""SYN / LIG / STA generators against their Table 5 specs."""

import pytest

from repro.core import PipelineConfig, PreprocessingPipeline
from repro.datasets import (
    LIG_SPEC,
    SPECS,
    STA_SPEC,
    SYN_SPEC,
    build_dataset,
    build_syn,
    journeys,
)


class TestSpecs:
    def test_table5_type_counts(self):
        assert (SYN_SPEC.alpha_types, SYN_SPEC.beta_types, SYN_SPEC.gamma_types) == (6, 4, 3)
        assert (LIG_SPEC.alpha_types, LIG_SPEC.beta_types, LIG_SPEC.gamma_types) == (27, 71, 82)
        assert (STA_SPEC.alpha_types, STA_SPEC.beta_types, STA_SPEC.gamma_types) == (6, 1, 71)

    def test_totals(self):
        assert SYN_SPEC.total_types == 13
        assert LIG_SPEC.total_types == 180
        assert STA_SPEC.total_types == 78

    def test_registry(self):
        assert set(SPECS) == {"SYN", "LIG", "STA"}


class TestBundleStructure:
    @pytest.fixture(scope="class")
    def syn(self):
        return build_syn()

    def test_signal_counts_match_spec(self, syn):
        assert len(syn.alpha_ids) == 6
        assert len(syn.beta_ids) == 4
        assert len(syn.gamma_ids) == 3

    def test_database_has_all_signals(self, syn):
        alphabet = set(syn.database.alphabet().ids())
        assert set(syn.signal_ids) <= alphabet

    def test_catalog_covers_all_signals(self, syn):
        catalog = syn.catalog()
        assert set(catalog.signal_ids()) == set(syn.signal_ids)

    def test_catalog_subset(self, syn):
        subset = syn.catalog(syn.alpha_ids[:2])
        assert set(subset.signal_ids()) == set(syn.alpha_ids[:2])

    def test_constraints_cover_all_signals(self, syn):
        constraints = syn.default_constraints()
        assert len(constraints) == 13

    def test_multi_protocol_channels(self, syn):
        protocols = {m.protocol for m in syn.database.messages}
        assert {"CAN", "LIN", "SOMEIP", "FLEXRAY"} <= protocols

    def test_gateway_routes_alpha_messages(self, syn):
        assert syn.simulation.gateways
        routed = syn.simulation.gateways[0].routes
        assert routed

    def test_avg_signals_per_message_close_to_spec(self, syn):
        stats = syn.database.statistics()
        # The generator approximates Table 5's 1.47 within tolerance;
        # gateway-cloned messages pull the DB-level average around.
        assert 1.0 < stats["avg_signals_per_message"] < 2.2


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = build_dataset(SYN_SPEC).byte_records(5.0)
        b = build_dataset(SYN_SPEC).byte_records(5.0)
        assert a == b

    def test_journeys_differ_but_share_structure(self):
        j = journeys(SYN_SPEC, 2, 5.0)
        assert len(j) == 2
        assert j[0] != j[1]
        keys_0 = {(r[2], r[3]) for r in j[0]}
        keys_1 = {(r[2], r[3]) for r in j[1]}
        assert keys_0 == keys_1  # same messages, different values


class TestMeasuredStatistics:
    def test_syn_statistics_shape(self, ctx):
        stats = build_syn().statistics(ctx, 10.0)
        assert stats["signal_types"] == 13
        assert stats["examples"] > 0
        assert 1.0 < stats["avg_signals_per_message"] < 2.2

    def test_examples_scale_with_duration(self, ctx):
        bundle = build_syn()
        short = bundle.statistics(ctx, 5.0)
        long = bundle.statistics(ctx, 10.0)
        assert long["examples"] == pytest.approx(
            2 * short["examples"], rel=0.1
        )


class TestClassificationByConstruction:
    """The pipeline must classify the generated signals into exactly the
    branch counts of Table 5."""

    def test_syn_branch_counts(self, ctx):
        bundle = build_syn()
        k_b = bundle.record_table(ctx, 40.0)
        config = PipelineConfig(
            catalog=bundle.catalog(),
            constraints=bundle.default_constraints(),
        )
        result = PreprocessingPipeline(config).run(k_b)
        summary = result.classification_summary()
        counts = {"alpha": 0, "beta": 0, "gamma": 0}
        for _dt, branch in summary.values():
            counts[branch] += 1
        assert counts == {
            "alpha": SYN_SPEC.alpha_types,
            "beta": SYN_SPEC.beta_types,
            "gamma": SYN_SPEC.gamma_types,
        }

    def test_alpha_signals_individually(self, ctx):
        bundle = build_syn()
        k_b = bundle.record_table(ctx, 40.0)
        config = PipelineConfig(
            catalog=bundle.catalog(),
            constraints=bundle.default_constraints(),
        )
        result = PreprocessingPipeline(config).run(k_b)
        for s_id in bundle.alpha_ids:
            assert result.outcomes[s_id].classification.branch == "alpha", s_id
