"""Fleet-scale batch processing."""

import pytest

from repro.core import PipelineConfig
from repro.datasets import SYN_SPEC
from repro.datasets.fleet import BatchExtractor, Fleet, FleetError, JourneyRef
from repro.engine import EngineContext, TableStore


@pytest.fixture(scope="module")
def fleet():
    return Fleet(SYN_SPEC, num_vehicles=2, journeys_per_vehicle=2)


class TestFleet:
    def test_journey_refs_enumerated(self, fleet):
        refs = fleet.journey_refs()
        assert len(refs) == 4
        assert refs[0] == JourneyRef(0, 0)
        assert refs[-1] == JourneyRef(1, 1)

    def test_ref_names_unique(self, fleet):
        names = {r.name for r in fleet.journey_refs()}
        assert len(names) == 4

    def test_journeys_differ_across_vehicles(self, fleet):
        a = fleet.record_journey(JourneyRef(0, 0), 5.0)
        b = fleet.record_journey(JourneyRef(1, 0), 5.0)
        assert a != b

    def test_journeys_reproducible(self, fleet):
        ref = JourneyRef(1, 1)
        assert fleet.record_journey(ref, 5.0) == fleet.record_journey(ref, 5.0)

    def test_shared_database(self, fleet):
        assert set(fleet.database.alphabet().ids()) == set(
            fleet.reference_bundle.signal_ids
        )

    def test_validation(self):
        with pytest.raises(FleetError):
            Fleet(SYN_SPEC, num_vehicles=0, journeys_per_vehicle=1)


class TestBatchExtractor:
    @pytest.fixture
    def extractor(self, fleet, tmp_path):
        bundle = fleet.reference_bundle
        config = PipelineConfig(catalog=bundle.catalog(bundle.alpha_ids[:2]))
        return BatchExtractor(
            fleet=fleet,
            config=config,
            store=TableStore(tmp_path / "fleet_store"),
            duration=5.0,
        )

    def test_processes_every_journey(self, extractor):
        ctx = EngineContext.serial()
        report = extractor.run(ctx)
        assert len(report) == 4
        assert report.total_trace_rows > 0
        assert report.total_extracted_rows > 0

    def test_one_stored_table_per_journey(self, extractor, fleet):
        ctx = EngineContext.serial()
        extractor.run(ctx)
        stored = extractor.store.list_tables()
        assert sorted(stored) == sorted(r.name for r in fleet.journey_refs())

    def test_read_back_journey(self, extractor, fleet):
        ctx = EngineContext.serial()
        extractor.run(ctx)
        table = extractor.read_journey(ctx, JourneyRef(0, 1))
        signals = {r[2] for r in table.collect()}
        assert signals == set(fleet.reference_bundle.alpha_ids[:2])

    def test_summary_totals(self, extractor):
        ctx = EngineContext.serial()
        report = extractor.run(ctx)
        summary = report.summary()
        assert summary["journeys"] == 4
        assert summary["extracted_rows"] == report.total_extracted_rows

    def test_pre_recorded_journeys_used(self, extractor, fleet):
        ctx = EngineContext.serial()
        refs = [JourneyRef(0, 0)]
        records = [fleet.record_journey(refs[0], 3.0)]
        report = extractor.run(ctx, refs=refs, journeys=records)
        assert len(report) == 1
        assert report.results[0].trace_rows == len(records[0])
