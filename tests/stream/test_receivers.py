"""Receive loops: sources, budget kills, pacing and backpressure scope."""

from __future__ import annotations

import asyncio

import pytest

from repro.stream import (
    ChannelReceiver,
    FrameBudget,
    ReplayPacer,
    ReplaySource,
    StreamError,
)


def rec(t, channel="FC"):
    return (t, b"\x00", channel, 1, ())


class TestReplaySource:
    def test_channels_are_sorted(self):
        src = ReplaySource([rec(0.0, "B"), rec(0.1, "A")])
        assert src.channels() == ["A", "B"]

    def test_frames_are_time_ordered_per_channel(self):
        src = ReplaySource([rec(0.2), rec(0.0), rec(0.1)])
        assert [f[0] for f in src.frames("FC")] == [0.0, 0.1, 0.2]

    def test_cursor_slices_the_stream(self):
        src = ReplaySource([rec(0.0), rec(0.1), rec(0.2)])
        assert [f[0] for f in src.frames("FC", start=2)] == [0.2]
        assert src.frame_count("FC") == 3
        assert src.total_frames() == 3

    def test_unknown_channel_and_bad_cursor(self):
        src = ReplaySource([rec(0.0)])
        with pytest.raises(StreamError):
            src.frames("nope")
        with pytest.raises(StreamError):
            src.frames("FC", start=-1)


class TestFrameBudget:
    def test_unlimited_budget_always_grants(self):
        budget = FrameBudget(None)
        assert all(budget.take() for _ in range(10))
        assert not budget.exhausted

    def test_budget_denies_after_limit(self):
        budget = FrameBudget(2)
        assert budget.take() and budget.take()
        assert not budget.take()
        assert budget.exhausted
        assert budget.spent == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(StreamError):
            FrameBudget(-1)


class TestChannelReceiver:
    def test_delivers_all_frames_and_marks_exhausted(self):
        src = ReplaySource([rec(0.0), rec(0.1)])
        queue = asyncio.Queue()
        receiver = ChannelReceiver("v", "FC", src, queue)
        asyncio.run(receiver.run())
        assert receiver.exhausted
        assert receiver.delivered == 2
        assert queue.qsize() == 2

    def test_budget_stops_delivery_mid_stream(self):
        src = ReplaySource([rec(t / 10.0) for t in range(5)])
        queue = asyncio.Queue()
        receiver = ChannelReceiver("v", "FC", src, queue,
                                   budget=FrameBudget(3))
        asyncio.run(receiver.run())
        assert not receiver.exhausted
        assert receiver.delivered == 3

    def test_start_cursor_resumes_mid_channel(self):
        src = ReplaySource([rec(t / 10.0) for t in range(4)])
        queue = asyncio.Queue()
        receiver = ChannelReceiver("v", "FC", src, queue, start=3)
        asyncio.run(receiver.run())
        assert receiver.delivered == 1
        channel, frame = queue.get_nowait()
        assert (channel, frame[0]) == ("FC", 0.3)


class TestReplayPacer:
    def test_delivery_is_global_event_time_order(self):
        """Unequal channel rates must not let one receiver race ahead:
        the pacer merges per-channel replays into one deterministic
        time-ordered delivery, whatever the task scheduling does."""
        fast = [rec(t / 100.0, "fast") for t in range(50)]
        slow = [rec(t / 10.0, "slow") for t in range(5)]
        src = ReplaySource(fast + slow)
        queue = asyncio.Queue()
        pacer = ReplayPacer()
        for channel in src.channels():
            pacer.register(channel)
        receivers = [
            ChannelReceiver("v", channel, src, queue, pacer=pacer)
            for channel in src.channels()
        ]

        async def drive():
            await asyncio.gather(*(r.run() for r in receivers))

        asyncio.run(drive())
        delivered = []
        while not queue.empty():
            channel, frame = queue.get_nowait()
            delivered.append((frame[0], str(channel)))
        assert delivered == sorted(delivered)
        assert len(delivered) == 55

    def test_budget_kill_does_not_deadlock_peers(self):
        src = ReplaySource(
            [rec(t / 10.0, "a") for t in range(10)]
            + [rec(t / 10.0 + 0.01, "b") for t in range(10)]
        )
        queue = asyncio.Queue()
        pacer = ReplayPacer()
        for channel in src.channels():
            pacer.register(channel)
        budget = FrameBudget(7)
        receivers = [
            ChannelReceiver("v", channel, src, queue, budget=budget,
                            pacer=pacer)
            for channel in src.channels()
        ]

        async def drive():
            await asyncio.wait_for(
                asyncio.gather(*(r.run() for r in receivers)), timeout=5
            )

        asyncio.run(drive())
        assert sum(r.delivered for r in receivers) == 7


class TestBackpressureScope:
    def test_slow_vehicle_does_not_stall_other_receivers(self):
        """The load-bearing isolation property: vehicle A's full queue
        blocks only A's receiver; vehicle B's receiver finishes its
        whole stream meanwhile."""
        frames = [rec(t / 10.0) for t in range(20)]
        src_a, src_b = ReplaySource(frames), ReplaySource(frames)
        queue_a = asyncio.Queue(maxsize=2)  # nobody consumes this one
        queue_b = asyncio.Queue(maxsize=2)
        receiver_a = ChannelReceiver("a", "FC", src_a, queue_a)
        receiver_b = ChannelReceiver("b", "FC", src_b, queue_b)

        async def consume_b():
            for _ in range(20):
                await queue_b.get()

        async def drive():
            task_a = asyncio.ensure_future(receiver_a.run())
            await asyncio.wait_for(
                asyncio.gather(receiver_b.run(), consume_b()), timeout=5
            )
            assert not task_a.done()  # still blocked on its own queue
            task_a.cancel()
            try:
                await task_a
            except asyncio.CancelledError:
                pass

        asyncio.run(drive())
        assert receiver_b.exhausted
        assert not receiver_a.exhausted
        assert receiver_a.delivered == 2  # queue capacity; then stalled
