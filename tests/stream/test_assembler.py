"""WindowAssembler: online window membership, sealing, late drops."""

from __future__ import annotations

import pytest

from repro.stream import StreamError, WindowAssembler
from repro.stream.assembler import ASSEMBLER_STATE_FORMAT


def frame(t):
    return (t, b"\x00", "FC", 1, ())


class TestWindowIndex:
    def test_origin_anchored_at_first_frame(self):
        asm = WindowAssembler(1.0)
        asm.add(frame(10.0))
        assert asm.window_index(10.0) == 0
        assert asm.window_index(10.999) == 0
        assert asm.window_index(11.0) == 1
        assert asm.window_index(25.5) == 15

    def test_negative_indices_for_pre_origin_frames(self):
        asm = WindowAssembler(1.0)
        asm.add(frame(10.0))
        assert asm.window_index(9.5) == -1
        assert asm.window_index(7.0) == -3

    def test_no_origin_before_first_frame(self):
        asm = WindowAssembler(1.0)
        with pytest.raises(StreamError):
            asm.window_index(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(StreamError):
            WindowAssembler(0.0)
        with pytest.raises(StreamError):
            WindowAssembler(1.0, grace_seconds=-0.1)


class TestSealing:
    def test_window_seals_when_watermark_passes_end(self):
        asm = WindowAssembler(1.0)
        assert asm.add(frame(0.0)) == []
        assert asm.add(frame(0.9)) == []
        sealed = asm.add(frame(1.0))
        assert [(i, [f[0] for f in fs]) for i, fs in sealed] == \
            [(0, [0.0, 0.9])]

    def test_grace_period_delays_sealing(self):
        asm = WindowAssembler(1.0, grace_seconds=0.5)
        asm.add(frame(0.0))
        assert asm.add(frame(1.2)) == []  # within grace of window 0
        sealed = asm.add(frame(1.5))  # watermark reaches end + grace
        assert [i for i, _ in sealed] == [0]

    def test_one_arrival_can_seal_several_windows_in_order(self):
        asm = WindowAssembler(1.0, grace_seconds=1.0)
        asm.add(frame(0.0))
        assert asm.add(frame(1.2)) == []  # grace holds window 0 open
        assert [i for i, _ in asm.add(frame(2.1))] == [0]
        sealed = asm.add(frame(4.5))  # watermark clears windows 1 and 2
        assert [i for i, _ in sealed] == [1, 2]

    def test_out_of_order_within_grace_is_assigned(self):
        asm = WindowAssembler(1.0, grace_seconds=1.0)
        asm.add(frame(0.0))
        asm.add(frame(1.4))
        assert asm.add(frame(0.5)) == []  # window 0 not sealed yet
        sealed = asm.flush()
        assert [f[0] for f in dict(sealed)[0]] == [0.0, 0.5]


class TestLateDrops:
    def test_frame_below_floor_is_dropped_and_counted(self):
        asm = WindowAssembler(1.0)
        asm.add(frame(0.0))
        asm.add(frame(1.0))  # seals window 0
        assert asm.late_dropped == 0
        assert asm.add(frame(0.2)) == []
        assert asm.late_dropped == 1

    def test_late_frames_never_reopen_sealed_windows(self):
        asm = WindowAssembler(1.0)
        asm.add(frame(0.0))
        asm.add(frame(2.5))  # seals windows 0 (1 empty, skipped)
        asm.add(frame(0.9))
        assert asm.pending_frames == 1  # only the t=2.5 frame buffered
        assert asm.late_dropped == 1


class TestFlush:
    def test_flush_seals_all_pending_in_order(self):
        asm = WindowAssembler(1.0, grace_seconds=10.0)
        for t in (0.0, 2.2, 1.1):
            asm.add(frame(t))
        sealed = asm.flush()
        assert [i for i, _ in sealed] == [0, 1, 2]
        assert asm.pending_windows == 0

    def test_flush_advances_floor(self):
        asm = WindowAssembler(1.0)
        asm.add(frame(0.0))
        asm.flush()
        asm.add(frame(0.5))
        assert asm.late_dropped == 1

    def test_flush_empty_is_noop(self):
        asm = WindowAssembler(1.0)
        assert asm.flush() == []


class TestState:
    def test_roundtrip_preserves_behaviour(self):
        asm = WindowAssembler(1.0, grace_seconds=0.5)
        for t in (0.0, 0.4, 1.2, 1.9):
            asm.add(frame(t))
        restored = WindowAssembler.from_state(asm.export_state())
        # Both must now adjudicate the same frames identically.
        for probe in (2.0, 0.1, 3.0):
            assert asm.add(frame(probe)) == restored.add(frame(probe))
        assert asm.late_dropped == restored.late_dropped
        assert asm.flush() == restored.flush()

    def test_state_format_is_tagged(self):
        asm = WindowAssembler(1.0)
        assert asm.export_state()["format"] == ASSEMBLER_STATE_FORMAT

    def test_rejects_foreign_payloads(self):
        with pytest.raises(StreamError):
            WindowAssembler.from_state({"format": "something-else"})
        with pytest.raises(StreamError):
            WindowAssembler.from_state("not a dict")
