"""StreamIngestService: end-to-end serve, kill-and-resume identity,
checkpoint plumbing and the stream.* counter contract."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.incremental import IncrementalRunner, split_into_windows
from repro.core.params import config_from_dict
from repro.engine import EngineContext
from repro.obs import MetricsRegistry
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.stream import (
    ReplaySource,
    StreamCheckpointer,
    StreamConfig,
    StreamError,
    StreamIngestService,
)
from repro.testing.generator import generate_journey_case


def journey(seed=5, lossy=False):
    case = generate_journey_case(random.Random(seed), lossy=lossy)
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    return case, ctx, config


def sorted_rows(table):
    return sorted(table.collect(), key=repr)


def batch_rows(ctx, config, records, window_seconds):
    runner = IncrementalRunner(config)
    for window in split_into_windows(list(records), window_seconds):
        runner.process_window(
            ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
        )
    return sorted_rows(runner.finalize(ctx).r_out)


STREAM = StreamConfig(window_seconds=1.0, grace_seconds=5.0,
                      checkpoint_every=13)


class TestServe:
    def test_clean_serve_matches_batch_windowing(self, tmp_path):
        case, ctx, config = journey()
        service = StreamIngestService(tmp_path, STREAM)
        service.add_vehicle("v", ReplaySource(case.records), config, ctx)
        result = asyncio.run(service.serve())
        assert not result.killed
        assert result.sessions["v"]["drained"]
        assert sorted_rows(service.finalize_all()["v"].r_out) == \
            batch_rows(ctx, config, case.records, 1.0)

    def test_multiple_vehicles_serve_independently(self, tmp_path):
        case_a, ctx, config_a = journey(seed=5)
        case_b, _, _ = journey(seed=6)
        config_b = config_from_dict(case_b.params, case_b.database)
        service = StreamIngestService(tmp_path, STREAM)
        service.add_vehicle("a", ReplaySource(case_a.records), config_a, ctx)
        service.add_vehicle("b", ReplaySource(case_b.records), config_b, ctx)
        result = asyncio.run(service.serve())
        assert not result.killed
        finals = service.finalize_all()
        assert sorted_rows(finals["a"].r_out) == \
            batch_rows(ctx, config_a, case_a.records, 1.0)
        assert sorted_rows(finals["b"].r_out) == \
            batch_rows(ctx, config_b, case_b.records, 1.0)

    def test_serve_without_vehicles_is_an_error(self, tmp_path):
        service = StreamIngestService(tmp_path, STREAM)
        with pytest.raises(StreamError):
            asyncio.run(service.serve())

    def test_duplicate_vehicle_is_an_error(self, tmp_path):
        case, ctx, config = journey()
        service = StreamIngestService(tmp_path, STREAM)
        service.add_vehicle("v", ReplaySource(case.records), config, ctx)
        with pytest.raises(StreamError):
            service.add_vehicle("v", ReplaySource(case.records), config, ctx)

    def test_config_validation(self):
        with pytest.raises(StreamError):
            StreamConfig(window_seconds=0)
        with pytest.raises(StreamError):
            StreamConfig(grace_seconds=-1)
        with pytest.raises(StreamError):
            StreamConfig(queue_capacity=0)
        with pytest.raises(StreamError):
            StreamConfig(checkpoint_every=-1)


class TestKillAndResume:
    @pytest.mark.parametrize("seed,lossy", [(5, False), (9, True), (21, True)])
    def test_byte_identical_output_and_exact_redelivery(
        self, tmp_path, seed, lossy
    ):
        """The tentpole guarantee: kill at an arbitrary committed
        checkpoint + replay of undelivered frames == uninterrupted run,
        with the re-delivery count exactly observable via stream.*."""
        case, ctx, config = journey(seed, lossy)
        baseline = batch_rows(ctx, config, case.records, 1.0)
        total = len(case.records)
        kill_at = total // 2 or 1

        run_dir = tmp_path / "run"
        metrics_1 = MetricsRegistry()
        service_1 = StreamIngestService(run_dir, STREAM, metrics=metrics_1)
        service_1.add_vehicle("v", ReplaySource(case.records), config, ctx)
        result_1 = asyncio.run(service_1.serve(max_frames=kill_at))
        assert result_1.killed
        assert result_1.frames_delivered == kill_at

        metrics_2 = MetricsRegistry()
        service_2 = StreamIngestService(run_dir, STREAM, metrics=metrics_2)
        service_2.add_vehicle("v", ReplaySource(case.records), config, ctx)
        result_2 = asyncio.run(service_2.serve())
        assert not result_2.killed
        assert sorted_rows(service_2.finalize_all()["v"].r_out) == baseline

        # Exact re-delivery accounting from the counters alone: the
        # resumed run skips exactly the checkpointed frames and
        # re-delivers exactly those the kill cut off after the last
        # committed snapshot.
        received_1 = metrics_1.counters()["stream.frames_received"]
        counters_2 = metrics_2.counters()
        skipped = counters_2.get("stream.resume.frames_skipped", 0)
        received_2 = counters_2["stream.frames_received"]
        # A kill before the first periodic commit resumes from scratch
        # (0 sessions, 0 skipped); otherwise exactly one session resumes.
        committed_before_kill = kill_at >= STREAM.checkpoint_every
        assert counters_2.get("stream.resume.sessions", 0) == \
            (1 if committed_before_kill else 0)
        assert received_1 == kill_at
        assert skipped <= kill_at  # only committed work is skipped
        assert received_2 == total - skipped
        redelivered = received_1 - skipped
        assert redelivered == kill_at - skipped >= 0
        assert result_2.sessions["v"]["resumed_from"] == skipped

    def test_every_checkpoint_is_a_valid_kill_point(self, tmp_path):
        """Sweep several kill points (including before the first
        periodic checkpoint) -- all must resume byte-identically."""
        case, ctx, config = journey(seed=3, lossy=True)
        baseline = batch_rows(ctx, config, case.records, 1.0)
        total = len(case.records)
        for kill_at in sorted({1, 5, total // 3, 2 * total // 3}):
            run_dir = tmp_path / "run-{}".format(kill_at)
            service_1 = StreamIngestService(run_dir, STREAM)
            service_1.add_vehicle(
                "v", ReplaySource(case.records), config, ctx
            )
            assert asyncio.run(service_1.serve(max_frames=kill_at)).killed
            service_2 = StreamIngestService(run_dir, STREAM)
            service_2.add_vehicle(
                "v", ReplaySource(case.records), config, ctx
            )
            assert not asyncio.run(service_2.serve()).killed
            assert sorted_rows(service_2.finalize_all()["v"].r_out) == \
                baseline, "diverged at kill point {}".format(kill_at)

    def test_finalize_of_killed_service_is_refused(self, tmp_path):
        case, ctx, config = journey()
        service = StreamIngestService(tmp_path, STREAM)
        service.add_vehicle("v", ReplaySource(case.records), config, ctx)
        assert asyncio.run(service.serve(max_frames=3)).killed
        with pytest.raises(StreamError):
            service.finalize_all()


class TestCheckpointer:
    def test_manifest_roundtrip(self, tmp_path):
        checkpointer = StreamCheckpointer(tmp_path)
        checkpointer.write_manifest({"dataset": "SYN", "vehicles": {}})
        manifest = checkpointer.read_manifest()
        assert manifest["dataset"] == "SYN"

    def test_missing_manifest_is_a_stream_error(self, tmp_path):
        with pytest.raises(StreamError):
            StreamCheckpointer(tmp_path / "nope").read_manifest()

    def test_corrupt_manifest_is_a_stream_error(self, tmp_path):
        (tmp_path / "stream.json").write_text("{not json")
        with pytest.raises(StreamError):
            StreamCheckpointer(tmp_path).read_manifest()

    def test_wrong_format_tag_is_a_stream_error(self, tmp_path):
        (tmp_path / "stream.json").write_text('{"format": "other/9"}')
        with pytest.raises(StreamError):
            StreamCheckpointer(tmp_path).read_manifest()

    def test_session_ids_and_mtime_after_serve(self, tmp_path):
        case, ctx, config = journey()
        service = StreamIngestService(tmp_path, STREAM)
        service.add_vehicle("v", ReplaySource(case.records), config, ctx)
        asyncio.run(service.serve())
        checkpointer = StreamCheckpointer(tmp_path)
        assert checkpointer.session_ids() == ["v"]
        assert checkpointer.checkpoint_mtime("v") is not None
        assert checkpointer.checkpoint_mtime("ghost") is None
        payload = checkpointer.session_payload("v")
        assert payload["drained"] is True
        assert payload["frames_ingested"] == len(case.records)

    def test_foreign_checkpoint_payload_is_rejected(self, tmp_path):
        from repro.stream import session_job_id

        checkpointer = StreamCheckpointer(tmp_path)
        checkpointer.store.save(session_job_id("v"), {"format": "other"})
        _case, ctx, config = journey()
        with pytest.raises(StreamError):
            checkpointer.load_session("v", config, ctx)
