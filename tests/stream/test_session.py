"""VehicleSession: streaming ingest equals batch windowing, and state
snapshots restore it exactly."""

from __future__ import annotations

import random

import pytest

from repro.core.incremental import IncrementalRunner, split_into_windows
from repro.core.params import config_from_dict
from repro.engine import EngineContext
from repro.obs import MetricsRegistry
from repro.protocols.frames import BYTE_RECORD_COLUMNS
from repro.stream import StreamError, VehicleSession
from repro.testing.generator import generate_journey_case


def journey(seed=7, lossy=False):
    case = generate_journey_case(random.Random(seed), lossy=lossy)
    ctx = EngineContext.serial(default_parallelism=3)
    config = config_from_dict(case.params, case.database)
    return case, ctx, config


def sorted_rows(table):
    return sorted(table.collect(), key=repr)


def batch_rows(ctx, config, records, window_seconds):
    runner = IncrementalRunner(config)
    for window in split_into_windows(list(records), window_seconds):
        runner.process_window(
            ctx.table_from_rows(list(BYTE_RECORD_COLUMNS), window)
        )
    return sorted_rows(runner.finalize(ctx).r_out)


def ingest_all(session, records):
    for record in records:
        session.ingest(record[2], record)


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("seed,lossy", [(7, False), (11, True)])
    def test_finalize_matches_split_into_windows(self, seed, lossy):
        case, ctx, config = journey(seed, lossy)
        session = VehicleSession("v", config, ctx, 1.0, grace_seconds=5.0)
        ingest_all(session, case.records)
        streamed = sorted_rows(session.finalize().r_out)
        assert streamed == batch_rows(ctx, config, case.records, 1.0)

    def test_metrics_are_recorded(self):
        case, ctx, config = journey()
        metrics = MetricsRegistry()
        session = VehicleSession("v", config, ctx, 1.0, grace_seconds=5.0,
                                 metrics=metrics)
        ingest_all(session, case.records)
        session.drain()
        counters = metrics.counters()
        assert counters["stream.frames_received"] == len(case.records)
        channel = case.records[0][2]
        assert counters[
            "stream.frames_received.{}".format(channel)
        ] == len(case.records)
        assert counters["stream.windows_sealed"] == session.windows_sealed


class TestCursors:
    def test_cursor_counts_delivered_frames_per_channel(self):
        case, ctx, config = journey()
        session = VehicleSession("v", config, ctx, 1.0)
        channel = case.records[0][2]
        ingest_all(session, case.records[:5])
        assert session.cursor(channel) == 5
        assert session.cursor("other") == 0

    def test_late_drops_still_advance_the_cursor(self):
        """The cursor tracks transport delivery, not window acceptance:
        a resumed receiver must never re-deliver an adjudicated frame."""
        _case, ctx, config = journey()
        session = VehicleSession("v", config, ctx, 1.0)
        session.ingest("FC", (0.0, b"\x00", "FC", 999, ()))
        session.ingest("FC", (2.5, b"\x00", "FC", 999, ()))  # seals w0
        session.ingest("FC", (0.1, b"\x00", "FC", 999, ()))  # late drop
        assert session.late_dropped == 1
        assert session.cursor("FC") == 3


class TestDrain:
    def test_ingest_after_drain_is_an_error(self):
        _case, ctx, config = journey()
        session = VehicleSession("v", config, ctx, 1.0)
        session.ingest("FC", (0.0, b"\x00", "FC", 999, ()))
        session.drain()
        with pytest.raises(StreamError):
            session.ingest("FC", (5.0, b"\x00", "FC", 999, ()))

    def test_drain_is_idempotent(self):
        _case, ctx, config = journey()
        session = VehicleSession("v", config, ctx, 1.0)
        session.ingest("FC", (0.0, b"\x00", "FC", 999, ()))
        assert session.drain() == 1
        assert session.drain() == 0


class TestState:
    def test_roundtrip_mid_stream_is_exact(self):
        case, ctx, config = journey(seed=13, lossy=True)
        half = len(case.records) // 2
        session = VehicleSession("v", config, ctx, 1.0, grace_seconds=5.0)
        ingest_all(session, case.records[:half])
        restored = VehicleSession.from_state(
            session.export_state(), config, ctx
        )
        assert restored.channel_cursors == session.channel_cursors
        ingest_all(session, case.records[half:])
        ingest_all(restored, case.records[half:])
        assert sorted_rows(session.finalize().r_out) == \
            sorted_rows(restored.finalize().r_out)

    def test_rejects_foreign_payloads(self):
        _case, ctx, config = journey()
        with pytest.raises(StreamError):
            VehicleSession.from_state({"format": "nope"}, config, ctx)
