"""SWAB / bottom-up / sliding-window segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Segment,
    bottom_up,
    fit_segment,
    segments_cover,
    sliding_window,
    swab,
)


def piecewise_signal():
    """Three clean linear pieces: up, flat, down."""
    return np.concatenate(
        [np.linspace(0, 10, 40), np.full(30, 10.0), np.linspace(10, 0, 40)]
    )


class TestFitSegment:
    def test_perfect_line_zero_error(self):
        seg = fit_segment([0.0, 1.0, 2.0, 3.0], 0, 3)
        assert seg.error == pytest.approx(0.0, abs=1e-12)
        assert seg.slope == pytest.approx(1.0)
        assert seg.intercept == pytest.approx(0.0)

    def test_single_point(self):
        seg = fit_segment([5.0], 0, 0)
        assert seg.slope == 0.0
        assert seg.intercept == 5.0
        assert seg.length == 1

    def test_value_at_uses_local_index(self):
        seg = fit_segment([0.0, 2.0, 4.0, 6.0], 2, 3)
        assert seg.value_at(2) == pytest.approx(4.0)
        assert seg.value_at(3) == pytest.approx(6.0)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            fit_segment([], 0, -1)


class TestBottomUp:
    def test_recovers_three_pieces(self):
        segments = bottom_up(piecewise_signal(), max_error=0.5)
        assert len(segments) == 3
        assert segments_cover(segments, 110)

    def test_zero_budget_keeps_fine_segments(self):
        noisy = np.array([0.0, 5.0, 1.0, 6.0, 2.0, 7.0])
        segments = bottom_up(noisy, max_error=0.0)
        assert len(segments) == 3  # initial pairs, no merge possible

    def test_huge_budget_merges_to_one(self):
        segments = bottom_up(piecewise_signal(), max_error=1e9)
        assert len(segments) == 1

    def test_empty_input(self):
        assert bottom_up([], max_error=1.0) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            bottom_up([1.0], max_error=-1)


class TestSlidingWindow:
    def test_recovers_pieces(self):
        segments = sliding_window(piecewise_signal(), max_error=0.5)
        assert segments_cover(segments, 110)
        assert len(segments) <= 5  # may fragment slightly at breakpoints

    def test_each_segment_within_budget(self):
        values = piecewise_signal()
        for seg in sliding_window(values, max_error=0.5):
            if seg.length > 2:
                assert fit_segment(values, seg.start, seg.end).error <= 0.5


class TestSwab:
    def test_covers_input(self):
        values = piecewise_signal()
        segments = swab(values, max_error=0.5)
        assert segments_cover(segments, len(values))

    def test_finds_flat_middle(self):
        segments = swab(piecewise_signal(), max_error=0.5)
        flat = [s for s in segments if abs(s.slope) < 0.01]
        assert flat, "expected a near-flat segment"

    def test_slopes_signs_match_shape(self):
        segments = swab(piecewise_signal(), max_error=0.5, buffer_size=50)
        assert segments[0].slope > 0
        assert segments[-1].slope < 0

    def test_empty_input(self):
        assert swab([], max_error=1.0) == []

    def test_short_input_single_segment(self):
        segments = swab([1.0, 2.0], max_error=10.0)
        assert segments_cover(segments, 2)

    def test_online_matches_buffer_sizes(self):
        """Different buffer sizes must still produce full covers."""
        values = piecewise_signal()
        for buffer_size in (10, 25, 60):
            segments = swab(values, 0.5, buffer_size=buffer_size)
            assert segments_cover(segments, len(values))


class TestSegment:
    def test_length(self):
        assert Segment(3, 7, 0.0, 0.0, 0.0).length == 5


@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    max_error=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_property_swab_always_covers(values, max_error):
    segments = swab(values, max_error)
    assert segments_cover(segments, len(values))


@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    max_error=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_property_bottom_up_always_covers(values, max_error):
    segments = bottom_up(values, max_error)
    assert segments_cover(segments, len(values))
