"""SAX: normalization, PAA, breakpoints, words and MINDIST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SaxEncoder, gaussian_breakpoints, paa, znormalize
from repro.analysis.sax import SaxError, symbolize_value


class TestBreakpoints:
    def test_known_alphabet_3(self):
        lo, hi = gaussian_breakpoints(3)
        assert lo == pytest.approx(-0.4307, abs=1e-3)
        assert hi == pytest.approx(0.4307, abs=1e-3)

    def test_known_alphabet_4(self):
        bps = gaussian_breakpoints(4)
        assert bps[0] == pytest.approx(-0.6745, abs=1e-3)
        assert bps[1] == pytest.approx(0.0, abs=1e-12)

    def test_count_is_size_minus_one(self):
        for size in range(2, 10):
            assert len(gaussian_breakpoints(size)) == size - 1

    def test_monotone(self):
        bps = gaussian_breakpoints(8)
        assert list(bps) == sorted(bps)

    def test_invalid_size_rejected(self):
        with pytest.raises(SaxError):
            gaussian_breakpoints(1)
        with pytest.raises(SaxError):
            gaussian_breakpoints(99)


class TestZNormalize:
    def test_zero_mean_unit_std(self):
        z = znormalize([1.0, 2.0, 3.0, 4.0])
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_series_to_zeros(self):
        assert np.all(znormalize([5.0, 5.0, 5.0]) == 0.0)

    def test_empty(self):
        assert znormalize([]).size == 0


class TestPaa:
    def test_divisible_lengths_average_blocks(self):
        out = paa([1.0, 1.0, 5.0, 5.0], 2)
        assert list(out) == [1.0, 5.0]

    def test_same_length_is_identity(self):
        out = paa([1.0, 2.0, 3.0], 3)
        assert list(out) == [1.0, 2.0, 3.0]

    def test_non_divisible_fractional_cover(self):
        out = paa([1.0, 2.0, 3.0, 4.0, 5.0], 2)
        # First segment covers samples 1,2 and half of 3.
        assert out[0] == pytest.approx(1.8)
        assert out[1] == pytest.approx(4.2)

    def test_mean_preserved(self):
        x = np.linspace(0, 10, 30)
        assert paa(x, 7).mean() == pytest.approx(x.mean())

    def test_invalid_segments_rejected(self):
        with pytest.raises(SaxError):
            paa([1.0], 0)
        with pytest.raises(SaxError):
            paa([], 2)


class TestSymbolize:
    def test_bins(self):
        bps = gaussian_breakpoints(3)
        assert symbolize_value(-2.0, bps) == 0
        assert symbolize_value(0.0, bps) == 1
        assert symbolize_value(2.0, bps) == 2


class TestSaxEncoder:
    def test_word_length_and_alphabet(self):
        enc = SaxEncoder(alphabet_size=4, word_length=8)
        word = enc.encode_word(np.sin(np.linspace(0, 6.28, 100)))
        assert len(word) == 8
        assert set(word) <= set("abcd")

    def test_ramp_word_is_nondecreasing(self):
        enc = SaxEncoder(alphabet_size=5, word_length=5)
        word = enc.encode_word(np.linspace(0, 1, 50))
        assert list(word) == sorted(word)

    def test_encode_values_per_sample(self):
        enc = SaxEncoder(alphabet_size=3)
        symbols = enc.encode_values([0.0, 0.0, 100.0])
        assert len(symbols) == 3
        assert symbols[2] == "c"

    def test_symbol_for_level_external_stats(self):
        enc = SaxEncoder(alphabet_size=3)
        assert enc.symbol_for_level(0.0, mean=0.0, std=1.0) == "b"
        assert enc.symbol_for_level(5.0, mean=0.0, std=1.0) == "c"
        assert enc.symbol_for_level(-5.0, mean=0.0, std=1.0) == "a"

    def test_symbol_for_level_zero_std(self):
        enc = SaxEncoder(alphabet_size=3)
        assert enc.symbol_for_level(7.0, mean=7.0, std=0.0) == "b"

    def test_invalid_word_length_rejected(self):
        with pytest.raises(SaxError):
            SaxEncoder(word_length=0)


class TestMindist:
    def test_identical_words_zero(self):
        enc = SaxEncoder(alphabet_size=4, word_length=4)
        assert enc.mindist("abcd", "abcd", 100) == 0.0

    def test_adjacent_symbols_zero(self):
        """MINDIST treats adjacent symbols as distance 0 (Lin et al.)."""
        enc = SaxEncoder(alphabet_size=4, word_length=2)
        assert enc.mindist("ab", "ba", 100) == 0.0

    def test_distant_symbols_positive(self):
        enc = SaxEncoder(alphabet_size=4, word_length=2)
        assert enc.mindist("aa", "dd", 100) > 0.0

    def test_symmetry(self):
        enc = SaxEncoder(alphabet_size=5, word_length=3)
        assert enc.mindist("ace", "eca", 60) == enc.mindist("eca", "ace", 60)

    def test_length_mismatch_rejected(self):
        enc = SaxEncoder(alphabet_size=4, word_length=2)
        with pytest.raises(SaxError):
            enc.mindist("ab", "abc", 10)

    def test_lower_bounds_euclidean(self):
        """MINDIST(word_a, word_b) <= Euclidean distance of the series."""
        rng = np.random.default_rng(7)
        enc = SaxEncoder(alphabet_size=6, word_length=8)
        a = rng.normal(0, 1, 64)
        b = rng.normal(0, 1, 64)
        na, nb = znormalize(a), znormalize(b)
        euclid = float(np.sqrt(((na - nb) ** 2).sum()))
        bound = enc.mindist(enc.encode_word(a), enc.encode_word(b), 64)
        assert bound <= euclid + 1e-9


@given(
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=100,
    ),
    alphabet=st.integers(min_value=2, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_property_word_symbols_in_alphabet(values, alphabet):
    enc = SaxEncoder(alphabet_size=alphabet, word_length=4)
    word = enc.encode_word(values)
    allowed = "abcdefghijklmnopqrstuvwxyz"[:alphabet]
    assert set(word) <= set(allowed)
