"""Outlier detectors, smoothing filters and trend classification."""

import numpy as np
import pytest

from repro.analysis import (
    DECREASING,
    ExponentialSmoothing,
    HampelDetector,
    INCREASING,
    IqrDetector,
    MedianFilter,
    MovingAverage,
    STEADY,
    TrendClassifier,
    ZScoreDetector,
    gradient,
    split_outliers,
)
from repro.analysis.outliers import OutlierError
from repro.analysis.smoothing import SmoothingError


def spiky_series():
    rng = np.random.default_rng(1)
    x = rng.normal(0, 1, 200)
    x[50] = 40.0
    x[120] = -35.0
    return x


class TestZScore:
    def test_finds_planted_spikes(self):
        mask = ZScoreDetector(threshold=3.5).mask(spiky_series())
        assert mask[50] and mask[120]
        assert mask.sum() == 2

    def test_constant_series_no_outliers(self):
        assert not ZScoreDetector().mask([5.0] * 10).any()

    def test_empty(self):
        assert ZScoreDetector().mask([]).size == 0

    def test_invalid_threshold(self):
        with pytest.raises(OutlierError):
            ZScoreDetector(threshold=0)


class TestIqr:
    def test_finds_planted_spikes(self):
        mask = IqrDetector(k=3.0).mask(spiky_series())
        assert mask[50] and mask[120]

    def test_degenerate_distribution(self):
        x = [5.0] * 50 + [100.0]
        mask = IqrDetector().mask(x)
        assert mask[-1]
        assert mask.sum() == 1

    def test_all_equal(self):
        assert not IqrDetector().mask([3.0] * 20).any()


class TestHampel:
    def test_finds_local_spike_in_trend(self):
        # A global z-score misses a spike riding a strong trend; the
        # rolling Hampel filter catches it.
        x = np.linspace(0, 100, 200)
        x[100] += 30.0
        assert HampelDetector(window=11, threshold=3.0).mask(x)[100]

    def test_window_validation(self):
        with pytest.raises(OutlierError):
            HampelDetector(window=4)
        with pytest.raises(OutlierError):
            HampelDetector(window=1)


class TestSplitOutliers:
    def test_partition_preserves_everything(self):
        values = list(spiky_series())
        rows = list(enumerate(values))
        out_rows, clean_rows = split_outliers(rows, values, ZScoreDetector())
        assert len(out_rows) + len(clean_rows) == len(rows)
        assert {r[0] for r in out_rows} == {50, 120}


class TestMovingAverage:
    def test_same_length(self):
        out = MovingAverage(5).smooth([1.0] * 10)
        assert out.size == 10

    def test_reduces_variance(self):
        x = spiky_series()
        assert MovingAverage(7).smooth(x).var() < x.var()

    def test_window_one_identity(self):
        x = [1.0, 9.0, 2.0]
        assert list(MovingAverage(1).smooth(x)) == x

    def test_known_values(self):
        out = MovingAverage(3).smooth([1.0, 2.0, 3.0, 4.0, 5.0])
        assert list(out) == [1.5, 2.0, 3.0, 4.0, 4.5]

    def test_invalid_window(self):
        with pytest.raises(SmoothingError):
            MovingAverage(0)


class TestExponentialSmoothing:
    def test_first_value_kept(self):
        out = ExponentialSmoothing(0.5).smooth([10.0, 0.0])
        assert out[0] == 10.0
        assert out[1] == 5.0

    def test_alpha_one_identity(self):
        x = [1.0, 5.0, 2.0]
        assert list(ExponentialSmoothing(1.0).smooth(x)) == x

    def test_invalid_alpha(self):
        with pytest.raises(SmoothingError):
            ExponentialSmoothing(0.0)


class TestMedianFilter:
    def test_removes_single_spike(self):
        x = [1.0, 1.0, 50.0, 1.0, 1.0]
        out = MedianFilter(3).smooth(x)
        assert out[2] == 1.0

    def test_even_window_rejected(self):
        with pytest.raises(SmoothingError):
            MedianFilter(4)


class TestTrendClassifier:
    def test_slope_labels(self):
        tc = TrendClassifier(steady_threshold=0.1)
        assert tc.classify_slope(1.0) == INCREASING
        assert tc.classify_slope(-1.0) == DECREASING
        assert tc.classify_slope(0.05) == STEADY

    def test_gradient_labels_follow_shape(self):
        tc = TrendClassifier(steady_threshold=0.1)
        labels = tc.classify_gradient([0.0, 1.0, 2.0, 2.0, 2.0, 1.0, 0.0])
        assert labels[0] == INCREASING
        assert labels[3] == STEADY
        assert labels[-1] == DECREASING

    def test_single_value_steady(self):
        assert TrendClassifier().classify_gradient([5.0]) == [STEADY]

    def test_empty(self):
        assert TrendClassifier().classify_gradient([]) == []


class TestGradient:
    def test_linear_series_constant_gradient(self):
        assert gradient([0.0, 2.0, 4.0]) == [2.0, 2.0, 2.0]

    def test_single_value(self):
        assert gradient([7.0]) == [0.0]

    def test_empty(self):
        assert gradient([]) == []
