"""The sequential in-house tool: Table 6's baseline properties."""

import pytest

from repro.baseline import InHouseError, InHouseTool


@pytest.fixture
def tool(wiper_simulation):
    return InHouseTool(wiper_simulation.database)


@pytest.fixture
def journey(wiper_simulation):
    return wiper_simulation.byte_records(20.0)


class TestIngest:
    def test_scans_every_row(self, tool, journey):
        stats = tool.ingest(journey)
        assert stats.rows_scanned == len(journey)

    def test_interprets_all_signals_not_just_requested(self, tool, journey):
        tool.ingest(journey)
        # The store holds every documented signal, relevant or not.
        assert set(tool.known_signals()) == {"wpos", "wvel", "heat", "belt"}

    def test_extraction_values_match_database_truth(
        self, tool, journey, wiper_simulation
    ):
        tool.ingest(journey)
        extracted = tool.extract(["wpos"])["wpos"]
        wiper = wiper_simulation.database.message("FC", 3)
        truth = [
            (t, wiper.decode(payload)["wpos"], b_id)
            for t, payload, b_id, m_id, _mi in journey
            if m_id == 3
        ]
        assert extracted == truth

    def test_unknown_messages_skipped(self, tool):
        stats = tool.ingest([(0.0, b"\x00", "XX", 0x7F0, ())])
        assert stats.rows_scanned == 1
        assert tool.extract(["wpos"])["wpos"] == []

    def test_multiple_journeys_accumulate(self, tool, journey):
        tool.ingest_journeys([journey, journey])
        assert tool.stats.rows_scanned == 2 * len(journey)

    def test_extract_before_ingest_raises(self, tool):
        with pytest.raises(InHouseError):
            tool.extract(["wpos"])

    def test_clear_resets(self, tool, journey):
        tool.ingest(journey)
        tool.clear()
        assert tool.stats.rows_scanned == 0
        with pytest.raises(InHouseError):
            tool.extract(["wpos"])


class TestBaselineScalingProperties:
    """The two properties Table 6's comparison rests on."""

    def test_work_independent_of_extracted_signal_count(self, wiper_simulation, journey):
        a = InHouseTool(wiper_simulation.database)
        a.ingest(journey)
        work_before = a.stats.signals_interpreted
        a.extract(["wpos"])
        a.extract(["wpos", "wvel", "heat", "belt"])
        # extract() does no interpretation work at all.
        assert a.stats.signals_interpreted == work_before

    def test_work_linear_in_rows(self, wiper_simulation):
        short = wiper_simulation.byte_records(10.0)
        long = wiper_simulation.byte_records(30.0)
        a = InHouseTool(wiper_simulation.database)
        a.ingest(short)
        b = InHouseTool(wiper_simulation.database)
        b.ingest(long)
        ratio = b.stats.signals_interpreted / a.stats.signals_interpreted
        rows_ratio = len(long) / len(short)
        assert ratio == pytest.approx(rows_ratio, rel=0.1)
