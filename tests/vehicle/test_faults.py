"""Fault injection and end-to-end detectability through the pipeline."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    CycleViolationExtension,
    ExtensionSet,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedWithinCycle,
)
from repro.mining import find_cycle_violations
from repro.protocols import can
from repro.vehicle.faults import (
    EcuReset,
    FaultError,
    InjectionEvent,
    MessageDropout,
    PayloadCorruption,
    StuckSignal,
    inject,
)


@pytest.fixture
def frames(wiper_simulation):
    return wiper_simulation.run(30.0)


def count_message(frames, channel, message_id):
    return sum(
        1 for f in frames if f.channel == channel and f.message_id == message_id
    )


class TestMessageDropout:
    def test_drops_expected_count(self, frames):
        before = count_message(frames, "FC", 3)
        out, report = inject(
            frames, [MessageDropout("FC", 3, burst_length=5, num_bursts=2)]
        )
        after = count_message(out, "FC", 3)
        # Bursts may overlap, so between 5 and 10 frames vanish.
        assert 5 <= before - after <= 10
        assert 1 <= len(report.by_fault("dropout")) <= 2

    def test_other_messages_untouched(self, frames):
        before = count_message(frames, "FC", 7)
        out, _report = inject(frames, [MessageDropout("FC", 3)])
        assert count_message(out, "FC", 7) == before

    def test_deterministic_for_seed(self, frames):
        a, _ra = inject(frames, [MessageDropout("FC", 3)], seed=5)
        b, _rb = inject(frames, [MessageDropout("FC", 3)], seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(FaultError):
            MessageDropout("FC", 3, burst_length=0)


class TestStuckSignal:
    def test_payload_frozen_in_window(self, frames):
        out, report = inject(
            frames, [StuckSignal("FC", 3, start=5.0, duration=5.0)]
        )
        window = [
            f.payload
            for f in out
            if f.channel == "FC" and f.message_id == 3
            and 5.0 <= f.timestamp < 10.0
        ]
        assert len(set(window)) == 1
        assert len(report.by_fault("stuck")) == 1

    def test_outside_window_unfrozen(self, frames):
        out, _report = inject(
            frames, [StuckSignal("FC", 3, start=5.0, duration=5.0)]
        )
        outside = [
            f.payload
            for f in out
            if f.channel == "FC" and f.message_id == 3 and f.timestamp >= 10.0
        ]
        assert len(set(outside)) > 1


class TestPayloadCorruption:
    def test_corrupts_at_roughly_requested_rate(self, frames):
        out, report = inject(
            frames, [PayloadCorruption("FC", 3, rate=0.2)], seed=3
        )
        n = count_message(frames, "FC", 3)
        corrupted = len(report.by_fault("corruption"))
        assert 0.1 * n < corrupted < 0.35 * n

    def test_corruption_detected_by_crc(self, frames):
        out, report = inject(
            frames, [PayloadCorruption("FC", 3, rate=0.2)], seed=3
        )
        corrupted_times = set(report.timestamps("corruption"))
        failures = 0
        for frame in out:
            if frame.channel != "FC" or frame.message_id != 3:
                continue
            try:
                can.frame_from_record(frame)
            except can.CanError:
                failures += 1
                assert frame.timestamp in corrupted_times
        assert failures == len(corrupted_times)


class TestEcuReset:
    def test_channel_silenced_in_window(self, frames):
        out, report = inject(frames, [EcuReset("FC", start=10.0, duration=3.0)])
        in_window = [
            f for f in out if f.channel == "FC" and 10.0 <= f.timestamp < 13.0
        ]
        assert in_window == []
        assert len(report.by_fault("ecu_reset")) == 1

    def test_other_channels_unaffected(self, frames):
        out, _report = inject(frames, [EcuReset("FC", 10.0, 3.0)])
        klin = [
            f for f in out if f.channel == "K-LIN" and 10.0 <= f.timestamp < 13.0
        ]
        assert klin


class TestComposition:
    def test_multiple_faults_compose(self, frames):
        out, report = inject(
            frames,
            [
                MessageDropout("FC", 3, burst_length=3),
                StuckSignal("FC", 7, start=2.0, duration=4.0),
                EcuReset("K-LIN", 20.0, 2.0),
            ],
        )
        kinds = {e.fault for e in report.events}
        assert kinds == {"dropout", "stuck", "ecu_reset"}

    def test_injection_event_fields(self):
        e = InjectionEvent("dropout", 1.0, "FC", 3, "x")
        assert e.fault == "dropout"


class TestEndToEndDetection:
    def test_dropout_surfaces_as_cycle_violation(
        self, ctx, wiper_simulation, frames
    ):
        """The injected dropout must be found by the pipeline's
        cycle-violation extension at the right location."""
        faulted, report = inject(
            frames, [MessageDropout("FC", 3, burst_length=8, num_bursts=1)]
        )
        k_b = wiper_simulation.recorder.to_table(ctx, faulted)
        config = PipelineConfig(
            catalog=wiper_simulation.database.translation_catalog(["wvel"])
            .restrict_channels(["FC"]),
            constraints=ConstraintSet(
                (Constraint("wvel", True, (UnchangedWithinCycle(0.1),)),)
            ),
            extensions=ExtensionSet(
                (CycleViolationExtension("wvel", 0.1, tolerance=2.0),)
            ),
        )
        result = PreprocessingPipeline(config).run(k_b)
        violations = find_cycle_violations(result)
        assert violations
        injected_at = report.timestamps("dropout")[0]
        # One detected violation sits just after the injected gap.
        nearest = min(abs(v.timestamp - injected_at) for v in violations)
        assert nearest < 1.5
