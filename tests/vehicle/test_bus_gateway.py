"""Bus arbitration, gateway routing and the trace recorder."""

import pytest

from repro.protocols import can, flexray
from repro.protocols.frames import Frame
from repro.vehicle import Gateway, Route, TraceRecorder
from repro.vehicle.bus import (
    EthernetBus,
    FlexRayBus,
    can_bus,
    can_frame_time,
    lin_bus,
    lin_frame_time,
)
from repro.vehicle.gateway import GatewayError


def can_frame(t, m_id, payload=b"\x00", channel="FC"):
    return can.CanFrame(m_id, payload).to_frame(t, channel)


class TestFrameTimes:
    def test_can_frame_time_grows_with_dlc(self):
        assert can_frame_time(8) > can_frame_time(0)

    def test_can_frame_time_order_of_magnitude(self):
        # 8-byte frame at 500 kbit/s is roughly 130 bits ~ 260 µs.
        assert 1e-4 < can_frame_time(8) < 4e-4

    def test_lin_slower_than_can(self):
        assert lin_frame_time(8) > can_frame_time(8)


class TestPriorityBus:
    def test_uncontended_frames_delayed_by_transmission_time(self):
        bus = can_bus("FC")
        [out] = bus.arbitrate([can_frame(1.0, 0x10)])
        assert out.timestamp == pytest.approx(1.0 + can_frame_time(1))

    def test_simultaneous_frames_serialize_by_priority(self):
        bus = can_bus("FC")
        frames = [can_frame(1.0, 0x20), can_frame(1.0, 0x10)]
        out = bus.arbitrate(frames)
        assert [f.message_id for f in out] == [0x10, 0x20]
        assert out[1].timestamp > out[0].timestamp

    def test_overload_drops_frames(self):
        bus = can_bus("FC")
        bus.max_queue_delay = 0.0005
        frames = [can_frame(1.0, i, b"\x00" * 8) for i in range(1, 50)]
        out = bus.arbitrate(frames)
        assert len(out) < len(frames)

    def test_idle_bus_preserves_order(self):
        bus = can_bus("FC")
        frames = [can_frame(0.1, 5), can_frame(0.5, 4)]
        out = bus.arbitrate(frames)
        assert [f.message_id for f in out] == [5, 4]


class TestEthernetBus:
    def test_adds_latency(self):
        bus = EthernetBus("ETH", latency=0.001)
        frame = Frame(1.0, "ETH", "SOMEIP", 7, b"", ())
        [out] = bus.arbitrate([frame])
        assert out.timestamp == pytest.approx(1.001)


class TestFlexRayBus:
    def test_frames_snap_to_slot_grid(self):
        bus = FlexRayBus("FR", cycle_length=0.005, num_slots=10)
        frame = flexray.FlexRayFrame(3, 0, b"\x01\x02").to_frame(0.0017, "FR")
        [out] = bus.arbitrate([frame])
        slot_offset = (3 - 1) * 0.005 / 10
        # Next occurrence of slot 3 after 0.0017 s.
        assert (out.timestamp - slot_offset) % 0.005 == pytest.approx(0.0, abs=1e-9)
        assert out.timestamp >= 0.0017

    def test_cycle_counter_stamped(self):
        bus = FlexRayBus("FR", cycle_length=0.005, num_slots=10)
        frame = flexray.FlexRayFrame(1, 0, b"\x01\x02").to_frame(0.052, "FR")
        [out] = bus.arbitrate([frame])
        assert out.info_dict()["cycle"] == 11 % 64

    def test_same_slot_same_cycle_collision_resolved(self):
        bus = FlexRayBus("FR", cycle_length=0.005, num_slots=10)
        frames = [
            flexray.FlexRayFrame(1, 0, b"\x01\x02").to_frame(0.0, "FR"),
            flexray.FlexRayFrame(1, 0, b"\x03\x04").to_frame(0.0, "FR"),
        ]
        out = bus.arbitrate(frames)
        assert out[0].timestamp != out[1].timestamp


class TestGateway:
    def test_forwards_matching_frames(self):
        gw = Gateway("GW", (Route("FC", 3, "BC", delay=0.002),))
        frames = [can_frame(1.0, 3), can_frame(1.0, 4)]
        forwarded = gw.forward(frames)
        assert len(forwarded) == 1
        assert forwarded[0].channel == "BC"
        assert forwarded[0].timestamp == pytest.approx(1.002)

    def test_payload_forwarded_verbatim(self):
        gw = Gateway("GW", (Route("FC", 3, "BC"),))
        [fwd] = gw.forward([can_frame(1.0, 3, b"\xca\xfe")])
        assert fwd.payload == b"\xca\xfe"

    def test_id_remapping(self):
        gw = Gateway("GW", (Route("FC", 3, "BC", dst_message_id=0x99),))
        [fwd] = gw.forward([can_frame(1.0, 3)])
        assert fwd.message_id == 0x99

    def test_same_channel_route_rejected(self):
        with pytest.raises(GatewayError):
            Route("FC", 3, "FC")

    def test_negative_delay_rejected(self):
        with pytest.raises(GatewayError):
            Route("FC", 3, "BC", delay=-1)

    def test_extend_database_adds_clone(self, wiper_database):
        gw = Gateway("GW", (Route("FC", 3, "BC"),))
        extended = gw.extend_database(wiper_database)
        clone = extended.message("BC", 3)
        assert clone.signal_names() == ("wpos", "wvel")
        assert len(extended) == len(wiper_database) + 1

    def test_extend_database_idempotent_for_existing(self, wiper_database):
        gw = Gateway("GW", (Route("FC", 3, "BC"),))
        once = gw.extend_database(wiper_database)
        twice = gw.extend_database(once)
        assert len(twice) == len(once)


class TestTraceRecorder:
    def test_records_sorted_by_time(self):
        recorder = TraceRecorder()
        frames = [can_frame(2.0, 1), can_frame(1.0, 2)]
        records = recorder.record(frames)
        assert [r[0] for r in records] == [1.0, 2.0]

    def test_record_layout(self):
        recorder = TraceRecorder()
        [record] = recorder.record([can_frame(1.0, 3, b"\x5a")])
        t, payload, b_id, m_id, m_info = record
        assert (t, payload, b_id, m_id) == (1.0, b"\x5a", "FC", 3)
        assert dict(m_info)["protocol"] == "CAN"

    def test_time_quantization(self):
        recorder = TraceRecorder(time_resolution=0.001)
        [record] = recorder.record([can_frame(1.00042, 3)])
        assert record[0] == 1.0

    def test_to_table(self, ctx):
        recorder = TraceRecorder()
        table = recorder.to_table(ctx, [can_frame(1.0, 3)])
        assert table.columns == ["t", "l", "b_id", "m_id", "m_info"]
        assert table.count() == 1
