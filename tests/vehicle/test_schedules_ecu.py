"""Schedules and ECU frame generation."""

import pytest

from repro.network import MessageDefinition, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, OnChange
from repro.vehicle import behaviors as bhv
from repro.vehicle.ecu import EcuError, Transmission


class TestCyclic:
    def test_send_count(self):
        assert len(Cyclic(0.1).send_times(1.0)) == 10

    def test_offset_shifts_start(self):
        times = Cyclic(0.5, offset=0.2).send_times(1.0)
        assert times[0] == pytest.approx(0.2)

    def test_jitter_bounded(self):
        times = Cyclic(0.1, jitter=0.01, seed=5).send_times(10.0)
        nominal = [i * 0.1 for i in range(len(times))]
        assert all(abs(t - n) <= 0.0101 for t, n in zip(times, nominal))

    def test_drop_rate_skips_sends(self):
        full = Cyclic(0.01).send_times(10.0)
        dropped = Cyclic(0.01, drop_rate=0.2, seed=4).send_times(10.0)
        assert 0.65 * len(full) < len(dropped) < 0.95 * len(full)

    def test_deterministic(self):
        a = Cyclic(0.1, jitter=0.02, drop_rate=0.1, seed=9)
        b = Cyclic(0.1, jitter=0.02, drop_rate=0.1, seed=9)
        assert a.send_times(5.0) == b.send_times(5.0)

    def test_invalid_cycle_rejected(self):
        with pytest.raises(ValueError):
            Cyclic(0.0)


class TestOnChange:
    def test_poll_grid(self):
        assert OnChange(0.25).poll_times(1.0) == [0.0, 0.25, 0.5, 0.75]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            OnChange(0)


@pytest.fixture
def message():
    speed = SignalDefinition("speed", SignalEncoding(0, 16, scale=0.1))
    return MessageDefinition("SPEED", 0x55, "DC", "CAN", 2, (speed,), 0.1)


class TestEcu:
    def test_cyclic_transmission_produces_frames(self, message):
        ecu = Ecu("E").add_transmission(
            message, {"speed": bhv.Constant(50.0)}, Cyclic(0.1)
        )
        frames = ecu.generate_frames(1.0)
        assert len(frames) == 10
        assert all(f.channel == "DC" and f.message_id == 0x55 for f in frames)

    def test_payload_encodes_behavior_value(self, message):
        ecu = Ecu("E").add_transmission(
            message, {"speed": bhv.Constant(50.0)}, Cyclic(0.5)
        )
        frame = ecu.generate_frames(0.6)[0]
        assert message.decode(frame.payload)["speed"] == pytest.approx(50.0)

    def test_frames_time_ordered(self, message):
        ecu = Ecu("E")
        ecu.add_transmission(message, {"speed": bhv.Constant(1.0)}, Cyclic(0.07))
        other = MessageDefinition(
            "OTHER", 0x56, "DC", "CAN", 2,
            (SignalDefinition("x", SignalEncoding(0, 8)),), 0.11,
        )
        ecu.add_transmission(other, {"x": bhv.Constant(2)}, Cyclic(0.11))
        frames = ecu.generate_frames(2.0)
        times = [f.timestamp for f in frames]
        assert times == sorted(times)

    def test_on_change_sends_only_on_change(self, message):
        ecu = Ecu("E").add_transmission(
            message,
            {"speed": bhv.OrdinalStepsNumeric((10.0, 20.0), dwell=1.0)}
            if hasattr(bhv, "OrdinalStepsNumeric")
            else {"speed": bhv.Ramp(rate=0.0, start=10.0)},
            OnChange(0.1),
        )
        frames = ecu.generate_frames(1.0)
        # Constant value: only the initial send.
        assert len(frames) == 1

    def test_on_change_heartbeat_forces_sends(self, message):
        ecu = Ecu("E").add_transmission(
            message,
            {"speed": bhv.Ramp(rate=0.0, start=10.0)},
            OnChange(0.1, heartbeat=0.3),
        )
        frames = ecu.generate_frames(1.0)
        assert len(frames) >= 3

    def test_on_change_min_gap_suppresses(self, message):
        ecu = Ecu("E").add_transmission(
            message,
            {"speed": bhv.Ramp(rate=100.0)},  # changes every poll
            OnChange(0.1, min_gap=0.35),
        )
        frames = ecu.generate_frames(1.05)
        gaps = [
            b.timestamp - a.timestamp
            for a, b in zip(frames, frames[1:])
        ]
        assert all(g >= 0.35 - 1e-9 for g in gaps)

    def test_unknown_behavior_signal_rejected(self, message):
        with pytest.raises(EcuError):
            Transmission(message, {"ghost": bhv.Constant(1)}, Cyclic(0.1))

    def test_unknown_schedule_rejected(self, message):
        ecu = Ecu("E").add_transmission(
            message, {"speed": bhv.Constant(1.0)}, schedule="every minute"
        )
        with pytest.raises(EcuError):
            ecu.generate_frames(1.0)


class TestProtocolWrapping:
    def test_lin_message_framed_as_lin(self):
        sig = SignalDefinition("x", SignalEncoding(0, 8))
        msg = MessageDefinition("L", 0x11, "K-LIN", "LIN", 1, (sig,), 1.0)
        ecu = Ecu("E").add_transmission(msg, {"x": bhv.Constant(5)}, Cyclic(1.0))
        frame = ecu.generate_frames(1.5)[0]
        assert frame.protocol == "LIN"
        assert "checksum" in frame.info_dict()

    def test_someip_message_framed_with_session(self):
        sig = SignalDefinition("x", SignalEncoding(0, 8))
        msg = MessageDefinition(
            "S", 0x01018001, "ETH", "SOMEIP", 1, (sig,), 0.5
        )
        ecu = Ecu("E").add_transmission(msg, {"x": bhv.Constant(5)}, Cyclic(0.5))
        frames = ecu.generate_frames(1.4)
        sessions = [f.info_dict()["session_id"] for f in frames]
        assert sessions == [1, 2, 3]

    def test_flexray_payload_padded_to_even(self):
        sig = SignalDefinition("x", SignalEncoding(0, 8))
        msg = MessageDefinition("F", 5, "FR", "FLEXRAY", 1, (sig,), 0.5)
        ecu = Ecu("E").add_transmission(msg, {"x": bhv.Constant(5)}, Cyclic(0.5))
        frame = ecu.generate_frames(0.6)[0]
        assert len(frame.payload) % 2 == 0
