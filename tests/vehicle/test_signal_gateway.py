"""Signal-level gateway: repackaging signals across message layouts."""

import pytest

from repro.core import equality_split, interpret, preselect
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.protocols.signalcodec import MOTOROLA
from repro.vehicle import Cyclic, Ecu, SignalGateway, SignalRoute, VehicleSimulation
from repro.vehicle import behaviors as bhv
from repro.vehicle.gateway import GatewayError


@pytest.fixture
def source_message():
    speed = SignalDefinition("speed", SignalEncoding(0, 16, scale=0.1))
    temp = SignalDefinition("temp", SignalEncoding(16, 8, offset=-40))
    return MessageDefinition(
        "DRIVE", 0x10, "DC", "CAN", 3, (speed, temp), cycle_time=0.1
    )


@pytest.fixture
def dst_message():
    """Different channel, id, byte order AND byte position -- same
    value granularity."""
    speed = SignalDefinition(
        "speed", SignalEncoding(23, 16, byte_order=MOTOROLA, scale=0.1)
    )
    return MessageDefinition(
        "SPEED_REPACK", 0x77, "BC", "CAN", 4, (speed,), cycle_time=0.1
    )


@pytest.fixture
def vehicle(source_message, dst_message):
    db = NetworkDatabase((source_message,))
    ecu = Ecu("E").add_transmission(
        source_message,
        {
            "speed": bhv.Quantized(
                bhv.Sine(40.0, 30.0, mean=90.0, seed=2), step=0.1
            ),
            "temp": bhv.Constant(20),
        },
        Cyclic(0.1, seed=1),
    )
    sim = VehicleSimulation(db, [ecu])
    gateway = SignalGateway(
        "SGW",
        database=db,
        routes=(
            SignalRoute("DC", 0x10, ("speed",), dst_message, delay=0.002),
        ),
    )
    sim.add_gateway(gateway)
    return sim


class TestSignalRouteValidation:
    def test_same_channel_rejected(self, source_message):
        bad_dst = MessageDefinition(
            "X", 0x99, "DC", "CAN", 2,
            (SignalDefinition("speed", SignalEncoding(0, 16, scale=0.1)),),
        )
        with pytest.raises(GatewayError):
            SignalRoute("DC", 0x10, ("speed",), bad_dst)

    def test_missing_signal_in_destination_rejected(self, dst_message):
        with pytest.raises(GatewayError):
            SignalRoute("DC", 0x10, ("speed", "temp"), dst_message)


class TestRepackaging:
    def test_forwarded_frames_use_destination_layout(self, vehicle, dst_message):
        frames = vehicle.run(2.0)
        repacked = [f for f in frames if f.channel == "BC"]
        assert repacked
        assert all(f.message_id == 0x77 for f in repacked)
        assert all(len(f.payload) == 4 for f in repacked)

    def test_values_identical_across_layouts(self, vehicle, ctx):
        db = vehicle.database
        k_b = vehicle.record_table(ctx, 5.0)
        catalog = db.translation_catalog(["speed"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        by_channel = {}
        for t, v, s_id, b_id in sorted(k_s.collect()):
            by_channel.setdefault(b_id, []).append(v)
        assert by_channel["DC"] == by_channel["BC"]

    def test_equality_check_collapses_repacked_copies(self, vehicle, ctx):
        """The paper's e() works on values: even though the BC copies
        use a different id, byte order and position, they are found to
        correspond."""
        db = vehicle.database
        k_b = vehicle.record_table(ctx, 5.0)
        catalog = db.translation_catalog(["speed"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        result = equality_split(k_s, "speed")
        assert len(result.groups) == 1
        assert set(result.groups[0].all_channels()) == {"BC", "DC"}

    def test_unrouted_signals_stay_on_source_channel(self, vehicle, ctx):
        db = vehicle.database
        k_b = vehicle.record_table(ctx, 3.0)
        catalog = db.translation_catalog(["temp"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        assert {r[3] for r in k_s.collect()} == {"DC"}

    def test_extend_database_rejects_collisions(self, source_message, dst_message):
        colliding = MessageDefinition(
            "NATIVE", 0x77, "BC", "CAN", 1,
            (SignalDefinition("other", SignalEncoding(0, 8)),),
        )
        db = NetworkDatabase((source_message, colliding))
        gateway = SignalGateway(
            "SGW", database=db,
            routes=(SignalRoute("DC", 0x10, ("speed",), dst_message),),
        )
        with pytest.raises(GatewayError):
            gateway.extend_database(db)
