"""Behaviour models: determinism and value-stream shapes."""

import math

import pytest

from repro.vehicle import behaviors as bhv


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bhv.Sine(10, 5, noise=0.5, seed=3),
            lambda: bhv.RandomWalk(step=1.0, seed=7),
            lambda: bhv.StateMachine(
                ("a", "b"),
                {"a": (("b", 1.0),), "b": (("a", 1.0),)},
                dwell=1.0,
                seed=5,
            ),
            lambda: bhv.ValidityFlag(0.3, seed=2),
            lambda: bhv.OutlierInjector(bhv.Constant(5.0), 0.2, 100.0, seed=4),
            lambda: bhv.Occasionally(bhv.Constant("x"), "invalid", 0.2, seed=9),
        ],
    )
    def test_same_schedule_same_stream(self, factory):
        times = [0.1 * i for i in range(200)]
        a = factory()
        first = [a.sample(t) for t in times]
        b = factory()
        second = [b.sample(t) for t in times]
        assert first == second

    def test_reset_restores_stateful_behaviors(self):
        walk = bhv.RandomWalk(step=1.0, seed=7)
        times = [0.1 * i for i in range(50)]
        first = [walk.sample(t) for t in times]
        walk.reset()
        second = [walk.sample(t) for t in times]
        assert first == second


class TestShapes:
    def test_constant(self):
        assert bhv.Constant(42).sample(99.0) == 42

    def test_sine_period(self):
        s = bhv.Sine(amplitude=10, period=2.0, mean=5.0)
        assert s.sample(0.0) == pytest.approx(5.0)
        assert s.sample(0.5) == pytest.approx(15.0)
        assert s.sample(1.0) == pytest.approx(5.0)

    def test_ramp_clamps(self):
        r = bhv.Ramp(rate=2.0, start=0.0, maximum=5.0)
        assert r.sample(1.0) == 2.0
        assert r.sample(100.0) == 5.0

    def test_sawtooth_triangle_symmetry(self):
        s = bhv.Sawtooth(amplitude=10.0, period=4.0)
        assert s.sample(0.0) == 0.0
        assert s.sample(1.0) == pytest.approx(5.0)
        assert s.sample(2.0) == pytest.approx(10.0)
        assert s.sample(3.0) == pytest.approx(5.0)

    def test_random_walk_bounded(self):
        walk = bhv.RandomWalk(step=5.0, seed=1, minimum=0.0, maximum=10.0)
        values = [walk.sample(0.1 * i) for i in range(500)]
        assert all(0.0 <= v <= 10.0 for v in values)

    def test_toggle_duty_cycle(self):
        t = bhv.Toggle(period=10.0, duty=0.3)
        assert t.sample(1.0) == "ON"
        assert t.sample(5.0) == "OFF"

    def test_ordinal_steps_staircase(self):
        o = bhv.OrdinalSteps(("low", "mid", "high"), dwell=1.0)
        seq = [o.sample(float(i)) for i in range(5)]
        assert seq == ["low", "mid", "high", "mid", "low"]

    def test_ordinal_single_level(self):
        o = bhv.OrdinalSteps(("only",), dwell=1.0)
        assert o.sample(7.0) == "only"

    def test_state_machine_stays_in_states(self):
        machine = bhv.StateMachine(
            ("driving", "parking"),
            {
                "driving": (("parking", 1.0), ("driving", 2.0)),
                "parking": (("driving", 1.0),),
            },
            dwell=0.5,
            seed=11,
        )
        values = {machine.sample(0.1 * i) for i in range(500)}
        assert values <= {"driving", "parking"}
        assert len(values) == 2  # actually transitions

    def test_state_machine_requires_transition_rows(self):
        with pytest.raises(ValueError):
            bhv.StateMachine(("a", "b"), {"a": (("b", 1.0),)}, dwell=1.0)

    def test_event_pulse_windows(self):
        pulse = bhv.EventPulse(((1.0, 2.0),), active="GO", idle="WAIT")
        assert pulse.sample(0.5) == "WAIT"
        assert pulse.sample(1.5) == "GO"
        assert pulse.sample(2.0) == "WAIT"

    def test_validity_flag_rate(self):
        flag = bhv.ValidityFlag(invalid_rate=0.2, seed=6)
        values = [flag.sample(0.01 * i) for i in range(2000)]
        rate = values.count("invalid") / len(values)
        assert 0.1 < rate < 0.3

    def test_outlier_injector_rate_and_magnitude(self):
        inj = bhv.OutlierInjector(bhv.Constant(0.0), rate=0.1, magnitude=50.0, seed=8)
        values = [inj.sample(0.01 * i) for i in range(2000)]
        outliers = [v for v in values if abs(v) > 1]
        assert 0.05 < len(outliers) / len(values) < 0.2
        assert all(math.isclose(abs(v), 50.0) for v in outliers)

    def test_occasionally_replaces(self):
        occ = bhv.Occasionally(bhv.Constant("ok"), "invalid", rate=0.5, seed=3)
        values = {occ.sample(0.01 * i) for i in range(200)}
        assert values == {"ok", "invalid"}

    def test_quantized(self):
        q = bhv.Quantized(bhv.Constant(3.7), step=0.5)
        assert q.sample(0.0) == 3.5

    def test_derived(self):
        d = bhv.Derived(bhv.Constant(2.0), _square)
        assert d.sample(0.0) == 4.0


def _square(x):
    return x * x
