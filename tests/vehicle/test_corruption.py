"""Transport-level corruption models and their ground-truth logs."""

import math

import pytest

from repro.tracefile import binlog, colbin
from repro.vehicle.corruption import (
    BitFlip,
    ClockSkew,
    CorruptionError,
    CorruptionEvent,
    CorruptionLog,
    FrameDrop,
    GatewayDuplicate,
    PayloadTruncation,
    corrupt,
)

ALL_MODELS = (
    FrameDrop(rate=0.05),
    FrameDrop(rate=0.01, burst_length=8),
    GatewayDuplicate(rate=0.05),
    GatewayDuplicate(rate=0.05, jitter=0.002),
    ClockSkew(drift=0.002, step_rate=0.01, step_scale=0.05),
    PayloadTruncation(rate=0.05),
    BitFlip(rate=0.05),
)


@pytest.fixture
def records(wiper_simulation):
    return [f.to_byte_record() for f in wiper_simulation.run(30.0)]


class TestSeverityScaling:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_severity_zero_is_identity(self, records, model):
        out, log = corrupt(records, [model.at_severity(0.0)], seed=3)
        assert out == records
        assert len(log) == 0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_severity_one_is_configured(self, model):
        assert model.at_severity(1.0) == model

    def test_linear_scaling(self):
        assert FrameDrop(rate=0.2).at_severity(2.0).rate == pytest.approx(0.4)
        skew = ClockSkew(drift=0.01, step_rate=0.1, step_scale=0.2)
        half = skew.at_severity(0.5)
        assert half.drift == pytest.approx(0.005)
        assert half.step_rate == pytest.approx(0.05)
        assert half.step_scale == pytest.approx(0.1)

    def test_rates_clamp_at_one(self):
        assert FrameDrop(rate=0.5).at_severity(10.0).rate == 1.0
        assert GatewayDuplicate(rate=0.5).at_severity(10.0).rate == 1.0
        assert ClockSkew(step_rate=0.5).at_severity(10.0).step_rate == 1.0

    def test_non_rate_knobs_do_not_clamp(self):
        assert ClockSkew(drift=0.5).at_severity(10.0).drift == pytest.approx(5.0)

    def test_negative_severity_rejected(self):
        with pytest.raises(CorruptionError):
            FrameDrop().at_severity(-0.1)


class TestDeterminism:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_same_seed_same_output(self, records, model):
        a, log_a = corrupt(records, [model], seed=11)
        b, log_b = corrupt(records, [model], seed=11)
        assert a == b
        assert log_a.events == log_b.events

    def test_different_seed_differs(self, records):
        a, _la = corrupt(records, [FrameDrop(rate=0.2)], seed=1)
        b, _lb = corrupt(records, [FrameDrop(rate=0.2)], seed=2)
        assert a != b


class TestFrameDrop:
    def test_count_conserved(self, records):
        out, log = corrupt(records, [FrameDrop(rate=0.1)], seed=0)
        assert len(out) + len(log) == len(records)
        assert len(log) > 0
        assert all(e.kind == "drop" for e in log.events)

    def test_burst_drops_runs(self, records):
        out, log = corrupt(
            records, [FrameDrop(rate=0.01, burst_length=10)], seed=0
        )
        assert len(out) + len(log) == len(records)
        details = {e.detail for e in log.events}
        assert "burst" in details

    def test_channel_scoped(self, records):
        out, log = corrupt(
            records, [FrameDrop(rate=1.0, channel="K-LIN")], seed=0
        )
        assert all(r[2] != "K-LIN" for r in out)
        assert all(e.channel == "K-LIN" for e in log.events)
        untouched = [r for r in records if r[2] != "K-LIN"]
        assert [r for r in out if r[2] != "K-LIN"] == untouched

    def test_validation(self):
        with pytest.raises(CorruptionError):
            FrameDrop(rate=1.5)
        with pytest.raises(CorruptionError):
            FrameDrop(burst_length=0)


class TestGatewayDuplicate:
    def test_exact_duplicates_without_jitter(self, records):
        out, log = corrupt(records, [GatewayDuplicate(rate=0.2)], seed=0)
        assert len(out) == len(records) + len(log)
        assert len(log) > 0
        # Every duplicated frame appears at least twice, byte-identical.
        for event in log.events:
            copies = [
                r for r in out
                if r[0] == event.timestamp
                and r[2] == event.channel
                and r[3] == event.message_id
            ]
            assert len(copies) >= 2
            assert copies[0] == copies[1]

    def test_jitter_shifts_copies(self, records):
        out, log = corrupt(
            records, [GatewayDuplicate(rate=0.2, jitter=0.002)], seed=0
        )
        assert len(out) == len(records) + len(log)
        originals = {(r[0], r[2], r[3]) for r in records}
        shifted = [
            r for r in out if (r[0], r[2], r[3]) not in originals
        ]
        # With continuous jitter, essentially every copy is shifted.
        assert len(shifted) >= len(log) - 1

    def test_validation(self):
        with pytest.raises(CorruptionError):
            GatewayDuplicate(jitter=-1.0)


class TestClockSkew:
    def test_first_frame_per_channel_anchored(self, records):
        out, _log = corrupt(
            records, [ClockSkew(drift=0.01)], seed=0
        )
        firsts = {}
        for r in records:
            firsts.setdefault(r[2], r[0])
        seen = {}
        for r in out:
            seen.setdefault(r[2], r[0])
        for channel, t0 in firsts.items():
            assert seen[channel] == pytest.approx(t0)

    def test_drift_scales_with_elapsed_time(self, records):
        out, log = corrupt(records, [ClockSkew(drift=0.01)], seed=0)
        assert log.by_kind("clock_drift")
        deltas = [
            abs(a[0] - b[0]) for a, b in zip(out, records)
        ]
        assert max(deltas) > 0

    def test_steps_make_non_monotonic(self, records):
        out, log = corrupt(
            records,
            [ClockSkew(drift=0.0, step_rate=0.05, step_scale=0.5)],
            seed=0,
        )
        assert log.by_kind("clock_step")
        per_channel = {}
        for r in out:
            per_channel.setdefault(r[2], []).append(r[0])
        backwards = any(
            any(b < a for a, b in zip(ts, ts[1:]))
            for ts in per_channel.values()
        )
        assert backwards

    def test_only_timestamps_touched(self, records):
        out, _log = corrupt(
            records, [ClockSkew(drift=0.01, step_rate=0.1)], seed=0
        )
        assert [r[1:] for r in out] == [r[1:] for r in records]

    def test_validation(self):
        with pytest.raises(CorruptionError):
            ClockSkew(drift=-0.1)
        with pytest.raises(CorruptionError):
            ClockSkew(step_rate=2.0)


class TestPayloadTruncation:
    def test_payloads_shortened(self, records):
        out, log = corrupt(records, [PayloadTruncation(rate=0.2)], seed=0)
        assert len(out) == len(records)
        assert len(log) > 0
        by_coord = {(r[0], r[2], r[3]): r for r in records}
        for event in log.events:
            original = by_coord[(event.timestamp, event.channel, event.message_id)]
            corrupted = next(
                r for r in out
                if (r[0], r[2], r[3])
                == (event.timestamp, event.channel, event.message_id)
            )
            assert len(corrupted[1]) < len(original[1])
            assert original[1].startswith(corrupted[1])

    def test_non_payload_columns_untouched(self, records):
        out, _log = corrupt(records, [PayloadTruncation(rate=0.2)], seed=0)
        assert [(r[0],) + r[2:] for r in out] == [
            (r[0],) + r[2:] for r in records
        ]


class TestBitFlip:
    def test_flips_exactly_one_bit(self, records):
        out, log = corrupt(records, [BitFlip(rate=0.2)], seed=0)
        assert len(out) == len(records)
        assert len(log) > 0
        flipped = 0
        for before, after in zip(records, out):
            if before == after:
                continue
            assert len(before[1]) == len(after[1])
            bits = sum(
                bin(a ^ b).count("1")
                for a, b in zip(before[1], after[1])
            )
            assert bits == 1
            flipped += 1
        assert flipped == len(log)


class TestComposition:
    def test_models_compose_in_order(self, records):
        out, log = corrupt(
            records,
            [
                FrameDrop(rate=0.05),
                GatewayDuplicate(rate=0.05),
                BitFlip(rate=0.05),
            ],
            seed=7,
        )
        counts = log.counts()
        assert set(counts) <= {"drop", "duplicate", "bitflip"}
        assert len(out) == (
            len(records) - counts.get("drop", 0) + counts.get("duplicate", 0)
        )

    def test_empty_model_list_is_identity(self, records):
        out, log = corrupt(records, [], seed=0)
        assert out == records
        assert len(log) == 0


class TestCorruptionLog:
    def test_query_helpers(self):
        log = CorruptionLog(
            [
                CorruptionEvent("drop", 2.0, "FC", 3),
                CorruptionEvent("drop", 1.0, "FC", 3),
                CorruptionEvent("bitflip", 3.0, "BC", 7, detail="bit 4"),
            ]
        )
        assert len(log) == 3
        assert log.counts() == {"drop": 2, "bitflip": 1}
        assert [e.timestamp for e in log.by_kind("drop")] == [2.0, 1.0]
        assert log.timestamps() == [1.0, 2.0, 3.0]
        assert log.timestamps("drop") == [1.0, 2.0]
        assert log.to_rows()[2] == ("bitflip", 3.0, "BC", 7, "bit 4")


class TestTracefileRoundTrip:
    """Corrupted records survive both binary trace formats unchanged."""

    @pytest.fixture
    def corrupted(self, records):
        out, _log = corrupt(
            records,
            [
                ClockSkew(drift=0.002, step_rate=0.05, step_scale=0.2),
                GatewayDuplicate(rate=0.1),
                PayloadTruncation(rate=0.2),
                BitFlip(rate=0.1),
            ],
            seed=13,
        )
        return out

    def test_binlog_round_trip(self, corrupted, tmp_path):
        path = tmp_path / "corrupted.btrc"
        binlog.dump_records(corrupted, path)
        loaded = binlog.load_records(path)
        assert len(loaded) == len(corrupted)
        for a, b in zip(corrupted, loaded):
            assert math.isclose(a[0], b[0], rel_tol=0, abs_tol=1e-12)
            assert a[1:] == b[1:]

    def test_colbin_round_trip(self, corrupted, tmp_path):
        path = tmp_path / "corrupted.ctrc"
        colbin.dump_records(corrupted, path)
        loaded = colbin.load_records(path)
        assert len(loaded) == len(corrupted)
        for a, b in zip(corrupted, loaded):
            assert math.isclose(a[0], b[0], rel_tol=0, abs_tol=1e-12)
            assert a[1:] == b[1:]
