"""Whole-vehicle simulation: traces with the structure Algorithm 1 needs."""

import pytest

from repro.vehicle.vehicle import VehicleError, VehicleSimulation


class TestVehicleSimulation:
    def test_trace_is_time_ordered(self, wiper_simulation):
        records = wiper_simulation.byte_records(5.0)
        times = [r[0] for r in records]
        assert times == sorted(times)

    def test_trace_contains_all_channels(self, wiper_simulation):
        records = wiper_simulation.byte_records(5.0)
        channels = {r[2] for r in records}
        assert channels == {"FC", "BC", "K-LIN"}

    def test_gateway_duplicates_wiper_message(self, wiper_simulation):
        records = wiper_simulation.byte_records(5.0)
        fc = [r for r in records if r[2] == "FC" and r[3] == 3]
        bc = [r for r in records if r[2] == "BC" and r[3] == 3]
        assert len(fc) == len(bc) > 0
        # Payloads identical -- the redundancy e() exploits.
        assert [r[1] for r in fc] == [r[1] for r in bc]

    def test_deterministic_reruns(self, wiper_simulation):
        first = wiper_simulation.byte_records(5.0)
        second = wiper_simulation.byte_records(5.0)
        assert first == second

    def test_record_table_layout(self, ctx, wiper_simulation):
        table = wiper_simulation.record_table(ctx, 2.0)
        assert table.columns == ["t", "l", "b_id", "m_id", "m_info"]
        assert table.count() > 0

    def test_cyclic_rate_roughly_matches(self, wiper_simulation):
        records = wiper_simulation.byte_records(10.0)
        wiper_rows = [r for r in records if r[2] == "FC" and r[3] == 3]
        # 0.1 s cycle over 10 s -> about 100 instances.
        assert 95 <= len(wiper_rows) <= 105

    def test_payloads_decode_via_database(self, wiper_simulation):
        db = wiper_simulation.database
        records = wiper_simulation.byte_records(2.0)
        wiper = db.message("FC", 3)
        row = next(r for r in records if r[2] == "FC" and r[3] == 3)
        decoded = wiper.decode(row[1])
        assert 0.0 <= decoded["wpos"] <= 90.0
        assert decoded["wvel"] == 1

    def test_ambiguous_channel_protocol_rejected(self, wiper_database):
        from repro.network import MessageDefinition, SignalDefinition
        from repro.network.database import NetworkDatabase
        from repro.protocols import SignalEncoding

        rogue = MessageDefinition(
            "ROGUE", 0x20, "FC", "LIN", 1,
            (SignalDefinition("r", SignalEncoding(0, 8)),), 1.0,
        )
        db = NetworkDatabase(wiper_database.messages + (rogue,))
        sim = VehicleSimulation(db, [])
        with pytest.raises(VehicleError):
            sim.bus_for("FC")
