"""Phase-based scenarios and the standard vehicle."""

import pytest

from repro.vehicle import behaviors as bhv
from repro.vehicle.scenarios import (
    COMMUTE,
    Phase,
    PhasedBehavior,
    PhaseLabel,
    ScenarioError,
    StandardVehicle,
    Timeline,
)


class TestTimeline:
    def test_total_duration(self):
        assert COMMUTE.total_duration == 240.0

    def test_phase_at(self):
        assert COMMUTE.phase_at(10.0).name == "city"
        assert COMMUTE.phase_at(100.0).name == "highway"
        assert COMMUTE.phase_at(225.0).name == "parked"

    def test_after_end_holds_last_phase(self):
        assert COMMUTE.phase_at(9999.0).name == "parked"

    def test_phase_start(self):
        assert COMMUTE.phase_start("highway") == 60.0
        with pytest.raises(ScenarioError):
            COMMUTE.phase_start("moon")

    def test_validation(self):
        with pytest.raises(ScenarioError):
            Timeline(())
        with pytest.raises(ScenarioError):
            Phase("x", 0.0)


class TestPhasedBehavior:
    def test_switches_by_phase(self):
        timeline = Timeline((Phase("a", 1.0), Phase("b", 1.0)))
        behavior = PhasedBehavior(
            timeline,
            {"a": bhv.Constant(1), "b": bhv.Constant(2)},
        )
        assert behavior.sample(0.5) == 1
        assert behavior.sample(1.5) == 2

    def test_default_covers_missing_phase(self):
        timeline = Timeline((Phase("a", 1.0), Phase("b", 1.0)))
        behavior = PhasedBehavior(
            timeline, {"a": bhv.Constant(1)}, default=bhv.Constant(9)
        )
        assert behavior.sample(1.5) == 9

    def test_missing_phase_without_default_raises(self):
        timeline = Timeline((Phase("a", 1.0),))
        behavior = PhasedBehavior(timeline, {})
        with pytest.raises(ScenarioError):
            behavior.sample(0.0)

    def test_phase_label(self):
        label = PhaseLabel(COMMUTE)
        assert label.sample(100.0) == "highway"


class TestStandardVehicle:
    @pytest.fixture(scope="class")
    def journey(self):
        from repro.engine import EngineContext

        ctx = EngineContext.serial()
        vehicle = StandardVehicle()
        sim, k_b = vehicle.run(ctx)
        return sim, k_b.cache(), ctx

    def test_duration_matches_timeline(self, journey):
        _sim, k_b, _ctx = journey
        last = max(r[0] for r in k_b.collect())
        assert last == pytest.approx(COMMUTE.total_duration, abs=1.0)

    def test_speed_tracks_phases(self, journey):
        sim, k_b, ctx = journey
        from repro.core import interpret, preselect

        catalog = sim.database.translation_catalog(["speed"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        rows = sorted(k_s.collect())
        city = [r[1] for r in rows if r[0] < 55.0]
        highway = [r[1] for r in rows if 70.0 < r[0] < 170.0]
        parked = [r[1] for r in rows if r[0] > 225.0]
        assert max(city) <= 70.0
        assert min(highway) >= 80.0
        assert set(parked) == {0.0}

    def test_wiper_correlates_with_rain(self, journey):
        sim, k_b, ctx = journey
        from repro.core import interpret, preselect

        catalog = sim.database.translation_catalog(["rain", "wiper_active"])
        k_s = interpret(preselect(k_b, catalog), catalog)
        by_time = {}
        for t, v, s_id, _b in k_s.collect():
            by_time.setdefault(t, {})[s_id] = v
        assert by_time
        for values in by_time.values():
            assert values["rain"] == values["wiper_active"]

    def test_pipeline_discovers_rain_wiper_rule(self, journey):
        """End to end: the scenario's built-in correlation is mined back
        out as an association rule."""
        sim, k_b, _ctx = journey
        from repro.core import (
            Constraint,
            ConstraintSet,
            PipelineConfig,
            PreprocessingPipeline,
            UnchangedValue,
        )
        from repro.mining import AssociationRuleMiner, Item

        config = PipelineConfig(
            catalog=sim.database.translation_catalog(
                ["rain", "wiper_active", "drive_phase"]
            ),
            constraints=ConstraintSet(
                tuple(
                    Constraint(s, True, (UnchangedValue(),))
                    for s in ("rain", "wiper_active", "drive_phase")
                )
            ),
        )
        result = PreprocessingPipeline(config).run(k_b)
        rep = result.state_representation(
            ["rain", "wiper_active", "drive_phase"]
        )
        miner = AssociationRuleMiner(min_support=0.05, min_confidence=0.95)
        rules = miner.mine(rep)
        assert any(
            Item("rain", "ON") in r.antecedent
            and Item("wiper_active", "ON") in r.consequent
            for r in rules
        )

    def test_deterministic(self):
        from repro.engine import EngineContext

        ctx = EngineContext.serial()
        _s1, a = StandardVehicle(seed=4).run(ctx, duration=30.0)
        _s2, b = StandardVehicle(seed=4).run(ctx, duration=30.0)
        assert a.collect() == b.collect()
