"""Network database: validation, payload codec, catalog derivation."""

import pytest

from repro.core.model import FUNCTIONAL
from repro.network import (
    DatabaseError,
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)
from repro.protocols import SignalEncoding
from repro.protocols.someip import ConditionalLayout, OptionalSection


def make_signal(name, start_bit=0, bits=8, **kwargs):
    return SignalDefinition(name, SignalEncoding(start_bit, bits), **kwargs)


class TestSignalDefinition:
    def test_defaults(self):
        s = make_signal("speed")
        assert s.kind == FUNCTIONAL
        assert s.data_class == "numeric"

    def test_invalid_kind_rejected(self):
        with pytest.raises(DatabaseError):
            SignalDefinition("x", SignalEncoding(0, 8), kind="weird")

    def test_invalid_data_class_rejected(self):
        with pytest.raises(DatabaseError):
            SignalDefinition("x", SignalEncoding(0, 8), data_class="complex")

    def test_to_signal_type(self):
        assert make_signal("speed", unit="km/h").to_signal_type().unit == "km/h"


class TestMessageValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(DatabaseError):
            MessageDefinition("M", 1, "FC", "MOST", 8, ())

    def test_duplicate_signal_names_rejected(self):
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "FC", "CAN", 8,
                (make_signal("a"), make_signal("a", start_bit=8)),
            )

    def test_signal_exceeding_payload_rejected(self):
        with pytest.raises(DatabaseError):
            MessageDefinition("M", 1, "FC", "CAN", 1, (make_signal("a", 8, 8),))

    def test_overlapping_signals_rejected(self):
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "FC", "CAN", 2,
                (make_signal("a", 0, 8), make_signal("b", 4, 8)),
            )

    def test_sectioned_signal_requires_layout(self):
        sectioned = SignalDefinition(
            "x", SignalEncoding(0, 8), section_bit=0
        )
        with pytest.raises(DatabaseError):
            MessageDefinition("M", 1, "ETH", "SOMEIP", 8, (sectioned,))

    def test_unknown_section_bit_rejected(self):
        layout = ConditionalLayout((OptionalSection(0, 1),))
        sectioned = SignalDefinition(
            "x", SignalEncoding(0, 8), section_bit=3
        )
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "ETH", "SOMEIP", 8, (sectioned,), layout=layout
            )


class TestPayloadCodec:
    MSG = MessageDefinition(
        "M", 1, "FC", "CAN", 3,
        (
            make_signal("a", 0, 8),
            SignalDefinition("b", SignalEncoding(8, 16, scale=0.25)),
        ),
    )

    def test_encode_decode_round_trip(self):
        payload = self.MSG.encode({"a": 10, "b": 100.25})
        assert self.MSG.decode(payload) == {"a": 10, "b": 100.25}

    def test_missing_signals_default_to_zero(self):
        payload = self.MSG.encode({})
        assert self.MSG.decode(payload) == {"a": 0, "b": 0}

    def test_out_of_range_values_saturate(self):
        payload = self.MSG.encode({"a": 9999, "b": 0})
        assert self.MSG.decode(payload)["a"] == 255


class TestConditionalPayloadCodec:
    LAYOUT = ConditionalLayout((OptionalSection(0, 2), OptionalSection(1, 1)))
    MSG = MessageDefinition(
        "SRV", 0x01000001, "ETH", "SOMEIP", 8,
        (
            SignalDefinition("pos", SignalEncoding(0, 16), section_bit=0),
            SignalDefinition("flag", SignalEncoding(0, 8), section_bit=1),
        ),
        layout=LAYOUT,
    )

    def test_both_sections_present(self):
        payload = self.MSG.encode({"pos": 500, "flag": 7})
        assert self.MSG.decode(payload) == {"pos": 500, "flag": 7}

    def test_absent_section_decodes_to_none(self):
        payload = self.MSG.encode({"flag": 7})
        decoded = self.MSG.decode(payload)
        assert decoded["pos"] is None
        assert decoded["flag"] == 7

    def test_payload_shrinks_when_sections_absent(self):
        full = self.MSG.encode({"pos": 1, "flag": 1})
        partial = self.MSG.encode({"flag": 1})
        assert len(partial) < len(full)


class TestNetworkDatabase:
    @pytest.fixture
    def db(self, wiper_database):
        return wiper_database

    def test_duplicate_message_key_rejected(self):
        msg = MessageDefinition("A", 1, "FC", "CAN", 1, (make_signal("x"),))
        clone = MessageDefinition("B", 1, "FC", "CAN", 1, (make_signal("y"),))
        with pytest.raises(DatabaseError):
            NetworkDatabase((msg, clone))

    def test_lookup_by_channel_and_id(self, db):
        assert db.message("FC", 3).name == "WIPER_STATUS"

    def test_lookup_missing_raises(self, db):
        with pytest.raises(KeyError):
            db.message("FC", 999)

    def test_lookup_by_name(self, db):
        assert db.message_by_name("HEATER").channel == "K-LIN"

    def test_channels_sorted(self, db):
        assert db.channels() == ("FC", "K-LIN")

    def test_alphabet_covers_all_signals(self, db):
        assert set(db.alphabet().ids()) == {"wpos", "wvel", "heat", "belt"}

    def test_signal_data_class(self, db):
        assert db.signal_data_class("heat") == "ordinal"
        with pytest.raises(KeyError):
            db.signal_data_class("ghost")

    def test_statistics(self, db):
        stats = db.statistics()
        assert stats["num_messages"] == 3
        assert stats["num_signal_types"] == 4
        assert stats["avg_signals_per_message"] == pytest.approx(4 / 3)


class TestCatalogDerivation:
    def test_full_catalog_one_tuple_per_signal_message(self, wiper_database):
        catalog = wiper_database.translation_catalog()
        assert len(catalog) == 4

    def test_selected_catalog(self, wiper_database):
        catalog = wiper_database.translation_catalog(["wpos", "heat"])
        assert set(catalog.signal_ids()) == {"wpos", "heat"}

    def test_unknown_signal_rejected(self, wiper_database):
        with pytest.raises(DatabaseError):
            wiper_database.translation_catalog(["ghost"])

    def test_catalog_rules_decode_payloads(self, wiper_database):
        msg = wiper_database.message_by_name("WIPER_STATUS")
        payload = msg.encode({"wpos": 45.0, "wvel": 1})
        catalog = wiper_database.translation_catalog(["wpos"])
        (u,) = catalog.get("wpos")
        assert u.channel_id == "FC"
        assert u.message_id == 3
        assert u.rule.interpret(payload) == 45.0

    def test_gateway_extended_catalog_covers_both_channels(
        self, wiper_simulation
    ):
        catalog = wiper_simulation.database.translation_catalog(["wpos"])
        channels = {u.channel_id for u in catalog}
        assert channels == {"FC", "BC"}
