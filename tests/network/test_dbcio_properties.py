"""Property-based DBC round-trips over random signal layouts."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.network.database import (
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)
from repro.network.dbcio import dumps_database, loads_database
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding, overlaps

encoding_strategy = st.builds(
    lambda byte, length, order, signed, scale, offset: SignalEncoding(
        start_bit=byte * 8 + (7 if order == MOTOROLA else 0),
        bit_length=length,
        byte_order=order,
        signed=signed,
        scale=scale,
        offset=float(offset),
    ),
    byte=st.integers(min_value=0, max_value=6),
    length=st.integers(min_value=1, max_value=16),
    order=st.sampled_from([INTEL, MOTOROLA]),
    signed=st.booleans(),
    scale=st.sampled_from([1.0, 0.5, 0.25, 0.1, 2.0]),
    offset=st.integers(min_value=-100, max_value=100),
)


@st.composite
def message_strategy(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    signals = []
    encodings = []
    for i in range(count):
        encoding = draw(encoding_strategy)
        if any(overlaps(encoding, e) for e in encodings):
            continue
        encodings.append(encoding)
        signals.append(
            SignalDefinition("sig_{}".format(i), encoding, unit="u")
        )
    assume(signals)
    cycle = draw(st.sampled_from([None, 0.01, 0.1, 1.0]))
    return MessageDefinition(
        name="MSG",
        message_id=draw(st.integers(min_value=1, max_value=0x7FF)),
        channel="FC",
        protocol="CAN",
        payload_length=8,
        signals=tuple(signals),
        cycle_time=cycle,
    )


@given(message=message_strategy())
@settings(max_examples=80, deadline=None)
def test_property_dbc_round_trip_preserves_encodings(message):
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("FC", message.message_id)
    assert clone.cycle_time == message.cycle_time
    for signal in message.signals:
        assert clone.signal(signal.name).encoding == signal.encoding


@given(
    message=message_strategy(),
    raws=st.lists(st.integers(min_value=0), min_size=4, max_size=4),
)
@settings(max_examples=80, deadline=None)
def test_property_dbc_round_trip_preserves_decoding(message, raws):
    """Round-tripped databases decode arbitrary payloads identically."""
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("FC", message.message_id)
    payload = bytearray(8)
    for signal, raw in zip(message.signals, raws):
        signal.encoding.insert_raw(
            payload, raw % (1 << signal.encoding.bit_length)
            if not signal.encoding.signed
            else raw % (1 << (signal.encoding.bit_length - 1)),
        )
    assert clone.decode(bytes(payload)) == message.decode(bytes(payload))
