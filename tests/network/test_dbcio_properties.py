"""Property-based DBC round-trips over random signal layouts."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.network.database import (
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)
from repro.network.dbcio import dumps_database, loads_database
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding, overlaps

encoding_strategy = st.builds(
    lambda byte, length, order, signed, scale, offset: SignalEncoding(
        start_bit=byte * 8 + (7 if order == MOTOROLA else 0),
        bit_length=length,
        byte_order=order,
        signed=signed,
        scale=scale,
        offset=float(offset),
    ),
    byte=st.integers(min_value=0, max_value=6),
    length=st.integers(min_value=1, max_value=16),
    order=st.sampled_from([INTEL, MOTOROLA]),
    signed=st.booleans(),
    scale=st.sampled_from([1.0, 0.5, 0.25, 0.1, 2.0]),
    offset=st.integers(min_value=-100, max_value=100),
)


@st.composite
def message_strategy(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    signals = []
    encodings = []
    for i in range(count):
        encoding = draw(encoding_strategy)
        if any(overlaps(encoding, e) for e in encodings):
            continue
        encodings.append(encoding)
        signals.append(
            SignalDefinition("sig_{}".format(i), encoding, unit="u")
        )
    assume(signals)
    cycle = draw(st.sampled_from([None, 0.01, 0.1, 1.0]))
    return MessageDefinition(
        name="MSG",
        message_id=draw(st.integers(min_value=1, max_value=0x7FF)),
        channel="FC",
        protocol="CAN",
        payload_length=8,
        signals=tuple(signals),
        cycle_time=cycle,
    )


@given(message=message_strategy())
@settings(max_examples=80, deadline=None)
def test_property_dbc_round_trip_preserves_encodings(message):
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("FC", message.message_id)
    assert clone.cycle_time == message.cycle_time
    for signal in message.signals:
        assert clone.signal(signal.name).encoding == signal.encoding


@st.composite
def mux_message_strategy(draw):
    """Messages with a selector and value-multiplexed signals."""
    selector = SignalDefinition(
        "selector", SignalEncoding(start_bit=0, bit_length=4)
    )
    signals = [selector]
    encodings = [selector.encoding]
    count = draw(st.integers(min_value=1, max_value=4))
    for i in range(count):
        encoding = draw(encoding_strategy)
        if any(overlaps(encoding, e) for e in encodings):
            continue
        encodings.append(encoding)
        signals.append(
            SignalDefinition(
                "mux_{}".format(i),
                encoding,
                mux_value=draw(st.integers(min_value=0, max_value=15)),
            )
        )
    assume(len(signals) > 1)
    return MessageDefinition(
        name="MUXED",
        message_id=draw(st.integers(min_value=1, max_value=0x7FF)),
        channel="FC",
        protocol="CAN",
        payload_length=8,
        signals=tuple(signals),
        multiplexor="selector",
    )


@st.composite
def sectioned_message_strategy(draw):
    """SOME/IP messages with presence-conditional sections."""
    from repro.protocols.someip import ConditionalLayout, OptionalSection

    mask_bits = sorted(
        draw(st.sets(st.integers(min_value=0, max_value=7),
                     min_size=1, max_size=3))
    )
    sections = []
    signals = []
    for index, mask_bit in enumerate(mask_bits):
        length = draw(st.integers(min_value=1, max_value=3))
        sections.append(OptionalSection(mask_bit, length))
        width = draw(st.integers(min_value=1, max_value=8))
        order = draw(st.sampled_from([INTEL, MOTOROLA]))
        byte = draw(st.integers(min_value=0, max_value=length - 1))
        start = byte * 8 + (width - 1 if order == MOTOROLA else 0)
        signals.append(
            SignalDefinition(
                "sec_{}".format(index),
                SignalEncoding(
                    start_bit=start,
                    bit_length=width,
                    byte_order=order,
                    signed=draw(st.booleans()),
                ),
                section_bit=mask_bit,
            )
        )
    layout = ConditionalLayout(tuple(sections))
    return MessageDefinition(
        name="SECTIONED",
        message_id=draw(st.integers(min_value=1, max_value=0x7FF)),
        channel="ETH",
        protocol="SOMEIP",
        payload_length=1 + sum(s.length for s in sections),
        signals=tuple(signals),
        layout=layout,
    )


@given(message=mux_message_strategy())
@settings(max_examples=60, deadline=None)
def test_property_dbc_round_trip_preserves_multiplexing(message):
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("FC", message.message_id)
    assert clone.multiplexor == "selector"
    for signal in message.signals:
        twin = clone.signal(signal.name)
        assert twin.mux_value == signal.mux_value
        assert twin.encoding == signal.encoding


@given(message=sectioned_message_strategy())
@settings(max_examples=60, deadline=None)
def test_property_dbc_round_trip_preserves_sections(message):
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("ETH", message.message_id)
    assert clone.layout == message.layout
    for signal in message.signals:
        twin = clone.signal(signal.name)
        assert twin.section_bit == signal.section_bit
        assert twin.encoding == signal.encoding


@given(
    message=message_strategy(),
    raws=st.lists(st.integers(min_value=0), min_size=4, max_size=4),
)
@settings(max_examples=80, deadline=None)
def test_property_dbc_round_trip_preserves_decoding(message, raws):
    """Round-tripped databases decode arbitrary payloads identically."""
    database = NetworkDatabase((message,))
    loaded = loads_database(dumps_database(database))
    clone = loaded.message("FC", message.message_id)
    payload = bytearray(8)
    for signal, raw in zip(message.signals, raws):
        signal.encoding.insert_raw(
            payload, raw % (1 << signal.encoding.bit_length)
            if not signal.encoding.signed
            else raw % (1 << (signal.encoding.bit_length - 1)),
        )
    assert clone.decode(bytes(payload)) == message.decode(bytes(payload))
