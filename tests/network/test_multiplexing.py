"""CAN signal multiplexing: database, interpretation, DBC round-trip."""

import pytest

from repro.core import interpret, preselect
from repro.network import (
    DatabaseError,
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)
from repro.network.dbcio import dumps_database, loads_database
from repro.protocols import SignalEncoding


@pytest.fixture
def mux_message():
    """A classic multiplexed status message: selector in byte 0, two
    alternative signal sets sharing bytes 1-2."""
    selector = SignalDefinition("page", SignalEncoding(0, 8))
    front = SignalDefinition(
        "front_height", SignalEncoding(8, 16, scale=0.1), mux_value=0
    )
    rear = SignalDefinition(
        "rear_height", SignalEncoding(8, 16, scale=0.1), mux_value=1
    )
    always = SignalDefinition("status_ok", SignalEncoding(24, 1))
    return MessageDefinition(
        "SUSPENSION", 0x300, "CH", "CAN", 4,
        (selector, front, rear, always),
        cycle_time=0.1,
        multiplexor="page",
    )


class TestValidation:
    def test_valid_mux_message(self, mux_message):
        assert mux_message.multiplexor == "page"

    def test_mux_signals_require_multiplexor(self):
        muxed = SignalDefinition("x", SignalEncoding(8, 8), mux_value=0)
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "CH", "CAN", 2,
                (SignalDefinition("sel", SignalEncoding(0, 8)), muxed),
            )

    def test_multiplexor_must_be_a_signal(self):
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "CH", "CAN", 1,
                (SignalDefinition("a", SignalEncoding(0, 8)),),
                multiplexor="ghost",
            )

    def test_multiplexor_cannot_be_muxed(self):
        selector = SignalDefinition(
            "sel", SignalEncoding(0, 8), mux_value=1
        )
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "CH", "CAN", 1, (selector,), multiplexor="sel"
            )

    def test_same_mux_value_overlap_rejected(self):
        selector = SignalDefinition("sel", SignalEncoding(0, 8))
        a = SignalDefinition("a", SignalEncoding(8, 8), mux_value=0)
        b = SignalDefinition("b", SignalEncoding(12, 8), mux_value=0)
        with pytest.raises(DatabaseError):
            MessageDefinition(
                "M", 1, "CH", "CAN", 3, (selector, a, b), multiplexor="sel"
            )

    def test_different_mux_values_may_overlap(self, mux_message):
        # front_height and rear_height share bytes 1-2 legally.
        assert mux_message.signal("front_height").mux_value == 0
        assert mux_message.signal("rear_height").mux_value == 1


class TestCodec:
    def test_encode_decode_page0(self, mux_message):
        payload = mux_message.encode(
            {"page": 0, "front_height": 12.5, "status_ok": 1}
        )
        decoded = mux_message.decode(payload)
        assert decoded["front_height"] == 12.5
        assert decoded["rear_height"] is None  # absent on page 0
        assert decoded["status_ok"] == 1

    def test_encode_decode_page1(self, mux_message):
        payload = mux_message.encode({"page": 1, "rear_height": 7.5})
        decoded = mux_message.decode(payload)
        assert decoded["rear_height"] == 7.5
        assert decoded["front_height"] is None

    def test_encode_wrong_page_rejected(self, mux_message):
        with pytest.raises(DatabaseError):
            mux_message.encode({"page": 1, "front_height": 3.0})


class TestInterpretation:
    def test_pipeline_extracts_only_matching_pages(self, ctx, mux_message):
        db = NetworkDatabase((mux_message,))
        catalog = db.translation_catalog(["front_height", "rear_height"])
        rows = []
        for i in range(10):
            page = i % 2
            values = {"page": page}
            if page == 0:
                values["front_height"] = 10.0 + i
            else:
                values["rear_height"] = 20.0 + i
            rows.append(
                (0.1 * i, mux_message.encode(values), "CH", 0x300, ())
            )
        k_b = ctx.table_from_rows(["t", "l", "b_id", "m_id", "m_info"], rows)
        k_s = interpret(preselect(k_b, catalog), catalog)
        front = [r for r in k_s.collect() if r[2] == "front_height"]
        rear = [r for r in k_s.collect() if r[2] == "rear_height"]
        assert len(front) == 5
        assert len(rear) == 5
        assert all(10.0 <= r[1] < 20.0 for r in front)
        assert all(20.0 <= r[1] < 30.0 for r in rear)


class TestDbcMultiplexing:
    def test_m_and_big_m_rendered(self, mux_message):
        text = dumps_database(NetworkDatabase((mux_message,)))
        assert "SG_ page M :" in text
        assert "SG_ front_height m0 :" in text
        assert "SG_ rear_height m1 :" in text
        assert "SG_ status_ok :" in text

    def test_round_trip_preserves_multiplexing(self, mux_message):
        loaded = loads_database(
            dumps_database(NetworkDatabase((mux_message,)))
        )
        clone = loaded.message("CH", 0x300)
        assert clone.multiplexor == "page"
        assert clone.signal("front_height").mux_value == 0
        assert clone.signal("rear_height").mux_value == 1
        assert clone.signal("status_ok").mux_value is None

    def test_round_tripped_codec_equivalent(self, mux_message):
        loaded = loads_database(
            dumps_database(NetworkDatabase((mux_message,)))
        )
        clone = loaded.message("CH", 0x300)
        payload = mux_message.encode({"page": 1, "rear_height": 5.0})
        assert clone.decode(payload) == mux_message.decode(payload)
