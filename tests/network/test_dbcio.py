"""DBC text format: rendering, parsing and full round-trips."""

import pytest

from repro.network import MessageDefinition, SignalDefinition
from repro.network.dbcio import (
    DbcError,
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)
from repro.protocols import SignalEncoding
from repro.protocols.signalcodec import MOTOROLA


class TestDump:
    def test_contains_message_and_signal_lines(self, wiper_database):
        text = dumps_database(wiper_database)
        assert "BO_ 3 WIPER_STATUS: 4 ECU" in text
        assert 'SG_ wpos : 0|16@1+ (0.5,0) [0|32767.5] "deg"' in text

    def test_cycle_time_attribute_in_ms(self, wiper_database):
        text = dumps_database(wiper_database)
        assert 'BA_ "GenMsgCycleTime" BO_ 3 100;' in text

    def test_channel_and_protocol_attributes(self, wiper_database):
        text = dumps_database(wiper_database)
        assert 'BA_ "BusChannel" BO_ 17 "K-LIN";' in text
        assert 'BA_ "BusProtocol" BO_ 17 "LIN";' in text

    def test_value_table_line(self, wiper_database):
        text = dumps_database(wiper_database)
        assert 'VAL_ 17 heat 0 "off" 1 "low" 2 "medium" 3 "high"' in text

    def test_data_class_markers_in_comments(self, wiper_database):
        text = dumps_database(wiper_database)
        assert 'CM_ SG_ 17 heat "[ordinal]";' in text

    def test_conditional_layout_round_trips(self):
        from repro.network.database import NetworkDatabase
        from repro.protocols.someip import ConditionalLayout, OptionalSection

        layout = ConditionalLayout(
            (OptionalSection(0, 1), OptionalSection(3, 2))
        )
        msg = MessageDefinition(
            "S", 1, "ETH", "SOMEIP", 4,
            (SignalDefinition("x", SignalEncoding(0, 8), section_bit=0),),
            layout=layout,
        )
        text = dumps_database(NetworkDatabase((msg,)))
        assert 'BA_ "SectionLayout" BO_ 1 "0:1,3:2";' in text
        assert 'CM_ SG_ 1 x "[numeric][section0]";' in text
        clone = loads_database(text).message("ETH", 1)
        assert clone.layout == layout
        assert clone.signal("x").section_bit == 0

    def test_malformed_section_layout_rejected(self):
        from repro.network.database import NetworkDatabase
        from repro.protocols.someip import ConditionalLayout, OptionalSection

        layout = ConditionalLayout((OptionalSection(0, 1),))
        msg = MessageDefinition(
            "S", 1, "ETH", "SOMEIP", 2,
            (SignalDefinition("x", SignalEncoding(0, 8), section_bit=0),),
            layout=layout,
        )
        text = dumps_database(NetworkDatabase((msg,)))
        with pytest.raises(DbcError):
            loads_database(text.replace('"0:1"', '"0:1,bogus"'))


class TestRoundTrip:
    def test_full_database_round_trip(self, wiper_database):
        loaded = loads_database(dumps_database(wiper_database))
        assert len(loaded) == len(wiper_database)
        for original in wiper_database.messages:
            clone = loaded.message(original.channel, original.message_id)
            assert clone.name == original.name
            assert clone.payload_length == original.payload_length
            assert clone.cycle_time == original.cycle_time
            assert clone.protocol == original.protocol
            for s in original.signals:
                c = clone.signal(s.name)
                assert c.encoding == s.encoding
                assert c.unit == s.unit
                assert c.data_class == s.data_class
                assert c.kind == s.kind

    def test_payload_codec_equivalence_after_round_trip(self, wiper_database):
        loaded = loads_database(dumps_database(wiper_database))
        original = wiper_database.message("FC", 3)
        clone = loaded.message("FC", 3)
        payload = original.encode({"wpos": 45.0, "wvel": 7})
        assert clone.decode(payload) == original.decode(payload)

    def test_file_round_trip(self, wiper_database, tmp_path):
        path = tmp_path / "vehicle.dbc"
        dump_database(wiper_database, path)
        loaded = load_database(path)
        assert set(m.name for m in loaded) == set(
            m.name for m in wiper_database
        )

    def test_dataset_databases_round_trip_per_channel(self):
        """Real deployments keep one DBC per bus; ids repeat across
        buses, so the SYN database exports channel by channel."""
        from repro.datasets import build_syn

        database = build_syn().database
        total = 0
        for channel in database.channels():
            loaded = loads_database(
                dumps_database(database, channels=[channel])
            )
            total += len(loaded)
            for message in loaded:
                original = database.message(channel, message.message_id)
                assert message.signal_names() == original.signal_names()
        assert total == len(database)

    def test_duplicate_ids_across_channels_rejected(self):
        from repro.datasets import build_syn

        database = build_syn().database
        with pytest.raises(DbcError):
            dumps_database(database)

    def test_signed_motorola_round_trip(self):
        from repro.network.database import NetworkDatabase

        sig = SignalDefinition(
            "torque",
            SignalEncoding(
                7, 12, byte_order=MOTOROLA, signed=True, scale=0.25, offset=-10
            ),
            unit="Nm",
        )
        msg = MessageDefinition("TORQUE", 0x99, "PT", "CAN", 2, (sig,), 0.02)
        loaded = loads_database(dumps_database(NetworkDatabase((msg,))))
        clone = loaded.message("PT", 0x99).signal("torque")
        assert clone.encoding == sig.encoding


class TestParsing:
    MINIMAL = "\n".join(
        [
            'VERSION "x"',
            "BU_: ECU",
            "BO_ 5 SPEED: 2 ECU",
            ' SG_ speed : 0|16@1+ (0.1,0) [0|6553.5] "km/h" Vector__XXX',
        ]
    )

    def test_minimal_message(self):
        db = loads_database(self.MINIMAL)
        msg = db.message("CAN1", 5)  # default channel
        assert msg.signal("speed").encoding.scale == 0.1
        assert msg.cycle_time is None

    def test_unknown_statements_tolerated(self):
        db = loads_database(
            self.MINIMAL + "\nSIG_VALTYPE_ 5 speed : 1;\nCM_ BO_ 5 \"x\";"
        )
        assert len(db) == 1

    def test_sg_outside_bo_rejected(self):
        with pytest.raises(DbcError):
            loads_database(
                ' SG_ s : 0|8@1+ (1,0) [0|255] "" Vector__XXX'
            )

    def test_val_for_unknown_message_rejected(self):
        with pytest.raises(DbcError):
            loads_database('VAL_ 9 s 0 "a" ;')

    def test_ba_for_unknown_message_rejected(self):
        with pytest.raises(DbcError):
            loads_database('BA_ "GenMsgCycleTime" BO_ 9 100;')

    def test_default_data_class_from_value_table(self):
        text = self.MINIMAL + '\nVAL_ 5 speed 0 "a" 1 "b" ;'
        db = loads_database(text)
        assert db.message("CAN1", 5).signal("speed").data_class == "binary"

    def test_validity_marker_parsed(self):
        text = self.MINIMAL + '\nCM_ SG_ 5 speed "[numeric][validity] qa";'
        db = loads_database(text)
        signal = db.message("CAN1", 5).signal("speed")
        assert signal.kind == "validity"
        assert signal.comment == "qa"
