"""Structural database diffing (repro dbc diff's engine)."""

from repro.network.database import (
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)
from repro.network.dbcio import (
    MESSAGE_DELTA_KINDS,
    SIGNAL_DELTA_KINDS,
    diff_databases,
)
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding


def message(name="M", message_id=1, channel="FC", signals=(), length=8):
    return MessageDefinition(
        name=name,
        message_id=message_id,
        channel=channel,
        protocol="CAN",
        payload_length=length,
        signals=tuple(signals),
    )


def database(*messages):
    return NetworkDatabase(tuple(messages))


def signal(name="a", start=0, length=8, **kwargs):
    return SignalDefinition(
        name, SignalEncoding(start, length, **kwargs)
    )


class TestMessagePairing:
    def test_identical_databases_diff_empty(self):
        db = database(message(signals=(signal(),)))
        diff = diff_databases(db, db)
        assert diff.is_empty()
        assert all(v == 0 for v in diff.counts().values())

    def test_missing_and_spurious_messages(self):
        actual = database(message("ONLY_ACTUAL", 1))
        recovered = database(message("ONLY_RECOVERED", 2))
        diff = diff_databases(actual, recovered)
        kinds = {(d.kind, d.name) for d in diff.message_deltas}
        assert kinds == {
            ("missing", "ONLY_ACTUAL"), ("spurious", "ONLY_RECOVERED"),
        }
        counts = diff.counts()
        assert counts["messages.missing"] == 1
        assert counts["messages.spurious"] == 1

    def test_same_id_on_different_channels_does_not_pair(self):
        actual = database(message("A", 1, channel="FC"))
        recovered = database(message("A", 1, channel="BC"))
        diff = diff_databases(actual, recovered)
        assert diff.counts()["messages.missing"] == 1
        assert diff.counts()["messages.spurious"] == 1


class TestSignalPairing:
    def test_missing_and_spurious_signals(self):
        actual = database(message(signals=(signal("a", 0), signal("b", 8))))
        recovered = database(message(signals=(signal("a", 0),
                                              signal("c", 16))))
        diff = diff_databases(actual, recovered)
        by_kind = {d.kind: d for d in diff.signal_deltas}
        assert by_kind["missing"].actual == "b"
        assert by_kind["spurious"].recovered == "c"

    def test_synthetic_names_pair_by_bit_set(self):
        # Recovered databases use synthetic names: identical geometry
        # pairs the signals, so neither side counts as missing.
        actual = database(message(signals=(signal("speed", 0, 12),)))
        recovered = database(
            message("DISC_FC_1",
                    signals=(signal("disc_fc_1_b0", 0, 12),))
        )
        diff = diff_databases(actual, recovered)
        assert diff.is_empty()

    def test_single_byte_byte_orders_compare_equal(self):
        # Within one byte, Intel and Motorola walk the same positions
        # in the same significance order: not a geometry mismatch.
        actual = database(message(signals=(
            SignalDefinition("a", SignalEncoding(0, 8, byte_order=INTEL)),
        )))
        recovered = database(message(signals=(
            SignalDefinition(
                "a", SignalEncoding(7, 8, byte_order=MOTOROLA)
            ),
        )))
        assert diff_databases(actual, recovered).is_empty()


class TestMismatchKinds:
    def test_geometry_mismatch(self):
        actual = database(message(signals=(signal("a", 0, 12),)))
        recovered = database(message(signals=(signal("a", 0, 8),)))
        (delta,) = diff_databases(actual, recovered).signal_deltas
        assert delta.kind == "geometry_mismatch"
        assert "bits" in delta.detail

    def test_cross_byte_order_is_a_geometry_mismatch(self):
        actual = database(message(signals=(
            SignalDefinition(
                "a", SignalEncoding(0, 16, byte_order=INTEL)
            ),
        )))
        recovered = database(message(signals=(
            SignalDefinition(
                "a", SignalEncoding(7, 16, byte_order=MOTOROLA)
            ),
        )))
        (delta,) = diff_databases(actual, recovered).signal_deltas
        assert delta.kind == "geometry_mismatch"

    def test_scaling_mismatch(self):
        actual = database(message(signals=(signal("a", 0, scale=0.1),)))
        recovered = database(message(signals=(signal("a", 0),)))
        (delta,) = diff_databases(actual, recovered).signal_deltas
        assert delta.kind == "scaling_mismatch"
        assert "scale 0.1 != 1.0" in delta.detail

    def test_signedness_is_a_scaling_mismatch(self):
        actual = database(message(signals=(signal("a", 0, signed=True),)))
        recovered = database(message(signals=(signal("a", 0),)))
        (delta,) = diff_databases(actual, recovered).signal_deltas
        assert delta.kind == "scaling_mismatch"
        assert "signed" in delta.detail

    def test_value_table_is_a_scaling_mismatch(self):
        actual = database(message(signals=(
            signal("a", 0, 2, value_table=((0, "off"), (1, "on"))),
        )))
        recovered = database(message(signals=(signal("a", 0, 2),)))
        (delta,) = diff_databases(actual, recovered).signal_deltas
        assert delta.kind == "scaling_mismatch"
        assert "value_table" in delta.detail


class TestDescribe:
    def test_lines_cover_every_delta(self):
        actual = database(
            message("GONE", 9),
            message(signals=(signal("a", 0, scale=0.5), signal("b", 8))),
        )
        recovered = database(
            message(signals=(signal("a", 0), signal("c", 16))),
        )
        diff = diff_databases(actual, recovered)
        lines = diff.describe()
        assert len(lines) == len(diff.message_deltas) + len(
            diff.signal_deltas
        )
        assert any(l.startswith("missing message FC 0x9") for l in lines)
        assert any("scaling_mismatch signal FC 0x1 a" in l for l in lines)

    def test_renamed_pair_mentions_both_names(self):
        actual = database(message(signals=(signal("speed", 0, scale=0.5),)))
        recovered = database(
            message(signals=(signal("disc_fc_1_b0", 0),))
        )
        (line,) = diff_databases(actual, recovered).describe()
        assert "speed" in line
        assert "(recovered as disc_fc_1_b0)" in line

    def test_kind_tuples_are_exported(self):
        assert "geometry_mismatch" in SIGNAL_DELTA_KINDS
        assert MESSAGE_DELTA_KINDS == ("missing", "spurious")
