"""Protocol-independent frame model and the k_b tuple mapping."""

from repro.protocols.frames import (
    BYTE_RECORD_COLUMNS,
    Frame,
    frame_from_byte_record,
)


class TestByteRecord:
    FRAME = Frame(1.25, "FC", "CAN", 3, b"\x5a\x01", (("dlc", 2),))

    def test_record_layout_matches_paper(self):
        """k_b = (t, l, b_id, m_id, m_info) -- Sec. 2."""
        t, payload, b_id, m_id, m_info = self.FRAME.to_byte_record()
        assert t == 1.25
        assert payload == b"\x5a\x01"
        assert b_id == "FC"
        assert m_id == 3
        assert dict(m_info)["dlc"] == 2

    def test_protocol_embedded_in_m_info(self):
        m_info = self.FRAME.to_byte_record()[4]
        assert dict(m_info)["protocol"] == "CAN"

    def test_columns_constant(self):
        assert BYTE_RECORD_COLUMNS == ("t", "l", "b_id", "m_id", "m_info")

    def test_round_trip(self):
        assert frame_from_byte_record(self.FRAME.to_byte_record()) == self.FRAME

    def test_info_dict(self):
        assert self.FRAME.info_dict() == {"dlc": 2}

    def test_round_trip_defaults_protocol_to_can(self):
        record = (0.0, b"", "X", 1, ())
        assert frame_from_byte_record(record).protocol == "CAN"
