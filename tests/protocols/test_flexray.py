"""FlexRay framing: slots, cycles, header CRC."""

import pytest

from repro.protocols import flexray


class TestFlexRayFrame:
    def test_valid_frame(self):
        frame = flexray.FlexRayFrame(5, 12, b"\x01\x02")
        assert frame.payload_words == 1

    def test_slot_bounds(self):
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(0, 0, b"")
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(2048, 0, b"\x00\x00")

    def test_cycle_bounds(self):
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(1, 64, b"\x00\x00")

    def test_odd_payload_rejected(self):
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(1, 0, b"\x01")

    def test_payload_word_limit(self):
        flexray.FlexRayFrame(1, 0, bytes(254))  # exactly 127 words
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(1, 0, bytes(256))

    def test_channel_validation(self):
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(1, 0, b"\x00\x00", fr_channel="C")

    def test_startup_implies_sync(self):
        with pytest.raises(flexray.FlexRayError):
            flexray.FlexRayFrame(1, 0, b"\x00\x00", startup=True, sync=False)
        frame = flexray.FlexRayFrame(
            1, 0, b"\x00\x00", startup=True, sync=True
        )
        assert frame.startup


class TestHeaderCrc:
    def test_is_11_bits(self):
        assert 0 <= flexray.header_crc(5, 2) < (1 << 11)

    def test_depends_on_slot(self):
        assert flexray.header_crc(5, 2) != flexray.header_crc(6, 2)

    def test_depends_on_length(self):
        assert flexray.header_crc(5, 2) != flexray.header_crc(5, 3)

    def test_depends_on_sync_flag(self):
        assert flexray.header_crc(5, 2, sync=True) != flexray.header_crc(5, 2)


class TestRecordRoundTrip:
    def test_round_trip(self):
        original = flexray.FlexRayFrame(9, 33, b"\xca\xfe", sync=True)
        frame = original.to_frame(1.0, "FR")
        assert frame.message_id == 9
        assert frame.info_dict()["cycle"] == 33
        assert flexray.frame_from_record(frame) == original

    def test_crc_mismatch_detected(self):
        frame = flexray.FlexRayFrame(9, 0, b"\x00\x00").to_frame(0.0, "FR")
        tampered_info = tuple(
            (k, v if k != "header_crc" else (v ^ 1)) for k, v in frame.info
        )
        corrupted = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            frame.payload,
            tampered_info,
        )
        with pytest.raises(flexray.FlexRayError):
            flexray.frame_from_record(corrupted)

    def test_wrong_protocol_rejected(self):
        from repro.protocols import can

        frame = can.CanFrame(1, b"\x00").to_frame(0.0, "FC")
        with pytest.raises(flexray.FlexRayError):
            flexray.frame_from_record(frame)
