"""LIN framing: protected id parity, checksums, round-trips."""

import pytest

from repro.protocols import lin


class TestProtectedId:
    def test_id_bits_preserved(self):
        for frame_id in range(0x40):
            assert lin.protected_id(frame_id) & 0x3F == frame_id

    def test_known_value(self):
        # Frame id 0x11: bits b0=1,b4=1 -> P0 = 1^0^0^1 = 0;
        # P1 = !(0^0^1^0) = 0 -> PID = 0x11.
        assert lin.protected_id(0x11) == 0x11

    def test_parity_differs_for_adjacent_ids(self):
        pids = {lin.protected_id(i) for i in range(0x40)}
        assert len(pids) == 0x40  # parity makes all PIDs distinct

    def test_out_of_range_rejected(self):
        with pytest.raises(lin.LinError):
            lin.protected_id(0x40)


class TestChecksum:
    def test_classic_ignores_id(self):
        a = lin.checksum(b"\x01\x02", frame_id=1, model=lin.CLASSIC)
        b = lin.checksum(b"\x01\x02", frame_id=5, model=lin.CLASSIC)
        assert a == b

    def test_enhanced_depends_on_id(self):
        a = lin.checksum(b"\x01\x02", frame_id=1, model=lin.ENHANCED)
        b = lin.checksum(b"\x01\x02", frame_id=5, model=lin.ENHANCED)
        assert a != b

    def test_enhanced_requires_id(self):
        with pytest.raises(lin.LinError):
            lin.checksum(b"\x01", model=lin.ENHANCED)

    def test_carry_wraps(self):
        # 0xFF + 0xFF overflows; LIN adds the carry back in.
        value = lin.checksum(b"\xff\xff", model=lin.CLASSIC)
        assert 0 <= value <= 0xFF

    def test_unknown_model_rejected(self):
        with pytest.raises(lin.LinError):
            lin.checksum(b"\x01", model="crc32")

    def test_classic_known_value(self):
        # sum = 0x01 + 0x02 = 0x03 -> ~0x03 & 0xFF = 0xFC.
        assert lin.checksum(b"\x01\x02", model=lin.CLASSIC) == 0xFC


class TestLinFrame:
    def test_valid_frame(self):
        frame = lin.LinFrame(0x11, b"\x05")
        assert frame.pid == lin.protected_id(0x11)

    def test_id_range(self):
        with pytest.raises(lin.LinError):
            lin.LinFrame(0x40, b"\x01")

    def test_payload_length_bounds(self):
        with pytest.raises(lin.LinError):
            lin.LinFrame(1, b"")
        with pytest.raises(lin.LinError):
            lin.LinFrame(1, bytes(9))

    def test_round_trip(self):
        original = lin.LinFrame(0x2A, b"\x01\x02\x03")
        recovered = lin.frame_from_record(original.to_frame(3.0, "K-LIN"))
        assert recovered == original

    def test_checksum_mismatch_detected(self):
        frame = lin.LinFrame(0x2A, b"\x01").to_frame(0.0, "K-LIN")
        tampered_info = tuple(
            (k, v if k != "checksum" else (v ^ 0xFF)) for k, v in frame.info
        )
        corrupted = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            frame.payload,
            tampered_info,
        )
        with pytest.raises(lin.LinError):
            lin.frame_from_record(corrupted)

    def test_classic_model_round_trip(self):
        original = lin.LinFrame(0x05, b"\x09", checksum_model=lin.CLASSIC)
        recovered = lin.frame_from_record(original.to_frame(0.0, "K-LIN"))
        assert recovered.checksum_model == lin.CLASSIC
