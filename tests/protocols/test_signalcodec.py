"""Bit-level signal codec: packing geometry, scaling, round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.signalcodec import (
    INTEL,
    MOTOROLA,
    CodecError,
    SignalEncoding,
    overlaps,
)


class TestValidation:
    def test_rejects_zero_length(self):
        with pytest.raises(CodecError):
            SignalEncoding(0, 0)

    def test_rejects_over_64_bits(self):
        with pytest.raises(CodecError):
            SignalEncoding(0, 65)

    def test_rejects_bad_byte_order(self):
        with pytest.raises(CodecError):
            SignalEncoding(0, 8, byte_order="middle")

    def test_rejects_negative_start(self):
        with pytest.raises(CodecError):
            SignalEncoding(-1, 8)

    def test_rejects_zero_scale(self):
        with pytest.raises(CodecError):
            SignalEncoding(0, 8, scale=0)


class TestIntelGeometry:
    def test_byte_aligned_8bit(self):
        e = SignalEncoding(8, 8)
        assert e.byte_span() == (1, 1)
        assert e.required_payload_length() == 2

    def test_straddles_bytes(self):
        e = SignalEncoding(4, 8)
        assert e.byte_span() == (0, 1)

    def test_bit_positions_ascend(self):
        e = SignalEncoding(4, 12)
        assert e.bit_positions() == list(range(4, 16))


class TestMotorolaGeometry:
    def test_sawtooth_wraps_to_next_byte(self):
        # Start at byte 0 bit 7 (MSB), 16 bits: spans bytes 0 and 1.
        e = SignalEncoding(7, 16, byte_order=MOTOROLA)
        assert e.byte_span() == (0, 1)

    def test_msb_first_order(self):
        e = SignalEncoding(7, 8, byte_order=MOTOROLA)
        payload = bytearray(1)
        e.insert_raw(payload, 0x80)
        # MSB of raw lands at bit 7 of byte 0.
        assert payload[0] == 0x80

    def test_known_16bit_layout(self):
        # Classic DBC big-endian: value 0xABCD at start bit 7 -> bytes AB CD.
        e = SignalEncoding(7, 16, byte_order=MOTOROLA)
        payload = bytearray(2)
        e.insert_raw(payload, 0xABCD)
        assert bytes(payload) == b"\xab\xcd"


class TestRawRoundTrip:
    @pytest.mark.parametrize("byte_order", [INTEL, MOTOROLA])
    @pytest.mark.parametrize("start_bit,length", [(0, 1), (3, 5), (7, 12), (8, 16)])
    def test_unsigned_round_trip(self, byte_order, start_bit, length):
        start = start_bit if byte_order == INTEL else max(start_bit, 7)
        e = SignalEncoding(start, length, byte_order=byte_order)
        payload = bytearray(8)
        value = (1 << length) - 1
        e.insert_raw(payload, value)
        assert e.extract_raw(payload) == value

    def test_signed_negative_round_trip(self):
        e = SignalEncoding(0, 12, signed=True)
        payload = bytearray(2)
        e.insert_raw(payload, -100)
        assert e.extract_raw(payload) == -100

    def test_signed_bounds(self):
        e = SignalEncoding(0, 8, signed=True)
        payload = bytearray(1)
        e.insert_raw(payload, -128)
        assert e.extract_raw(payload) == -128
        e.insert_raw(payload, 127)
        assert e.extract_raw(payload) == 127

    def test_out_of_range_raises(self):
        e = SignalEncoding(0, 8)
        with pytest.raises(CodecError):
            e.insert_raw(bytearray(1), 256)

    def test_short_payload_raises_on_extract(self):
        e = SignalEncoding(8, 8)
        with pytest.raises(CodecError):
            e.extract_raw(b"\x00")

    def test_insert_does_not_clobber_neighbors(self):
        a = SignalEncoding(0, 4)
        b = SignalEncoding(4, 4)
        payload = bytearray(1)
        a.insert_raw(payload, 0xF)
        b.insert_raw(payload, 0x5)
        assert a.extract_raw(payload) == 0xF
        assert b.extract_raw(payload) == 0x5


class TestPhysicalScaling:
    def test_scale_and_offset(self):
        e = SignalEncoding(0, 16, scale=0.5, offset=-10.0)
        payload = bytearray(2)
        e.encode(payload, 35.5)
        assert e.decode(payload) == 35.5

    def test_integer_result_stays_int(self):
        e = SignalEncoding(0, 8, scale=1.0)
        payload = bytearray(1)
        e.encode(payload, 42)
        assert e.decode(payload) == 42
        assert isinstance(e.decode(payload), int)

    def test_clamp_saturates(self):
        e = SignalEncoding(0, 8)
        payload = bytearray(1)
        e.encode(payload, 999, clamp=True)
        assert e.extract_raw(payload) == 255
        e.encode(payload, -5, clamp=True)
        assert e.extract_raw(payload) == 0

    def test_physical_bounds(self):
        e = SignalEncoding(0, 8, scale=0.5, offset=-10)
        assert e.physical_bounds() == (-10.0, 117.5)

    def test_fig2_wpos_rule(self):
        """The paper's Fig. 2: v = 0.5 * l' with l' the first two bytes."""
        e = SignalEncoding(0, 16, scale=0.5)
        payload = bytearray(b"\x5a\x01\x00\x00")
        assert e.decode(payload) == 0.5 * 0x015A


class TestValueTable:
    ENC = SignalEncoding(
        0, 2, value_table=((0, "off"), (1, "on"), (2, "auto"))
    )

    def test_decode_label(self):
        payload = bytearray(1)
        self.ENC.insert_raw(payload, 2)
        assert self.ENC.decode(payload) == "auto"

    def test_encode_by_label(self):
        payload = bytearray(1)
        self.ENC.encode(payload, "on")
        assert self.ENC.extract_raw(payload) == 1

    def test_encode_by_raw_int(self):
        payload = bytearray(1)
        self.ENC.encode(payload, 2)
        assert self.ENC.decode(payload) == "auto"

    def test_unknown_label_raises(self):
        with pytest.raises(CodecError):
            self.ENC.encode(bytearray(1), "nope")

    def test_unmapped_raw_decodes_to_placeholder(self):
        payload = bytearray(1)
        self.ENC.insert_raw(payload, 3)
        assert self.ENC.decode(payload) == "raw_3"


class TestOverlap:
    def test_disjoint(self):
        assert not overlaps(SignalEncoding(0, 4), SignalEncoding(4, 4))

    def test_overlapping(self):
        assert overlaps(SignalEncoding(0, 5), SignalEncoding(4, 4))

    def test_cross_byte_order_overlap(self):
        a = SignalEncoding(0, 8)
        b = SignalEncoding(7, 8, byte_order=MOTOROLA)
        assert overlaps(a, b)


@given(
    start_byte=st.integers(min_value=0, max_value=5),
    length=st.integers(min_value=1, max_value=16),
    raw=st.integers(min_value=0),
    byte_order=st.sampled_from([INTEL, MOTOROLA]),
)
@settings(max_examples=200, deadline=None)
def test_property_raw_round_trip(start_byte, length, raw, byte_order):
    raw = raw % (1 << length)
    start_bit = start_byte * 8 + (0 if byte_order == INTEL else 7)
    e = SignalEncoding(start_bit, length, byte_order=byte_order)
    payload = bytearray(8)
    e.insert_raw(payload, raw)
    assert e.extract_raw(payload) == raw


@given(
    raw_a=st.integers(min_value=0, max_value=255),
    raw_b=st.integers(min_value=0, max_value=65535),
)
@settings(max_examples=100, deadline=None)
def test_property_neighbors_independent(raw_a, raw_b):
    a = SignalEncoding(0, 8)
    b = SignalEncoding(8, 16)
    payload = bytearray(3)
    a.insert_raw(payload, raw_a)
    b.insert_raw(payload, raw_b)
    assert a.extract_raw(payload) == raw_a
    assert b.extract_raw(payload) == raw_b


class TestCompiledFastPaths:
    """compile_raw_extractor/compile_decoder mirror the reference methods.

    The closures back the engine's columnar batch kernels, so parity
    must hold bit-for-bit across byte orders, signedness, arbitrary
    (unaligned, sawtooth-wrapping) geometry and both decode flavours.
    """

    @given(
        start_bit=st.integers(min_value=0, max_value=40),
        length=st.integers(min_value=1, max_value=24),
        byte_order=st.sampled_from([INTEL, MOTOROLA]),
        signed=st.booleans(),
        payload=st.binary(min_size=8, max_size=10),
    )
    @settings(max_examples=200, deadline=None)
    def test_raw_extractor_parity(
        self, start_bit, length, byte_order, signed, payload
    ):
        e = SignalEncoding(
            start_bit, length, byte_order=byte_order, signed=signed
        )
        if len(payload) < e.required_payload_length():
            with pytest.raises(CodecError) as compiled:
                e.compile_raw_extractor()(payload)
            with pytest.raises(CodecError) as reference:
                e.extract_raw(payload)
            assert str(compiled.value) == str(reference.value)
        else:
            assert e.compile_raw_extractor()(payload) == \
                e.extract_raw(payload)

    @given(
        start_bit=st.integers(min_value=0, max_value=16),
        length=st.integers(min_value=1, max_value=16),
        byte_order=st.sampled_from([INTEL, MOTOROLA]),
        scale=st.sampled_from([1.0, 2.0, 0.5, 0.25, -1.5]),
        offset=st.sampled_from([0.0, -40.0, 0.1]),
        payload=st.binary(min_size=5, max_size=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_decoder_parity_and_type(
        self, start_bit, length, byte_order, scale, offset, payload
    ):
        e = SignalEncoding(
            start_bit, length, byte_order=byte_order,
            scale=scale, offset=offset,
        )
        expected = e.decode(payload)
        actual = e.compile_decoder()(payload)
        assert actual == expected
        # Int coercion of whole results must match exactly.
        assert type(actual) is type(expected)

    def test_decoder_value_table_parity(self):
        e = SignalEncoding(
            0, 2, value_table=((0, "off"), (1, "on"))
        )
        decode = e.compile_decoder()
        assert decode(b"\x00") == "off"
        assert decode(b"\x01") == "on"
        assert decode(b"\x02") == e.decode(b"\x02") == "raw_2"

    def test_short_payload_raises_same_error(self):
        e = SignalEncoding(16, 16)
        with pytest.raises(CodecError) as compiled:
            e.compile_raw_extractor()(b"\x00")
        with pytest.raises(CodecError) as reference:
            e.extract_raw(b"\x00")
        assert str(compiled.value) == str(reference.value)
