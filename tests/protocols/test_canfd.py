"""CAN FD: discrete payload lengths, DLC mapping, round-trips."""

import pytest

from repro.protocols import can


class TestDlcMapping:
    @pytest.mark.parametrize("length", range(9))
    def test_classic_lengths_identity(self, length):
        assert can.fd_dlc_for_length(length) == length
        assert can.fd_length_for_dlc(length) == length

    @pytest.mark.parametrize(
        "dlc,length",
        [(9, 12), (10, 16), (11, 20), (12, 24), (13, 32), (14, 48), (15, 64)],
    )
    def test_fd_lengths(self, dlc, length):
        assert can.fd_length_for_dlc(dlc) == length
        assert can.fd_dlc_for_length(length) == dlc

    def test_unencodable_length_rejected(self):
        with pytest.raises(can.CanError):
            can.fd_dlc_for_length(13)

    def test_dlc_out_of_range(self):
        with pytest.raises(can.CanError):
            can.fd_length_for_dlc(16)

    @pytest.mark.parametrize(
        "raw,padded", [(0, 0), (8, 8), (9, 12), (13, 16), (33, 48), (64, 64)]
    )
    def test_padding(self, raw, padded):
        assert can.fd_padded_length(raw) == padded

    def test_padding_beyond_maximum_rejected(self):
        with pytest.raises(can.CanError):
            can.fd_padded_length(65)


class TestCanFdFrame:
    def test_valid_large_frame(self):
        frame = can.CanFdFrame(0x123, bytes(64))
        assert frame.dlc == 15

    def test_unencodable_payload_rejected(self):
        with pytest.raises(can.CanError):
            can.CanFdFrame(0x123, bytes(10))

    def test_id_validation(self):
        with pytest.raises(can.CanError):
            can.CanFdFrame(0x800, bytes(8))

    def test_record_round_trip(self):
        original = can.CanFdFrame(0x123, bytes(range(16)), brs=False)
        frame = original.to_frame(1.0, "FC")
        assert frame.info_dict()["fd"] is True
        recovered = can.frame_from_record(frame)
        assert recovered == original

    def test_classic_frames_still_round_trip(self):
        original = can.CanFrame(0x42, b"\x01\x02")
        assert can.frame_from_record(original.to_frame(0.0, "FC")) == original

    def test_fd_crc_mismatch_detected(self):
        frame = can.CanFdFrame(0x1, bytes(12)).to_frame(0.0, "FC")
        tampered = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            frame.payload,
            tuple((k, v ^ 1 if k == "crc" else v) for k, v in frame.info),
        )
        with pytest.raises(can.CanError):
            can.frame_from_record(tampered)

    def test_fd_dlc_payload_mismatch_detected(self):
        frame = can.CanFdFrame(0x1, bytes(12)).to_frame(0.0, "FC")
        truncated = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            frame.payload[:8],
            frame.info,
        )
        with pytest.raises(can.CanError):
            can.frame_from_record(truncated)

    def test_fd_fits_wide_message_payloads(self):
        """A 32-byte multiplexed body message fits one FD frame instead
        of four classic frames."""
        frame = can.CanFdFrame(0x200, bytes(32))
        assert frame.dlc == 13
