"""CAN framing: ids, DLC, CRC-15 and trace record round-trips."""

import pytest

from repro.protocols import can
from repro.protocols.frames import frame_from_byte_record


class TestCanFrame:
    def test_standard_id_accepted(self):
        assert can.CanFrame(0x7FF, b"").can_id == 0x7FF

    def test_standard_id_overflow_rejected(self):
        with pytest.raises(can.CanError):
            can.CanFrame(0x800, b"")

    def test_extended_id_accepted(self):
        frame = can.CanFrame(0x1FFFFFFF, b"", extended=True)
        assert frame.extended

    def test_extended_id_overflow_rejected(self):
        with pytest.raises(can.CanError):
            can.CanFrame(0x20000000, b"", extended=True)

    def test_payload_limit(self):
        with pytest.raises(can.CanError):
            can.CanFrame(1, bytes(9))

    def test_dlc_matches_payload(self):
        assert can.CanFrame(1, b"\x01\x02\x03").dlc == 3


class TestCrc15:
    def test_crc_is_15_bits(self):
        frame = can.CanFrame(0x123, b"\x01\x02\x03\x04")
        assert 0 <= frame.crc() < (1 << 15)

    def test_crc_changes_with_payload(self):
        a = can.CanFrame(0x123, b"\x01")
        b = can.CanFrame(0x123, b"\x02")
        assert a.crc() != b.crc()

    def test_crc_changes_with_id(self):
        a = can.CanFrame(0x123, b"\x01")
        b = can.CanFrame(0x124, b"\x01")
        assert a.crc() != b.crc()

    def test_crc_of_empty_input_is_zero(self):
        assert can.crc15(b"") == 0

    def test_crc_deterministic(self):
        data = b"\x12\x34\x56"
        assert can.crc15(data) == can.crc15(data)


class TestRecordRoundTrip:
    def test_to_frame_carries_header_fields(self):
        frame = can.CanFrame(0x123, b"\xaa\xbb").to_frame(1.5, "FC")
        info = frame.info_dict()
        assert frame.protocol == "CAN"
        assert info["dlc"] == 2
        assert info["extended"] is False
        assert frame.message_id == 0x123

    def test_frame_from_record_round_trip(self):
        original = can.CanFrame(0x123, b"\xaa\xbb")
        recovered = can.frame_from_record(original.to_frame(1.5, "FC"))
        assert recovered == original

    def test_byte_record_round_trip(self):
        frame = can.CanFrame(0x42, b"\x01").to_frame(2.0, "BC")
        rebuilt = frame_from_byte_record(frame.to_byte_record())
        assert rebuilt == frame

    def test_dlc_mismatch_detected(self):
        frame = can.CanFrame(0x1, b"\x01\x02").to_frame(0.0, "FC")
        corrupted = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            b"\x01",  # payload shortened, DLC still says 2
            frame.info,
        )
        with pytest.raises(can.CanError):
            can.frame_from_record(corrupted)

    def test_crc_mismatch_detected(self):
        frame = can.CanFrame(0x1, b"\x01\x02").to_frame(0.0, "FC")
        tampered_info = tuple(
            (k, v if k != "crc" else (v ^ 1)) for k, v in frame.info
        )
        corrupted = frame.__class__(
            frame.timestamp,
            frame.channel,
            frame.protocol,
            frame.message_id,
            frame.payload,
            tampered_info,
        )
        with pytest.raises(can.CanError):
            can.frame_from_record(corrupted)

    def test_wrong_protocol_rejected(self):
        from repro.protocols import lin

        frame = lin.LinFrame(1, b"\x01").to_frame(0.0, "K-LIN")
        with pytest.raises(can.CanError):
            can.frame_from_record(frame)
