"""SOME/IP: header serialization and presence-conditional payloads."""

import pytest

from repro.protocols import ShortPayloadError, someip


class TestMessageId:
    def test_compose_and_split(self):
        mid = someip.message_id(0x00D4, 0x8001)
        assert mid == 0x00D48001
        assert someip.split_message_id(mid) == (0x00D4, 0x8001)

    def test_out_of_range_rejected(self):
        with pytest.raises(someip.SomeIpError):
            someip.message_id(0x10000, 0)


class TestSerialization:
    MSG = someip.SomeIpMessage(
        0x1234,
        0x5678,
        b"\x01\x02\x03",
        client_id=0x9,
        session_id=0x42,
        message_type=someip.NOTIFICATION,
    )

    def test_header_is_16_bytes(self):
        assert len(self.MSG.serialize()) == 16 + 3

    def test_length_field_covers_tail(self):
        assert self.MSG.length == 8 + 3

    def test_round_trip(self):
        assert someip.SomeIpMessage.deserialize(self.MSG.serialize()) == self.MSG

    def test_truncated_buffer_rejected(self):
        with pytest.raises(someip.SomeIpError):
            someip.SomeIpMessage.deserialize(b"\x00" * 10)

    def test_bad_protocol_version_rejected(self):
        data = bytearray(self.MSG.serialize())
        data[12] = 0x02  # protocol version byte
        with pytest.raises(someip.SomeIpError):
            someip.SomeIpMessage.deserialize(bytes(data))

    def test_inconsistent_length_rejected(self):
        data = bytearray(self.MSG.serialize())
        data[4:8] = (999).to_bytes(4, "big")
        with pytest.raises(someip.SomeIpError):
            someip.SomeIpMessage.deserialize(bytes(data))

    def test_unknown_message_type_rejected(self):
        with pytest.raises(someip.SomeIpError):
            someip.SomeIpMessage(1, 2, b"", message_type=0x55)


class TestConditionalLayout:
    LAYOUT = someip.ConditionalLayout(
        (
            someip.OptionalSection(0, 2),
            someip.OptionalSection(1, 3),
            someip.OptionalSection(3, 1),
        )
    )

    def test_all_present(self):
        payload = self.LAYOUT.build_payload({0: b"ab", 1: b"xyz", 3: b"q"})
        assert payload[0] == 0b1011
        assert self.LAYOUT.extract_section(payload, 0) == b"ab"
        assert self.LAYOUT.extract_section(payload, 1) == b"xyz"
        assert self.LAYOUT.extract_section(payload, 3) == b"q"

    def test_offsets_shift_when_earlier_absent(self):
        """The paper's data-dependent rule: preceding bytes (the mask)
        define presence and position of succeeding bytes."""
        with_first = self.LAYOUT.build_payload({0: b"ab", 1: b"xyz"})
        without_first = self.LAYOUT.build_payload({1: b"xyz"})
        assert self.LAYOUT.section_offset(with_first, 1) == 3
        assert self.LAYOUT.section_offset(without_first, 1) == 1
        assert self.LAYOUT.extract_section(without_first, 1) == b"xyz"

    def test_absent_section_returns_none(self):
        payload = self.LAYOUT.build_payload({1: b"xyz"})
        assert self.LAYOUT.extract_section(payload, 0) is None

    def test_wrong_section_length_rejected(self):
        with pytest.raises(someip.SomeIpError):
            self.LAYOUT.build_payload({0: b"abc"})

    def test_unknown_mask_bit_rejected(self):
        payload = self.LAYOUT.build_payload({0: b"ab"})
        with pytest.raises(someip.SomeIpError):
            self.LAYOUT.section_offset(b"\xff" + payload[1:], 5)

    def test_truncated_payload_detected(self):
        payload = self.LAYOUT.build_payload({1: b"xyz"})[:-1]
        with pytest.raises(ShortPayloadError):
            self.LAYOUT.extract_section(payload, 1)

    def test_empty_payload_rejected(self):
        with pytest.raises(ShortPayloadError):
            self.LAYOUT.section_offset(b"", 0)

    def test_duplicate_mask_bits_rejected(self):
        with pytest.raises(someip.SomeIpError):
            someip.ConditionalLayout(
                (someip.OptionalSection(0, 1), someip.OptionalSection(0, 2))
            )

    def test_unordered_sections_rejected(self):
        with pytest.raises(someip.SomeIpError):
            someip.ConditionalLayout(
                (someip.OptionalSection(2, 1), someip.OptionalSection(0, 1))
            )


class TestRecordRoundTrip:
    def test_frame_round_trip(self):
        msg = someip.SomeIpMessage(0x0100, 0x8001, b"\x07", session_id=5)
        frame = msg.to_frame(4.0, "ETH")
        assert frame.message_id == someip.message_id(0x0100, 0x8001)
        recovered = someip.frame_from_record(frame)
        assert recovered == msg

    def test_wrong_protocol_rejected(self):
        from repro.protocols import can

        frame = can.CanFrame(1, b"\x00").to_frame(0.0, "FC")
        with pytest.raises(someip.SomeIpError):
            someip.frame_from_record(frame)
