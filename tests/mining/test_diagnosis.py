"""Error inspection: outliers with state context, cycle violations."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    CycleViolationExtension,
    ExtensionSet,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedWithinCycle,
)
from repro.mining import (
    find_cycle_violations,
    find_outliers,
    summarize_findings,
)
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, VehicleSimulation
from repro.vehicle import behaviors as bhv


@pytest.fixture
def faulty_vehicle():
    """A vehicle with planted faults: speed outliers and a dropped-cycle
    status message."""
    speed = SignalDefinition(
        "speed", SignalEncoding(0, 16, scale=0.1), data_class="numeric"
    )
    speed_msg = MessageDefinition(
        "SPEED", 0x10, "DC", "CAN", 2, (speed,), cycle_time=0.05
    )
    status = SignalDefinition(
        "status",
        SignalEncoding(0, 2, value_table=((0, "OFF"), (1, "ON"))),
        data_class="binary",
    )
    status_msg = MessageDefinition(
        "STATUS", 0x20, "DC", "CAN", 1, (status,), cycle_time=0.1
    )
    db = NetworkDatabase((speed_msg, status_msg))
    ecu = (
        Ecu("E")
        .add_transmission(
            speed_msg,
            {
                "speed": bhv.OutlierInjector(
                    bhv.Sine(30.0, 20.0, mean=80.0, noise=0.3, seed=2),
                    rate=0.005,
                    magnitude=400.0,
                    seed=7,
                )
            },
            Cyclic(0.05, seed=4),
        )
        .add_transmission(
            status_msg,
            {"status": bhv.Toggle(10.0, "ON", "OFF")},
            Cyclic(0.1, drop_rate=0.05, seed=5),
        )
    )
    return VehicleSimulation(db, [ecu])


@pytest.fixture
def faulty_result(ctx, faulty_vehicle):
    db = faulty_vehicle.database
    config = PipelineConfig(
        catalog=db.translation_catalog(["speed", "status"]),
        constraints=ConstraintSet(
            (Constraint("status", True, (UnchangedWithinCycle(0.1),)),)
        ),
        extensions=ExtensionSet(
            (CycleViolationExtension("status", 0.1, tolerance=1.8),)
        ),
    )
    k_b = faulty_vehicle.record_table(ctx, 60.0)
    return PreprocessingPipeline(config).run(k_b)


class TestFindOutliers:
    def test_planted_outliers_found(self, faulty_result):
        findings = find_outliers(faulty_result)
        assert findings
        assert all(f.signal_id == "speed" for f in findings)
        assert all(abs(f.value) > 200 for f in findings)

    def test_state_context_attached(self, faulty_result):
        findings = find_outliers(faulty_result)
        finding = findings[-1]
        assert finding.state_at["t"] <= finding.timestamp
        assert "status" in finding.state_at

    def test_prior_state_chain(self, faulty_result):
        findings = find_outliers(faulty_result, max_prior_states=2)
        late = [f for f in findings if f.timestamp > 5.0]
        assert late
        assert 1 <= len(late[0].prior_states) <= 2
        assert all(
            s["t"] < late[0].timestamp for s in late[0].prior_states
        )

    def test_summary_lines(self, faulty_result):
        findings = find_outliers(faulty_result)
        lines = summarize_findings(findings)
        assert len(lines) == len(findings)
        assert all("outlier v=" in line for line in lines)


class TestFindCycleViolations:
    def test_dropped_cycles_reported(self, faulty_result):
        violations = find_cycle_violations(faulty_result)
        assert violations
        assert all(v.signal_id == "status" for v in violations)
        assert all(v.factor > 1.8 for v in violations)

    def test_sorted_by_severity(self, faulty_result):
        violations = find_cycle_violations(faulty_result)
        factors = [v.factor for v in violations]
        assert factors == sorted(factors, reverse=True)

    def test_no_rules_no_violations(self, ctx, faulty_vehicle):
        db = faulty_vehicle.database
        config = PipelineConfig(catalog=db.translation_catalog(["speed"]))
        k_b = faulty_vehicle.record_table(ctx, 10.0)
        result = PreprocessingPipeline(config).run(k_b)
        assert find_cycle_violations(result) == []
