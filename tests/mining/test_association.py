"""Apriori and IF-THEN rule mining (Sec. 4.4)."""

import pytest

from repro.mining import (
    Apriori,
    AssociationRuleMiner,
    Item,
    transactions_from_states,
)
from repro.mining.association import MiningError


def make_transactions():
    """Wiper scenario: cold + wiper active implies wiper error."""
    base = [
        {"T": "warm", "Wiper": "off", "Error": "none"},
        {"T": "warm", "Wiper": "on", "Error": "none"},
        {"T": "cold", "Wiper": "off", "Error": "none"},
    ] * 5
    errors = [{"T": "cold", "Wiper": "on", "Error": "blocked"}] * 5
    states = [dict(s, t=float(i)) for i, s in enumerate(base + errors)]
    return transactions_from_states(states)


class TestTransactions:
    def test_time_column_excluded(self):
        txs = transactions_from_states([{"t": 1.0, "a": "x"}])
        assert txs == [frozenset({Item("a", "x")})]

    def test_none_values_skipped(self):
        txs = transactions_from_states([{"t": 1.0, "a": None, "b": "y"}])
        assert txs == [frozenset({Item("b", "y")})]

    def test_column_restriction(self):
        txs = transactions_from_states(
            [{"t": 1.0, "a": "x", "b": "y"}], columns={"a"}
        )
        assert txs == [frozenset({Item("a", "x")})]


class TestApriori:
    def test_singleton_supports(self):
        txs = make_transactions()
        supports = Apriori(min_support=0.2).frequent_itemsets(txs)
        cold = frozenset({Item("T", "cold")})
        assert supports[cold] == pytest.approx(10 / 20)

    def test_min_support_prunes(self):
        txs = make_transactions()
        supports = Apriori(min_support=0.6).frequent_itemsets(txs)
        assert all(s >= 0.6 for s in supports.values())

    def test_pair_supports(self):
        txs = make_transactions()
        supports = Apriori(min_support=0.2).frequent_itemsets(txs)
        pair = frozenset({Item("T", "cold"), Item("Wiper", "on")})
        assert supports[pair] == pytest.approx(0.25)

    def test_max_length_bounds_itemsets(self):
        txs = make_transactions()
        supports = Apriori(min_support=0.1, max_length=2).frequent_itemsets(txs)
        assert max(len(s) for s in supports) <= 2

    def test_empty_transactions(self):
        assert Apriori().frequent_itemsets([]) == {}

    def test_validation(self):
        with pytest.raises(MiningError):
            Apriori(min_support=0)
        with pytest.raises(MiningError):
            Apriori(max_length=0)

    def test_apriori_property_holds(self):
        """Support of a superset never exceeds support of a subset."""
        txs = make_transactions()
        supports = Apriori(min_support=0.05).frequent_itemsets(txs)
        for itemset, support in supports.items():
            for item in itemset:
                subset = itemset - {item}
                if subset and subset in supports:
                    assert support <= supports[subset] + 1e-12


class TestRuleMining:
    def test_error_rule_discovered(self):
        """IF T=cold and Wiper=on THEN Error=blocked (the paper's example
        pattern)."""
        miner = AssociationRuleMiner(min_support=0.1, min_confidence=0.9)
        rules = miner.mine_transactions(make_transactions())
        target = [
            r
            for r in rules
            if r.antecedent
            == frozenset({Item("T", "cold"), Item("Wiper", "on")})
            and r.consequent == frozenset({Item("Error", "blocked")})
        ]
        assert len(target) == 1
        assert target[0].confidence == 1.0
        assert target[0].lift == pytest.approx(4.0)

    def test_low_confidence_rules_excluded(self):
        miner = AssociationRuleMiner(min_support=0.1, min_confidence=0.99)
        rules = miner.mine_transactions(make_transactions())
        assert all(r.confidence >= 0.99 for r in rules)

    def test_rules_sorted_by_confidence(self):
        miner = AssociationRuleMiner(min_support=0.1, min_confidence=0.5)
        rules = miner.mine_transactions(make_transactions())
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rules_for_consequent(self):
        miner = AssociationRuleMiner(min_support=0.1, min_confidence=0.8)
        rules = miner.mine_transactions(make_transactions())
        error_rules = miner.rules_for_consequent(rules, "Error", "blocked")
        assert error_rules
        assert all(
            any(i.column == "Error" for i in r.consequent) for r in error_rules
        )

    def test_rule_str_format(self):
        miner = AssociationRuleMiner(min_support=0.1, min_confidence=0.9)
        rules = miner.mine_transactions(make_transactions())
        assert any("IF " in str(r) and " THEN " in str(r) for r in rules)

    def test_validation(self):
        with pytest.raises(MiningError):
            AssociationRuleMiner(min_confidence=0)

    def test_mine_from_state_representation(self, ctx):
        from repro.core import KIND_NOMINAL, R_COLUMNS, build_state_representation

        rows = []
        for i in range(10):
            rows.append((float(i), "a", "FC", KIND_NOMINAL, "x", None))
            rows.append((float(i), "b", "FC", KIND_NOMINAL, "y", None))
        table = ctx.table_from_rows(list(R_COLUMNS), rows)
        rep = build_state_representation(table)
        miner = AssociationRuleMiner(min_support=0.5, min_confidence=0.9)
        rules = miner.mine(rep)
        assert any(
            r.antecedent == frozenset({Item("a", "x")})
            and r.consequent == frozenset({Item("b", "y")})
            for r in rules
        )
