"""Transition graphs and anomaly detection (Sec. 4.4)."""

import pytest

from repro.core.representation import StateRepresentation
from repro.mining import StateAnomalyDetector, TransitionGraph, state_key
from repro.mining.anomaly import AnomalyError


def make_states():
    """Mostly idle<->active cycling, one rare error excursion."""
    states = []
    t = 0.0
    for _round in range(10):
        states.append({"t": t, "mode": "idle", "err": "none"})
        states.append({"t": t + 1, "mode": "active", "err": "none"})
        t += 2
    states.append({"t": t, "mode": "active", "err": "blocked"})
    states.append({"t": t + 1, "mode": "idle", "err": "none"})
    return states


class TestTransitionGraph:
    def test_nodes_and_counts(self):
        tg = TransitionGraph.from_states(make_states())
        idle = state_key({"mode": "idle", "err": "none"}, tg.columns)
        active = state_key({"mode": "active", "err": "none"}, tg.columns)
        assert tg.transition_count(idle, active) == 10
        assert tg.graph.nodes[idle]["visits"] == 11

    def test_self_transitions_not_counted(self):
        states = [{"t": 0.0, "a": "x"}, {"t": 1.0, "a": "x"}]
        tg = TransitionGraph.from_states(states)
        assert tg.total_transitions == 0

    def test_rare_transitions_detected(self):
        tg = TransitionGraph.from_states(make_states())
        rare = tg.rare_transitions(max_count=1)
        # The excursion contributes two rare edges (into and out of error).
        assert len(rare) == 2
        error_edges = [
            (u, v) for u, v, _c in rare if ("err", "blocked") in u or ("err", "blocked") in v
        ]
        assert len(error_edges) == 2

    def test_transition_probability(self):
        tg = TransitionGraph.from_states(make_states())
        active = state_key({"mode": "active", "err": "none"}, tg.columns)
        error = state_key({"mode": "active", "err": "blocked"}, tg.columns)
        p = tg.transition_probability(active, error)
        assert p == pytest.approx(1 / 10)

    def test_probability_of_unknown_source_zero(self):
        tg = TransitionGraph.from_states(make_states())
        ghost = (("mode", "ghost"), ("err", "none"))
        assert tg.transition_probability(ghost, ghost) == 0.0

    def test_nodes_matching(self):
        tg = TransitionGraph.from_states(make_states())
        assert len(tg.nodes_matching("err", "blocked")) == 1

    def test_paths_to_error(self):
        tg = TransitionGraph.from_states(make_states())
        paths = tg.paths_to("err", "blocked", max_length=3)
        assert paths
        assert all(("err", "blocked") in p[-1] for p in paths)

    def test_predecessors_of_error(self):
        tg = TransitionGraph.from_states(make_states())
        preds = tg.predecessors_of("err", "blocked")
        assert len(preds) == 1
        assert ("mode", "active") in preds[0][0]

    def test_column_restriction(self):
        tg = TransitionGraph.from_states(make_states(), columns=["mode"])
        assert tg.columns == ("mode",)
        # Only idle<->active transitions remain.
        assert len(tg.graph.nodes) == 2

    def test_from_representation(self):
        rep = StateRepresentation(
            ("mode",), [(0.0, "idle"), (1.0, "active"), (2.0, "idle")]
        )
        tg = TransitionGraph.from_representation(rep)
        assert tg.total_transitions == 2

    def test_to_dot_contains_nodes_and_edges(self):
        tg = TransitionGraph.from_states(make_states())
        dot = tg.to_dot()
        assert dot.startswith("digraph")
        assert "->" in dot
        assert "mode=idle" in dot


class TestAnomalyDetector:
    def make_representation(self):
        states = make_states()
        columns = ("mode", "err")
        rows = [(s["t"], s["mode"], s["err"]) for s in states]
        return StateRepresentation(columns, rows)

    def test_rare_state_found(self):
        detector = StateAnomalyDetector(quantile=0.05, min_rows=5)
        anomalies = detector.detect(self.make_representation())
        assert anomalies
        assert anomalies[0].state["err"] == "blocked"

    def test_severity_ranking(self):
        detector = StateAnomalyDetector(quantile=0.2, min_rows=5)
        anomalies = detector.detect(self.make_representation())
        scores = [a.score for a in anomalies]
        assert scores == sorted(scores)
        assert anomalies[0].severity >= anomalies[-1].severity

    def test_rare_items_identify_column(self):
        detector = StateAnomalyDetector(quantile=0.05, min_rows=5)
        [anomaly] = detector.detect(self.make_representation())
        rarest = anomaly.rare_items[0]
        assert rarest[0] == "err"
        assert rarest[1] == "blocked"

    def test_too_few_rows_returns_nothing(self):
        detector = StateAnomalyDetector(min_rows=100)
        assert detector.detect(self.make_representation()) == []

    def test_validation(self):
        with pytest.raises(AnomalyError):
            StateAnomalyDetector(quantile=0)
        with pytest.raises(AnomalyError):
            StateAnomalyDetector(min_rows=0)

    def test_anomalies_convert_to_extension_rules(self):
        detector = StateAnomalyDetector(quantile=0.05, min_rows=5)
        anomalies = detector.detect(self.make_representation())
        rules = detector.to_extension_rules(anomalies, "err")
        assert len(rules) == 1
        rule = rules[0]
        assert rule.signal_id == "err"
        # The rule fires on recurrence of the anomalous value.
        assert rule.func(0.0, "blocked") == 1
        assert rule.func(0.0, "none") is None
