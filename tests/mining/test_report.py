"""Verification report generation."""

import pytest

from repro.core import (
    Constraint,
    ConstraintSet,
    CycleViolationExtension,
    ExtensionSet,
    PipelineConfig,
    PreprocessingPipeline,
    UnchangedWithinCycle,
)
from repro.mining.report import ReportOptions, generate_report


@pytest.fixture(scope="module")
def result():
    from repro.engine import EngineContext
    from repro.network import (
        MessageDefinition,
        NetworkDatabase,
        SignalDefinition,
    )
    from repro.protocols import SignalEncoding
    from repro.vehicle import Cyclic, Ecu, VehicleSimulation
    from repro.vehicle import behaviors as bhv

    speed = SignalDefinition("speed", SignalEncoding(0, 16, scale=0.1))
    speed_msg = MessageDefinition(
        "SPEED", 0x10, "DC", "CAN", 2, (speed,), cycle_time=0.05
    )
    mode = SignalDefinition(
        "mode",
        SignalEncoding(0, 2, value_table=((0, "idle"), (1, "drive"), (2, "fault"))),
        data_class="nominal",
    )
    mode_msg = MessageDefinition(
        "MODE", 0x20, "DC", "CAN", 1, (mode,), cycle_time=0.2
    )
    db = NetworkDatabase((speed_msg, mode_msg))
    ecu = (
        Ecu("E")
        .add_transmission(
            speed_msg,
            {
                "speed": bhv.OutlierInjector(
                    bhv.Sine(30.0, 15.0, mean=90.0, noise=0.2, seed=1),
                    rate=0.01, magnitude=300.0, seed=2,
                )
            },
            Cyclic(0.05, drop_rate=0.03, seed=3),
        )
        .add_transmission(
            mode_msg,
            {
                "mode": bhv.Occasionally(
                    bhv.Toggle(15.0, "drive", "idle"), "fault", 0.01, seed=4
                )
            },
            Cyclic(0.2, seed=5),
        )
    )
    sim = VehicleSimulation(db, [ecu])
    ctx = EngineContext.serial()
    k_b = sim.record_table(ctx, 90.0)
    config = PipelineConfig(
        catalog=db.translation_catalog(["speed", "mode"]),
        constraints=ConstraintSet(
            (Constraint("mode", True, (UnchangedWithinCycle(0.2),)),)
        ),
        extensions=ExtensionSet(
            (CycleViolationExtension("speed", 0.05, tolerance=1.8),)
        ),
    )
    return PreprocessingPipeline(config).run(k_b)


class TestGenerateReport:
    def test_markdown_has_all_sections(self, result):
        text = generate_report(result).to_markdown()
        assert text.startswith("# Trace verification report")
        for heading in (
            "## Run summary",
            "## Signals",
            "## Potential errors",
            "## Cycle-time violations",
            "## Anomaly hot-spots",
        ):
            assert heading in text

    def test_signal_table_lists_every_signal(self, result):
        text = generate_report(result).to_markdown()
        assert "| speed |" in text
        assert "| mode |" in text

    def test_outliers_reported_with_context(self, result):
        text = generate_report(result).to_markdown()
        assert "Potential errors (outliers):" in text
        assert "state:" in text

    def test_violations_reported(self, result):
        text = generate_report(result).to_markdown()
        assert "x expected cycle" in text

    def test_limits_respected(self, result):
        options = ReportOptions(max_outliers=1, max_violations=1)
        text = generate_report(result, options=options).to_markdown()
        assert "more" in text  # truncation notes appear

    def test_custom_title(self, result):
        report = generate_report(result, title="Journey 7")
        assert report.to_markdown().startswith("# Journey 7")

    def test_state_rows_embedding(self, result):
        options = ReportOptions(state_rows=3)
        text = generate_report(result, options=options).to_markdown()
        assert "## State representation (first 3 rows)" in text
        assert "| t |" in text

    def test_rare_transitions_section_for_gamma_signals(self, result):
        text = generate_report(result).to_markdown()
        assert "Rare transitions" in text
