"""ASCII and binary trace log round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracefile import asciilog, binlog
from repro.tracefile.asciilog import TraceFormatError
from repro.tracefile.binlog import BinaryTraceError


@pytest.fixture
def records(wiper_simulation):
    return wiper_simulation.byte_records(5.0)


@pytest.mark.parametrize("module", [asciilog, binlog], ids=["ascii", "binary"])
class TestRoundTrip:
    def test_records_round_trip(self, module, records, tmp_path):
        path = tmp_path / "trace.log"
        count = module.dump_records(records, path)
        assert count == len(records)
        assert module.load_records(path) == records

    def test_table_round_trip(self, module, ctx, wiper_simulation, tmp_path):
        table = wiper_simulation.record_table(ctx, 3.0)
        path = tmp_path / "trace.log"
        module.dump_table(table, path)
        loaded = module.load_table(ctx, path)
        assert loaded.columns == table.columns
        assert sorted(loaded.collect()) == sorted(table.collect())

    def test_empty_trace(self, module, tmp_path):
        path = tmp_path / "empty.log"
        module.dump_records([], path)
        assert module.load_records(path) == []

    def test_empty_payload(self, module, tmp_path):
        path = tmp_path / "t.log"
        records = [(1.0, b"", "FC", 3, (("protocol", "CAN"),))]
        module.dump_records(records, path)
        assert module.load_records(path) == records

    def test_info_value_types_preserved(self, module, tmp_path):
        path = tmp_path / "t.log"
        info = (
            ("protocol", "CAN"),
            ("dlc", 8),
            ("extended", False),
            ("ratio", 0.25),
        )
        records = [(1.5, b"\x01", "FC", 3, info)]
        loaded = module.load_records(
            path if module.dump_records(records, path) else path
        )
        assert loaded == records
        values = dict(loaded[0][4])
        assert isinstance(values["dlc"], int)
        assert isinstance(values["extended"], bool)
        assert isinstance(values["ratio"], float)


class TestAsciiFormat:
    def test_header_line_written(self, tmp_path):
        path = tmp_path / "t.log"
        asciilog.dump_records([], path)
        assert path.read_text().startswith("// repro in-vehicle trace log")

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            asciilog.load_records(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("// repro in-vehicle trace log v1\ngarbage line\n")
        with pytest.raises(TraceFormatError):
            asciilog.load_records(path)

    def test_length_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(
            "// repro in-vehicle trace log v1\n"
            "1.0 FC 3 CAN d 5 aabb // protocol=s:CAN\n"
        )
        with pytest.raises(TraceFormatError):
            asciilog.load_records(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "t.log"
        asciilog.dump_records([(1.0, b"\x01", "FC", 3, ())], path)
        content = path.read_text().splitlines()
        content.insert(1, "// a comment")
        path.write_text("\n".join(content) + "\n")
        assert len(asciilog.load_records(path)) == 1

    def test_reserved_characters_rejected(self, tmp_path):
        records = [(1.0, b"", "FC", 3, (("key", "a;b"),))]
        with pytest.raises(TraceFormatError):
            asciilog.dump_records(records, tmp_path / "t.log")


class TestBinaryFormat:
    def test_magic_checked(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + bytes(10))
        with pytest.raises(BinaryTraceError):
            binlog.load_records(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        binlog.dump_records([(1.0, b"\x01\x02", "FC", 3, ())], path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(BinaryTraceError):
            binlog.load_records(path)

    def test_float_timestamps_bit_exact(self, tmp_path):
        t = 0.1 + 0.2  # classic non-representable sum
        path = tmp_path / "t.bin"
        binlog.dump_records([(t, b"", "FC", 1, ())], path)
        [(loaded_t, *_rest)] = binlog.load_records(path)
        assert loaded_t == t


@given(
    t=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    payload=st.binary(max_size=16),
    m_id=st.integers(min_value=0, max_value=2**32 - 1),
    channel=st.sampled_from(["FC", "BC", "K-LIN", "ETH"]),
    dlc=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_property_binary_round_trip(tmp_path_factory, t, payload, m_id, channel, dlc):
    path = tmp_path_factory.mktemp("bin") / "t.bin"
    records = [(t, payload, channel, m_id, (("protocol", "CAN"), ("dlc", dlc)))]
    binlog.dump_records(records, path)
    assert binlog.load_records(path) == records
