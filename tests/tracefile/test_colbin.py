"""Columnar (mmap) trace format: round-trips, structured errors, scans.

Malformed inputs -- truncated files, zero-record files, corrupt magic,
broken offset tables -- must surface as :class:`ColumnarTraceError` (a
``PlanError``), never a bare ``struct.error``; and the format must
round-trip byte records, float timestamps bit-exactly, against the
record-major binlog reader.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preselection import preselect, preselect_file
from repro.engine import ColumnarPartition, col
from repro.engine.errors import PlanError
from repro.tracefile import binlog, codec_for, colbin
from repro.tracefile.colbin import ColumnarTraceError, ColumnarTraceReader


@pytest.fixture
def records(wiper_simulation):
    return wiper_simulation.byte_records(5.0)


class TestRoundTrip:
    def test_records_round_trip(self, records, tmp_path):
        path = tmp_path / "trace.ctrc"
        count = colbin.dump_records(records, path)
        assert count == len(records)
        assert colbin.load_records(path) == records

    def test_matches_binlog_reader(self, records, tmp_path):
        columnar = tmp_path / "t.ctrc"
        record_major = tmp_path / "t.btrc"
        colbin.dump_records(records, columnar)
        binlog.dump_records(records, record_major)
        assert colbin.load_records(columnar) == binlog.load_records(
            record_major
        )

    def test_float_timestamps_bit_exact(self, tmp_path):
        t = 0.1 + 0.2  # classic non-representable sum
        path = tmp_path / "t.ctrc"
        colbin.dump_records([(t, b"", "FC", 1, ())], path)
        [(loaded_t, *_rest)] = colbin.load_records(path)
        assert loaded_t == t
        assert struct.pack("<d", loaded_t) == struct.pack("<d", t)

    def test_zero_record_file(self, tmp_path):
        path = tmp_path / "empty.ctrc"
        assert colbin.dump_records([], path) == 0
        assert colbin.load_records(path) == []
        reader = ColumnarTraceReader(path)
        assert len(reader) == 0
        assert reader.channels == ()

    def test_empty_payloads_and_info(self, tmp_path):
        path = tmp_path / "t.ctrc"
        records = [(1.0, b"", "FC", 3, ()), (2.0, b"\x00", "FC", 3, ())]
        colbin.dump_records(records, path)
        assert colbin.load_records(path) == records

    def test_table_round_trip(self, ctx, wiper_simulation, tmp_path):
        table = wiper_simulation.record_table(ctx, 3.0)
        path = tmp_path / "trace.ctrc"
        colbin.dump_table(table, path)
        loaded = colbin.load_table(ctx, path)
        assert loaded.columns == table.columns
        assert sorted(loaded.collect()) == sorted(table.collect())

    def test_codec_for_suffix(self):
        assert codec_for("a.ctrc") is colbin
        assert codec_for("a.btrc") is binlog


@given(
    t=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    payload=st.binary(max_size=16),
    m_id=st.integers(min_value=0, max_value=2 ** 32 - 1),
    channel=st.sampled_from(["FC", "BC", "K-LIN", "ETH"]),
    dlc=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_property_columnar_round_trip(
    tmp_path_factory, t, payload, m_id, channel, dlc
):
    path = tmp_path_factory.mktemp("col") / "t.ctrc"
    records = [
        (t, payload, channel, m_id, (("protocol", "CAN"), ("dlc", dlc)))
    ]
    colbin.dump_records(records, path)
    assert colbin.load_records(path) == records


class TestMalformedFiles:
    @pytest.fixture
    def valid_bytes(self, records, tmp_path):
        path = tmp_path / "t.ctrc"
        colbin.dump_records(records[:20], path)
        return path.read_bytes()

    def test_corrupt_magic(self, tmp_path):
        path = tmp_path / "bad.ctrc"
        path.write_bytes(b"NOTMAGIC" + bytes(200))
        with pytest.raises(ColumnarTraceError):
            colbin.load_records(path)

    def test_error_is_a_plan_error(self, tmp_path):
        path = tmp_path / "bad.ctrc"
        path.write_bytes(b"NOTMAGIC" + bytes(200))
        with pytest.raises(PlanError):
            colbin.load_records(path)

    def test_zero_length_file(self, tmp_path):
        path = tmp_path / "zero.ctrc"
        path.write_bytes(b"")
        with pytest.raises(ColumnarTraceError):
            colbin.load_records(path)

    @pytest.mark.parametrize("keep", [5, 40, 97, -3, -1])
    def test_truncations_never_raise_struct_error(
        self, valid_bytes, tmp_path, keep
    ):
        path = tmp_path / "trunc.ctrc"
        path.write_bytes(valid_bytes[:keep])
        with pytest.raises(ColumnarTraceError):
            colbin.load_records(path)

    def test_every_truncation_point_is_structured(
        self, valid_bytes, tmp_path
    ):
        # Sweep a stride of truncation points across the whole file:
        # each one must either parse to a (shorter) valid prefix --
        # impossible here because section offsets point past the end --
        # or raise the structured error. Nothing may escape as
        # struct.error or IndexError.
        path = tmp_path / "sweep.ctrc"
        for cut in range(0, len(valid_bytes) - 1, 7):
            path.write_bytes(valid_bytes[:cut])
            with pytest.raises(ColumnarTraceError):
                colbin.load_records(path)

    def test_unsupported_version(self, valid_bytes, tmp_path):
        mutated = bytearray(valid_bytes)
        mutated[8:10] = struct.pack("<H", 99)
        path = tmp_path / "v99.ctrc"
        path.write_bytes(bytes(mutated))
        with pytest.raises(ColumnarTraceError):
            colbin.load_records(path)

    def test_out_of_order_section_offsets(self, valid_bytes, tmp_path):
        mutated = bytearray(valid_bytes)
        # Swap the first two section offsets in the header table.
        base = 8 + 2 + 8 + 8
        first = mutated[base : base + 8]
        second = mutated[base + 8 : base + 16]
        mutated[base : base + 8] = second
        mutated[base + 8 : base + 16] = first
        path = tmp_path / "swapped.ctrc"
        path.write_bytes(bytes(mutated))
        with pytest.raises(ColumnarTraceError):
            colbin.load_records(path)

    def test_corrupt_channel_index(self, valid_bytes, tmp_path):
        reader = None
        mutated = bytearray(valid_bytes)
        header = struct.unpack_from("<8sHQQ", mutated, 0)
        offsets = struct.unpack_from("<9Q", mutated, 26)
        # Point a record at a channel the dictionary does not define.
        struct.pack_into("<H", mutated, offsets[2], 0xFFFE)
        path = tmp_path / "chan.ctrc"
        path.write_bytes(bytes(mutated))
        with pytest.raises(ColumnarTraceError):
            reader = ColumnarTraceReader(path)
        assert reader is None


class TestReaderColumns:
    @pytest.fixture
    def reader(self, records, tmp_path):
        path = tmp_path / "t.ctrc"
        colbin.dump_records(records, path)
        return ColumnarTraceReader(path)

    def test_scan_columns_match_records(self, records, reader):
        assert list(reader.times()) == [r[0] for r in records]
        assert list(reader.message_ids()) == [r[3] for r in records]
        assert reader.channel_column() == [r[2] for r in records]

    def test_payload_and_info_materialize_lazily(self, records, reader):
        payloads = reader.payload_column()
        infos = reader.info_column()
        for index in (0, len(records) // 2, len(records) - 1):
            assert payloads[index] == records[index][1]
            assert isinstance(payloads[index], bytes)
            assert infos[index] == records[index][4]

    def test_select_decodes_only_requested(self, records, reader):
        picked = [0, len(records) - 1]
        assert reader.select(picked) == [records[i] for i in picked]

    def test_partitions_are_columnar_and_pickle(self, records, reader):
        parts = reader.partitions(3)
        assert all(isinstance(p, ColumnarPartition) for p in parts)
        assert sum(len(p) for p in parts) == len(records)
        rows = [row for p in parts for row in p.to_rows()]
        assert rows == records
        clone = pickle.loads(pickle.dumps(parts[0]))
        assert clone.to_rows() == parts[0].to_rows()


class TestPreselectionScan:
    def test_preselect_file_matches_table_path(
        self, ctx, wiper_simulation, tmp_path
    ):
        records = wiper_simulation.byte_records(5.0)
        catalog = wiper_simulation.database.translation_catalog()
        path = tmp_path / "t.ctrc"
        colbin.dump_records(records, path)
        k_b = ctx.table_from_rows(
            ["t", "l", "b_id", "m_id", "m_info"], records
        )
        expected = sorted(preselect(k_b, catalog).collect())
        actual = sorted(preselect_file(ctx, path, catalog).collect())
        assert actual == expected
        assert actual  # the wiper catalog matches some of its own trace

    def test_preselected_table_flows_into_engine_ops(
        self, ctx, wiper_simulation, tmp_path
    ):
        records = wiper_simulation.byte_records(3.0)
        catalog = wiper_simulation.database.translation_catalog()
        path = tmp_path / "t.ctrc"
        colbin.dump_records(records, path)
        table = preselect_file(ctx, path, catalog)
        assert table.filter(col("t") >= 0.0).count() == table.count()
