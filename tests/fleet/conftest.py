"""Shared fleet fixtures.

Simulating journeys and building a catalog is the expensive part, so one
template run directory is prepared per session and copied per test --
content-addressed job ids make every copy's catalog byte-identical to
the template's.
"""

from __future__ import annotations

import shutil

import pytest

from repro import fleet

#: Template sweep shape shared by the orchestrator tests.
NUM_TRACES = 4
DURATION = 2.5
DATASET = "SYN"


@pytest.fixture(scope="session")
def fleet_template(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("fleet-template") / "run"
    fleet.prepare_run(run_dir, DATASET, NUM_TRACES, duration=DURATION)
    return run_dir


@pytest.fixture
def run_dir(fleet_template, tmp_path):
    """A fresh, unexecuted copy of the template sweep."""
    target = tmp_path / "run"
    shutil.copytree(fleet_template, target)
    return target
