"""Job catalog: content addressing, persistence, and failure modes."""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    CATALOG_FILE,
    CatalogError,
    JobCatalog,
    JobSpec,
    build_catalog,
    file_digest,
    job_id_for,
)

PARAMS = {"signals": ["a"], "constraints": []}


def _write_traces(root, contents):
    paths = []
    for i, text in enumerate(contents):
        path = root / "t{}.trc".format(i)
        path.write_text(text)
        paths.append(path)
    return paths


class TestContentAddressing:
    def test_same_inputs_same_id(self):
        assert job_id_for("ab" * 32, "SYN", PARAMS) == \
            job_id_for("ab" * 32, "SYN", PARAMS)

    def test_id_depends_on_trace_bytes(self):
        assert job_id_for("ab" * 32, "SYN", PARAMS) != \
            job_id_for("cd" * 32, "SYN", PARAMS)

    def test_id_depends_on_dataset_and_params(self):
        base = job_id_for("ab" * 32, "SYN", PARAMS)
        assert job_id_for("ab" * 32, "LIG", PARAMS) != base
        assert job_id_for("ab" * 32, "SYN", {"signals": ["b"]}) != base

    def test_id_ignores_param_key_order(self):
        flipped = {"constraints": [], "signals": ["a"]}
        assert job_id_for("ab" * 32, "SYN", PARAMS) == \
            job_id_for("ab" * 32, "SYN", flipped)

    def test_rebuild_agrees_on_every_id(self, tmp_path):
        paths = _write_traces(tmp_path, ["one\n", "two\n"])
        first = build_catalog(tmp_path, paths, "SYN", PARAMS)
        second = build_catalog(tmp_path, paths, "SYN", PARAMS)
        assert first.job_ids() == second.job_ids()

    def test_file_digest_is_sha256(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_bytes(b"payload")
        import hashlib

        assert file_digest(path) == hashlib.sha256(b"payload").hexdigest()


class TestBuildCatalog:
    def test_records_relative_paths_and_sizes(self, tmp_path):
        (tmp_path / "traces").mkdir()
        path = tmp_path / "traces" / "j0.trc"
        path.write_text("row\n")
        catalog = build_catalog(tmp_path, [path], "SYN", PARAMS)
        (job,) = list(catalog)
        assert job.trace == "traces/j0.trc"
        assert job.trace_bytes == 4
        assert job.index == 0

    def test_missing_trace_rejected_up_front(self, tmp_path):
        with pytest.raises(CatalogError, match="does not exist"):
            build_catalog(tmp_path, [tmp_path / "nope.trc"], "SYN", PARAMS)

    def test_trace_outside_run_dir_rejected(self, tmp_path):
        inside = tmp_path / "run"
        inside.mkdir()
        outside = tmp_path / "elsewhere.trc"
        outside.write_text("x\n")
        with pytest.raises(CatalogError, match="outside the run directory"):
            build_catalog(inside, [outside], "SYN", PARAMS)

    def test_duplicate_trace_bytes_rejected(self, tmp_path):
        paths = _write_traces(tmp_path, ["same\n", "same\n"])
        with pytest.raises(CatalogError, match="duplicate job id"):
            build_catalog(tmp_path, paths, "SYN", PARAMS)


class TestPersistence:
    def _catalog(self, tmp_path):
        paths = _write_traces(tmp_path, ["one\n", "two\n"])
        return build_catalog(tmp_path, paths, "SYN", PARAMS)

    def test_save_load_roundtrip(self, tmp_path):
        catalog = self._catalog(tmp_path)
        catalog.save(tmp_path)
        loaded = JobCatalog.load(tmp_path)
        assert loaded.dataset == "SYN"
        assert loaded.params == PARAMS
        assert [j.to_dict() for j in loaded] == [j.to_dict() for j in catalog]

    def test_save_leaves_no_staging_debris(self, tmp_path):
        self._catalog(tmp_path).save(tmp_path)
        assert not list(tmp_path.glob(".staging-*"))

    def test_load_missing_catalog(self, tmp_path):
        with pytest.raises(CatalogError, match="no catalog"):
            JobCatalog.load(tmp_path)

    def test_load_corrupt_json(self, tmp_path):
        (tmp_path / CATALOG_FILE).write_text("{not json")
        with pytest.raises(CatalogError, match="not valid JSON"):
            JobCatalog.load(tmp_path)

    def test_load_wrong_format(self, tmp_path):
        (tmp_path / CATALOG_FILE).write_text(
            json.dumps({"format": "something/9", "jobs": []})
        )
        with pytest.raises(CatalogError, match="has format"):
            JobCatalog.load(tmp_path)

    def test_load_missing_job_list(self, tmp_path):
        (tmp_path / CATALOG_FILE).write_text(
            json.dumps({"format": "repro.fleet.catalog/1"})
        )
        with pytest.raises(CatalogError, match="missing its job list"):
            JobCatalog.load(tmp_path)

    def test_malformed_job_entry(self, tmp_path):
        with pytest.raises(CatalogError, match="malformed job entry"):
            JobSpec.from_dict({"job_id": "abc"})

    def test_job_lookup(self, tmp_path):
        catalog = self._catalog(tmp_path)
        job = catalog.jobs[1]
        assert catalog.job(job.job_id) is job
        with pytest.raises(CatalogError, match="no job"):
            catalog.job("ffffffffffffffff")
