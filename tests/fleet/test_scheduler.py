"""DAG scheduler: validation, dispatch order, backpressure, failures."""

from __future__ import annotations

import pytest

from repro.fleet import (
    DONE,
    FAILED,
    SKIPPED,
    DagScheduler,
    FleetRunError,
    JobError,
    JobNode,
    JobOutcome,
)


class FakeRunner:
    """Synchronous runner recording submit order and peak concurrency."""

    def __init__(self, fail=()):
        self.fail = set(fail)
        self.submitted = []
        self.pending = []
        self.max_inflight_seen = 0

    def submit(self, node):
        self.submitted.append(node.job_id)
        self.pending.append(node)
        self.max_inflight_seen = max(self.max_inflight_seen, len(self.pending))

    def wait_any(self):
        node = self.pending.pop(0)
        if node.job_id in self.fail:
            return JobOutcome(
                node.job_id, FAILED,
                error=JobError("boom", job_id=node.job_id),
            )
        return JobOutcome(node.job_id, DONE, value=node.job_id.upper())


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(FleetRunError, match="duplicate job id"):
            DagScheduler([JobNode("a"), JobNode("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(FleetRunError, match="unknown job"):
            DagScheduler([JobNode("a", deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(FleetRunError, match="cycle"):
            DagScheduler([
                JobNode("a", deps=("b",)),
                JobNode("b", deps=("a",)),
            ])

    def test_max_inflight_must_be_positive(self):
        with pytest.raises(FleetRunError, match="max_inflight"):
            DagScheduler([JobNode("a")], max_inflight=0)


class TestDispatch:
    def test_all_independent_jobs_complete(self):
        runner = FakeRunner()
        outcomes = DagScheduler(
            [JobNode(chr(97 + i)) for i in range(5)]
        ).run(runner)
        assert all(o.status == DONE for o in outcomes.values())
        assert sorted(runner.submitted) == ["a", "b", "c", "d", "e"]

    def test_dependencies_run_before_dependents(self):
        runner = FakeRunner()
        DagScheduler([
            JobNode("sink", deps=("a", "b")),
            JobNode("a"),
            JobNode("b"),
        ]).run(runner)
        assert runner.submitted.index("sink") > runner.submitted.index("a")
        assert runner.submitted.index("sink") > runner.submitted.index("b")

    def test_inflight_bounded(self):
        runner = FakeRunner()
        DagScheduler(
            [JobNode(str(i)) for i in range(10)], max_inflight=2
        ).run(runner)
        assert runner.max_inflight_seen <= 2

    def test_outcome_values_preserved(self):
        outcomes = DagScheduler([JobNode("a")]).run(FakeRunner())
        assert outcomes["a"].value == "A"


class TestFailurePropagation:
    def test_strict_dependent_is_skipped(self):
        runner = FakeRunner(fail={"a"})
        outcomes = DagScheduler([
            JobNode("a"),
            JobNode("child", deps=("a",)),
            JobNode("grandchild", deps=("child",)),
        ]).run(runner)
        assert outcomes["a"].status == FAILED
        assert outcomes["child"].status == SKIPPED
        assert "dependencies failed: a" in outcomes["child"].error
        assert outcomes["grandchild"].status == SKIPPED
        assert runner.submitted == ["a"]

    def test_allow_failed_deps_still_runs(self):
        runner = FakeRunner(fail={"a"})
        outcomes = DagScheduler([
            JobNode("a"),
            JobNode("b"),
            JobNode("agg", deps=("a", "b"), allow_failed_deps=True),
        ]).run(runner)
        assert outcomes["agg"].status == DONE
        assert "agg" in runner.submitted

    def test_unrelated_jobs_survive_a_failure(self):
        runner = FakeRunner(fail={"a"})
        outcomes = DagScheduler(
            [JobNode("a"), JobNode("b"), JobNode("c")]
        ).run(runner)
        assert outcomes["b"].status == DONE
        assert outcomes["c"].status == DONE


class TestDriverNodes:
    def test_driver_fn_sees_dep_outcomes(self):
        seen = {}

        def agg(dep_outcomes):
            seen.update(dep_outcomes)
            return sorted(dep_outcomes)

        outcomes = DagScheduler([
            JobNode("a"),
            JobNode("agg", deps=("a",), driver_fn=agg),
        ]).run(FakeRunner())
        assert outcomes["agg"].value == ["a"]
        assert seen["a"].status == DONE

    def test_driver_job_error_becomes_failed_outcome(self):
        def agg(dep_outcomes):
            raise JobError("aggregate exploded", job_id="agg")

        outcomes = DagScheduler([
            JobNode("agg", driver_fn=agg),
        ]).run(FakeRunner())
        assert outcomes["agg"].status == FAILED
        assert "aggregate exploded" in str(outcomes["agg"].error)


class TestOnOutcome:
    def test_hook_sees_every_terminal_outcome(self):
        landed = []
        DagScheduler([JobNode("a"), JobNode("b")]).run(
            FakeRunner(), on_outcome=lambda o: landed.append(o.job_id)
        )
        assert sorted(landed) == ["a", "b"]

    def test_hook_exception_aborts_the_sweep(self):
        def crash(outcome):
            raise RuntimeError("driver died")

        with pytest.raises(RuntimeError, match="driver died"):
            DagScheduler([JobNode("a")]).run(FakeRunner(), on_outcome=crash)
