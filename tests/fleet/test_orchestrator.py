"""End-to-end sweeps: run, failure isolation, and the crash-resume
equivalence guarantee (the subsystem's acceptance test)."""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path

import pytest

from repro import fleet
from repro.engine.errors import InjectedFaultError
from repro.engine.executor import FaultPolicy
from repro.obs import MetricsRegistry

from tests.fleet.conftest import NUM_TRACES


def _tree_digest(root):
    """Digest of every file (path + bytes) under *root*."""
    digest = hashlib.sha256()
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def _final_artifacts_digest(run_dir):
    """Digest of the byte-identity surface: output table + summary.

    The fleet report is deliberately excluded -- it records wall times.
    """
    digest = hashlib.sha256()
    digest.update(_tree_digest(Path(run_dir) / "output").encode())
    digest.update((Path(run_dir) / fleet.SUMMARY_FILE).read_bytes())
    return digest.hexdigest()


def _commit_crash_policy(total_jobs):
    """A FaultPolicy whose first ``fleet.commit`` crash lands mid-sweep.

    Returns ``(policy, k)`` where ``k`` is the number of commits that
    land before the injected orchestrator death -- derived from the
    policy itself, so the test and the orchestrator agree by
    construction.
    """
    for seed in range(500):
        policy = FaultPolicy(crash_rate=0.5, seed=seed)
        crashing = [
            i for i in range(total_jobs)
            if policy.crashes_for(fleet.COMMIT_STAGE, i)
        ]
        if crashing and 1 <= crashing[0] <= total_jobs - 1:
            return policy, crashing[0]
    raise AssertionError("no usable seed found")


class TestRun:
    def test_sweep_completes_every_job(self, run_dir):
        result = fleet.run(run_dir, workers=1)
        assert len(result.executed) == NUM_TRACES
        assert not result.failed
        assert set(result.statuses.values()) == {"done"}
        assert result.summary["completed"] == NUM_TRACES
        assert result.summary["rows_out"] > 0
        assert (run_dir / "output" / fleet.OUTPUT_TABLE).is_dir()

    def test_report_written_and_schema_valid(self, run_dir):
        fleet.run(run_dir, workers=1)
        payload = json.loads(
            (run_dir / fleet.REPORT_FILE).read_text(encoding="utf-8")
        )
        fleet.validate_fleet_report(payload)
        assert payload["meta"]["dataset"] == "SYN"
        assert len(payload["jobs"]) == NUM_TRACES
        assert payload["counters"]["fleet.jobs_run"] == NUM_TRACES
        assert payload["histograms"]["fleet.job_seconds"]["count"] \
            == NUM_TRACES

    def test_second_run_is_fully_cached_and_byte_identical(self, run_dir):
        fleet.run(run_dir, workers=1)
        before = _final_artifacts_digest(run_dir)
        again = fleet.run(run_dir, workers=1)
        assert not again.executed
        assert len(again.cached) == NUM_TRACES
        assert _final_artifacts_digest(run_dir) == before

    def test_status_before_and_after(self, run_dir):
        before = fleet.status(run_dir)
        assert before["pending"] == NUM_TRACES
        assert before["completed"] == 0
        assert not before["aggregated"]
        fleet.run(run_dir, workers=1)
        after = fleet.status(run_dir)
        assert after["completed"] == NUM_TRACES
        assert after["pending"] == 0
        assert after["aggregated"]

    def test_process_pool_matches_serial_output(self, fleet_template,
                                                tmp_path):
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        shutil.copytree(fleet_template, serial)
        shutil.copytree(fleet_template, pooled)
        fleet.run(serial, workers=1)
        fleet.run(pooled, workers=2, max_inflight=2)
        assert _final_artifacts_digest(serial) == \
            _final_artifacts_digest(pooled)


class TestFailureIsolation:
    def _poison_one_trace(self, run_dir):
        catalog = fleet.JobCatalog.load(run_dir)
        victim = catalog.jobs[1]
        (run_dir / victim.trace).write_text("this is not a trace\n")
        return victim

    def test_poisoned_trace_fails_alone(self, run_dir):
        victim = self._poison_one_trace(run_dir)
        result = fleet.run(run_dir, workers=1)
        assert len(result.executed) == NUM_TRACES - 1
        assert set(result.failed) == {victim.job_id}
        row = result.failed[victim.job_id]
        assert row["trace"] == victim.trace
        assert row["stage"] == "fleet.job"
        assert row["attempts"] == 1  # genuine bug: no retries
        # The survivors still aggregated.
        assert result.summary["completed"] == NUM_TRACES - 1
        assert result.summary["failed"] == 1
        report = json.loads((run_dir / fleet.REPORT_FILE).read_text())
        fleet.validate_fleet_report(report)
        assert report["failures"][0]["job_id"] == victim.job_id

    def test_resume_retries_failed_job(self, run_dir, fleet_template):
        victim = self._poison_one_trace(run_dir)
        fleet.run(run_dir, workers=1)
        # Operator restores the original trace file; resume retries.
        shutil.copyfile(
            fleet_template / victim.trace, run_dir / victim.trace
        )
        result = fleet.resume(run_dir, workers=1)
        assert result.executed == [victim.job_id]
        assert len(result.cached) == NUM_TRACES - 1
        assert not result.failed
        assert fleet.status(run_dir)["failed"] == 0

    def test_rerun_failed_false_leaves_failure_alone(self, run_dir):
        victim = self._poison_one_trace(run_dir)
        fleet.run(run_dir, workers=1)
        result = fleet.run(run_dir, workers=1, rerun_failed=False)
        assert not result.executed
        assert result.statuses[victim.job_id] == "failed"
        assert set(result.failed) == {victim.job_id}

    def test_injected_job_faults_retried_transparently(self, run_dir):
        policy = FaultPolicy(crash_rate=1.0, seed=3, crashes_per_task=1)
        registry = MetricsRegistry()
        result = fleet.run(
            run_dir, workers=1, fault_policy=policy, retry_backoff=0.0,
            registry=registry,
        )
        assert len(result.executed) == NUM_TRACES
        snap = registry.snapshot()
        assert snap["counters"]["fleet.faults_injected"] == NUM_TRACES
        assert snap["counters"]["fleet.job_retries"] == NUM_TRACES


class TestCrashResumeEquivalence:
    """ISSUE acceptance: kill after k of n commits, resume, byte-identical."""

    def test_killed_and_resumed_sweep_matches_uninterrupted(
        self, fleet_template, tmp_path
    ):
        uninterrupted = tmp_path / "a"
        killed = tmp_path / "b"
        shutil.copytree(fleet_template, uninterrupted)
        shutil.copytree(fleet_template, killed)

        fleet.run(uninterrupted, workers=1)

        policy, k = _commit_crash_policy(NUM_TRACES)
        with pytest.raises(InjectedFaultError, match="orchestrator crash"):
            fleet.run(killed, workers=1, commit_policy=policy)
        # Exactly k commits landed before the injected death.
        assert len(fleet.CheckpointStore(killed).completed_ids()) == k
        assert not (killed / fleet.SUMMARY_FILE).exists()

        registry = MetricsRegistry()
        result = fleet.resume(killed, workers=1, registry=registry)

        # Exactly n - k jobs re-executed, k reused from checkpoints --
        # asserted on the run result AND the fleet.* obs counters.
        assert len(result.executed) == NUM_TRACES - k
        assert len(result.cached) == k
        snap = registry.snapshot()
        assert snap["counters"]["fleet.jobs_executed"] == NUM_TRACES - k
        assert snap["counters"]["fleet.jobs_cached"] == k
        assert snap["counters"]["fleet.jobs_run"] == NUM_TRACES - k

        # Final artifacts are byte-identical to the uninterrupted sweep.
        assert _final_artifacts_digest(killed) == \
            _final_artifacts_digest(uninterrupted)

        # The summed per-trace executor counters agree too: the same
        # work happened exactly once per trace across kill + resume.
        report_a = json.loads(
            (uninterrupted / fleet.REPORT_FILE).read_text()
        )
        report_b = json.loads((killed / fleet.REPORT_FILE).read_text())
        exec_counters = lambda payload: {  # noqa: E731
            name: value for name, value in payload["counters"].items()
            if name.startswith(("executor.", "pipeline."))
        }
        assert exec_counters(report_a) == exec_counters(report_b)


class TestPrepare:
    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(fleet.CatalogError, match="unknown dataset"):
            fleet.prepare_run(tmp_path, "NOPE", 2)

    def test_trace_count_validated(self, tmp_path):
        with pytest.raises(fleet.CatalogError, match="num_traces"):
            fleet.prepare_run(tmp_path, "SYN", 0)

    def test_make_catalog_over_existing_traces(self, fleet_template,
                                               tmp_path):
        target = tmp_path / "run"
        target.mkdir()
        traces = []
        for src in sorted((fleet_template / "traces").iterdir())[:2]:
            dst = target / src.name
            shutil.copyfile(src, dst)
            traces.append(dst)
        catalog = fleet.make_catalog(target, traces, "SYN")
        assert len(catalog) == 2
        assert fleet.JobCatalog.load(target).job_ids() == catalog.job_ids()
