"""Checkpoint store: atomic commits, failure rows, staging gc."""

from __future__ import annotations

from repro.fleet import CheckpointStore


class TestCheckpoints:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = {"job_id": "a" * 16, "rows_out": 3, "r_rows": [(1, 2)]}
        store.save("a" * 16, payload)
        assert store.has("a" * 16)
        assert store.load("a" * 16) == payload

    def test_completed_ids_sorted_and_staging_excluded(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("b" * 16, {})
        store.save("a" * 16, {})
        (tmp_path / "checkpoints" / ".staging-x-1").write_bytes(b"junk")
        assert store.completed_ids() == ["a" * 16, "b" * 16]

    def test_save_leaves_no_staging_debris(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a" * 16, {"k": 1})
        assert not list((tmp_path / "checkpoints").glob(".staging-*"))

    def test_save_overwrites(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a" * 16, {"v": 1})
        store.save("a" * 16, {"v": 2})
        assert store.load("a" * 16) == {"v": 2}
        assert store.completed_ids() == ["a" * 16]


class TestFailures:
    def test_record_and_list(self, tmp_path):
        store = CheckpointStore(tmp_path)
        row = {"job_id": "a" * 16, "trace": "t.trc", "stage": "fleet.job",
               "attempts": 3, "error": "boom", "cause": "ValueError"}
        store.record_failure("a" * 16, row)
        assert store.failures() == {"a" * 16: row}

    def test_success_clears_failure(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_failure("a" * 16, {"error": "boom"})
        store.save("a" * 16, {"ok": True})
        assert store.failures() == {}

    def test_unreadable_failure_row_degrades(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "failures" / ("a" * 16 + ".json")).write_text("{oops")
        assert store.failures() == {
            "a" * 16: {"error": "unreadable failure record"}
        }


class TestGc:
    def test_gc_removes_staging_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a" * 16, {})
        (tmp_path / "checkpoints" / ".staging-dead-99").write_bytes(b"x")
        (tmp_path / "failures" / ".staging-dead-99").write_bytes(b"x")
        removed = store.gc()
        assert sorted(removed) == [".staging-dead-99", ".staging-dead-99"]
        assert store.completed_ids() == ["a" * 16]
        assert store.gc() == []
