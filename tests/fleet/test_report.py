"""The repro.fleet/1 report shape: building, merging, validation."""

from __future__ import annotations

import pytest

from repro.fleet import FLEET_REPORT_FORMAT, FleetReport, validate_fleet_report
from repro.obs import ReportSchemaError


def _payload(index=0, stage_seconds=None, counters=None, rows_out=5):
    return {
        "job_id": "job{:02d}".format(index),
        "index": index,
        "trace": "traces/j{}.trc".format(index),
        "trace_rows": 100,
        "rows_out": rows_out,
        "stage_seconds": stage_seconds or {"interpret": 0.5, "reduce": 0.25},
        "report": {"counters": counters or {"pipeline.rows": 100}},
    }


class TestFleetReport:
    def test_merge_job_payload_builds_stage_histograms(self):
        report = FleetReport()
        report.merge_job_payload(_payload(0))
        report.merge_job_payload(_payload(1))
        snap = report.metrics.snapshot()
        assert snap["histograms"]["fleet.stage_seconds.interpret"]["count"] == 2
        assert snap["histograms"]["fleet.stage_seconds.reduce"]["count"] == 2
        assert snap["histograms"]["fleet.rows_out"]["count"] == 2

    def test_per_trace_counters_sum_exactly(self):
        report = FleetReport()
        report.merge_job_payload(_payload(0, counters={"pipeline.rows": 3}))
        report.merge_job_payload(_payload(1, counters={"pipeline.rows": 4}))
        assert report.metrics.snapshot()["counters"]["pipeline.rows"] == 7

    def test_job_rows_validate_status(self):
        report = FleetReport()
        report.add_job_row("a" * 16, 0, "traces/j0.trc", "done")
        with pytest.raises(ValueError, match="unknown job status"):
            report.add_job_row("b" * 16, 1, "traces/j1.trc", "exploded")

    def test_to_dict_carries_format_and_tables(self):
        report = FleetReport()
        report.add_job_row("a" * 16, 0, "traces/j0.trc", "failed")
        report.add_failure_row(
            {"job_id": "a" * 16, "error": "boom", "stage": "fleet.job"}
        )
        payload = report.to_dict()
        assert payload["format"] == FLEET_REPORT_FORMAT
        assert payload["jobs"][0]["status"] == "failed"
        assert payload["failures"][0]["error"] == "boom"

    def test_round_trip_validates(self):
        report = FleetReport()
        report.set_meta(dataset="SYN", jobs=2)
        report.merge_job_payload(_payload(0))
        report.add_job_row("a" * 16, 0, "traces/j0.trc", "done",
                           trace_rows=100, rows_out=5)
        report.add_job_row("b" * 16, 1, "traces/j1.trc", "cached")
        assert validate_fleet_report(report.to_json()) is not None


class TestValidator:
    def _valid(self):
        report = FleetReport()
        report.add_job_row("a" * 16, 0, "traces/j0.trc", "done")
        return report.to_dict()

    def test_rejects_wrong_format(self):
        payload = self._valid()
        payload["format"] = "repro.obs/1"
        with pytest.raises(ReportSchemaError, match="format must be"):
            validate_fleet_report(payload)

    def test_rejects_missing_tables(self):
        payload = self._valid()
        del payload["jobs"]
        with pytest.raises(ReportSchemaError, match="jobs must be a list"):
            validate_fleet_report(payload)

    def test_rejects_bad_job_row(self):
        payload = self._valid()
        payload["jobs"][0]["status"] = "exploded"
        payload["jobs"][0]["rows_out"] = -1
        with pytest.raises(ReportSchemaError) as excinfo:
            validate_fleet_report(payload)
        assert "status must be one of" in str(excinfo.value)
        assert "rows_out must be an int" in str(excinfo.value)

    def test_rejects_bad_failure_row(self):
        payload = self._valid()
        payload["failures"] = [{"job_id": "", "error": ""}]
        with pytest.raises(ReportSchemaError, match="failures\\[0\\]"):
            validate_fleet_report(payload)

    def test_rejects_non_json(self):
        with pytest.raises(ReportSchemaError, match="not valid JSON"):
            validate_fleet_report("{nope")

    def test_delegates_obs_section_checks(self):
        payload = self._valid()
        payload["counters"] = {"broken": "NaN"}
        with pytest.raises(ReportSchemaError, match="counter"):
            validate_fleet_report(payload)
