"""Job runners: retries, failure isolation, pool execution, metrics."""

from __future__ import annotations

import pytest

from repro.engine.errors import ExecutionError, InjectedFaultError
from repro.engine.executor import FaultPolicy
from repro.fleet import (
    DONE,
    FAILED,
    JobError,
    JobNode,
    ProcessPoolJobRunner,
    SerialJobRunner,
    make_runner,
)
from repro.obs import MetricsRegistry


def double_index(payload):
    """Module-level so the process pool can pickle it."""
    return payload["index"] * 2


def explode(payload):
    raise ValueError("poisoned trace {}".format(payload["trace"]))


def _node(index=0, fn_payload=None):
    payload = {"index": index, "trace": "traces/j{}.trc".format(index)}
    if fn_payload:
        payload.update(fn_payload)
    return JobNode("job{:02d}".format(index), payload=payload, index=index)


def _always_crashing_policy():
    """A policy injecting ``crashes_per_task`` crashes into every job."""
    return FaultPolicy(crash_rate=1.0, seed=7, crashes_per_task=1)


class TestSerialRunner:
    def test_runs_and_reports_done(self):
        runner = SerialJobRunner(fn=double_index)
        runner.submit(_node(3))
        outcome = runner.wait_any()
        assert outcome.status == DONE
        assert outcome.value == 6

    def test_injected_fault_retried_to_success(self):
        runner = SerialJobRunner(
            fn=double_index, fault_policy=_always_crashing_policy(),
            max_retries=2, retry_backoff=0.0,
        )
        runner.submit(_node(1))
        outcome = runner.wait_any()
        assert outcome.status == DONE
        snap = runner.obs.snapshot()
        assert snap["counters"]["fleet.faults_injected"] == 1
        assert snap["counters"]["fleet.job_retries"] == 1

    def test_retry_budget_exhaustion_fails_with_structured_error(self):
        policy = FaultPolicy(crash_rate=1.0, seed=7, crashes_per_task=5)
        runner = SerialJobRunner(
            fn=double_index, fault_policy=policy,
            max_retries=1, retry_backoff=0.0,
        )
        runner.submit(_node(2))
        outcome = runner.wait_any()
        assert outcome.status == FAILED
        error = outcome.error
        assert isinstance(error, JobError)
        assert error.job_id == "job02"
        assert error.trace == "traces/j2.trc"
        assert error.attempts == 2
        assert isinstance(error.cause, InjectedFaultError)

    def test_genuine_exception_fails_without_retry(self):
        runner = SerialJobRunner(fn=explode, max_retries=3)
        runner.submit(_node(0))
        outcome = runner.wait_any()
        assert outcome.status == FAILED
        assert outcome.error.attempts == 1
        assert "poisoned trace traces/j0.trc" in str(outcome.error)
        snap = runner.obs.snapshot()
        assert snap["counters"]["fleet.job_retries"] == 0

    def test_one_failure_never_poisons_the_next_job(self):
        runner = SerialJobRunner(fn=explode)
        ok = SerialJobRunner(fn=double_index)
        runner.submit(_node(0))
        assert runner.wait_any().status == FAILED
        ok.submit(_node(1))
        assert ok.wait_any().status == DONE

    def test_counters_and_durations_recorded(self):
        registry = MetricsRegistry()
        runner = SerialJobRunner(fn=double_index, registry=registry)
        runner.submit(_node(0))
        runner.wait_any()
        snap = registry.snapshot()
        assert snap["counters"]["fleet.jobs_run"] == 1
        assert snap["histograms"]["fleet.job_seconds"]["count"] == 1

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            SerialJobRunner(max_retries=-1)


class TestProcessPoolRunner:
    def test_runs_jobs_on_workers(self):
        with ProcessPoolJobRunner(num_workers=2, fn=double_index) as runner:
            for i in range(4):
                runner.submit(_node(i))
            results = sorted(runner.wait_any().value for _ in range(4))
        assert results == [0, 2, 4, 6]

    def test_worker_crash_isolated_to_its_job(self):
        with ProcessPoolJobRunner(num_workers=2, fn=explode) as runner:
            runner.submit(_node(0))
            outcome = runner.wait_any()
        assert outcome.status == FAILED
        assert isinstance(outcome.error, JobError)
        assert outcome.error.trace == "traces/j0.trc"

    def test_injected_fault_retried_on_pool(self):
        with ProcessPoolJobRunner(
            num_workers=2, fn=double_index,
            fault_policy=_always_crashing_policy(), retry_backoff=0.0,
        ) as runner:
            runner.submit(_node(1))
            outcome = runner.wait_any()
        assert outcome.status == DONE
        assert outcome.value == 2

    def test_unpicklable_payload_rejected_at_submit(self):
        node = JobNode("bad", payload={"fh": open(__file__)}, index=0)
        with ProcessPoolJobRunner(num_workers=1, fn=double_index) as runner:
            with pytest.raises(ExecutionError, match="not picklable"):
                runner.submit(node)
        node.payload["fh"].close()

    def test_wait_with_nothing_inflight_rejected(self):
        with ProcessPoolJobRunner(num_workers=1, fn=double_index) as runner:
            with pytest.raises(ExecutionError, match="no jobs in flight"):
                runner.wait_any()

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="num_workers"):
            ProcessPoolJobRunner(num_workers=0)


class TestMakeRunner:
    def test_serial_for_one_worker(self):
        assert isinstance(make_runner(workers=1), SerialJobRunner)

    def test_pool_for_many_workers(self):
        runner = make_runner(workers=3)
        assert isinstance(runner, ProcessPoolJobRunner)
        assert runner.num_workers == 3
        runner.close()
