"""CLI smoke tests: repro fleet run / resume / status + structured errors."""

from __future__ import annotations

import io
import shutil

from repro import cli, fleet


def _run(argv):
    out = io.StringIO()
    code = cli.main(argv, out=out)
    return code, out.getvalue()


class TestFleetCommands:
    def test_run_then_status(self, run_dir):
        code, text = _run(["fleet", "run", "--run-dir", str(run_dir)])
        assert code == 0
        assert "4 total, 4 executed" in text
        code, text = _run(["fleet", "status", "--run-dir", str(run_dir)])
        assert code == 0
        assert "4 jobs, 4 completed, 0 failed, 0 pending" in text
        assert "aggregated=yes" in text

    def test_resume_reports_reuse(self, run_dir):
        _run(["fleet", "run", "--run-dir", str(run_dir)])
        code, text = _run(["fleet", "resume", "--run-dir", str(run_dir)])
        assert code == 0
        assert "0 re-executed, 4 reused from checkpoints" in text

    def test_prepare_writes_catalog(self, tmp_path):
        target = tmp_path / "sweep"
        code, text = _run([
            "fleet", "prepare", "--run-dir", str(target),
            "--dataset", "SYN", "--traces", "2", "--duration", "2",
        ])
        assert code == 0
        assert "catalogued 2 jobs" in text
        assert fleet.JobCatalog.load(target).dataset == "SYN"

    def test_failed_job_sets_exit_code(self, run_dir):
        victim = fleet.JobCatalog.load(run_dir).jobs[0]
        (run_dir / victim.trace).write_text("garbage\n")
        code, text = _run(["fleet", "run", "--run-dir", str(run_dir)])
        assert code == 1
        assert "1 failed" in text
        assert victim.trace in text


class TestStructuredErrors:
    """Operational errors are one ``error: <kind>: ...`` line, exit 2."""

    def test_status_on_missing_catalog(self, tmp_path, capsys):
        code, _ = _run(["fleet", "status", "--run-dir", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: catalog: no catalog")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_run_on_corrupt_catalog(self, tmp_path, capsys):
        (tmp_path / fleet.CATALOG_FILE).write_text("{broken")
        code, _ = _run(["fleet", "run", "--run-dir", str(tmp_path)])
        assert code == 2
        assert "error: catalog:" in capsys.readouterr().err

    def test_pipeline_on_missing_trace(self, capsys):
        code, _ = _run([
            "pipeline", "--dataset", "SYN", "--trace", "no-such.trc",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err == "error: trace: trace file 'no-such.trc' does not " \
            "exist\n"

    def test_pipeline_on_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_text("not a trace line\n")
        code, _ = _run([
            "pipeline", "--dataset", "SYN", "--trace", str(bad),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: trace:")
        assert "corrupt" in err

    def test_pipeline_on_missing_params_file(self, fleet_template, tmp_path,
                                             capsys):
        trace = sorted((fleet_template / "traces").iterdir())[0]
        local = tmp_path / trace.name
        shutil.copyfile(trace, local)
        code, _ = _run([
            "pipeline", "--dataset", "SYN", "--trace", str(local),
            "--params", str(tmp_path / "none.json"),
        ])
        assert code == 2
        assert "error: params:" in capsys.readouterr().err
