"""Compiled-kernel tests: codegen vs interpreter equivalence.

The differential fuzz oracle covers compiled-vs-interpreted equivalence
on generated plans; these tests pin down the edge semantics the
generator rarely hits (NaN, nulls on mixed-type columns, unhashable
membership probes, division by zero, short-circuit evaluation), the
process-local structural cache, the pickle contract for worker
processes, and the fallback flag plumbing.
"""

import math
import pickle

import pytest

from repro.engine import EngineContext, ExecutionError, apply, col, lit
from repro.engine.codegen import (
    CodegenError,
    CompiledPartitionTask,
    clear_kernel_cache,
    compile_partition_task,
    kernel_cache_size,
    kernels_enabled,
    lower_segment,
)
from repro.engine.executor import MultiprocessingExecutor, SerialExecutor
from repro.engine.operations import (
    FilterStep,
    FlatMapStep,
    MapPartitionStep,
    PartitionTask,
    ProjectStep,
)
from repro.engine.schema import Schema
from repro.obs import MetricsRegistry

NAN = float("nan")


def _both(steps, rows):
    """Run *rows* through the interpreted and the compiled task."""
    steps = tuple(steps)
    interpreted = PartitionTask(steps)(list(rows))
    compiled_task = compile_partition_task(steps)
    assert compiled_task is not None, "chain unexpectedly not compilable"
    compiled = compiled_task(list(rows))
    return interpreted, compiled


def _assert_equivalent(steps, rows):
    interpreted, compiled = _both(steps, rows)
    assert compiled == interpreted
    return compiled


def _bind(expr, *names):
    return expr.bind(Schema.of(*names))


def _boom(*_args):
    raise AssertionError("short-circuit violated: operand was evaluated")


def _double_row(row):
    return [row, row]


def _halve(x):
    return x / 2.0


class TestEdgeExpressionEquivalence:
    def test_nan_comparisons(self):
        rows = [(NAN,), (1.0,), (-1.0,), (0.0,), (NAN,)]
        for expr in (
            col("x") < lit(0.5),
            col("x") >= lit(0.5),
            col("x") == col("x"),
            col("x") != col("x"),
        ):
            steps = [FilterStep(_bind(expr, "x"))]
            _assert_equivalent(steps, rows)
        # NaN survives projection untouched in both paths.
        steps = [ProjectStep((_bind(col("x") * lit(1.0), "x"),))]
        interpreted, compiled = _both(steps, rows)
        assert len(compiled) == len(interpreted)
        assert math.isnan(compiled[0][0]) and math.isnan(interpreted[0][0])

    def test_is_null_on_mixed_type_column(self):
        rows = [(None,), (0,), ("",), (NAN,), ("x",), (False,)]
        kept = _assert_equivalent(
            [FilterStep(_bind(col("x").is_null(), "x"))], rows
        )
        assert kept == [(None,)]
        kept = _assert_equivalent(
            [FilterStep(_bind(col("x").is_not_null(), "x"))], rows
        )
        assert len(kept) == 5

    def test_in_set_membership_and_numeric_coercion(self):
        # 1 == 1.0 == True: set membership follows Python equality in
        # both paths, including the bool/int crossover.
        rows = [(1,), (1.0,), (True,), (2,), ("1",), (None,)]
        kept = _assert_equivalent(
            [FilterStep(_bind(col("x").is_in([1]), "x"))], rows
        )
        assert kept == [(1,), (1.0,), (True,)]

    def test_in_set_unhashable_probe_raises_in_both_paths(self):
        rows = [([1, 2],)]
        steps = (FilterStep(_bind(col("x").is_in([1]), "x")),)
        with pytest.raises(TypeError):
            PartitionTask(steps)(list(rows))
        with pytest.raises(TypeError):
            compile_partition_task(steps)(list(rows))

    def test_division_by_zero_raises_in_both_paths(self):
        rows = [(1.0, 0.0)]
        steps = (ProjectStep((_bind(col("a") / col("b"), "a", "b"),)),)
        with pytest.raises(ZeroDivisionError):
            PartitionTask(steps)(list(rows))
        with pytest.raises(ZeroDivisionError):
            compile_partition_task(steps)(list(rows))

    def test_short_circuit_and_skips_right_operand(self):
        # Left side is false for every row, so the raising right side
        # must never be evaluated -- in either path.
        rows = [(1,), (2,)]
        expr = (col("x") > lit(100)) & apply(_boom, "x")
        kept = _assert_equivalent([FilterStep(_bind(expr, "x"))], rows)
        assert kept == []

    def test_short_circuit_or_skips_right_operand(self):
        rows = [(1,), (2,)]
        expr = (col("x") < lit(100)) | apply(_boom, "x")
        kept = _assert_equivalent([FilterStep(_bind(expr, "x"))], rows)
        assert kept == rows

    def test_and_or_return_plain_bools(self):
        # The interpreter coerces via bool(); truthy non-bool operands
        # must not leak through the compiled path either.
        rows = [("a", "b"), ("", "b"), ("a", ""), ("", "")]
        expr = col("x").is_not_null() & (col("y") != lit(""))
        steps = [ProjectStep((_bind(expr, "x", "y"),))]
        interpreted, compiled = _both(steps, rows)
        assert compiled == interpreted
        assert all(isinstance(v, bool) for (v,) in compiled)

    def test_fused_chain_with_flatmap_matches_interpreter(self):
        rows = [(i, i * 0.5) for i in range(50)]
        steps = [
            FilterStep(_bind(col("a") > lit(4), "a", "b")),
            FlatMapStep(_double_row),
            ProjectStep((
                _bind(col("a") + col("b"), "a", "b"),
                _bind(apply(_halve, "b"), "a", "b"),
            )),
            FilterStep(_bind(col("a") < lit(60.0), "a", "h")),
        ]
        _assert_equivalent(steps, rows)

    def test_map_partition_barrier_splits_segments(self):
        rows = [(i,) for i in range(10)]
        steps = [
            FilterStep(_bind(col("a") >= lit(2), "a")),
            MapPartitionStep(sorted),
            ProjectStep((_bind(col("a") * lit(10), "a"),)),
        ]
        _assert_equivalent(steps, rows)


class TestKernelCache:
    def test_structural_cache_shared_across_literals(self):
        clear_kernel_cache()
        registry = MetricsRegistry()
        schema = Schema.of("a")
        steps_a = (FilterStep((col("a") > lit(1)).bind(schema)),)
        steps_b = (FilterStep((col("a") > lit(99)).bind(schema)),)
        compile_partition_task(steps_a, registry=registry)
        compile_partition_task(steps_b, registry=registry)
        # Same structure, different literal: one code object, one miss,
        # one hit.
        assert kernel_cache_size() == 1
        assert registry.counter("executor.kernels_compiled").value == 1
        assert registry.counter("executor.kernel_cache_hits").value == 1

    def test_distinct_structures_compile_separately(self):
        clear_kernel_cache()
        schema = Schema.of("a")
        compile_partition_task((FilterStep((col("a") > lit(1)).bind(schema)),))
        compile_partition_task((FilterStep((col("a") < lit(1)).bind(schema)),))
        assert kernel_cache_size() == 2

    def test_nothing_to_compile_returns_none(self):
        assert compile_partition_task((FlatMapStep(_double_row),)) is None
        assert compile_partition_task((MapPartitionStep(sorted),)) is None
        assert compile_partition_task(()) is None

    def test_deeply_nested_expression_falls_back(self):
        schema = Schema.of("a")
        expr = col("a")
        for _ in range(80):
            expr = expr + lit(1)
        with pytest.raises(CodegenError):
            compile_partition_task((ProjectStep((expr.bind(schema),)),))

    def test_generated_source_is_structural(self):
        # Literal values are hoisted to constants; none may appear in
        # the source (the cache key).
        schema = Schema.of("a", "b")
        expr = (col("a") == lit(123456789)) & col("b").is_in(["secret"])
        source, constants = lower_segment((FilterStep(expr.bind(schema)),))
        assert "123456789" not in source
        assert "secret" not in source
        assert 123456789 in constants
        assert frozenset(["secret"]) in constants


class TestPickleContract:
    def test_round_trip_recompiles_lazily(self):
        schema = Schema.of("a")
        steps = (
            FilterStep((col("a") > lit(2)).bind(schema)),
            ProjectStep(((col("a") * lit(3)).bind(schema),)),
        )
        task = compile_partition_task(steps)
        rows = [(i,) for i in range(8)]
        expected = task(list(rows))
        blob = pickle.dumps(task)
        clear_kernel_cache()
        loaded = pickle.loads(blob)
        # The spec travels; the bound kernel chain does not.
        assert getattr(loaded, "_phases", None) is None
        assert loaded(list(rows)) == expected
        assert loaded.kernel_id == task.kernel_id
        assert kernel_cache_size() == 1

    def test_spec_only_state(self):
        schema = Schema.of("a")
        steps = (FilterStep((col("a") > lit(2)).bind(schema)),)
        task = compile_partition_task(steps)
        assert task.__getstate__() == (steps, task.kernel_id)


class TestFlagPlumbing:
    def test_kernels_enabled_values(self):
        assert kernels_enabled(True) is True
        assert kernels_enabled(False) is False
        assert kernels_enabled("compiled") is True
        for off in ("interpret", "interpreted", "off", "0", "false", "no"):
            assert kernels_enabled(off) is False

    def test_env_var_disables_compilation(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "interpret")
        executor = SerialExecutor()
        assert executor.compile_kernels is False
        task = executor._narrow_task(
            (FilterStep((col("a") > lit(1)).bind(Schema.of("a"))),)
        )
        assert isinstance(task, PartitionTask)

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "interpret")
        executor = SerialExecutor(compile_kernels=True)
        assert executor.compile_kernels is True

    def test_compiled_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        executor = SerialExecutor()
        assert executor.compile_kernels is True
        task = executor._narrow_task(
            (FilterStep((col("a") > lit(1)).bind(Schema.of("a"))),)
        )
        assert isinstance(task, CompiledPartitionTask)

    def test_lowering_failure_falls_back_and_counts(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        executor = SerialExecutor()
        expr = col("a")
        for _ in range(80):
            expr = expr + lit(1)
        task = executor._narrow_task(
            (ProjectStep((expr.bind(Schema.of("a")),)),)
        )
        assert isinstance(task, PartitionTask)
        assert executor.metrics.kernel_fallbacks == 1


class TestExecutorSmoke:
    """Tier-1 smoke: compiled by default, identical to interpreted."""

    def _pipeline(self, ctx):
        rows = [
            (float(i), i % 7, "id%d" % (i % 5), i % 3 == 0)
            for i in range(200)
        ]
        t = ctx.table_from_rows(["t", "m", "name", "flag"], rows)
        return (
            t.filter((col("m") > 1) & col("name").is_in(["id1", "id2", "id3"]))
            .with_column("scaled", col("t") * lit(0.25) + col("m"))
            .filter(~col("flag"))
            .select("name", "scaled", "m")
        )

    def test_compiled_default_matches_interpreted(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with SerialExecutor() as compiled_ex, \
                SerialExecutor(compile_kernels=False) as interp_ex:
            compiled_rows = self._pipeline(EngineContext(compiled_ex)).collect()
            interpreted_rows = self._pipeline(
                EngineContext(interp_ex)
            ).collect()
            assert compiled_rows == interpreted_rows
            assert compiled_rows  # the pipeline keeps some rows
            assert compiled_ex.metrics.kernels_compiled > 0 or \
                compiled_ex.metrics.kernel_cache_hits > 0
            assert interp_ex.metrics.kernels_compiled == 0
            assert interp_ex.metrics.kernel_cache_hits == 0

    def test_kernel_run_histograms_recorded(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with SerialExecutor() as executor:
            self._pipeline(EngineContext(executor)).collect()
            histograms = executor.obs.histograms()
            assert histograms["executor.kernel_run_seconds"]["count"] > 0
            # Row kernels tag histograms with a "k" id, columnar batch
            # kernels with a "c" id; either proves per-kernel timing.
            per_kernel = [
                name for name in histograms
                if name.startswith("executor.kernel_run_seconds.k")
                or name.startswith("executor.kernel_run_seconds.c")
            ]
            assert per_kernel

    def test_multiprocessing_equivalence(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with SerialExecutor(compile_kernels=False) as reference, \
                MultiprocessingExecutor(
                    num_workers=2, default_parallelism=4
                ) as mp:
            expected = self._pipeline(EngineContext(reference)).collect()
            table = self._pipeline(EngineContext(mp)).repartition(4)
            actual = table.collect()
            assert sorted(actual) == sorted(expected)

    def test_execution_error_from_compiled_kernel(self):
        with SerialExecutor() as executor:
            ctx = EngineContext(executor)
            t = ctx.table_from_rows(["a", "b"], [(1.0, 0.0)])
            with pytest.raises(ExecutionError):
                t.with_column("q", col("a") / col("b")).collect()
