"""Schema construction, lookup and derivation."""

import pytest

from repro.engine import Schema, SchemaError
from repro.engine.schema import ANY, FLOAT, Field


class TestField:
    def test_default_dtype_is_any(self):
        assert Field("t").dtype == ANY

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Field("")

    def test_rejects_unknown_dtype(self):
        with pytest.raises(SchemaError):
            Field("t", "decimal")


class TestSchema:
    def test_of_builds_ordered_names(self):
        schema = Schema.of("t", "l", "b_id")
        assert schema.names == ("t", "l", "b_id")

    def test_of_with_dtypes(self):
        schema = Schema.of("t", "n", dtypes=[FLOAT, "int"])
        assert schema.field_for("t").dtype == FLOAT

    def test_of_rejects_mismatched_dtypes(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "b", dtypes=[FLOAT])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema.of("t", "t")

    def test_index_of(self):
        schema = Schema.of("a", "b", "c")
        assert schema.index_of("b") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").index_of("z")

    def test_contains(self):
        schema = Schema.of("a", "b")
        assert "a" in schema
        assert "z" not in schema

    def test_len_and_iter(self):
        schema = Schema.of("a", "b", "c")
        assert len(schema) == 3
        assert [f.name for f in schema] == ["a", "b", "c"]

    def test_select_reorders(self):
        schema = Schema.of("a", "b", "c").select(["c", "a"])
        assert schema.names == ("c", "a")

    def test_drop(self):
        schema = Schema.of("a", "b", "c").drop(["b"])
        assert schema.names == ("a", "c")

    def test_drop_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").drop(["b"])

    def test_append(self):
        schema = Schema.of("a").append("b", FLOAT)
        assert schema.names == ("a", "b")
        assert schema.field_for("b").dtype == FLOAT

    def test_append_duplicate_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").append("a")

    def test_rename(self):
        schema = Schema.of("a", "b").rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_rename_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").rename({"z": "y"})

    def test_concat(self):
        schema = Schema.of("a").concat(Schema.of("b"))
        assert schema.names == ("a", "b")

    def test_concat_with_duplicate_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_row_as_dict(self):
        schema = Schema.of("a", "b")
        assert schema.row_as_dict((1, 2)) == {"a": 1, "b": 2}
