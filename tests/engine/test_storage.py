"""TableStore persistence round-trips."""

import pytest

from repro.engine import ExecutionError, TableStore, col


@pytest.fixture
def store(tmp_path):
    return TableStore(tmp_path / "db")


@pytest.fixture
def table(ctx):
    return ctx.table_from_rows(
        ["t", "v"], [(float(i), i * i) for i in range(20)], num_partitions=4
    )


class TestWriteRead:
    def test_round_trip_preserves_rows(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert sorted(loaded.collect()) == sorted(table.collect())

    def test_round_trip_preserves_schema(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert loaded.columns == ["t", "v"]

    def test_round_trip_preserves_partitioning(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert len(loaded.collect_partitions()) == 4

    def test_manifest_reports_counts(self, store, table):
        manifest = store.write("squares", table)
        assert manifest["num_rows"] == 20
        assert manifest["num_partitions"] == 4

    def test_overwrite_replaces(self, store, table, ctx):
        store.write("data", table)
        smaller = table.filter(col("v") < 4)
        store.write("data", smaller)
        assert store.read(ctx, "data").count() == 2

    def test_bytes_payloads_survive(self, store, ctx):
        t = ctx.table_from_rows(["l"], [(b"\x00\xff\x10",)])
        store.write("raw", t)
        assert store.read(ctx, "raw").collect() == [(b"\x00\xff\x10",)]

    def test_row_partitions_pickle_without_a_copy(self, store, ctx,
                                                  monkeypatch):
        # Regression: write() used to wrap every partition in list(),
        # duplicating row partitions that as_row_partition had already
        # returned as lists. The exact list object must reach pickle.
        import repro.engine.storage as storage_mod

        produced = []
        real_as_rows = storage_mod.as_row_partition

        def spy_as_rows(part):
            rows = real_as_rows(part)
            if isinstance(rows, list):
                produced.append(rows)
            return rows

        dumped = []
        real_dump = storage_mod.pickle.dump

        def spy_dump(obj, fh, protocol=None):
            dumped.append(obj)
            real_dump(obj, fh, protocol=protocol)

        monkeypatch.setattr(storage_mod, "as_row_partition", spy_as_rows)
        monkeypatch.setattr(storage_mod.pickle, "dump", spy_dump)
        table = ctx.table_from_rows(
            ["a"], [(i,) for i in range(6)], num_partitions=2
        )
        store.write("nocopy", table)
        assert len(produced) == len(dumped) == 2
        for rows, obj in zip(produced, dumped):
            assert obj is rows


class TestAtomicWrite:
    def test_crash_mid_overwrite_keeps_old_table(
        self, store, table, ctx, monkeypatch
    ):
        # Regression: write used to delete the old part files before the
        # new manifest landed, so a crash mid-write destroyed both the
        # old and the new table. Staging + rename keeps the old table
        # fully readable when the manifest write blows up.
        import json as json_module

        store.write("data", table)
        boom = RuntimeError("disk full")

        def failing_dump(*args, **kwargs):
            raise boom

        monkeypatch.setattr(json_module, "dump", failing_dump)
        with pytest.raises(RuntimeError):
            store.write("data", table.filter(col("v") < 4))
        monkeypatch.undo()
        loaded = store.read(ctx, "data")
        assert loaded.count() == 20

    def test_staging_dirs_hidden_from_listing(self, store, table):
        store.write("ok", table)
        (store.root / ".staging-ok-junk").mkdir()
        assert store.list_tables() == ["ok"]
        assert not store.exists(".staging-ok-junk")

    def test_missing_part_file_raises_execution_error(
        self, store, table, ctx
    ):
        # Regression: a manifest pointing at a deleted part file used to
        # escape as a raw FileNotFoundError.
        store.write("data", table)
        (store.table_dir("data") / "part-00002.pkl").unlink()
        with pytest.raises(ExecutionError, match="part-00002.pkl"):
            store.read(ctx, "data")


class TestGc:
    def test_removes_crash_debris(self, store, table, ctx):
        # Regression: atomic writes (PR 3) never cleaned up the hidden
        # staging/retired directories a crash between stage and rename
        # leaves behind; they accumulated invisibly forever.
        store.write("keep", table)
        staging = store.root / ".staging-keep-1234"
        staging.mkdir()
        (staging / "part-00000.pkl").write_bytes(b"partial")
        retired = store.root / ".retired-keep-1234"
        retired.mkdir()
        removed = store.gc()
        assert removed == [".retired-keep-1234", ".staging-keep-1234"]
        assert not staging.exists() and not retired.exists()
        # The live table is untouched and still readable.
        assert store.read(ctx, "keep").count() == 20

    def test_debris_from_failed_overwrite_is_collected(
        self, store, table, ctx, monkeypatch
    ):
        import json as json_module

        store.write("data", table)
        monkeypatch.setattr(
            json_module, "dump",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("disk full")),
        )
        with pytest.raises(RuntimeError):
            store.write("data", table)
        monkeypatch.undo()
        assert len(store.gc()) == 1
        assert store.gc() == []  # idempotent
        assert store.read(ctx, "data").count() == 20

    def test_noop_on_clean_store(self, store, table):
        store.write("data", table)
        assert store.gc() == []
        assert store.list_tables() == ["data"]

    def test_ignores_regular_files(self, store):
        (store.root / "notes.txt").write_text("not a table")
        assert store.gc() == []
        assert (store.root / "notes.txt").exists()


class TestCsv:
    def test_round_trip_typed_values(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(
            ["t", "v", "s_id"],
            [(1.5, 10, "wpos"), (2.0, None, "wvel")],
        )
        path = tmp_path / "out.csv"
        assert write_csv(t, path) == 2
        loaded = read_csv(ctx, path)
        assert loaded.columns == ["t", "v", "s_id"]
        assert sorted(loaded.collect()) == [
            (1.5, 10, "wpos"), (2.0, None, "wvel"),
        ]

    def test_header_line_present(self, ctx, tmp_path):
        from repro.engine.storage import write_csv

        t = ctx.table_from_rows(["a", "b"], [(1, 2)])
        path = tmp_path / "x.csv"
        write_csv(t, path)
        assert path.read_text().splitlines()[0] == "a,b"

    def test_numeric_strings_parse_back_as_numbers(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(["x"], [(3,), (3.5,)])
        path = tmp_path / "n.csv"
        write_csv(t, path)
        values = [r[0] for r in read_csv(ctx, path).collect()]
        assert values == [3, 3.5]
        assert isinstance(values[0], int)

    def test_empty_table(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.empty_table(["a"])
        path = tmp_path / "e.csv"
        write_csv(t, path)
        assert read_csv(ctx, path).count() == 0

    def test_bools_round_trip_as_bools(self, ctx, tmp_path):
        # Regression: "True"/"False" cells reloaded as strings because
        # the parser tried int/float only.
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(["ok", "n"], [(True, 1), (False, 2)])
        path = tmp_path / "b.csv"
        write_csv(t, path)
        rows = sorted(read_csv(ctx, path).collect(), key=lambda r: r[1])
        assert rows == [(True, 1), (False, 2)]
        assert isinstance(rows[0][0], bool)

    def test_nan_and_inf_strings_stay_strings(self, ctx, tmp_path):
        # Regression: string cells "nan"/"inf" reparsed as non-finite
        # floats, silently changing the column's type and values.
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(
            ["s"], [("nan",), ("inf",), ("-inf",), ("Infinity",)]
        )
        path = tmp_path / "nf.csv"
        write_csv(t, path)
        values = [r[0] for r in read_csv(ctx, path).collect()]
        assert values == ["nan", "inf", "-inf", "Infinity"]

    def test_round_trip_property(self, ctx, tmp_path):
        # Property: any table of CSV-stable values (ints, finite
        # floats, bools, None, non-numeric-looking strings) round-trips
        # exactly through write_csv/read_csv.
        import random

        from repro.engine.storage import read_csv, write_csv

        rng = random.Random(7)
        pools = (
            lambda: rng.randint(-1000, 1000),
            lambda: round(rng.uniform(-50.0, 50.0), 6),
            lambda: rng.choice((True, False)),
            lambda: None,
            lambda: rng.choice(("nan", "inf", "-inf", "x", "msg-3", "")),
        )
        for trial in range(10):
            rows = [
                tuple(rng.choice(pools)() for _col in range(3))
                for _row in range(rng.randint(0, 25))
            ]
            # Empty strings render identically to None; normalize.
            rows = [
                tuple(None if v == "" else v for v in row) for row in rows
            ]
            t = ctx.table_from_rows(["a", "b", "c"], rows)
            path = tmp_path / "prop-{}.csv".format(trial)
            write_csv(t, path)
            loaded = read_csv(ctx, path).collect()
            assert loaded == rows, "trial {} diverged".format(trial)


class TestStoreManagement:
    def test_exists(self, store, table):
        assert not store.exists("x")
        store.write("x", table)
        assert store.exists("x")

    def test_list_tables_sorted(self, store, table):
        store.write("b", table)
        store.write("a", table)
        assert store.list_tables() == ["a", "b"]

    def test_read_missing_raises(self, store, ctx):
        with pytest.raises(ExecutionError):
            store.read(ctx, "ghost")

    def test_delete(self, store, table, ctx):
        store.write("x", table)
        store.delete("x")
        assert not store.exists("x")
        with pytest.raises(ExecutionError):
            store.read(ctx, "x")

    def test_delete_missing_is_noop(self, store):
        store.delete("never-existed")
