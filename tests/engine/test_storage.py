"""TableStore persistence round-trips."""

import pytest

from repro.engine import ExecutionError, TableStore, col


@pytest.fixture
def store(tmp_path):
    return TableStore(tmp_path / "db")


@pytest.fixture
def table(ctx):
    return ctx.table_from_rows(
        ["t", "v"], [(float(i), i * i) for i in range(20)], num_partitions=4
    )


class TestWriteRead:
    def test_round_trip_preserves_rows(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert sorted(loaded.collect()) == sorted(table.collect())

    def test_round_trip_preserves_schema(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert loaded.columns == ["t", "v"]

    def test_round_trip_preserves_partitioning(self, store, table, ctx):
        store.write("squares", table)
        loaded = store.read(ctx, "squares")
        assert len(loaded.collect_partitions()) == 4

    def test_manifest_reports_counts(self, store, table):
        manifest = store.write("squares", table)
        assert manifest["num_rows"] == 20
        assert manifest["num_partitions"] == 4

    def test_overwrite_replaces(self, store, table, ctx):
        store.write("data", table)
        smaller = table.filter(col("v") < 4)
        store.write("data", smaller)
        assert store.read(ctx, "data").count() == 2

    def test_bytes_payloads_survive(self, store, ctx):
        t = ctx.table_from_rows(["l"], [(b"\x00\xff\x10",)])
        store.write("raw", t)
        assert store.read(ctx, "raw").collect() == [(b"\x00\xff\x10",)]


class TestCsv:
    def test_round_trip_typed_values(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(
            ["t", "v", "s_id"],
            [(1.5, 10, "wpos"), (2.0, None, "wvel")],
        )
        path = tmp_path / "out.csv"
        assert write_csv(t, path) == 2
        loaded = read_csv(ctx, path)
        assert loaded.columns == ["t", "v", "s_id"]
        assert sorted(loaded.collect()) == [
            (1.5, 10, "wpos"), (2.0, None, "wvel"),
        ]

    def test_header_line_present(self, ctx, tmp_path):
        from repro.engine.storage import write_csv

        t = ctx.table_from_rows(["a", "b"], [(1, 2)])
        path = tmp_path / "x.csv"
        write_csv(t, path)
        assert path.read_text().splitlines()[0] == "a,b"

    def test_numeric_strings_parse_back_as_numbers(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.table_from_rows(["x"], [(3,), (3.5,)])
        path = tmp_path / "n.csv"
        write_csv(t, path)
        values = [r[0] for r in read_csv(ctx, path).collect()]
        assert values == [3, 3.5]
        assert isinstance(values[0], int)

    def test_empty_table(self, ctx, tmp_path):
        from repro.engine.storage import read_csv, write_csv

        t = ctx.empty_table(["a"])
        path = tmp_path / "e.csv"
        write_csv(t, path)
        assert read_csv(ctx, path).count() == 0


class TestStoreManagement:
    def test_exists(self, store, table):
        assert not store.exists("x")
        store.write("x", table)
        assert store.exists("x")

    def test_list_tables_sorted(self, store, table):
        store.write("b", table)
        store.write("a", table)
        assert store.list_tables() == ["a", "b"]

    def test_read_missing_raises(self, store, ctx):
        with pytest.raises(ExecutionError):
            store.read(ctx, "ghost")

    def test_delete(self, store, table, ctx):
        store.write("x", table)
        store.delete("x")
        assert not store.exists("x")
        with pytest.raises(ExecutionError):
            store.read(ctx, "x")

    def test_delete_missing_is_noop(self, store):
        store.delete("never-existed")
