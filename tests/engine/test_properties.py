"""Property-based tests: engine operators against reference semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext, aggregates, col
from repro.engine.operations import split_evenly

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # key
        st.integers(min_value=-100, max_value=100),  # value
    ),
    max_size=60,
)

partitions_strategy = st.integers(min_value=1, max_value=6)


def make_table(rows, num_partitions):
    ctx = EngineContext.serial(default_parallelism=3)
    return ctx, ctx.table_from_rows(
        ["k", "v"], rows, num_partitions=num_partitions
    )


@given(rows=rows_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_filter_matches_list_comprehension(rows, parts):
    _ctx, t = make_table(rows, parts)
    got = sorted(t.filter(col("v") > 0).collect())
    expected = sorted(r for r in rows if r[1] > 0)
    assert got == expected


@given(rows=rows_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_count_is_partition_invariant(rows, parts):
    _ctx, t = make_table(rows, parts)
    assert t.count() == len(rows)


@given(rows=rows_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_sort_is_total_and_stable_multiset(rows, parts):
    _ctx, t = make_table(rows, parts)
    out = t.sort(["k", "v"]).collect()
    assert out == sorted(rows)


@given(rows=rows_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_group_by_sum_matches_reference(rows, parts):
    _ctx, t = make_table(rows, parts)
    got = dict(
        (k, s)
        for k, s in t.group_by("k").agg(("s", aggregates.Sum(), "v")).collect()
    )
    expected = {}
    for k, v in rows:
        expected[k] = expected.get(k, 0) + v
    assert got == expected


@given(
    left_rows=rows_strategy,
    right_keys=st.lists(st.integers(min_value=0, max_value=9), max_size=8, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_inner_join_matches_nested_loop(left_rows, right_keys):
    ctx = EngineContext.serial()
    left = ctx.table_from_rows(["k", "v"], left_rows, num_partitions=2)
    right = ctx.table_from_rows(
        ["k", "tag"], [(k, "t{}".format(k)) for k in right_keys]
    )
    got = sorted(left.join(right, on="k").collect())
    expected = sorted(
        (k, v, "t{}".format(k)) for k, v in left_rows if k in set(right_keys)
    )
    assert got == expected


@given(rows=rows_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_union_is_multiset_concatenation(rows, parts):
    ctx, t = make_table(rows, parts)
    other = ctx.table_from_rows(["k", "v"], rows[:5])
    assert sorted(t.union(other).collect()) == sorted(rows + rows[:5])


@given(
    items=st.lists(st.integers(), max_size=100),
    n=st.integers(min_value=1, max_value=12),
)
def test_split_evenly_partitions_without_loss(items, n):
    parts = split_evenly(items, n)
    assert len(parts) == n
    assert [x for p in parts for x in p] == items
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_repartition_preserves_multiset(rows):
    ctx, t = make_table(rows, 2)
    for n in (1, 3, 5):
        assert sorted(t.repartition(n).collect()) == sorted(rows)
