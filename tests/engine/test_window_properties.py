"""Property-based tests for the windowed operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineContext,
    drop_consecutive_duplicates,
    forward_fill,
    with_gap,
    with_lag,
)

series_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # group
        st.integers(min_value=0, max_value=4),  # value
    ),
    max_size=50,
)

partitions_strategy = st.integers(min_value=1, max_value=5)


def make_table(rows, parts):
    ctx = EngineContext.serial(default_parallelism=3)
    stamped = [(float(i), g, v) for i, (g, v) in enumerate(rows)]
    return ctx, ctx.table_from_rows(
        ["t", "g", "v"], stamped, num_partitions=parts
    ), stamped


@given(rows=series_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_lag_matches_reference(rows, parts):
    _ctx, table, stamped = make_table(rows, parts)
    out = with_lag(table, "t", "v", "prev", group_by="g")
    got = {r[0]: r[3] for r in out.collect()}
    last_by_group = {}
    for t, g, v in sorted(stamped):
        assert got[t] == last_by_group.get(g)
        last_by_group[g] = v


@given(rows=series_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_gap_is_nonnegative_and_sums_to_span(rows, parts):
    _ctx, table, stamped = make_table(rows, parts)
    out = with_gap(table, "t", "t", "dt").sort("t").collect()
    gaps = [r[3] for r in out]
    if not out:
        return
    assert gaps[0] is None
    assert all(g >= 0 for g in gaps[1:])
    assert sum(gaps[1:]) == out[-1][0] - out[0][0]


@given(rows=series_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_dedup_never_has_adjacent_equal_values(rows, parts):
    _ctx, table, _stamped = make_table(rows, parts)
    out = drop_consecutive_duplicates(table, "t", "v", group_by="g")
    per_group = {}
    for t, g, v in sorted(out.collect()):
        per_group.setdefault(g, []).append(v)
    for values in per_group.values():
        assert all(a != b for a, b in zip(values, values[1:]))


@given(rows=series_strategy, parts=partitions_strategy)
@settings(max_examples=60, deadline=None)
def test_dedup_preserves_change_points(rows, parts):
    _ctx, table, stamped = make_table(rows, parts)
    out = drop_consecutive_duplicates(table, "t", "v", group_by="g")
    kept = {r[0] for r in out.collect()}
    last_by_group = {}
    for t, g, v in sorted(stamped):
        if last_by_group.get(g) != v:
            assert t in kept
        last_by_group[g] = v


@given(
    rows=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        max_size=40,
    ),
    parts=partitions_strategy,
)
@settings(max_examples=60, deadline=None)
def test_forward_fill_matches_reference(rows, parts):
    ctx = EngineContext.serial()
    stamped = [(float(i), v) for i, v in enumerate(rows)]
    table = ctx.table_from_rows(["t", "v"], stamped, num_partitions=parts)
    out = forward_fill(table, "t", ["v"]).sort("t").collect()
    last = None
    for (t, v), (_t_in, v_in) in zip(out, sorted(stamped)):
        if v_in is not None:
            last = v_in
        assert v == last
