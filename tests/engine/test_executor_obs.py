"""Executor observability: task-duration histograms, rule-fire counters,
retry/fault counters and pickle-size gauges on the obs registry."""

import pytest

from repro.engine import EngineContext, FaultPolicy, col
from repro.engine.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)


def _table(ctx, rows=60, partitions=4):
    return ctx.table_from_rows(
        ["x"], [(i,) for i in range(rows)], num_partitions=partitions
    )


def _double(rows):
    return [(x * 2,) for (x,) in rows]


class TestTaskDurationHistograms:
    def test_serial_executor_records_per_task_durations(self):
        ctx = EngineContext.serial(default_parallelism=4)
        _table(ctx).filter(col("x") >= 0).collect()
        histogram = ctx.executor.obs.histogram("executor.task_seconds")
        assert histogram.count == ctx.executor.metrics.tasks_run
        assert histogram.min >= 0.0
        assert histogram.percentile(95) >= histogram.percentile(50)

    def test_per_stage_kind_histograms(self):
        ctx = EngineContext.serial(default_parallelism=4)
        _table(ctx).filter(col("x") > 5).sort("x").collect()
        names = set(ctx.executor.obs.histograms())
        assert "executor.task_seconds.narrow" in names
        assert "executor.task_seconds.sort" in names
        assert any(n.startswith("executor.stage_seconds.") for n in names)

    def test_simulated_cluster_histograms_feed_makespan(self):
        executor = SimulatedClusterExecutor(num_workers=2, stage_latency=0.0)
        executor.run_tasks(_double, [[(1,)], [(2,)], [(3,)]], stage="map[0]")
        histogram = executor.obs.histogram("executor.task_seconds")
        assert histogram.count == 3
        assert executor.serial_task_seconds == pytest.approx(
            histogram.total, rel=1e-6
        )


class TestOptimizerRuleCounters:
    def test_filter_fusion_fires_counter(self):
        ctx = EngineContext.serial(default_parallelism=2)
        _table(ctx).filter(col("x") > 1).filter(col("x") < 50).collect()
        counters = ctx.executor.obs.counters()
        assert counters.get("optimizer.rule.filter_fusion", 0) >= 1

    def test_unoptimized_executor_fires_nothing(self):
        executor = SerialExecutor(default_parallelism=2, optimize_plans=False)
        ctx = EngineContext(executor)
        _table(ctx).filter(col("x") > 1).filter(col("x") < 50).collect()
        assert not any(
            name.startswith("optimizer.rule.")
            for name in executor.obs.counters()
        )


class TestRetryAndFaultCounters:
    def test_injected_faults_and_retries_counted(self):
        policy = FaultPolicy(crash_rate=1.0, seed=3, crashes_per_task=1)
        executor = SerialExecutor(
            default_parallelism=2, fault_policy=policy,
            max_task_retries=2, retry_backoff=0.0,
        )
        ctx = EngineContext(executor)
        _table(ctx, rows=20, partitions=2).filter(col("x") >= 0).collect()
        counters = executor.obs.counters()
        assert counters["executor.faults_injected"] > 0
        assert counters["executor.retries"] > 0
        # The back-compat metrics view reads the same counters.
        assert executor.metrics.retries == counters["executor.retries"]
        assert (
            executor.metrics.faults_injected
            == counters["executor.faults_injected"]
        )

    def test_counters_exist_at_zero_before_any_run(self):
        executor = SerialExecutor()
        counters = executor.obs.counters()
        assert counters["executor.retries"] == 0
        assert counters["executor.faults_injected"] == 0
        assert counters["executor.tasks_run"] == 0


class TestPickleSizeGauges:
    def test_pool_path_records_task_pickle_size(self):
        executor = MultiprocessingExecutor(num_workers=2, retry_backoff=0.0)
        try:
            executor.run_tasks(_double, [[(1,)], [(2,)], [(3,)]], stage="m[0]")
            gauges = executor.obs.gauges()
            assert gauges["executor.pickle_task_bytes"] > 0
            assert (
                gauges["executor.pickle_task_bytes_max"]
                >= gauges["executor.pickle_task_bytes"]
            )
            histogram = executor.obs.histogram("executor.pickle_task_bytes_hist")
            assert histogram.count == 1
        finally:
            executor.close()

    def test_single_partition_path_skips_pool_and_gauge(self):
        executor = MultiprocessingExecutor(num_workers=2, retry_backoff=0.0)
        try:
            executor.run_tasks(_double, [[(1,)]], stage="m[0]")
            assert "executor.pickle_task_bytes" not in executor.obs.gauges()
        finally:
            executor.close()


class TestColumnarCounters:
    def _columnar_table(self, ctx, rows=80):
        from repro.engine import ColumnarPartition

        data = [(i, i * 0.5) for i in range(rows)]
        parts = [
            ColumnarPartition.from_rows(data[: rows // 2], 2),
            ColumnarPartition.from_rows(data[rows // 2 :], 2),
        ]
        return ctx.table_from_columnar(["x", "y"], parts)

    def test_columnar_tasks_counted_and_bytes_gauged(self):
        ctx = EngineContext.serial(default_parallelism=2)
        table = self._columnar_table(ctx)
        table.filter(col("x") > 3).select("y").collect()
        counters = ctx.executor.obs.counters()
        assert counters["executor.columnar_tasks"] >= 1
        assert counters["executor.columnar_fallbacks"] == 0
        assert ctx.executor.metrics.columnar_tasks >= 1
        gauges = ctx.executor.obs.gauges()
        assert gauges["executor.partition_bytes"] > 0

    def test_fallback_counted_for_unloweable_chain(self):
        ctx = EngineContext.serial(default_parallelism=2)
        table = self._columnar_table(ctx)
        table.filter(col("x") > 3).flat_map(_echo_row, ["x", "y"]).collect()
        counters = ctx.executor.obs.counters()
        assert counters["executor.columnar_fallbacks"] >= 1
        assert ctx.executor.metrics.columnar_fallbacks >= 1

    def test_columnar_disabled_runs_row_kernels_only(self):
        executor = SerialExecutor(
            default_parallelism=2, columnar_kernels=False
        )
        ctx = EngineContext(executor)
        table = self._columnar_table(ctx)
        table.filter(col("x") > 3).select("y").collect()
        assert executor.metrics.columnar_tasks == 0
        assert executor.metrics.columnar_fallbacks == 0
        assert executor.metrics.kernels_compiled >= 1

    def test_counters_exist_at_zero_before_any_run(self):
        executor = SerialExecutor()
        counters = executor.obs.counters()
        assert counters["executor.columnar_tasks"] == 0
        assert counters["executor.columnar_fallbacks"] == 0
        assert counters["executor.columnar_join_tasks"] == 0
        assert counters["executor.columnar_shuffle_tasks"] == 0
        assert counters["executor.columnar_exchange_bytes"] == 0

    def test_wide_exchange_counters_increment(self):
        ctx = EngineContext.serial(default_parallelism=2)
        table = self._columnar_table(ctx)
        table.filter(col("x") >= 0).repartition(3, keys=["x"]).collect()
        counters = ctx.executor.obs.counters()
        assert counters["executor.columnar_shuffle_tasks"] >= 1
        assert counters["executor.columnar_exchange_bytes"] > 0
        assert ctx.executor.metrics.columnar_shuffle_tasks >= 1
        assert ctx.executor.metrics.columnar_exchange_bytes > 0


def _echo_row(row):
    return [row]
