"""MultiprocessingExecutor boundary conditions.

Covers the shapes a fleet-scale run hits in practice: a single worker,
more partitions than workers, zero-row inputs, and the unpicklable-task
path, which must fail with an actionable EngineError rather than a raw
PicklingError from the pool internals.
"""

import pytest

from repro.engine import EngineContext, aggregates, col
from repro.engine.errors import EngineError, ExecutionError
from repro.engine.executor import (
    MultiprocessingExecutor,
    SimulatedClusterExecutor,
)


def _workload(ctx, rows=200, partitions=4):
    t = ctx.table_from_rows(
        ["t", "m", "v"],
        [(float(i), i % 3, i * 5 % 13) for i in range(rows)],
        num_partitions=partitions,
    )
    return (
        t.filter(col("v") > 2)
        .group_by("m")
        .agg(("n", aggregates.Count(), None), ("mx", aggregates.Max(), "v"))
        .sort("m")
    )


class TestWorkerAndPartitionShapes:
    def test_single_worker(self):
        expected = _workload(EngineContext.serial(default_parallelism=4)).collect()
        executor = MultiprocessingExecutor(
            num_workers=1, default_parallelism=4
        )
        with EngineContext(executor) as ctx:
            assert _workload(ctx).collect() == expected

    def test_more_partitions_than_workers(self):
        expected = _workload(
            EngineContext.serial(default_parallelism=16), partitions=16
        ).collect()
        executor = MultiprocessingExecutor(
            num_workers=2, default_parallelism=16
        )
        with EngineContext(executor) as ctx:
            assert _workload(ctx, partitions=16).collect() == expected

    def test_zero_row_input(self):
        with EngineContext.parallel(num_workers=2) as ctx:
            t = ctx.empty_table(["t", "m", "v"])
            assert t.filter(col("v") > 0).collect() == []
            assert t.count() == 0

    def test_zero_row_groupby_and_sort(self):
        with EngineContext.parallel(num_workers=2) as ctx:
            out = _workload(ctx, rows=0)
            assert out.collect() == []

    def test_empty_partitions_among_full_ones(self):
        layout = [[], [(1.0, 0, 5)], [], [(2.0, 1, 6), (3.0, 2, 7)], []]
        with EngineContext.parallel(num_workers=2) as ctx:
            t = ctx.table_from_partitions(["t", "m", "v"], layout)
            assert t.filter(col("v") > 5).count() == 2


def _identity(x):
    return x


class TestSimulatedClusterEmptyStages:
    def test_empty_stage_charges_no_latency(self):
        # Invariant: a stage with zero partitions schedules zero tasks,
        # so it must not be billed the per-stage coordination latency.
        # The old code charged stage_latency unconditionally, making a
        # zero-partition stage cost a full stage each.
        executor = SimulatedClusterExecutor(num_workers=4, stage_latency=0.5)
        assert executor.run_tasks(_identity, [], stage="empty[0]") == []
        assert executor.simulated_seconds == 0.0
        assert executor.serial_task_seconds == 0.0

    def test_nonempty_stage_still_charges_latency(self):
        executor = SimulatedClusterExecutor(num_workers=4, stage_latency=0.5)
        outputs = executor.run_tasks(_identity, [[1], [2]], stage="full[0]")
        assert outputs == [[1], [2]]
        assert executor.simulated_seconds >= 0.5

    def test_mixed_empty_and_full_stages(self):
        executor = SimulatedClusterExecutor(num_workers=2, stage_latency=0.25)
        executor.run_tasks(_identity, [[1]], stage="a[0]")
        executor.run_tasks(_identity, [], stage="b[1]")
        executor.run_tasks(_identity, [[2]], stage="c[2]")
        # Exactly two stages ran tasks -> exactly two latency charges.
        assert 0.5 <= executor.simulated_seconds < 0.75


class TestPicklingFailurePath:
    def test_unpicklable_task_raises_engine_error(self):
        executor = MultiprocessingExecutor(num_workers=2, retry_backoff=0.0)
        try:
            with pytest.raises(ExecutionError) as excinfo:
                executor.run_tasks(lambda rows: rows, [[1], [2], [3]])
        finally:
            executor.close()
        error = excinfo.value
        assert isinstance(error, EngineError)
        assert "picklable" in str(error)

    def test_unpicklable_plan_function_raises_engine_error(self):
        captured = []  # a closure over local state cannot be pickled

        def closure_func(rows):
            captured.append(rows)
            return rows

        with EngineContext.parallel(num_workers=2) as ctx:
            t = ctx.table_from_rows(
                ["x"], [(i,) for i in range(40)], num_partitions=4
            )
            with pytest.raises(EngineError) as excinfo:
                t.map_partitions(closure_func).collect()
        assert "picklable" in str(excinfo.value)

    def test_pickling_error_is_not_retried(self):
        executor = MultiprocessingExecutor(
            num_workers=2, max_task_retries=3, retry_backoff=0.0
        )
        try:
            with pytest.raises(ExecutionError):
                executor.run_tasks(lambda rows: rows, [[1], [2]])
            assert executor.metrics.retries == 0
        finally:
            executor.close()


class TestPoolLifecycle:
    def test_pool_survives_failed_stage(self):
        executor = MultiprocessingExecutor(num_workers=2, retry_backoff=0.0)
        with EngineContext(executor) as ctx:
            with pytest.raises(EngineError):
                ctx.table_from_rows(
                    ["x"], [(i,) for i in range(10)], num_partitions=4
                ).map_partitions(lambda rows: rows).collect()
            # The pool must stay usable for the next query.
            t = ctx.table_from_rows(
                ["x"], [(i,) for i in range(10)], num_partitions=4
            )
            assert t.filter(col("x") >= 5).count() == 5
