"""SplitByKey: single-pass shuffle splitting and the filter-to-split rule."""

from collections import Counter

import pytest

from repro.engine import (
    EngineContext,
    FaultPolicy,
    SchemaError,
    SerialExecutor,
    col,
)
from repro.engine import plan as logical
from repro.engine.optimizer import optimize
from repro.testing.generator import build_table, generate_case
from repro.testing.oracle import DEFAULT_COMBOS, REFERENCE_COMBO


@pytest.fixture
def trace(ctx):
    rows = [
        (0.0, "wpos", "FC", 1),
        (0.1, "wvel", "FC", 2),
        (0.2, "wpos", "BC", 3),
        (0.3, "heat", "K-LIN", 4),
        (0.4, "wpos", "FC", 5),
        (0.5, "wvel", "BC", 6),
    ]
    return ctx.table_from_rows(
        ["t", "s_id", "b_id", "v"], rows, num_partitions=3
    )


class TestSplitByKeyBasics:
    def test_groups_equal_filter_reference(self, trace):
        groups = trace.split_by_key("s_id")
        for value, table in groups.items():
            expected = trace.filter(col("s_id") == value)
            assert table.collect() == expected.collect()

    def test_discovers_all_keys(self, trace):
        groups = trace.split_by_key("s_id")
        assert sorted(groups) == ["heat", "wpos", "wvel"]

    def test_group_order_and_partitioning_match_filter(self, trace):
        # Exact equivalence, not just multiset: same rows, same order,
        # same partition boundaries as the corresponding filter.
        groups = trace.split_by_key("s_id")
        for value, table in groups.items():
            expected = trace.filter(col("s_id") == value)
            assert (
                table.collect_partitions()
                == expected.collect_partitions()
            )

    def test_sibling_groups_co_partitioned(self, trace):
        groups = trace.split_by_key("s_id")
        counts = {len(t.collect_partitions()) for t in groups.values()}
        assert counts == {3}

    def test_requested_keys_kept_in_order(self, trace):
        groups = trace.split_by_key("s_id", keys=["wvel", "wpos"])
        assert list(groups) == ["wvel", "wpos"]

    def test_absent_requested_key_yields_empty_table(self, trace):
        groups = trace.split_by_key("s_id", keys=["wpos", "ghost"])
        assert groups["ghost"].count() == 0
        assert groups["ghost"].columns == ["t", "s_id", "b_id", "v"]

    def test_schema_preserved(self, trace):
        groups = trace.split_by_key("b_id")
        for table in groups.values():
            assert table.columns == ["t", "s_id", "b_id", "v"]

    def test_unknown_column_raises(self, trace):
        with pytest.raises(SchemaError):
            trace.split_by_key("nope")

    def test_empty_table_has_no_groups(self, ctx):
        t = ctx.empty_table(["a", "b"])
        assert t.split_by_key("a") == {}

    def test_none_key_value_forms_group(self, ctx):
        t = ctx.table_from_rows(["k", "v"], [(None, 1), ("x", 2), (None, 3)])
        groups = t.split_by_key("k")
        assert sorted(groups["x"].collect()) == [("x", 2)]
        assert sorted(groups[None].collect()) == [(None, 1), (None, 3)]

    def test_mixed_key_types_ordered_deterministically(self, ctx):
        t = ctx.table_from_rows(["k"], [(10,), ("a",), (2,), ("b",)])
        assert list(t.split_by_key("k")) == [2, 10, "a", "b"]

    def test_split_of_derived_plan(self, trace):
        derived = trace.filter(col("v") > 1).select("s_id", "v")
        groups = derived.split_by_key("s_id")
        assert sorted(groups["wpos"].collect()) == [("wpos", 3), ("wpos", 5)]


class TestSplitCounters:
    def test_one_shuffle_per_split(self, trace):
        metrics = trace.context.executor.metrics
        before = metrics.shuffles
        trace.split_by_key("s_id")
        assert metrics.splits == 1
        assert metrics.shuffles == before + 1
        assert metrics.split_groups == 3
        assert metrics.split_rows == 6

    def test_rows_shuffled_accounted(self, trace):
        metrics = trace.context.executor.metrics
        before = metrics.rows_shuffled
        trace.split_by_key("s_id")
        assert metrics.rows_shuffled == before + 6

    def test_repeated_split_hits_cache(self, trace):
        cached = trace.cache()
        metrics = trace.context.executor.metrics
        cached.split_by_key("s_id")
        cached.split_by_key("s_id")
        assert metrics.splits == 1
        assert metrics.split_cache_hits == 1

    def test_filter_fan_out_costs_one_shuffle(self, trace):
        # The optimizer rewrites each eq-filter over the cached source to
        # a SplitByKey group; the executor's split cache then serves all
        # of them from one routed pass.
        cached = trace.cache()
        metrics = trace.context.executor.metrics
        for value in ("wpos", "wvel", "heat"):
            cached.filter(col("s_id") == value).collect()
        assert metrics.splits == 1
        assert metrics.split_cache_hits == 2

    def test_different_keys_are_separate_splits(self, trace):
        cached = trace.cache()
        metrics = trace.context.executor.metrics
        cached.split_by_key("s_id")
        cached.split_by_key("b_id")
        assert metrics.splits == 2
        assert metrics.split_cache_hits == 0


class TestFilterToSplitRewrite:
    def _source(self, ctx):
        return ctx.table_from_rows(
            ["k", "v"], [("a", 1), ("b", 2), ("a", 3)], num_partitions=2
        )

    def test_eq_filter_on_source_rewritten(self, ctx):
        t = self._source(ctx)
        plan = t.filter(col("k") == "a")._plan
        trace = []
        rewritten = optimize(plan, trace=trace)
        assert isinstance(rewritten, logical.SplitByKey)
        assert rewritten.key == "k"
        assert rewritten.group == "a"
        assert "filter_to_split" in trace

    def test_literal_on_left_also_rewritten(self, ctx):
        t = self._source(ctx)
        plan = t.filter(col("k") == "a")._plan
        assert isinstance(optimize(plan), logical.SplitByKey)

    def test_non_eq_filter_untouched(self, ctx):
        t = self._source(ctx)
        plan = t.filter(col("v") > 1)._plan
        assert isinstance(optimize(plan), logical.Filter)

    def test_nan_literal_not_rewritten(self, ctx):
        t = ctx.table_from_rows(["x"], [(1.0,), (float("nan"),)])
        plan = t.filter(col("x") == float("nan"))._plan
        rewritten = optimize(plan)
        assert isinstance(rewritten, logical.Filter)
        # And the filter semantics hold: NaN != NaN keeps nothing.
        assert t.filter(col("x") == float("nan")).count() == 0

    def test_rewrite_gated_to_source_children(self, ctx):
        t = self._source(ctx)
        plan = t.filter(col("v") > 0).filter(col("k") == "a")._plan
        # The two filters fuse; the fused conjunction is not a pure
        # equality, so no split rewrite fires.
        rewritten = optimize(plan)
        assert isinstance(rewritten, logical.Filter)

    def test_rewrite_preserves_results_exactly(self, ctx):
        t = self._source(ctx)
        filtered = t.filter(col("k") == "a")
        unopt = EngineContext(
            SerialExecutor(default_parallelism=2, optimize_plans=False)
        )
        reference = unopt.table_from_rows(
            ["k", "v"], [("a", 1), ("b", 2), ("a", 3)], num_partitions=2
        ).filter(col("k") == "a")
        assert filtered.collect_partitions() == reference.collect_partitions()

    def test_equality_literal_rejects_unhashable(self):
        from repro.engine.expressions import (
            BoundBinary,
            BoundColumn,
            BoundLiteral,
        )
        from repro.engine.optimizer import _equality_literal

        predicate = BoundBinary("eq", BoundColumn(0), BoundLiteral([1, 2]))
        assert _equality_literal(predicate) is None

    def test_bool_int_collapse_matches_filter(self, ctx):
        # Python's 1 == True means an int-keyed filter also keeps bool
        # rows; the split routes by dict key, which collapses the same
        # way, so the rewrite stays equivalent.
        t = ctx.table_from_rows(["k"], [(1,), (True,), (0,), (False,)])
        assert Counter(t.filter(col("k") == 1).collect()) == Counter(
            [(1,), (True,)]
        )
        groups = t.split_by_key("k")
        assert Counter(groups[1].collect()) == Counter([(1,), (True,)])


class TestSplitFaultInjection:
    def _table(self, executor):
        ctx = EngineContext(executor)
        return ctx.table_from_rows(
            ["k", "v"],
            [("a", i) if i % 2 else ("b", i) for i in range(12)],
            num_partitions=4,
        )

    def test_split_recovers_from_crashes(self):
        clean = self._table(SerialExecutor(default_parallelism=4))
        faulty_exec = SerialExecutor(
            default_parallelism=4,
            fault_policy=FaultPolicy(crash_rate=1.0, crashes_per_task=1),
            retry_backoff=0.0,
        )
        faulty = self._table(faulty_exec)
        expected = {
            k: t.collect_partitions()
            for k, t in clean.split_by_key("k").items()
        }
        actual = {
            k: t.collect_partitions()
            for k, t in faulty.split_by_key("k").items()
        }
        assert actual == expected
        assert faulty_exec.metrics.retries >= 4  # one per routed partition

    def test_poisoned_split_loses_rows(self):
        poisoned_exec = SerialExecutor(
            default_parallelism=4,
            fault_policy=FaultPolicy(poison_rate=1.0),
        )
        poisoned = self._table(poisoned_exec)
        groups = poisoned.split_by_key("k")
        total = sum(t.count() for t in groups.values())
        # Poison drops the last routed pair of each non-empty partition:
        # the corruption is visible in the output, not silently healed.
        assert total == 12 - 4


class TestSplitAcrossCombos:
    @pytest.mark.parametrize(
        "combo",
        DEFAULT_COMBOS + (REFERENCE_COMBO,),
        ids=lambda c: c.name,
    )
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_split_matches_filter_reference(self, combo, seed):
        case, _spec = generate_case(seed)
        executor = combo.build(4)
        try:
            ctx = EngineContext(executor)
            table = build_table(ctx, case)
            groups = table.split_by_key("m_id")
            all_rows = [r for p in case.trace_partitions for r in p]
            expected_keys = sorted({row[1] for row in all_rows})
            assert sorted(groups) == expected_keys
            for value, group_table in groups.items():
                expected = Counter(
                    row for row in all_rows if row[1] == value
                )
                assert Counter(group_table.collect()) == expected
        finally:
            executor.close()
