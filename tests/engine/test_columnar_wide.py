"""Columnar wide stages: broadcast join, split routing and shuffle.

Pins the tentpole invariant of the columnar exchange: wide stages fed
columnar partitions produce exactly the row path's output -- same
bucket assignment (including the ``1 == 1.0 == True`` and NaN
canonicalization that :func:`stable_hash` folds into one bucket), same
intra-partition row order -- and fall back to the row path, counted,
whenever a key column carries non-scalar objects or (for joins) NaN
floats.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext, col
from repro.engine.columnar import ColumnarPartition, concat_partitions
from repro.engine.executor import SerialExecutor
from repro.engine.operations import (
    hash_partition,
    hash_partition_columnar,
)


def _wide_ctx(**overrides):
    kwargs = dict(default_parallelism=4, compile_kernels=True,
                  columnar_kernels=True)
    kwargs.update(overrides)
    return EngineContext(SerialExecutor(**kwargs))


def _canon(rows):
    """Type- and NaN-stable row representation for equality checks."""
    return [tuple((type(v).__name__, repr(v)) for v in row) for row in rows]


# -- bucket-identity property -------------------------------------------------

_cell = st.one_of(
    st.integers(min_value=-(2 ** 60), max_value=2 ** 60),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.booleans(),
    st.text(max_size=4),
    st.binary(max_size=4),
    st.none(),
)


@given(
    rows=st.lists(st.tuples(_cell, _cell, _cell), max_size=40),
    num_buckets=st.integers(min_value=1, max_value=5),
    keys=st.sampled_from([(0,), (1,), (0, 1), (2, 0), ()]),
)
@settings(max_examples=120, deadline=None)
def test_columnar_hash_partition_matches_row_path(rows, num_buckets, keys):
    part = ColumnarPartition.from_rows(rows, 3)
    row_buckets = hash_partition(rows, keys, num_buckets)
    col_buckets = hash_partition_columnar(part, keys, num_buckets)
    assert len(col_buckets) == num_buckets
    for row_bucket, col_bucket in zip(row_buckets, col_buckets):
        # Bucket-for-bucket and row-for-row, order included.
        assert _canon(col_bucket.to_rows()) == _canon(row_bucket)


class TestBucketCanonicalization:
    def test_equal_numbers_share_a_bucket(self):
        # 1 == 1.0 == True under stable_hash, so the row and columnar
        # paths must agree on their shared bucket even though the
        # columnar layout stores them in differently-typed columns.
        rows = [(1, "a"), (1.0, "b"), (True, "c")]
        part = ColumnarPartition.from_rows(rows, 2)
        for buckets in (
            hash_partition(rows, (0,), 7),
            hash_partition_columnar(part, (0,), 7),
        ):
            occupied = [i for i, b in enumerate(buckets) if len(b)]
            assert len(occupied) == 1
        row_occupied = [
            i for i, b in enumerate(hash_partition(rows, (0,), 7)) if b
        ]
        col_occupied = [
            i
            for i, b in enumerate(hash_partition_columnar(part, (0,), 7))
            if len(b)
        ]
        assert row_occupied == col_occupied

    def test_nan_keys_share_the_canonical_bucket(self):
        # Distinct NaN objects hash identically under stable_hash; the
        # columnar gather materializes fresh floats, which must not
        # change the bucket.
        rows = [(float("nan"), 1), (math.nan, 2), (float("nan") * -1, 3)]
        part = ColumnarPartition.from_rows(rows, 2)
        row_buckets = hash_partition(rows, (0,), 5)
        col_buckets = hash_partition_columnar(part, (0,), 5)
        for buckets in (row_buckets, col_buckets):
            sizes = [len(b) for b in buckets]
            assert sorted(sizes) == [0, 0, 0, 0, 3]
        assert [len(b) for b in row_buckets] == [
            len(b) for b in col_buckets
        ]


# -- end-to-end wide pipeline -------------------------------------------------

_TRACE = [(i % 7, i % 3, float(i)) for i in range(60)]
_RULES = [(k, "rule-{}".format(k)) for k in range(5)]


def _wide_pipeline(ctx):
    """filter -> broadcast join -> keyed repartition -> split_by_key."""
    trace = ctx.table_from_rows(["k", "g", "v"], _TRACE, num_partitions=4)
    rules = ctx.table_from_rows(["k", "r"], _RULES, num_partitions=2)
    joined = (
        trace.filter(col("v") >= 3.0)
        .join(rules, on=["k"], how="inner")
        .repartition(3, keys=["g"])
    )
    groups = joined.split_by_key("g")
    return joined, groups


class TestWidePipelineParity:
    def test_columnar_wide_matches_row_and_interpreted(self):
        outputs = {}
        for name, ctx in (
            ("wide", _wide_ctx()),
            ("narrow", _wide_ctx(columnar_exchange=False)),
            ("interpreted", _wide_ctx(compile_kernels=False,
                                      columnar_kernels=False)),
        ):
            with ctx:
                joined, groups = _wide_pipeline(ctx)
                outputs[name] = (
                    sorted(_canon(joined.collect())),
                    {g: _canon(t.collect()) for g, t in groups.items()},
                )
        assert outputs["wide"] == outputs["narrow"] == outputs["interpreted"]

    def test_broadcast_join_order_is_identical_to_row_path(self):
        # Not just multiset equality: the columnar join scans left rows
        # in order and appends matches exactly like the row task, so
        # even unsorted collects agree row-for-row.
        with _wide_ctx() as wide, _wide_ctx(columnar_exchange=False) as row:
            wide_rows = _wide_pipeline(wide)[0].collect()
            row_rows = _wide_pipeline(row)[0].collect()
        assert _canon(wide_rows) == _canon(row_rows)

    def test_left_join_parity_with_unmatched_rows(self):
        results = {}
        for name, ctx in (
            ("wide", _wide_ctx()),
            ("narrow", _wide_ctx(columnar_exchange=False)),
        ):
            with ctx:
                left = ctx.table_from_rows(
                    ["k", "v"], [(i % 9, i) for i in range(30)],
                    num_partitions=3,
                )
                right = ctx.table_from_rows(
                    ["k", "r"], _RULES, num_partitions=1
                )
                results[name] = _canon(
                    left.filter(col("v") >= 0)
                    .join(right, on=["k"], how="left")
                    .collect()
                )
        assert results["wide"] == results["narrow"]


# -- counters and fallbacks ---------------------------------------------------

class TestExchangeCounters:
    def test_wide_run_counts_join_shuffle_and_bytes(self):
        with _wide_ctx() as ctx:
            joined, groups = _wide_pipeline(ctx)
            joined.collect()
            for table in groups.values():
                table.collect()
            metrics = ctx.executor.metrics
            assert metrics.columnar_join_tasks > 0
            assert metrics.columnar_shuffle_tasks > 0
            assert metrics.columnar_exchange_bytes > 0
            counters = ctx.executor.obs.counters()
            assert counters["executor.columnar_join_tasks"] == (
                metrics.columnar_join_tasks
            )
            assert counters["executor.columnar_shuffle_tasks"] == (
                metrics.columnar_shuffle_tasks
            )
            assert counters["executor.columnar_exchange_bytes"] == (
                metrics.columnar_exchange_bytes
            )

    def test_exchange_off_counts_nothing(self):
        with _wide_ctx(columnar_exchange=False) as ctx:
            joined, _groups = _wide_pipeline(ctx)
            joined.collect()
            metrics = ctx.executor.metrics
            assert metrics.columnar_join_tasks == 0
            assert metrics.columnar_shuffle_tasks == 0
            assert metrics.columnar_exchange_bytes == 0

    def test_fresh_executor_reports_zeroed_counters(self):
        with _wide_ctx() as ctx:
            metrics = ctx.executor.metrics
            assert metrics.columnar_join_tasks == 0
            assert metrics.columnar_shuffle_tasks == 0
            assert metrics.columnar_exchange_bytes == 0


class TestRowFallbacks:
    def test_object_typed_key_column_falls_back(self):
        # Tuple-valued keys are outside the scalar cell set: the join
        # must take the row path (results still correct) and count the
        # fallback.
        with _wide_ctx() as ctx:
            left = ctx.table_from_rows(
                ["k", "v"], [((i % 3, "x"), i) for i in range(20)],
                num_partitions=2,
            )
            right = ctx.table_from_rows(
                ["k", "r"], [((i, "x"), "r{}".format(i)) for i in range(3)],
                num_partitions=1,
            )
            out = (
                left.filter(col("v") >= 0)
                .join(right, on=["k"], how="inner")
                .collect()
            )
            assert len(out) == 20
            metrics = ctx.executor.metrics
            assert metrics.columnar_join_tasks == 0
            assert ctx.executor.obs.counters().get(
                "executor.columnar_fallbacks", 0
            ) > 0

    def test_nan_join_keys_fall_back_and_match_reference(self):
        # NaN probe keys are object-identity dependent in the row dict
        # join; the columnar path must refuse them rather than silently
        # matching fresh floats differently.
        rows = [(float("nan"), 1), (2.0, 2), (3.0, 3)]
        results = {}
        for name, ctx in (
            ("wide", _wide_ctx()),
            ("interpreted", _wide_ctx(compile_kernels=False,
                                      columnar_kernels=False)),
        ):
            with ctx:
                left = ctx.table_from_rows(
                    ["k", "v"], rows, num_partitions=1
                )
                right = ctx.table_from_rows(
                    ["k", "r"], [(2.0, "a"), (3.0, "b")], num_partitions=1
                )
                results[name] = sorted(
                    _canon(
                        left.filter(col("v") >= 0)
                        .join(right, on=["k"], how="inner")
                        .collect()
                    )
                )
                if name == "wide":
                    assert ctx.executor.metrics.columnar_join_tasks == 0
        assert results["wide"] == results["interpreted"]

    def test_mixed_layout_repartition_falls_back(self):
        with _wide_ctx() as ctx:
            # A union of a columnar narrow chain and a bare row source
            # produces mixed-layout partitions; the shuffle must fall
            # back whole rather than bucket half columnar.
            a = ctx.table_from_rows(
                ["k", "v"], [(i % 4, i) for i in range(12)],
                num_partitions=2,
            ).filter(col("v") >= 0)
            b = ctx.table_from_rows(
                ["k", "v"], [(i % 4, -i) for i in range(1, 9)],
                num_partitions=2,
            )
            out = a.union(b).repartition(3, keys=["k"]).collect()
            assert len(out) == 20
            assert ctx.executor.metrics.columnar_shuffle_tasks == 0
            assert ctx.executor.obs.counters().get(
                "executor.columnar_fallbacks", 0
            ) > 0


# -- layout survives exchange -------------------------------------------------

class TestColumnarFlow:
    def test_split_groups_arrive_columnar(self):
        with _wide_ctx() as ctx:
            trace = ctx.table_from_rows(
                ["g", "v"], [(i % 3, float(i)) for i in range(24)],
                num_partitions=4,
            )
            groups = trace.filter(col("v") >= 0.0).split_by_key("g")
            for table in groups.values():
                parts = ctx.executor._execute_partitions(table._plan)
                assert parts, "split group lost its partitions"
                assert all(
                    isinstance(p, ColumnarPartition) for p in parts
                )

    def test_concat_preserves_typed_columns(self):
        parts = [
            ColumnarPartition.from_rows(
                [(i, float(i), b"x" * i) for i in range(j, j + 3)], 3
            )
            for j in range(0, 9, 3)
        ]
        merged = concat_partitions(parts, 3)
        assert len(merged) == 9
        assert merged.to_rows() == [
            (i, float(i), b"x" * i) for i in range(9)
        ]
        # Typed buffers stay typed through the concat.
        assert getattr(merged.column(0), "typecode", None) == "q"
        assert getattr(merged.column(1), "typecode", None) == "d"

    def test_multiprocessing_executor_runs_wide_columnar(self):
        pytest.importorskip("multiprocessing")
        from repro.engine.executor import MultiprocessingExecutor

        with EngineContext(
            MultiprocessingExecutor(
                num_workers=2, default_parallelism=4, retry_backoff=0.0
            )
        ) as ctx:
            joined, _groups = _wide_pipeline(ctx)
            rows = joined.collect()
            assert ctx.executor.metrics.columnar_join_tasks > 0
        with _wide_ctx(compile_kernels=False,
                       columnar_kernels=False) as ref_ctx:
            expected = _wide_pipeline(ref_ctx)[0].collect()
        assert sorted(_canon(rows)) == sorted(_canon(expected))
