"""Joins and grouped aggregation, including the shuffle paths."""

import pytest

from repro.engine import EngineContext, PlanError, SchemaError, aggregates, col
from repro.engine.executor import BROADCAST_THRESHOLD


@pytest.fixture
def left(ctx):
    return ctx.table_from_rows(
        ["t", "m_id", "b_id"],
        [(float(i), i % 3, "FC") for i in range(12)],
    )


@pytest.fixture
def rules(ctx):
    return ctx.table_from_rows(
        ["m_id", "rule"], [(0, "r0"), (1, "r1")]
    )


class TestInnerJoin:
    def test_matches_only(self, left, rules):
        out = left.join(rules, on="m_id")
        assert out.count() == 8  # m_id 0 and 1 each appear 4 times

    def test_output_columns(self, left, rules):
        out = left.join(rules, on="m_id")
        assert out.columns == ["t", "m_id", "b_id", "rule"]

    def test_multi_key_join(self, ctx):
        a = ctx.table_from_rows(
            ["m_id", "b_id", "x"], [(1, "FC", 10), (1, "BC", 20)]
        )
        b = ctx.table_from_rows(
            ["m_id", "b_id", "y"], [(1, "FC", 99)]
        )
        out = a.join(b, on=["m_id", "b_id"]).collect()
        assert out == [(1, "FC", 10, 99)]

    def test_one_to_many_replication(self, ctx):
        trace = ctx.table_from_rows(["m_id", "x"], [(1, "a"), (1, "b")])
        catalog = ctx.table_from_rows(
            ["m_id", "s_id"], [(1, "s1"), (1, "s2")]
        )
        out = trace.join(catalog, on="m_id")
        # Every trace row replicated once per rule -- the interpretation
        # join of Algorithm 1 line 4.
        assert out.count() == 4


class TestLeftJoin:
    def test_unmatched_rows_get_none(self, left, rules):
        out = left.join(rules, on="m_id", how="left")
        assert out.count() == 12
        unmatched = [r for r in out.collect() if r[1] == 2]
        assert all(r[3] is None for r in unmatched)


class TestJoinValidation:
    def test_unknown_key_raises(self, left, rules):
        with pytest.raises(SchemaError):
            left.join(rules, on="nope")

    def test_overlapping_value_columns_raise(self, ctx):
        a = ctx.table_from_rows(["k", "v"], [(1, 2)])
        b = ctx.table_from_rows(["k", "v"], [(1, 3)])
        with pytest.raises(SchemaError):
            a.join(b, on="k")

    def test_unsupported_how_raises(self, left, rules):
        with pytest.raises(PlanError):
            left.join(rules, on="m_id", how="outer")

    def test_cross_context_join_raises(self, left):
        other = EngineContext.serial().table_from_rows(["m_id"], [(1,)])
        with pytest.raises(PlanError):
            left.join(other, on="m_id")


class TestShuffleJoin:
    def test_large_right_side_uses_shuffle(self, ctx):
        n = BROADCAST_THRESHOLD + 10
        a = ctx.table_from_rows(["k", "x"], [(i % 50, i) for i in range(200)])
        b = ctx.table_from_rows(["k", "y"], [(i % 50, -i) for i in range(n)])
        before = ctx.executor.metrics.shuffles
        out = a.join(b, on="k")
        expected = sum(1 for i in range(200) for j in range(n) if i % 50 == j % 50)
        assert out.count() == expected
        assert ctx.executor.metrics.shuffles > before

    def test_small_right_side_broadcasts(self, ctx):
        a = ctx.table_from_rows(["k"], [(i,) for i in range(10)])
        b = ctx.table_from_rows(["k", "v"], [(1, "x")])
        before = ctx.executor.metrics.broadcast_joins
        a.join(b, on="k").collect()
        assert ctx.executor.metrics.broadcast_joins == before + 1


class TestGroupBy:
    def test_count_per_group(self, left):
        out = dict(
            (k, n)
            for k, n in left.group_by("m_id")
            .agg(("n", aggregates.Count(), None))
            .collect()
        )
        assert out == {0: 4, 1: 4, 2: 4}

    def test_multiple_aggregates(self, left):
        rows = left.group_by("m_id").agg(
            ("n", aggregates.Count(), None),
            ("t_max", aggregates.Max(), "t"),
            ("t_min", aggregates.Min(), "t"),
            ("t_sum", aggregates.Sum(), "t"),
        )
        row = dict((r[0], r[1:]) for r in rows.collect())[0]
        assert row == (4, 9.0, 0.0, 18.0)

    def test_mean(self, ctx):
        t = ctx.table_from_rows(["g", "v"], [(1, 2.0), (1, 4.0)])
        out = t.group_by("g").agg(("m", aggregates.Mean(), "v")).collect()
        assert out == [(1, 3.0)]

    def test_first_last_follow_order(self, ctx):
        t = ctx.table_from_rows(
            ["g", "v"], [(1, "a"), (1, "b"), (1, "c")], num_partitions=1
        )
        out = t.group_by("g").agg(
            ("first", aggregates.First(), "v"),
            ("last", aggregates.Last(), "v"),
        )
        assert out.collect() == [(1, "a", "c")]

    def test_collect_list(self, ctx):
        t = ctx.table_from_rows(["g", "v"], [(1, 5), (1, 7)], num_partitions=1)
        out = t.group_by("g").agg(("vs", aggregates.CollectList(), "v"))
        assert out.collect() == [(1, [5, 7])]

    def test_count_distinct(self, ctx):
        t = ctx.table_from_rows(["g", "v"], [(1, 5), (1, 5), (1, 7)])
        out = t.group_by("g").agg(("d", aggregates.CountDistinct(), "v"))
        assert out.collect() == [(1, 2)]

    def test_global_aggregation_without_keys(self, left):
        out = left.group_by().agg(("n", aggregates.Count(), None)).collect()
        assert out == [(12,)]

    def test_multi_key_grouping(self, ctx):
        t = ctx.table_from_rows(
            ["a", "b", "v"],
            [(1, "x", 1), (1, "x", 2), (1, "y", 3)],
        )
        out = sorted(
            t.group_by("a", "b").agg(("n", aggregates.Count(), None)).collect()
        )
        assert out == [(1, "x", 2), (1, "y", 1)]

    def test_agg_requires_specs(self, left):
        with pytest.raises(PlanError):
            left.group_by("m_id").agg()

    def test_unknown_group_key_raises(self, left):
        with pytest.raises(SchemaError):
            left.group_by("nope")

    def test_results_deterministic_across_runs(self, left):
        spec = ("n", aggregates.Count(), None)
        a = left.group_by("m_id").agg(spec).collect()
        b = left.group_by("m_id").agg(spec).collect()
        assert a == b


class TestAggregateMergeProtocol:
    """Partial-aggregate merge must match single-pass results."""

    @pytest.mark.parametrize(
        "agg, values, expected",
        [
            (aggregates.Count(), [1, 2, 3], 3),
            (aggregates.Sum(), [1, 2, 3], 6),
            (aggregates.Min(), [3, 1, 2], 1),
            (aggregates.Max(), [3, 1, 2], 3),
            (aggregates.Mean(), [1.0, 2.0, 6.0], 3.0),
            (aggregates.CountDistinct(), [1, 1, 2], 2),
        ],
    )
    def test_split_merge_equals_sequential(self, agg, values, expected):
        sequential = agg.initial()
        for v in values:
            sequential = agg.update(sequential, v)
        left = agg.initial()
        right = agg.initial()
        for v in values[:1]:
            left = agg.update(left, v)
        for v in values[1:]:
            right = agg.update(right, v)
        merged = agg.merge(left, right)
        assert agg.finish(merged) == agg.finish(sequential) == expected
