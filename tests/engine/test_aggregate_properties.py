"""Property tests: every aggregate satisfies the distributed fold contract.

The engine's partial aggregation relies on initialize/update/merge/finish
behaving like a monoid fold over ordered chunks: splitting a value
sequence into consecutive chunks, folding each chunk independently and
merging the partials in chunk order must equal a single pass. For the
order-insensitive aggregates, merging in *any* order must also agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import aggregates

ALL_AGGREGATES = (
    aggregates.Count(),
    aggregates.Sum(),
    aggregates.Min(),
    aggregates.Max(),
    aggregates.Mean(),
    aggregates.First(),
    aggregates.Last(),
    aggregates.CollectList(),
    aggregates.CountDistinct(),
)

#: Aggregates whose merge is commutative (partial arrival order free).
COMMUTATIVE = (
    aggregates.Count(),
    aggregates.Sum(),
    aggregates.Min(),
    aggregates.Max(),
    aggregates.Mean(),
    aggregates.CountDistinct(),
)

values_strategy = st.lists(st.integers(-50, 50), max_size=40)
cuts_strategy = st.lists(st.integers(0, 1_000_000), max_size=6)


def _single_pass(agg, values):
    acc = agg.initial()
    for value in values:
        acc = agg.update(acc, value)
    return agg.finish(acc)


def _chunks(values, cuts):
    """Split *values* at the (normalized) cut offsets, keeping order.

    Cut positions are reduced modulo ``len(values) + 1`` so hypothesis
    can draw them independently of the list length; duplicate and
    boundary cuts produce empty chunks on purpose -- empty partitions
    are exactly the edge case partial aggregation must survive.
    """
    n = len(values)
    positions = sorted({c % (n + 1) for c in cuts})
    bounds = [0] + positions + [n]
    return [values[a:b] for a, b in zip(bounds, bounds[1:])]


def _fold_chunk(agg, chunk):
    acc = agg.initial()
    for value in chunk:
        acc = agg.update(acc, value)
    return acc


@pytest.mark.parametrize(
    "agg", ALL_AGGREGATES, ids=lambda a: type(a).__name__
)
class TestSplitMergeEquivalence:
    @given(values=values_strategy, cuts=cuts_strategy)
    @settings(max_examples=60, deadline=None)
    def test_any_split_order_equals_single_pass(self, agg, values, cuts):
        partials = [_fold_chunk(agg, c) for c in _chunks(values, cuts)]
        merged = partials[0]
        for partial in partials[1:]:
            merged = agg.merge(merged, partial)
        assert agg.finish(merged) == _single_pass(agg, values)

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_merging_initial_is_identity(self, agg, values):
        acc = _fold_chunk(agg, values)
        assert agg.finish(agg.merge(acc, agg.initial())) == agg.finish(acc)
        assert agg.finish(agg.merge(agg.initial(), acc)) == agg.finish(acc)

    def test_empty_input_matches_merged_empties(self, agg):
        merged = agg.merge(agg.initial(), agg.initial())
        assert agg.finish(merged) == _single_pass(agg, [])


@pytest.mark.parametrize(
    "agg", COMMUTATIVE, ids=lambda a: type(a).__name__
)
class TestCommutativeMerge:
    @given(values=values_strategy, cuts=cuts_strategy)
    @settings(max_examples=60, deadline=None)
    def test_reversed_merge_order_agrees(self, agg, values, cuts):
        partials = [_fold_chunk(agg, c) for c in _chunks(values, cuts)]
        forward = partials[0]
        for partial in partials[1:]:
            forward = agg.merge(forward, partial)
        backward = partials[-1]
        for partial in reversed(partials[:-1]):
            backward = agg.merge(backward, partial)
        assert agg.finish(forward) == agg.finish(backward)


class TestOrderSensitiveSemantics:
    """First/Last/CollectList depend on order -- pin the exact contract."""

    @given(values=st.lists(st.integers(), min_size=1, max_size=20),
           cuts=cuts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_first_and_last_across_chunks(self, values, cuts):
        for agg, expected in (
            (aggregates.First(), values[0]),
            (aggregates.Last(), values[-1]),
        ):
            partials = [
                _fold_chunk(agg, c) for c in _chunks(values, cuts)
            ]
            merged = partials[0]
            for partial in partials[1:]:
                merged = agg.merge(merged, partial)
            assert agg.finish(merged) == expected

    @given(values=values_strategy, cuts=cuts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_collect_list_preserves_order(self, values, cuts):
        agg = aggregates.CollectList()
        partials = [_fold_chunk(agg, c) for c in _chunks(values, cuts)]
        merged = partials[0]
        for partial in partials[1:]:
            merged = agg.merge(merged, partial)
        assert agg.finish(merged) == values


class TestMeanExactness:
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=30),
           cuts=cuts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_mean_matches_arithmetic(self, values, cuts):
        agg = aggregates.Mean()
        partials = [_fold_chunk(agg, c) for c in _chunks(values, cuts)]
        merged = partials[0]
        for partial in partials[1:]:
            merged = agg.merge(merged, partial)
        assert agg.finish(merged) == pytest.approx(
            sum(values) / len(values)
        )
