"""Shuffle-bucketing determinism and sort-path equivalence.

``hash_partition`` must place a row in the same bucket in every
interpreter run and worker process: the builtin :func:`hash` is salted
per run for strings (``PYTHONHASHSEED``), which silently broke that
contract for string shuffle keys. The regression test here runs the
same group-by under two different hash seeds in subprocesses and
demands byte-identical output.
"""

import math
import random
import subprocess
import sys

import pytest

from repro.engine.operations import (
    SortPartitionTask,
    hash_partition,
    stable_hash,
)

NAN = float("nan")


class TestStableHash:
    def test_equal_values_hash_equal_across_numeric_types(self):
        # Bucket joins rely on hash(k1) == hash(k2) whenever k1 == k2.
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)
        assert stable_hash((1, "a")) == stable_hash((1.0, "a"))

    def test_distinct_values_usually_differ(self):
        values = [None, 0, 1, -1, 2.5, "a", "b", b"a", (1, 2), ("1", 2),
                  NAN, math.inf, -math.inf, ("a",), "a\x00b"]
        hashes = [stable_hash(v) for v in values]
        assert len(set(hashes)) == len(hashes)

    def test_nan_is_canonical(self):
        assert stable_hash(NAN) == stable_hash(float("nan"))
        assert stable_hash((NAN, 1)) == stable_hash((float("nan"), 1))

    def test_type_tags_prevent_cross_type_collisions(self):
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(b"x") != stable_hash("x")
        assert stable_hash(("a", "b")) != stable_hash(("a,b",))

    def test_hash_partition_routes_equal_keys_together(self):
        rows = [(1, "x"), (1.0, "y"), (True, "z"), (2, "w")]
        buckets = hash_partition(rows, (0,), 16)
        populated = [b for b in buckets if b]
        by_bucket = {id(b): [r[1] for r in b] for b in populated}
        merged = sorted(v for vals in by_bucket.values() for v in vals)
        assert merged == ["w", "x", "y", "z"]
        for bucket in populated:
            keys = {1.0 if r[0] == 1 else r[0] for r in bucket}
            assert len(keys) == 1


_GROUPBY_SCRIPT = """
import sys
from repro.engine import EngineContext, aggregates, col
from repro.engine.executor import SerialExecutor

rows = [("id%d" % (i % 17), i % 5, float(i)) for i in range(500)]
with SerialExecutor(default_parallelism=7) as executor:
    ctx = EngineContext(executor)
    t = ctx.table_from_rows(["name", "m", "v"], rows)
    out = t.group_by("name", "m").agg(
        ("total", aggregates.Sum(), "v")
    ).collect()
for row in out:
    sys.stdout.write(repr(row) + "\\n")
"""


class TestHashSeedRegression:
    @pytest.mark.parametrize("seeds", [("0", "1"), ("0", "12345")])
    def test_group_by_identical_across_hash_seeds(self, seeds):
        outputs = []
        for seed in seeds:
            proc = subprocess.run(
                [sys.executable, "-c", _GROUPBY_SCRIPT],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd="/root/repo",
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].count("\n") == 17 * 5

    def test_hash_partition_layout_identical_across_hash_seeds(self):
        script = (
            "from repro.engine.operations import hash_partition;"
            "rows=[('k%d'%i, i) for i in range(100)];"
            "print(hash_partition(rows,(0,),8))"
        )
        outputs = []
        for seed in ("0", "7"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd="/root/repo",
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


def _multi_pass_reference(rows, key_indices, ascending):
    """The pre-optimization k-pass stable sort, kept as the oracle."""
    ordered = list(rows)
    for idx, asc in reversed(list(zip(key_indices, ascending))):
        ordered.sort(key=lambda r, i=idx: r[i], reverse=not asc)
    return ordered


class TestSortSinglePass:
    @pytest.mark.parametrize("keys,directions", [
        ((0,), (True,)),
        ((1, 0), (True, True)),
        ((2, 0, 1), (True, True, True)),
    ])
    def test_all_ascending_matches_multi_pass(self, keys, directions):
        rng = random.Random(11)
        rows = [
            (rng.randrange(5), rng.randrange(3), rng.random())
            for _ in range(200)
        ]
        task = SortPartitionTask(keys, directions)
        assert task(rows) == _multi_pass_reference(rows, keys, directions)

    def test_mixed_directions_still_correct(self):
        rng = random.Random(13)
        rows = [(rng.randrange(4), rng.randrange(4)) for _ in range(100)]
        task = SortPartitionTask((0, 1), (True, False))
        out = task(rows)
        assert out == _multi_pass_reference(rows, (0, 1), (True, False))
        assert out == sorted(rows, key=lambda r: (r[0], -r[1]))

    def test_single_pass_is_stable(self):
        # Ties keep input order, exactly like the stable multi-pass.
        rows = [(1, "a"), (0, "b"), (1, "c"), (0, "d"), (1, "e")]
        task = SortPartitionTask((0,), (True,))
        assert task(rows) == [(0, "b"), (0, "d"), (1, "a"), (1, "c"), (1, "e")]

    def test_empty_keys_is_identity(self):
        rows = [(3,), (1,), (2,)]
        assert SortPartitionTask((), ())(rows) == rows
