"""Fault injection and retry: executors must survive worker failures.

The acceptance bar from the harness issue: with a 20% injected
task-failure rate, MultiprocessingExecutor retries and produces output
identical to SerialExecutor; exhausted retries surface a structured
TaskError naming the stage and partition.
"""

import pytest

from repro.engine import EngineContext, TaskError, aggregates, col
from repro.engine.errors import EngineError, ExecutionError, InjectedFaultError
from repro.engine.executor import (
    FaultPolicy,
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)
from repro.testing import apply_spec, generate_case


def _workload(ctx):
    trace = ctx.table_from_rows(
        ["t", "m_id", "v"],
        [(float(i), i % 5, (i * 7) % 11) for i in range(400)],
        num_partitions=8,
    )
    rules = ctx.table_from_rows(["m_id", "scale"], [(m, m + 1) for m in range(5)])
    return (
        trace.filter(col("v") > 1)
        .join(rules, on="m_id")
        .with_column("scaled", col("v") * col("scale"))
        .group_by("m_id")
        .agg(
            ("n", aggregates.Count(), None),
            ("total", aggregates.Sum(), "scaled"),
        )
        .sort("m_id")
    )


class TestFaultPolicy:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPolicy(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(crash_rate=0.5, crashes_per_task=0)

    def test_decisions_are_deterministic(self):
        policy = FaultPolicy(crash_rate=0.5, seed=42)
        first = [policy.crashes_for("s", i) for i in range(50)]
        second = [policy.crashes_for("s", i) for i in range(50)]
        assert first == second

    def test_rate_roughly_honoured(self):
        policy = FaultPolicy(crash_rate=0.2, seed=7)
        crashed = sum(
            1 for i in range(1000) if policy.crashes_for("stage", i)
        )
        assert 120 <= crashed <= 280

    def test_zero_rate_never_crashes(self):
        policy = FaultPolicy(crash_rate=0.0, seed=1)
        assert all(
            policy.crashes_for("s", i) == 0 for i in range(100)
        )

    def test_crash_raises_injected_fault(self):
        policy = FaultPolicy(crash_rate=1.0, seed=0)
        with pytest.raises(InjectedFaultError):
            policy.run("s", 0, 0, lambda x: x, [1])

    def test_crash_clears_after_budget(self):
        policy = FaultPolicy(crash_rate=1.0, seed=0, crashes_per_task=2)
        with pytest.raises(InjectedFaultError):
            policy.run("s", 0, 1, list, (1,))
        assert policy.run("s", 0, 2, list, (1,)) == [1]

    def test_poison_corrupts_list_output(self):
        policy = FaultPolicy(poison_rate=1.0, seed=0)
        assert policy.run("s", 0, 0, list, (1, 2, 3)) == [1, 2]


class TestMultiprocessingFaultEquivalence:
    def test_twenty_percent_failures_identical_output(self):
        expected = _workload(EngineContext.serial(default_parallelism=4)).collect()
        policy = FaultPolicy(crash_rate=0.2, seed=11)
        executor = MultiprocessingExecutor(
            num_workers=2, default_parallelism=4,
            fault_policy=policy, retry_backoff=0.0,
        )
        with EngineContext(executor) as ctx:
            actual = _workload(ctx).collect()
            assert actual == expected
            # The 20% rate must actually have fired somewhere.
            assert executor.metrics.retries > 0

    def test_fuzz_cases_identical_under_faults(self):
        policy = FaultPolicy(crash_rate=0.2, seed=5)
        executor = MultiprocessingExecutor(
            num_workers=2, default_parallelism=4,
            fault_policy=policy, retry_backoff=0.0,
        )
        with EngineContext(executor) as faulty:
            reference = EngineContext.serial(default_parallelism=4)
            for seed in range(6):
                case, spec = generate_case(seed)
                expected = sorted(
                    map(repr, apply_spec(reference, case, spec).collect())
                )
                actual = sorted(
                    map(repr, apply_spec(faulty, case, spec).collect())
                )
                assert actual == expected, "seed {}".format(seed)


class TestRetryExhaustion:
    def test_structured_task_error_names_stage_and_partition(self):
        policy = FaultPolicy(crash_rate=1.0, seed=1, crashes_per_task=10)
        executor = MultiprocessingExecutor(
            num_workers=2, default_parallelism=4,
            fault_policy=policy, max_task_retries=1, retry_backoff=0.0,
        )
        with EngineContext(executor) as ctx:
            with pytest.raises(TaskError) as excinfo:
                _workload(ctx).collect()
        error = excinfo.value
        assert isinstance(error, EngineError)
        assert error.stage is not None
        assert error.partition is not None
        assert error.attempts == 2
        assert error.stage.split("[")[0] in (
            "narrow", "broadcast-join", "bucket-join", "group-by",
            "sort", "sorted-map",
        )
        assert str(error.partition) in str(error)

    def test_serial_executor_also_retries_and_exhausts(self):
        policy = FaultPolicy(crash_rate=1.0, seed=2, crashes_per_task=10)
        executor = SerialExecutor(
            fault_policy=policy, max_task_retries=2, retry_backoff=0.0
        )
        with EngineContext(executor) as ctx:
            with pytest.raises(TaskError) as excinfo:
                ctx.table_from_rows(["x"], [(1,), (2,)]).filter(
                    col("x") > 0
                ).collect()
        assert excinfo.value.attempts == 3
        assert executor.metrics.retries == 2

    def test_serial_recovers_within_retry_budget(self):
        policy = FaultPolicy(crash_rate=1.0, seed=3, crashes_per_task=2)
        executor = SerialExecutor(
            fault_policy=policy, max_task_retries=2, retry_backoff=0.0
        )
        with EngineContext(executor) as ctx:
            t = ctx.table_from_rows(["x"], [(i,) for i in range(10)])
            assert t.filter(col("x") >= 0).count() == 10
        assert executor.metrics.retries > 0

    def test_simulated_cluster_supports_faults(self):
        policy = FaultPolicy(crash_rate=0.3, seed=4)
        executor = SimulatedClusterExecutor(
            num_workers=4, fault_policy=policy, retry_backoff=0.0
        )
        with EngineContext(executor) as ctx:
            expected = _workload(
                EngineContext.serial(default_parallelism=4)
            ).collect()
            assert _workload(ctx).collect() == expected

    def test_genuine_errors_not_retried_serially(self):
        executor = SerialExecutor(max_task_retries=5, retry_backoff=0.0)
        calls = []

        def boom(rows):
            calls.append(1)
            raise RuntimeError("deterministic bug")

        with EngineContext(executor) as ctx:
            with pytest.raises(ExecutionError):
                ctx.table_from_rows(["x"], [(1,)]).map_partitions(
                    boom
                ).collect()
        # A deterministic bug must fail fast, not burn the retry budget.
        assert len(calls) == 1


class TestDelayInjection:
    def test_delays_do_not_change_results(self):
        policy = FaultPolicy(delay_rate=0.5, delay_seconds=0.001, seed=6)
        executor = SerialExecutor(fault_policy=policy, retry_backoff=0.0)
        with EngineContext(executor) as ctx:
            t = ctx.table_from_rows(
                ["x"], [(i,) for i in range(20)], num_partitions=4
            )
            assert sorted(t.filter(col("x") < 10).collect()) == [
                (i,) for i in range(10)
            ]
