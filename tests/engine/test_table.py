"""Table transformations and actions on the serial executor."""

import pytest

from repro.engine import EngineContext, PlanError, SchemaError, col
from repro.engine.expressions import apply


@pytest.fixture
def table(ctx):
    return ctx.table_from_rows(
        ["t", "m_id", "b_id"],
        [(float(i), i % 3, "FC" if i % 2 else "BC") for i in range(30)],
    )


class TestConstruction:
    def test_from_rows_counts(self, table):
        assert table.count() == 30

    def test_from_dicts(self, ctx):
        t = ctx.table_from_dicts(
            [{"a": 1, "b": 2}, {"a": 3, "b": 4}], columns=["b", "a"]
        )
        assert t.collect() == [(2, 1), (4, 3)]

    def test_from_rows_respects_partition_count(self, ctx):
        t = ctx.table_from_rows(["x"], [(i,) for i in range(10)], num_partitions=4)
        assert len(t.collect_partitions()) == 4

    def test_empty_table(self, ctx):
        t = ctx.empty_table(["a", "b"])
        assert t.count() == 0
        assert t.columns == ["a", "b"]

    def test_row_width_mismatch_raises(self, ctx):
        with pytest.raises(PlanError):
            ctx.table_from_rows(["a", "b"], [(1,)])

    def test_ragged_row_deep_in_input_raises(self, ctx):
        # Regression: only rows[:1] used to be validated, so a ragged
        # row past the first surfaced later as an opaque IndexError.
        rows = [(i, i) for i in range(50)] + [(99,)]
        with pytest.raises(PlanError):
            ctx.table_from_rows(["a", "b"], rows)

    def test_ragged_row_error_names_the_row(self, ctx):
        with pytest.raises(PlanError, match="row 2"):
            ctx.table_from_rows(["a", "b"], [(1, 2), (3, 4), (5, 6, 7)])


class TestNarrowOps:
    def test_filter(self, table):
        assert table.filter(col("m_id") == 0).count() == 10

    def test_filter_chain(self, table):
        out = table.filter(col("m_id") == 0).filter(col("b_id") == "BC")
        assert out.count() == 5

    def test_where_alias(self, table):
        assert table.where(col("t") < 5).count() == 5

    def test_select_projects_and_reorders(self, table):
        out = table.select("b_id", "t")
        assert out.columns == ["b_id", "t"]
        assert out.first() == ("BC", 0.0)

    def test_drop(self, table):
        assert table.drop("m_id").columns == ["t", "b_id"]

    def test_rename(self, table):
        out = table.rename({"m_id": "message"})
        assert out.columns == ["t", "message", "b_id"]
        assert out.filter(col("message") == 1).count() == 10

    def test_with_column_appends(self, table):
        out = table.with_column("t2", col("t") * 2)
        assert out.columns[-1] == "t2"
        assert out.first()[-1] == 0.0

    def test_with_column_replaces_existing(self, table):
        out = table.with_column("t", col("t") + 100)
        assert out.first()[0] == 100.0
        assert out.columns == table.columns

    def test_with_column_requires_expression(self, table):
        with pytest.raises(PlanError):
            table.with_column("x", 5)

    def test_flat_map(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (2,)])
        out = t.flat_map(_duplicate_row, ["x", "copy"])
        assert sorted(out.collect()) == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_map_partitions_keeps_schema_by_default(self, table):
        out = table.map_partitions(_take_first_two)
        assert out.columns == table.columns
        assert out.count() <= 2 * len(table.collect_partitions())


class TestActions:
    def test_collect_returns_tuples(self, table):
        rows = table.collect()
        assert isinstance(rows[0], tuple)
        assert len(rows) == 30

    def test_to_dicts(self, table):
        d = table.to_dicts()[0]
        assert set(d) == {"t", "m_id", "b_id"}

    def test_first_on_empty_is_none(self, ctx):
        assert ctx.empty_table(["a"]).first() is None

    def test_cache_materializes(self, table):
        cached = table.filter(col("m_id") == 1).cache()
        assert cached.count() == 10
        # The cached plan is a Source, no recomputation path.
        from repro.engine.plan import Source

        assert isinstance(cached.plan, Source)

    def test_column_values(self, table):
        values = table.column_values("m_id")
        assert sorted(set(values)) == [0, 1, 2]


class TestUnion:
    def test_union_concatenates(self, ctx):
        a = ctx.table_from_rows(["x"], [(1,)])
        b = ctx.table_from_rows(["x"], [(2,)])
        assert sorted(a.union(b).collect()) == [(1,), (2,)]

    def test_union_schema_mismatch_raises(self, ctx):
        a = ctx.table_from_rows(["x"], [(1,)])
        b = ctx.table_from_rows(["y"], [(2,)])
        with pytest.raises(SchemaError):
            a.union(b)


class TestSort:
    def test_sort_ascending(self, table):
        values = [r[0] for r in table.sort("t").collect()]
        assert values == sorted(values)

    def test_sort_descending(self, table):
        values = [r[0] for r in table.sort("t", ascending=False).collect()]
        assert values == sorted(values, reverse=True)

    def test_multi_key_sort_with_mixed_directions(self, ctx):
        t = ctx.table_from_rows(
            ["g", "v"], [(1, 1), (0, 5), (1, 3), (0, 2)]
        )
        out = t.sort(["g", "v"], ascending=[True, False]).collect()
        assert out == [(0, 5), (0, 2), (1, 3), (1, 1)]

    def test_sort_flag_mismatch_raises(self, table):
        with pytest.raises(PlanError):
            table.sort(["t"], ascending=[True, False])


class TestRepartition:
    def test_repartition_changes_partition_count(self, table):
        assert len(table.repartition(7).collect_partitions()) == 7

    def test_repartition_preserves_rows(self, table):
        assert sorted(table.repartition(2).collect()) == sorted(table.collect())

    def test_hash_repartition_groups_keys(self, table):
        parts = table.repartition(4, keys="m_id").collect_partitions()
        for part in parts:
            # All rows with equal key land in the same partition.
            keys = {r[1] for r in part}
            for key in keys:
                total = sum(1 for p in parts for r in p if r[1] == key)
                local = sum(1 for r in part if r[1] == key)
                assert total == local


def _duplicate_row(row):
    return [(row[0], 0), (row[0], 1)]


def _take_first_two(rows):
    return rows[:2]
