"""Engine error paths: failures must surface as typed exceptions."""

import pytest

from repro.engine import EngineContext, ExecutionError, PlanError
from repro.engine.errors import EngineError, SchemaError
from repro.engine.executor import SerialExecutor
from repro.engine.plan import PlanNode


def _boom(row):
    raise RuntimeError("kaboom")


class TestExecutionErrors:
    def test_task_failure_wrapped(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,)]).flat_map(_boom, ["y"])
        with pytest.raises(ExecutionError) as excinfo:
            t.collect()
        assert "kaboom" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_error_hierarchy(self):
        assert issubclass(ExecutionError, EngineError)
        assert issubclass(PlanError, EngineError)
        assert issubclass(SchemaError, EngineError)

    def test_unknown_plan_node_rejected(self):
        class Alien(PlanNode):
            @property
            def schema(self):
                from repro.engine import Schema

                return Schema.of("x")

        with pytest.raises(PlanError):
            SerialExecutor().execute(Alien())

    def test_partial_failure_does_not_corrupt_later_queries(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (2,)])
        with pytest.raises(ExecutionError):
            t.flat_map(_boom, ["y"]).collect()
        # The context stays usable.
        assert t.count() == 2


class TestParallelErrorPropagation:
    def test_worker_exception_reaches_driver(self):
        with EngineContext.parallel(num_workers=2) as ctx:
            t = ctx.table_from_rows(
                ["x"], [(i,) for i in range(10)], num_partitions=4
            ).flat_map(_boom, ["y"])
            with pytest.raises(ExecutionError):
                t.collect()
