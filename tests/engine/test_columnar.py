"""Columnar partition round-trips and layout equivalence.

The columnar layout is only allowed to change *how* cells are stored,
never what comes back: ``rows -> columns -> rows`` must be an identity
down to exact cell types (``True`` is not ``1``, ``1`` is not ``1.0``,
NaN stays bit-identical). Hypothesis drives the identity across mixed
cell types; the engine tests pin that a columnar Source collects the
same rows as a row Source through kernels, fallbacks and pickling.
"""

import math
import pickle
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BytesColumn,
    ColumnarPartition,
    EngineContext,
    as_row_partition,
    col,
)
from repro.engine.columnar import columns_to_rows
from repro.engine.errors import PlanError


def _eq_cell(left, right):
    """Exact-type, NaN-aware cell equality."""
    if type(left) is not type(right):
        return False
    if isinstance(left, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
    return left == right


def _eq_rows(left_rows, right_rows):
    return len(left_rows) == len(right_rows) and all(
        len(l) == len(r) and all(_eq_cell(a, b) for a, b in zip(l, r))
        for l, r in zip(left_rows, right_rows)
    )


_CELLS = st.one_of(
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.booleans(),
    st.text(max_size=8),
    st.none(),
    st.binary(max_size=12),
)


@st.composite
def _tables(draw, min_width=0, max_width=6):
    width = draw(st.integers(min_value=min_width, max_value=max_width))
    height = draw(st.integers(min_value=0, max_value=24))
    rows = [
        tuple(draw(_CELLS) for _unused in range(width))
        for _unused in range(height)
    ]
    return width, rows


class TestRoundTripProperties:
    @given(table=_tables())
    @settings(max_examples=150, deadline=None)
    def test_rows_columns_rows_identity(self, table):
        width, rows = table
        part = ColumnarPartition.from_rows(rows, width)
        assert len(part) == len(rows)
        assert part.width == width
        assert _eq_rows(part.to_rows(), rows)

    @given(table=_tables(min_width=1, max_width=1))
    @settings(max_examples=60, deadline=None)
    def test_single_column_tables(self, table):
        width, rows = table
        part = ColumnarPartition.from_rows(rows, width)
        assert _eq_rows(part.to_rows(), rows)
        assert len(part.column(0)) == len(rows)

    @given(table=_tables())
    @settings(max_examples=60, deadline=None)
    def test_pickle_round_trip(self, table):
        width, rows = table
        part = ColumnarPartition.from_rows(rows, width)
        clone = pickle.loads(pickle.dumps(part))
        assert _eq_rows(clone.to_rows(), rows)

    def test_empty_partition_keeps_width(self):
        part = ColumnarPartition.from_rows([], 3)
        assert len(part) == 0
        assert part.width == 3
        assert part.to_rows() == []

    def test_zero_column_table_keeps_length(self):
        rows = [(), (), ()]
        part = ColumnarPartition.from_rows(rows, 0)
        assert len(part) == 3
        assert part.to_rows() == rows
        assert columns_to_rows([], 3) == rows


class TestLayoutSelection:
    def test_int_column_packs_dense(self):
        part = ColumnarPartition.from_rows([(1,), (2,), (3,)], 1)
        assert isinstance(part.column(0), array)
        assert part.column(0).typecode == "q"

    def test_float_column_is_bit_exact(self):
        values = [0.1 + 0.2, float("nan"), -0.0, float("inf")]
        part = ColumnarPartition.from_rows([(v,) for v in values], 1)
        assert isinstance(part.column(0), array)
        back = [r[0] for r in part.to_rows()]
        assert all(_eq_cell(a, b) for a, b in zip(back, values))

    def test_bool_column_stays_bool(self):
        part = ColumnarPartition.from_rows([(True,), (False,)], 1)
        back = [r[0] for r in part.to_rows()]
        assert back == [True, False]
        assert all(isinstance(v, bool) for v in back)

    def test_huge_ints_fall_back_to_objects(self):
        rows = [(2 ** 100,), (1,)]
        part = ColumnarPartition.from_rows(rows, 1)
        assert isinstance(part.column(0), list)
        assert part.to_rows() == rows

    def test_bytes_column_uses_contiguous_plane(self):
        rows = [(b"ab",), (b"",), (b"cdef",)]
        part = ColumnarPartition.from_rows(rows, 1)
        column = part.column(0)
        assert isinstance(column, BytesColumn)
        assert column.blob == b"abcdef"
        assert list(column) == [b"ab", b"", b"cdef"]
        assert column[-1] == b"cdef"
        with pytest.raises(IndexError):
            column[3]
        assert part.to_rows() == rows

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            ColumnarPartition([[1, 2], [1]], 2)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            ColumnarPartition.from_rows([(1, 2), (3, 4)], 3)

    def test_nbytes_reflects_buffers(self):
        part = ColumnarPartition.from_rows(
            [(1, 0.5, b"xy"), (2, 1.5, b"z")], 3
        )
        # 2 int64 + 2 float64 + (3 bytes blob + 3 offsets * 8).
        assert part.nbytes() == 16 + 16 + 3 + 24

    def test_as_row_partition_passthrough(self):
        rows = [(1,), (2,)]
        assert as_row_partition(rows) is rows
        assert as_row_partition(ColumnarPartition.from_rows(rows, 1)) == rows


class TestEngineEquivalence:
    @pytest.fixture
    def rows(self):
        return [
            (i, i * 0.25, "name-{}".format(i % 4), i % 3 == 0,
             bytes([i % 251, (i * 7) % 251]))
            for i in range(200)
        ]

    def _tables(self, rows):
        columns = ["a", "b", "c", "d", "e"]
        ctx = EngineContext.serial()
        row_table = ctx.table_from_rows(columns, rows)
        parts = [
            ColumnarPartition.from_rows(rows[:90], 5),
            ColumnarPartition.from_rows(rows[90:], 5),
        ]
        columnar_table = ctx.table_from_columnar(columns, parts)
        return ctx, row_table, columnar_table

    def test_columnar_source_collects_identically(self, rows):
        _ctx, row_table, columnar_table = self._tables(rows)
        assert columnar_table.collect() == row_table.collect()

    def test_fused_chain_over_columnar_source(self, rows):
        ctx, row_table, columnar_table = self._tables(rows)

        def pipeline(table):
            return (
                table.filter(col("a") > 20)
                .with_column("scaled", col("b") * 2.0)
                .filter(col("d"))
                .select("a", "scaled", "c")
            )

        assert pipeline(columnar_table).collect() == \
            pipeline(row_table).collect()
        assert ctx.executor.metrics.columnar_tasks > 0

    def test_flat_map_falls_back_to_rows(self, rows):
        ctx, row_table, columnar_table = self._tables(rows)

        def pipeline(table):
            return table.filter(col("a") > 150).flat_map(
                _duplicate, ["a", "b", "c", "d", "e"]
            )

        assert pipeline(columnar_table).collect() == \
            pipeline(row_table).collect()
        assert ctx.executor.metrics.columnar_fallbacks > 0

    def test_multiprocessing_ships_columnar_partitions(self, rows):
        columns = ["a", "b", "c", "d", "e"]
        with EngineContext.parallel(num_workers=2) as ctx:
            parts = [
                ColumnarPartition.from_rows(rows[:50], 5),
                ColumnarPartition.from_rows(rows[50:120], 5),
                ColumnarPartition.from_rows(rows[120:], 5),
            ]
            table = ctx.table_from_columnar(columns, parts)
            out = table.filter(col("a") > 10).select("a", "e").collect()
        expected = [(r[0], r[4]) for r in rows if r[0] > 10]
        assert sorted(out) == sorted(expected)

    def test_width_mismatch_rejected(self, rows):
        ctx = EngineContext.serial()
        part = ColumnarPartition.from_rows(rows[:5], 5)
        with pytest.raises(PlanError):
            ctx.table_from_columnar(["a", "b"], [part])


def _duplicate(row):
    return [row, row]


class _BatchDouble:
    """Apply callable publishing the columnar batch protocol."""

    def __init__(self):
        self.batch_columns = []

    def __call__(self, value):
        return value * 2

    def batch_call(self, values):
        self.batch_columns.append(list(values))
        return [value * 2 for value in values]


class TestBatchApplyLowering:
    def test_batch_call_runs_once_per_partition(self):
        from repro.engine.expressions import apply

        func = _BatchDouble()
        ctx = EngineContext.serial()
        rows = [(i,) for i in range(40)]
        table = ctx.table_from_rows(["a"], rows, num_partitions=2)
        out = table.with_column("b", apply(func, "a")).select("b").collect()
        assert sorted(out) == [(2 * i,) for i in range(40)]
        # One whole-column call per partition, not one call per row.
        assert len(func.batch_columns) == 2
        assert sorted(sum(func.batch_columns, [])) == list(range(40))

    def test_batch_and_rowwise_paths_agree(self):
        from repro.engine.executor import SerialExecutor
        from repro.engine.expressions import apply

        rows = [(i,) for i in range(25)]

        def run(columnar):
            with SerialExecutor(
                compile_kernels=True, columnar_kernels=columnar
            ) as executor:
                ctx = EngineContext(executor)
                table = ctx.table_from_rows(["a"], rows)
                return (
                    table.with_column("b", apply(_BatchDouble(), "a"))
                    .filter(col("b") > 10)
                    .collect()
                )

        assert sorted(run(True)) == sorted(run(False))
