"""SortedMapPartitions carry rows: partition-layout edge cases.

These pin the carry semantics for the layouts distributed execution
actually produces: empty leading partitions, all-empty inputs,
single-row partitions, and carry windows deeper than any one partition.
All cases run through explicit ``table_from_partitions`` layouts so the
executor cannot re-balance the edge away.
"""

import pytest

from repro.engine import EngineContext
from repro.engine.window import (
    DropConsecutiveDuplicates,
    ForwardFill,
    GapFunction,
    LagFunction,
    drop_consecutive_duplicates,
    forward_fill,
    with_gap,
    with_lag,
)


def _carry_probe(partition, carry):
    """Append the tuple of carry first-column values to each row."""
    seen = tuple(row[0] for row in carry)
    return [row + (seen,) for row in partition]


class TestCarryLayouts:
    def test_empty_first_partition(self, ctx):
        t = ctx.table_from_partitions(
            ["t", "v"], [[], [(1.0, 10)], [(2.0, 20)]]
        )
        out = t.sorted_map_partitions(
            LagFunction(1, ()), output_columns=["t", "v", "prev"]
        )
        assert out.collect() == [(1.0, 10, None), (2.0, 20, 10)]

    def test_all_empty_partitions(self, ctx):
        t = ctx.table_from_partitions(["t", "v"], [[], [], []])
        out = t.sorted_map_partitions(
            LagFunction(1, ()), output_columns=["t", "v", "prev"]
        )
        assert out.collect() == []
        assert len(out.collect_partitions()) == 3

    def test_single_row_partitions(self, ctx):
        t = ctx.table_from_partitions(
            ["t"], [[(1.0,)], [(2.0,)], [(3.0,)]]
        )
        out = t.sorted_map_partitions(
            GapFunction(0, ()), output_columns=["t", "gap"]
        )
        assert out.collect() == [(1.0, None), (2.0, 1.0), (3.0, 1.0)]

    def test_carry_skips_interleaved_empty_partitions(self, ctx):
        t = ctx.table_from_partitions(
            ["t"], [[], [(1.0,)], [], [(2.0,)], [(3.0,)], []]
        )
        out = t.sorted_map_partitions(_carry_probe, carry_rows=2)
        assert out.collect() == [
            (1.0, ()),
            (2.0, (1.0,)),
            (3.0, (1.0, 2.0)),
        ]

    def test_carry_window_deeper_than_partitions(self, ctx):
        # carry_rows=3 with single-row partitions: the carry must span
        # several predecessors, not just the immediately previous one.
        t = ctx.table_from_partitions(
            ["t"], [[(1.0,)], [(2.0,)], [(3.0,)], [(4.0,)]]
        )
        out = t.sorted_map_partitions(_carry_probe, carry_rows=3)
        assert out.collect() == [
            (1.0, ()),
            (2.0, (1.0,)),
            (3.0, (1.0, 2.0)),
            (4.0, (1.0, 2.0, 3.0)),
        ]

    def test_zero_carry_rows_passes_empty_carry(self, ctx):
        t = ctx.table_from_partitions(["t"], [[(1.0,)], [(2.0,)]])
        out = t.sorted_map_partitions(_carry_probe, carry_rows=0)
        assert out.collect() == [(1.0, ()), (2.0, ())]


class TestWindowFunctionsOnEdgeLayouts:
    def test_forward_fill_across_empty_partition(self, ctx):
        t = ctx.table_from_partitions(
            ["t", "v"], [[(1.0, 7)], [], [(2.0, None), (3.0, None)]]
        )
        out = t.sorted_map_partitions(ForwardFill((1,)), carry_rows=1)
        assert out.collect() == [(1.0, 7), (2.0, 7), (3.0, 7)]

    def test_group_boundary_at_partition_boundary(self, ctx):
        t = ctx.table_from_partitions(
            ["g", "t", "v"],
            [[("a", 1.0, 1)], [("a", 2.0, 2)], [("b", 3.0, 3)]],
        )
        out = t.sorted_map_partitions(
            LagFunction(2, (0,)), output_columns=["g", "t", "v", "prev"]
        )
        assert out.collect() == [
            ("a", 1.0, 1, None),
            ("a", 2.0, 2, 1),
            ("b", 3.0, 3, None),
        ]

    def test_dropdup_run_spanning_partitions(self, ctx):
        t = ctx.table_from_partitions(
            ["t", "v"],
            [[(1.0, 1)], [(2.0, 1)], [], [(3.0, 1)], [(4.0, 2)]],
        )
        out = t.sorted_map_partitions(
            DropConsecutiveDuplicates((1,), ()), carry_rows=1
        )
        assert out.collect() == [(1.0, 1), (4.0, 2)]


class TestHighLevelHelpersOnEdgeInputs:
    """The public helpers must also survive degenerate tables."""

    def test_with_lag_empty_table(self, ctx):
        t = ctx.empty_table(["t", "v"])
        assert with_lag(t, "t", "v", "prev").collect() == []

    def test_with_gap_single_row(self, ctx):
        t = ctx.table_from_rows(["t", "v"], [(1.0, 5)])
        assert with_gap(t, "t", "t", "gap").collect() == [(1.0, 5, None)]

    def test_forward_fill_all_none_column(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v"], [(1.0, None), (2.0, None)], num_partitions=2
        )
        assert forward_fill(t, "t", ["v"]).collect() == [
            (1.0, None),
            (2.0, None),
        ]

    def test_drop_consecutive_duplicates_single_rows(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v"], [(1.0, 1), (2.0, 1), (3.0, 2)], num_partitions=3
        )
        assert drop_consecutive_duplicates(t, "t", "v").collect() == [
            (1.0, 1),
            (3.0, 2),
        ]

    def test_parallel_matches_serial_on_edge_layout(self):
        layout = [[], [(1.0, 10)], [], [(2.0, None)], [(3.0, 30)]]
        serial_ctx = EngineContext.serial(default_parallelism=3)
        serial = (
            serial_ctx.table_from_partitions(["t", "v"], layout)
            .sorted_map_partitions(ForwardFill((1,)), carry_rows=2)
            .collect()
        )
        with EngineContext.parallel(num_workers=2) as pctx:
            parallel = (
                pctx.table_from_partitions(["t", "v"], layout)
                .sorted_map_partitions(ForwardFill((1,)), carry_rows=2)
                .collect()
            )
        assert parallel == serial == [(1.0, 10), (2.0, 10), (3.0, 30)]
