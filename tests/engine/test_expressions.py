"""Expression building, binding and evaluation."""

import pickle

import pytest

from repro.engine import Schema, SchemaError, col, lit
from repro.engine.expressions import apply, row_apply

SCHEMA = Schema.of("t", "m_id", "b_id")
ROW = (2.5, 3, "FC")


def evaluate(expression, row=ROW, schema=SCHEMA):
    return expression.bind(schema)(row)


class TestColumnAndLiteral:
    def test_column_reads_value(self):
        assert evaluate(col("m_id")) == 3

    def test_literal_ignores_row(self):
        assert evaluate(lit(42)) == 42

    def test_unknown_column_raises_at_bind(self):
        with pytest.raises(SchemaError):
            col("nope").bind(SCHEMA)


class TestComparisons:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            (col("m_id") == 3, True),
            (col("m_id") != 3, False),
            (col("t") < 3.0, True),
            (col("t") <= 2.5, True),
            (col("t") > 2.5, False),
            (col("t") >= 2.5, True),
            (col("b_id") == "FC", True),
        ],
    )
    def test_comparison(self, expression, expected):
        assert evaluate(expression) is expected


class TestArithmetic:
    def test_add_sub_mul_div(self):
        assert evaluate(col("t") + 0.5) == 3.0
        assert evaluate(col("t") - 0.5) == 2.0
        assert evaluate(col("m_id") * 2) == 6
        assert evaluate(col("t") / 2) == 1.25

    def test_expression_on_both_sides(self):
        assert evaluate(col("t") + col("m_id")) == 5.5


class TestBooleanCombinators:
    def test_and(self):
        assert evaluate((col("m_id") == 3) & (col("b_id") == "FC"))

    def test_or(self):
        assert evaluate((col("m_id") == 9) | (col("b_id") == "FC"))

    def test_invert(self):
        assert evaluate(~(col("m_id") == 9))

    def test_and_short_circuits_to_bool(self):
        result = evaluate((col("m_id") == 3) & (col("t") > 100))
        assert result is False


class TestMembershipAndNull:
    def test_is_in(self):
        assert evaluate(col("m_id").is_in([1, 2, 3]))
        assert not evaluate(col("m_id").is_in([4, 5]))

    def test_is_null_and_not_null(self):
        schema = Schema.of("v")
        assert col("v").is_null().bind(schema)((None,))
        assert col("v").is_not_null().bind(schema)((7,))


def _double(x):
    return 2 * x


def _sum_row(d):
    return d["t"] + d["m_id"]


class TestApply:
    def test_apply_positional_columns(self):
        assert evaluate(apply(_double, "m_id")) == 6

    def test_apply_multiple_columns(self):
        def diff(a, b):
            return a - b

        assert evaluate(apply(diff, "t", "m_id")) == -0.5

    def test_row_apply_gets_dict(self):
        assert evaluate(row_apply(_sum_row)) == 5.5


class TestPicklability:
    """Bound expressions must ship to worker processes."""

    def test_bound_comparison_pickles(self):
        bound = ((col("m_id") == 3) & (col("b_id") == "FC")).bind(SCHEMA)
        clone = pickle.loads(pickle.dumps(bound))
        assert clone(ROW) is True

    def test_bound_apply_pickles(self):
        bound = apply(_double, "m_id").bind(SCHEMA)
        clone = pickle.loads(pickle.dumps(bound))
        assert clone(ROW) == 6
