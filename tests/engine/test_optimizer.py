"""Logical plan optimizer: rewrites and result equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext, col
from repro.engine import plan as logical
from repro.engine.expressions import BoundAnd, BoundColumn, apply, row_apply
from repro.engine.optimizer import (
    ComposedApply,
    optimize,
    references,
    substitute,
)


@pytest.fixture
def table(ctx):
    return ctx.table_from_rows(
        ["a", "b", "c"],
        [(i, i * 2, "x" if i % 2 else "y") for i in range(20)],
    )


def _double(x):
    return 2 * x


class TestFilterFusion:
    def test_adjacent_filters_fuse(self, table):
        plan = table.filter(col("a") > 2).filter(col("b") < 30).plan
        optimized = optimize(plan)
        assert isinstance(optimized, logical.Filter)
        assert isinstance(optimized.predicate, BoundAnd)
        assert isinstance(optimized.child, logical.Source)

    def test_fused_results_match(self, table):
        out = table.filter(col("a") > 2).filter(col("b") < 30)
        expected = [r for r in table.collect() if r[0] > 2 and r[1] < 30]
        assert sorted(out.collect()) == sorted(expected)


class TestProjectFusion:
    def test_adjacent_projects_fuse(self, table):
        plan = table.select("a", "b").select("b").plan
        optimized = optimize(plan)
        assert isinstance(optimized, logical.Project)
        assert isinstance(optimized.child, logical.Source)

    def test_computed_column_composes(self, table):
        out = (
            table.with_column("d", apply(_double, "a"))
            .select("d")
        )
        optimized = optimize(out.plan)
        # Single fused projection over the source.
        assert isinstance(optimized, logical.Project)
        assert isinstance(optimized.child, logical.Source)
        assert sorted(out.collect()) == [(2 * i,) for i in range(20)]

    def test_row_apply_composes(self, table):
        out = table.select("a", "b").with_column(
            "s", row_apply(_sum_ab)
        )
        assert [r[2] for r in out.sort("a").collect()] == [
            3 * i for i in range(20)
        ]


class TestFilterPushdown:
    def test_filter_moves_below_pure_projection(self, table):
        plan = table.select("a", "c").filter(col("a") > 5).plan
        optimized = optimize(plan)
        assert isinstance(optimized, logical.Project)
        assert isinstance(optimized.child, logical.Filter)

    def test_pushdown_respects_computed_columns(self, table):
        """A filter on a computed column must NOT be pushed below the
        projection computing it."""
        plan = (
            table.with_column("d", apply(_double, "a"))
            .filter(col("d") > 10)
            .plan
        )
        optimized = optimize(plan)
        assert isinstance(optimized, logical.Filter)

    def test_pushdown_results_match(self, table):
        out = table.select("a", "c").filter(col("a") > 5)
        assert out.count() == 14


class TestIdentityElimination:
    def test_identity_select_removed(self, table):
        plan = table.select("a", "b", "c").plan
        assert isinstance(optimize(plan), logical.Source)

    def test_reordering_select_kept(self, table):
        plan = table.select("c", "a", "b").plan
        assert isinstance(optimize(plan), logical.Project)


class TestExpressionTools:
    SCHEMA_EXPRS = (BoundColumn(2), BoundColumn(0))

    def test_references(self):
        from repro.engine import Schema

        bound = ((col("a") > 1) & (col("c") == "x")).bind(
            Schema.of("a", "b", "c")
        )
        assert references(bound) == {0, 2}

    def test_substitute_renames_columns(self):
        from repro.engine import Schema

        bound = (col("x") > 1).bind(Schema.of("x", "y"))
        renamed = substitute(bound, self.SCHEMA_EXPRS)
        assert references(renamed) == {2}

    def test_composed_apply_evaluates(self):
        composed = ComposedApply(_double, (BoundColumn(1),))
        assert composed((0, 21)) == 42


class TestOptimizerInExecutor:
    def test_executor_applies_optimizer_transparently(self, ctx):
        t = ctx.table_from_rows(["a"], [(i,) for i in range(100)])
        chain = t
        for _unused in range(5):
            chain = chain.select("a").filter(col("a") >= 0)
        assert chain.count() == 100


ops_strategy = st.lists(
    st.sampled_from(["filter_a", "filter_b", "select_ab", "select_ba", "with_d"]),
    max_size=6,
)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_property_optimized_plans_equivalent(ops):
    """Random transformation chains give identical results with and
    without optimization (optimizer correctness oracle)."""
    ctx = EngineContext.serial()
    t = ctx.table_from_rows(
        ["a", "b"], [(i, 20 - i) for i in range(20)], num_partitions=3
    )
    for op in ops:
        if op == "filter_a" and "a" in t.columns:
            t = t.filter(col("a") > 3)
        elif op == "filter_b" and "b" in t.columns:
            t = t.filter(col("b") < 15)
        elif op == "select_ab" and set(t.columns) >= {"a", "b"}:
            t = t.select("a", "b")
        elif op == "select_ba" and set(t.columns) >= {"a", "b"}:
            t = t.select("b", "a")
        elif op == "with_d" and "a" in t.columns and "d" not in t.columns:
            t = t.with_column("d", apply(_double, "a"))
    # Reference: execute the unoptimized plan by hand.
    reference = _execute_unoptimized(t)
    assert sorted(t.collect()) == sorted(reference)


def _execute_unoptimized(table):
    """Straightforward interpreter over the raw logical plan."""
    return _eval_node(table.plan)


def _eval_node(node):
    if isinstance(node, logical.Source):
        return [r for p in node.partitions for r in p]
    if isinstance(node, logical.Filter):
        return [r for r in _eval_node(node.child) if node.predicate(r)]
    if isinstance(node, logical.Project):
        return [
            tuple(e(r) for e in node.exprs) for r in _eval_node(node.child)
        ]
    raise AssertionError("unexpected node in property test")


def _sum_ab(row):
    return row["a"] + row["b"]
