"""Per-rule optimizer equivalence: every rewrite preserves results.

For each rule the optimizer implements, build a plan that provably
exercises it (asserted via the optimize() trace hook) and check that
optimized and unoptimized execution agree on a table designed to stress
the rule: NULLs, duplicates, empty partitions, computed columns.
"""

import pytest

from repro.engine import EngineContext, apply, col
from repro.engine.executor import SerialExecutor
from repro.engine.optimizer import optimize


@pytest.fixture
def table(ctx):
    rows = [
        (i, i * 2, "x" if i % 2 else "y", None if i % 5 == 0 else i % 7)
        for i in range(40)
    ]
    return ctx.table_from_rows(["a", "b", "c", "n"], rows, num_partitions=4)


def _double(x):
    return 2 * x


def _run_both_ways(table_obj):
    """Execute the plan with and without the optimizer; return both."""
    plan = table_obj.plan
    optimized = SerialExecutor(default_parallelism=3, optimize_plans=True)
    unoptimized = SerialExecutor(default_parallelism=3, optimize_plans=False)
    opt_rows = [r for p in optimized.execute(plan) for r in p]
    raw_rows = [r for p in unoptimized.execute(plan) for r in p]
    return opt_rows, raw_rows


def _fired_rules(table_obj):
    trace = []
    optimize(table_obj.plan, trace=trace)
    return trace


class TestFilterFusion:
    def test_rule_fires_and_results_agree(self, table):
        out = table.filter(col("a") > 5).filter(col("b") < 60)
        assert "filter_fusion" in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows) == sorted(raw_rows)
        assert opt_rows  # non-vacuous: some rows survive both filters

    def test_three_way_fusion(self, table):
        out = (
            table.filter(col("a") > 2)
            .filter(col("b") < 70)
            .filter(col("c") == "x")
        )
        trace = _fired_rules(out)
        assert trace.count("filter_fusion") >= 2
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows) == sorted(raw_rows)

    def test_fusion_with_null_predicates(self, table):
        out = table.filter(col("n").is_not_null()).filter(col("n") > 2)
        assert "filter_fusion" in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows) == sorted(raw_rows)


class TestProjectionSubstitution:
    def test_rule_fires_and_results_agree(self, table):
        out = table.with_column("d", apply(_double, "a")).select("d", "c")
        assert "project_fusion" in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows, key=repr) == sorted(raw_rows, key=repr)

    def test_chained_computed_columns(self, table):
        out = (
            table.with_column("d", col("a") + col("b"))
            .with_column("e", col("d") * 3)
            .select("e")
        )
        trace = _fired_rules(out)
        assert "project_fusion" in trace
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows) == sorted(raw_rows)
        assert opt_rows == [((i + i * 2) * 3,) for i in range(40)]


class TestFilterPushdown:
    def test_rule_fires_and_results_agree(self, table):
        out = table.select("a", "c").filter(col("a") > 10)
        assert "filter_pushdown" in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows, key=repr) == sorted(raw_rows, key=repr)

    def test_pushdown_blocked_by_computed_column(self, table):
        # Filtering on a computed column must NOT push below the
        # projection (it would duplicate the computation or break).
        out = table.with_column("d", apply(_double, "a")).filter(
            col("d") > 20
        )
        assert "filter_pushdown" not in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows, key=repr) == sorted(raw_rows, key=repr)


class TestIdentityProjectElimination:
    def test_rule_fires_and_results_agree(self, table):
        out = table.select("a", "b", "c", "n")  # same columns, same order
        assert "identity_project_elimination" in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert opt_rows == raw_rows

    def test_reordering_projection_is_not_eliminated(self, table):
        out = table.select("b", "a", "c", "n")
        assert "identity_project_elimination" not in _fired_rules(out)
        opt_rows, raw_rows = _run_both_ways(out)
        assert sorted(opt_rows, key=repr) == sorted(raw_rows, key=repr)


class TestRulesComposeAcrossWideNodes:
    def test_equivalence_through_join_and_groupby(self, ctx, table):
        from repro.engine import aggregates

        rules = ctx.table_from_rows(
            ["a", "w"], [(i, i * 10) for i in range(0, 40, 3)]
        )
        out = (
            table.filter(col("a") > 4)
            .filter(col("b") < 70)
            .select("a", "b", "c")
            .join(rules, on="a")
            .group_by("c")
            .agg(("total", aggregates.Sum(), "w"))
            .sort("c")
        )
        trace = _fired_rules(out)
        assert "filter_fusion" in trace
        opt_rows, raw_rows = _run_both_ways(out)
        assert opt_rows == raw_rows

    def test_optimizer_is_idempotent(self, table):
        out = table.filter(col("a") > 5).select("a", "c").select("a")
        once = optimize(out.plan)
        twice = optimize(once)
        assert once == twice
