"""distinct / limit / explain."""

import pytest

from repro.engine import PlanError, col


class TestDistinct:
    def test_removes_exact_duplicates(self, ctx):
        t = ctx.table_from_rows(["a", "b"], [(1, 2), (1, 2), (3, 4)])
        assert sorted(t.distinct().collect()) == [(1, 2), (3, 4)]

    def test_distinct_across_partitions(self, ctx):
        t = ctx.table_from_rows(
            ["x"], [(i % 5,) for i in range(100)], num_partitions=8
        )
        assert t.distinct().count() == 5

    def test_no_duplicates_untouched(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (2,), (3,)])
        assert sorted(t.distinct().collect()) == [(1,), (2,), (3,)]

    def test_distinct_composes_with_filter(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (1,), (2,), (2,)])
        assert t.distinct().filter(col("x") > 1).collect() == [(2,)]


class TestLimit:
    def test_limit_caps_rows(self, ctx):
        t = ctx.table_from_rows(["x"], [(i,) for i in range(50)])
        assert t.limit(10).count() == 10

    def test_limit_larger_than_table(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (2,)])
        assert t.limit(99).count() == 2

    def test_limit_zero(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,)])
        assert t.limit(0).count() == 0

    def test_limit_preserves_order_after_sort(self, ctx):
        t = ctx.table_from_rows(["x"], [(3,), (1,), (2,)])
        assert t.sort("x").limit(2).collect() == [(1,), (2,)]

    def test_negative_limit_rejected(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,)])
        with pytest.raises(PlanError):
            t.limit(-1)

    def test_limit_is_lazy(self, ctx):
        # Regression: limit used to collect() eagerly at plan-build
        # time. Now it only adds a Limit plan node; nothing runs until
        # an action is called.
        from repro.engine import plan as logical

        t = ctx.table_from_rows(["x"], [(i,) for i in range(9)])
        limited = t.limit(3)
        assert isinstance(limited._plan, logical.Limit)
        assert ctx.executor.metrics.tasks_run == 0

    def test_limit_preserves_partition_structure(self, ctx):
        # Regression: the eager limit collapsed everything into a single
        # partition; the lazy node truncates partitions left to right
        # and keeps the partition count.
        t = ctx.table_from_rows(["x"], [(i,) for i in range(9)])
        assert t.limit(4).collect_partitions() == [
            [(0,), (1,), (2,)], [(3,)], [],
        ]

    def test_limit_composes_lazily_with_filter(self, ctx):
        t = ctx.table_from_rows(["x"], [(i,) for i in range(20)])
        assert t.limit(10).filter(col("x") >= 5).collect() == [
            (5,), (6,), (7,), (8,), (9,),
        ]


class TestDescribe:
    def test_numeric_column_stats(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (2,), (3,), (2,)])
        stats = t.describe("x")["x"]
        assert stats["count"] == 4
        assert stats["distinct"] == 3
        assert stats["min"] == 1
        assert stats["max"] == 3
        assert stats["mean"] == 2.0

    def test_null_counting(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,), (None,), (3,)])
        stats = t.describe("x")["x"]
        assert stats["nulls"] == 1
        assert stats["count"] == 3

    def test_string_column_has_no_numeric_stats(self, ctx):
        t = ctx.table_from_rows(["s"], [("a",), ("b",)])
        stats = t.describe()["s"]
        assert "mean" not in stats
        assert stats["distinct"] == 2

    def test_mixed_column_has_no_numeric_stats(self, ctx):
        t = ctx.table_from_rows(["v"], [(1,), ("x",)])
        assert "mean" not in t.describe("v")["v"]

    def test_all_columns_by_default(self, ctx):
        t = ctx.table_from_rows(["a", "b"], [(1, "x")])
        assert set(t.describe()) == {"a", "b"}


class TestExplain:
    def test_explain_shows_plan_structure(self, ctx):
        trace = ctx.table_from_rows(["m_id", "v"], [(1, 2)])
        rules = ctx.table_from_rows(["m_id", "rule"], [(1, "r")])
        plan = (
            trace.filter(col("v") > 0)
            .join(rules, on="m_id")
            .sort("v")
            .explain()
        )
        assert "Sort" in plan
        assert "Join" in plan and "how=inner" in plan
        assert "Filter" in plan
        assert "Source" in plan and "rows=1" in plan

    def test_explain_indentation_reflects_depth(self, ctx):
        t = ctx.table_from_rows(["x"], [(1,)]).filter(col("x") == 1)
        lines = t.explain().splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  Source")
