"""Tier-1 differential fuzz harness run.

Executes a fixed, deterministic seed budget of generated plans across
the full executor/optimizer/layout matrix (>= 200 combinations) and
asserts zero divergences; separately proves the oracle is not vacuous
by injecting a divergent mutant executor and shrinking the failure to a
tiny reproducer. The matrix includes the layout-differential axis:
dedicated serial combos pin row-interpreted == row-compiled ==
columnar-narrow == columnar-wide on every case, so the generated
joins/splits/repartitions exercise the columnar wide-stage exchange
against the row reference on every seed.
"""

import pytest

from repro.engine import EngineContext
from repro.engine.executor import FaultPolicy, SerialExecutor
from repro.testing import (
    ComboSpec,
    DifferentialOracle,
    apply_spec,
    generate_case,
    load_reproducer,
    run_seeds,
    shrink_case,
    write_reproducer,
)
from repro.testing.fuzz import main as fuzz_main
from repro.testing.fuzz import run_fuzz
from repro.testing.oracle import DEFAULT_COMBOS

#: Fixed tier-1 budget: 40 seeds x 10 combos (reference + 9) = 400.
TIER1_SEEDS = 40


class TestFuzzHarness:
    def test_fixed_seed_budget_has_zero_divergences(self):
        reports, combos_run = run_seeds(range(TIER1_SEEDS))
        assert combos_run >= 200
        assert all(not r.invalid for r in reports)
        diverged = [r for r in reports if not r.ok]
        assert diverged == []

    def test_matrix_carries_the_layout_axis(self):
        names = {combo.name for combo in DEFAULT_COMBOS}
        assert "serial-unoptimized-columnar" in names
        assert "serial-unoptimized-row-compiled" in names
        by_name = {combo.name: combo for combo in DEFAULT_COMBOS}
        assert by_name["serial-unoptimized-columnar"].columnar is True
        assert by_name["serial-unoptimized-row-compiled"].columnar is False
        # Both differ from the reference only in the kernel layout.
        for name in (
            "serial-unoptimized-columnar",
            "serial-unoptimized-row-compiled",
        ):
            assert by_name[name].optimize is False
            assert by_name[name].compile is True

    def test_columnar_combo_actually_runs_columnar_kernels(self):
        combo = {c.name: c for c in DEFAULT_COMBOS}[
            "serial-unoptimized-columnar"
        ]
        executor = combo.build(4)
        with executor:
            ctx = EngineContext(executor)
            for seed in range(10):
                case, spec = generate_case(seed)
                apply_spec(ctx, case, spec).collect()
            # Layout counters prove the axis is not vacuously equal: the
            # combo ran columnar kernels (or explicitly fell back) on at
            # least some of the generated plans.
            assert executor.metrics.columnar_tasks > 0

    def test_generated_cases_are_deterministic(self):
        for seed in range(10):
            assert generate_case(seed) == generate_case(seed)

    def test_generated_cases_vary_across_seeds(self):
        specs = {generate_case(seed)[1] for seed in range(20)}
        assert len(specs) > 10

    def test_cli_clean_run_exits_zero(self, tmp_path):
        code = fuzz_main([
            "--seeds", "5", "--no-multiprocessing",
            "--out", str(tmp_path / "failures"),
        ])
        assert code == 0
        assert not (tmp_path / "failures").exists()


class TestLossyFuzzing:
    """Corrupted-frame cases: every combo must also agree on lossy input."""

    def test_lossy_budget_has_zero_divergences(self):
        reports, combos_run = run_seeds(range(15), lossy=True)
        assert combos_run >= 100
        assert all(not r.invalid for r in reports)
        assert [r for r in reports if not r.ok] == []

    def test_lossy_mode_preserves_clean_prefix(self):
        # Corruption draws come after every clean draw, so the plan spec
        # and catalog are identical between the two modes for any seed.
        for seed in range(20):
            clean_case, clean_spec = generate_case(seed)
            lossy_case, lossy_spec = generate_case(seed, lossy=True)
            assert lossy_spec == clean_spec
            assert lossy_case.catalog_rows == clean_case.catalog_rows

    def test_lossy_mode_actually_corrupts(self):
        changed = duplicated = mutated = nulled = 0
        for seed in range(30):
            clean_case, _spec = generate_case(seed)
            lossy_case, _spec = generate_case(seed, lossy=True)
            if lossy_case == clean_case:
                continue
            changed += 1
            clean_rows = [
                r for p in clean_case.trace_partitions for r in p
            ]
            lossy_rows = [
                r for p in lossy_case.trace_partitions for r in p
            ]
            if len(lossy_rows) > len(clean_rows):
                duplicated += 1
            if sum(1 for r in lossy_rows if r[3] is None) > sum(
                1 for r in clean_rows if r[3] is None
            ):
                nulled += 1
            # Clock steps / truncation rewrite a row in place.
            if any(r not in clean_rows for r in lossy_rows):
                mutated += 1
        assert changed >= 10
        assert duplicated >= 5
        assert nulled >= 1
        assert mutated >= 1

    def test_lossy_cases_are_deterministic(self):
        for seed in range(10):
            assert generate_case(seed, lossy=True) == generate_case(
                seed, lossy=True
            )

    def test_cli_lossy_run_exits_zero(self, tmp_path):
        code = fuzz_main([
            "--seeds", "5", "--no-multiprocessing", "--lossy",
            "--out", str(tmp_path / "failures"),
        ])
        assert code == 0
        assert not (tmp_path / "failures").exists()


def _poisoned_executor(parallelism):
    """A deliberately-divergent mutant: silently drops task output rows."""
    return SerialExecutor(
        default_parallelism=parallelism,
        fault_policy=FaultPolicy(poison_rate=0.5, seed=3),
        retry_backoff=0.0,
    )


@pytest.fixture
def mutant_oracle():
    with DifferentialOracle(
        combos=(ComboSpec("serial-poisoned", factory=_poisoned_executor),)
    ) as oracle:
        yield oracle


class TestMutantDetection:
    def test_mutant_is_caught_and_shrinks_small(self, mutant_oracle, tmp_path):
        caught = None
        for seed in range(30):
            case, spec = generate_case(seed)
            report = mutant_oracle.check_case(case, spec, seed=seed)
            if report.divergences:
                caught = (seed, case, spec, report)
                break
        assert caught is not None, "poison mutant never diverged"
        seed, case, spec, report = caught
        assert report.divergences[0].kind == "rows"

        small_case, small_spec = shrink_case(
            case, spec, mutant_oracle.diverges
        )
        # The reproducer must stay divergent and be tiny.
        assert mutant_oracle.diverges(small_case, small_spec)
        assert len(small_spec) <= 5
        assert small_case.total_rows() <= 10

        final = mutant_oracle.check_case(small_case, small_spec, seed=seed)
        path = tmp_path / "seed-{}.json".format(seed)
        write_reproducer(
            str(path), small_case, small_spec,
            seed=seed, divergences=final.divergences,
        )
        loaded_case, loaded_spec, payload = load_reproducer(str(path))
        assert loaded_case == small_case
        assert loaded_spec == small_spec
        assert payload["seed"] == seed
        assert payload["divergences"]
        assert mutant_oracle.diverges(loaded_case, loaded_spec)

    def test_run_fuzz_writes_reproducer_for_mutant(self, tmp_path, monkeypatch):
        # Route run_fuzz through the mutant matrix by monkeypatching the
        # default combos it consults.
        import repro.testing.fuzz as fuzz_mod

        monkeypatch.setattr(
            fuzz_mod, "DEFAULT_COMBOS",
            (ComboSpec("serial-poisoned", factory=_poisoned_executor),),
        )
        out = tmp_path / "failures"
        failures, _combos = run_fuzz(
            5, out_dir=str(out), fail_fast=True, log=lambda m: None
        )
        assert failures
        seed, report, path = failures[0]
        assert report.divergences
        assert path is not None
        loaded_case, loaded_spec, payload = load_reproducer(path)
        assert len(loaded_spec) <= 5
        # Every reproducer carries an observability report describing
        # the shrink/recheck run that produced it.
        from repro.obs import validate_report

        report_payload = validate_report(payload["report"])
        assert report_payload["name"] == "fuzz.divergence"
        assert report_payload["meta"]["seed"] == seed
        span_names = {s["name"] for s in report_payload["spans"]}
        assert {"shrink", "recheck"} <= span_names
        assert any(
            name.startswith("combo.") and name.endswith("executor.tasks_run")
            for name in report_payload["counters"]
        )


class TestShrinkerValidityHandling:
    def test_invalid_candidates_are_rejected_not_crashed(self):
        # A spec whose later ops depend on a column created earlier: the
        # shrinker will try dropping the earlier op, producing a
        # schema-invalid spec; the oracle must report "no divergence"
        # for it rather than raising.
        case, _spec = generate_case(1)
        spec = (
            ("with_column_scale", "d1", "m_id", 3),
            ("select", ("t", "d1")),
        )
        with DifferentialOracle() as oracle:
            ctx = EngineContext.serial()
            apply_spec(ctx, case, spec).collect()  # sanity: spec is valid
            assert oracle.diverges(case, spec[1:]) is False
            report = oracle.check_case(case, spec[1:])
            assert report.invalid
