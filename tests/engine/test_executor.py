"""Executor equivalence and the multiprocessing path."""

import pytest

from repro.engine import EngineContext, aggregates, col
from repro.engine.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)


def _build_workload(ctx):
    trace = ctx.table_from_rows(
        ["t", "m_id", "v"],
        [(float(i), i % 5, (i * 7) % 11) for i in range(500)],
        num_partitions=8,
    )
    rules = ctx.table_from_rows(
        ["m_id", "scale"], [(m, m + 1) for m in range(3)]
    )
    return (
        trace.filter(col("v") > 2)
        .join(rules, on="m_id")
        .with_column("scaled", col("v") * col("scale"))
        .group_by("m_id")
        .agg(
            ("n", aggregates.Count(), None),
            ("total", aggregates.Sum(), "scaled"),
        )
        .sort("m_id")
    )


class TestSerialParallelEquivalence:
    def test_same_results(self):
        serial_ctx = EngineContext.serial(default_parallelism=4)
        expected = _build_workload(serial_ctx).collect()
        with EngineContext.parallel(num_workers=2) as parallel_ctx:
            actual = _build_workload(parallel_ctx).collect()
        assert actual == expected

    def test_repeated_runs_are_deterministic(self):
        ctx = EngineContext.serial()
        assert _build_workload(ctx).collect() == _build_workload(ctx).collect()


class TestMultiprocessingExecutor:
    def test_runs_filter_on_workers(self):
        with EngineContext.parallel(num_workers=2) as ctx:
            t = ctx.table_from_rows(
                ["x"], [(i,) for i in range(1000)], num_partitions=8
            )
            assert t.filter(col("x") < 100).count() == 100

    def test_single_partition_short_circuits(self):
        executor = MultiprocessingExecutor(num_workers=2)
        try:
            result = executor.run_tasks(_add_one_to_all, [[1, 2, 3]])
            assert result == [[2, 3, 4]]
            # The pool is created lazily; one input never needs it.
            assert executor._pool is None
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        executor = MultiprocessingExecutor(num_workers=2)
        executor.close()
        executor.close()

    def test_default_worker_count_positive(self):
        executor = MultiprocessingExecutor()
        assert executor.num_workers >= 2
        executor.close()


class TestExecutorValidation:
    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            SerialExecutor(default_parallelism=0)

    def test_metrics_count_tasks(self):
        ctx = EngineContext.serial()
        before = ctx.executor.metrics.tasks_run
        t = ctx.table_from_rows(["x"], [(i,) for i in range(10)], num_partitions=5)
        t.filter(col("x") > 0).collect()
        assert ctx.executor.metrics.tasks_run == before + 5

    def test_metrics_reset(self):
        ctx = EngineContext.serial()
        ctx.table_from_rows(["x"], [(1,)]).filter(col("x") == 1).collect()
        ctx.executor.metrics.reset()
        assert ctx.executor.metrics.tasks_run == 0


class TestSimulatedClusterExecutor:
    def test_results_identical_to_serial(self):
        serial = EngineContext.serial(default_parallelism=4)
        simulated = EngineContext.simulated_cluster(num_workers=4)
        assert (
            _build_workload(simulated).collect()
            == _build_workload(serial).collect()
        )

    def test_accumulates_simulated_time(self):
        ctx = EngineContext.simulated_cluster(num_workers=4)
        t = ctx.table_from_rows(
            ["x"], [(i,) for i in range(1000)], num_partitions=8
        )
        ctx.executor.reset_clock()
        t.filter(col("x") > 10).count()
        assert ctx.executor.simulated_seconds > 0.0

    def test_more_workers_never_slower(self):
        durations = [0.4, 0.3, 0.3, 0.2, 0.2, 0.1]
        few = SimulatedClusterExecutor(num_workers=2)
        many = SimulatedClusterExecutor(num_workers=6)
        assert many._makespan(durations) <= few._makespan(durations)

    def test_makespan_lpt_assignment(self):
        executor = SimulatedClusterExecutor(num_workers=2)
        # LPT on [3,2,2,1] over 2 workers -> loads (3+1, 2+2) = 4.
        assert executor._makespan([3.0, 2.0, 2.0, 1.0]) == pytest.approx(4.0)

    def test_single_worker_is_sum(self):
        executor = SimulatedClusterExecutor(num_workers=1)
        assert executor._makespan([1.0, 2.0]) == pytest.approx(3.0)

    def test_reset_clock(self):
        executor = SimulatedClusterExecutor(num_workers=2)
        executor.run_tasks(_add_one_to_all, [[1], [2]])
        assert executor.simulated_seconds > 0
        executor.reset_clock()
        assert executor.simulated_seconds == 0.0

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            SimulatedClusterExecutor(num_workers=0)


class TestSortedMapCarry:
    def test_carry_skips_empty_partitions(self, ctx):
        # Partition layout with an empty middle partition: the carry must
        # come from the last non-empty one.
        t = ctx.table_from_partitions(
            ["t", "v"], [[(1.0, "a")], [], [(2.0, "b")]]
        )
        out = t.sorted_map_partitions(_pair_with_carry, carry_rows=1)
        rows = out.collect()
        assert rows == [(1.0, "a", None), (2.0, "b", "a")]


def _add_one_to_all(rows):
    return [r + 1 for r in rows]


def _pair_with_carry(partition, carry):
    prev = carry[-1][1] if carry else None
    out = []
    for row in partition:
        out.append(row + (prev,))
        prev = row[1]
    return out
