"""Windowed operators: lag, gap, dedup, forward-fill."""

import pytest

from repro.engine import (
    drop_consecutive_duplicates,
    forward_fill,
    with_gap,
    with_lag,
)


@pytest.fixture
def series(ctx):
    return ctx.table_from_rows(
        ["t", "s_id", "v"],
        [
            (1.0, "a", 10),
            (2.0, "a", 10),
            (3.0, "a", 12),
            (1.5, "b", 5),
            (2.5, "b", 5),
        ],
        num_partitions=3,
    )


class TestLag:
    def test_lag_adds_column(self, series):
        out = with_lag(series, "t", "v", "v_prev", group_by="s_id")
        assert out.columns == ["t", "s_id", "v", "v_prev"]

    def test_lag_values_per_group(self, series):
        out = with_lag(series, "t", "v", "v_prev", group_by="s_id")
        rows = {(r[1], r[0]): r[3] for r in out.collect()}
        assert rows[("a", 1.0)] is None  # group start
        assert rows[("a", 2.0)] == 10
        assert rows[("a", 3.0)] == 10
        assert rows[("b", 1.5)] is None
        assert rows[("b", 2.5)] == 5

    def test_lag_without_groups_spans_everything(self, ctx):
        t = ctx.table_from_rows(["t", "v"], [(1.0, "x"), (2.0, "y")])
        out = with_lag(t, "t", "v", "prev")
        assert out.sort("t").collect() == [
            (1.0, "x", None),
            (2.0, "y", "x"),
        ]

    def test_lag_default_value(self, ctx):
        t = ctx.table_from_rows(["t", "v"], [(1.0, 5)])
        out = with_lag(t, "t", "v", "prev", default=-1)
        assert out.collect() == [(1.0, 5, -1)]

    def test_lag_crosses_partition_boundaries(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v"], [(float(i), i) for i in range(20)], num_partitions=5
        )
        out = with_lag(t, "t", "v", "prev").sort("t").collect()
        assert all(r[2] == r[1] - 1 for r in out[1:])


class TestGap:
    def test_gap_is_time_difference(self, series):
        out = with_gap(series, "t", "t", "dt", group_by="s_id")
        rows = {(r[1], r[0]): r[3] for r in out.collect()}
        assert rows[("a", 2.0)] == 1.0
        assert rows[("b", 2.5)] == 1.0
        assert rows[("a", 1.0)] is None

    def test_gap_matches_paper_table2_shape(self, ctx):
        """Table 2: wposGap values between consecutive wpos instances."""
        t = ctx.table_from_rows(
            ["t", "s_id"], [(2.0, "wpos"), (2.5, "wpos"), (2.9, "wpos")]
        )
        out = with_gap(t, "t", "t", "wposGap").sort("t").collect()
        gaps = [r[2] for r in out]
        assert gaps[0] is None
        assert gaps[1] == 0.5
        assert gaps[2] == pytest.approx(0.4)


class TestDropConsecutiveDuplicates:
    def test_removes_repeats_only(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v"], [(1, 5), (2, 5), (3, 6), (4, 6), (5, 5)]
        )
        out = drop_consecutive_duplicates(t, "t", "v").collect()
        assert out == [(1, 5), (3, 6), (5, 5)]

    def test_grouped_dedup_does_not_cross_groups(self, ctx):
        t = ctx.table_from_rows(
            ["t", "s_id", "v"],
            [(1, "a", 5), (2, "b", 5), (3, "a", 5), (4, "b", 5)],
        )
        out = drop_consecutive_duplicates(t, "t", "v", group_by="s_id")
        # Within each group the second 5 is a repeat; across groups not.
        assert sorted(out.collect()) == [(1, "a", 5), (2, "b", 5)]

    def test_dedup_across_partitions(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v"], [(float(i), 7) for i in range(50)], num_partitions=7
        )
        assert drop_consecutive_duplicates(t, "t", "v").count() == 1

    def test_multi_column_compare(self, ctx):
        t = ctx.table_from_rows(
            ["t", "v", "w"], [(1, 5, 1), (2, 5, 2), (3, 5, 2)]
        )
        out = drop_consecutive_duplicates(t, "t", ["v", "w"]).collect()
        assert out == [(1, 5, 1), (2, 5, 2)]


class TestForwardFill:
    def test_fills_none_from_previous(self, ctx):
        t = ctx.table_from_rows(
            ["t", "a", "b"],
            [(1, "x", None), (2, None, "y"), (3, None, None)],
        )
        out = forward_fill(t, "t", ["a", "b"]).collect()
        assert out == [(1, "x", None), (2, "x", "y"), (3, "x", "y")]

    def test_leading_none_stays_none(self, ctx):
        t = ctx.table_from_rows(["t", "a"], [(1, None), (2, "v")])
        out = forward_fill(t, "t", ["a"]).collect()
        assert out[0][1] is None

    def test_fill_respects_sort_order(self, ctx):
        t = ctx.table_from_rows(
            ["t", "a"], [(3, None), (1, "first"), (2, None)]
        )
        out = forward_fill(t, "t", ["a"]).collect()
        assert [r[1] for r in out] == ["first", "first", "first"]
