"""Span recorder nesting, merge accumulation, and the stopwatch."""

import pytest

from repro.obs import SpanRecorder, stopwatch


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with stopwatch() as watch:
            sum(range(1000))
        assert watch.seconds >= 0.0

    def test_accumulates_across_reuse(self):
        watch = stopwatch()
        with watch:
            pass
        first = watch.seconds
        with watch:
            sum(range(1000))
        assert watch.seconds >= first


class TestSpanNesting:
    def test_top_level_spans(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert [s.name for s in recorder.spans] == ["a", "b"]

    def test_children_nest_under_open_span(self):
        recorder = SpanRecorder()
        with recorder.span("parent"):
            with recorder.span("child"):
                pass
        parent = recorder.find("parent")
        assert [c.name for c in parent.children] == ["child"]
        assert recorder.find("child") is None  # not top-level

    def test_merge_accumulates_same_name_at_same_level(self):
        recorder = SpanRecorder()
        for _ in range(3):
            with recorder.span("loop"):
                sum(range(100))
        assert len(recorder.spans) == 1
        assert recorder.find("loop").seconds > 0.0

    def test_merge_false_creates_siblings(self):
        recorder = SpanRecorder()
        with recorder.span("x", merge=False):
            pass
        with recorder.span("x", merge=False):
            pass
        assert len(recorder.spans) == 2

    def test_attrs_set_on_entry_and_via_set(self):
        recorder = SpanRecorder()
        with recorder.span("s", rows_in=10) as span:
            span.set(rows_out=4)
        assert recorder.find("s").attrs == {"rows_in": 10, "rows_out": 4}

    def test_seconds_survive_exceptions(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        assert recorder.find("failing").seconds >= 0.0
        # Stack is popped: the next span is top-level, not a child.
        with recorder.span("after"):
            pass
        assert recorder.find("after") is not None


class TestSerialization:
    def test_to_list_shape(self):
        recorder = SpanRecorder()
        with recorder.span("outer", rows_in=2):
            with recorder.span("inner"):
                pass
        [outer] = recorder.to_list()
        assert outer["name"] == "outer"
        assert outer["attrs"] == {"rows_in": 2}
        assert outer["children"][0]["name"] == "inner"
        assert outer["seconds"] >= outer["children"][0]["seconds"]

    def test_seconds_helpers(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        assert recorder.seconds("a") == recorder.find("a").seconds
        assert recorder.seconds("missing") == 0.0
        assert recorder.total_seconds() == recorder.seconds("a")


class TestSpanMerge:
    def test_same_name_spans_accumulate(self):
        a, b = SpanRecorder(), SpanRecorder()
        with a.span("reduce"):
            pass
        with b.span("reduce"):
            pass
        expected = a.seconds("reduce") + b.seconds("reduce")
        assert a.merge(b) is a
        assert a.seconds("reduce") == pytest.approx(expected)
        assert len(a.spans) == 1

    def test_unseen_spans_are_deep_copied(self):
        a, b = SpanRecorder(), SpanRecorder()
        with b.span("outer"):
            with b.span("inner", rows_in=3):
                pass
        a.merge(b)
        merged = a.find("outer")
        assert merged is not b.find("outer")
        assert merged.child("inner").attrs == {"rows_in": 3}
        # Mutating the merged copy must not leak back into the source.
        merged.child("inner").set(rows_in=99)
        assert b.find("outer").child("inner").attrs["rows_in"] == 3

    def test_children_merge_recursively(self):
        a, b = SpanRecorder(), SpanRecorder()
        with a.span("stage"):
            with a.span("sub"):
                pass
        with b.span("stage"):
            with b.span("sub"):
                pass
            with b.span("other"):
                pass
        a.merge(b)
        stage = a.find("stage")
        assert {c.name for c in stage.children} == {"sub", "other"}
        assert len(stage.children) == 2

    def test_attrs_take_merged_value(self):
        a, b = SpanRecorder(), SpanRecorder()
        with a.span("stage", rows_in=1):
            pass
        with b.span("stage", rows_in=7, rows_out=2):
            pass
        a.merge(b)
        assert a.find("stage").attrs == {"rows_in": 7, "rows_out": 2}
