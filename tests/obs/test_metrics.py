"""Counters, gauges, histograms and the nearest-rank percentile helper."""

import pytest

from repro.obs import (
    MetricsRegistry,
    RuleFireCounter,
    median,
    nearest_rank_index,
    percentile,
)


class TestNearestRankIndex:
    def test_n1_everything_is_the_single_element(self):
        for q in (0, 50, 95, 100):
            assert nearest_rank_index(1, q) == 0

    def test_n2_split(self):
        assert nearest_rank_index(2, 0) == 0
        assert nearest_rank_index(2, 50) == 0
        assert nearest_rank_index(2, 51) == 1
        assert nearest_rank_index(2, 95) == 1
        assert nearest_rank_index(2, 100) == 1

    def test_n20_p95_is_index_18_not_19(self):
        # The old hand-rolled code used int(0.95 * n) == 19, i.e. the
        # maximum (p100). Nearest rank is ceil(0.95 * 20) - 1 == 18.
        assert nearest_rank_index(20, 95) == 18
        assert nearest_rank_index(20, 100) == 19

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            nearest_rank_index(0, 50)
        with pytest.raises(ValueError):
            nearest_rank_index(5, 101)
        with pytest.raises(ValueError):
            nearest_rank_index(5, -1)


class TestPercentile:
    def test_p0_is_min_p100_is_max(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.5], 95) == 7.5

    def test_two_values(self):
        assert percentile([2.0, 1.0], 50) == 1.0
        assert percentile([2.0, 1.0], 95) == 2.0

    def test_all_equal(self):
        for q in (0, 50, 95, 100):
            assert percentile([4, 4, 4, 4], q) == 4

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([30, 10, 20], 50) == 20

    def test_median_even_length_takes_lower_middle(self):
        assert median([1, 2, 3, 4]) == 2

    def test_median_odd_length(self):
        assert median([3, 1, 2]) == 2


class TestCountersAndGauges:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3.0)
        registry.set_gauge("g", 1.5)
        assert registry.gauge("g").value == 1.5

    def test_gauge_set_max(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(5)
        gauge.set_max(2)
        assert gauge.value == 5


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            registry.observe("h", v)
        histogram = registry.histogram("h")
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 4.0

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.summary() == {"count": 0, "total": 0.0}
        with pytest.raises(ValueError):
            histogram.percentile(50)

    def test_p95_with_20_observations(self):
        histogram = MetricsRegistry().histogram("h")
        for v in range(1, 21):
            histogram.observe(v)
        assert histogram.percentile(95) == 19  # not the max (20)


class TestRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 0.5)
        registry.observe("h", 1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_into_with_prefix(self):
        source = MetricsRegistry()
        source.inc("c", 3)
        source.set_gauge("g", 1.0)
        source.observe("h", 2.0)
        target = MetricsRegistry()
        target.inc("x.c", 1)
        source.merge_into(target, prefix="x.")
        assert target.counter("x.c").value == 4
        assert target.gauge("x.g").value == 1.0
        assert target.histogram("x.h").count == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.counters() == {}


class TestRuleFireCounter:
    def test_append_counts_rule_fires(self):
        registry = MetricsRegistry()
        trace = RuleFireCounter(registry)
        trace.append("filter_fusion")
        trace.append("filter_fusion")
        trace.append("project_fusion")
        assert registry.counter("optimizer.rule.filter_fusion").value == 2
        assert registry.counter("optimizer.rule.project_fusion").value == 1


class TestPerfCounterContainment:
    def test_no_perf_counter_outside_obs(self):
        # repro.obs owns all wall-clock reads; everything else must go
        # through Stopwatch/SpanRecorder so timings stay uniform.
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = [
            str(path.relative_to(src_root))
            for path in sorted(src_root.rglob("*.py"))
            if "obs" not in path.parts
            and "perf_counter" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []


class TestRegistryMerge:
    """merge(other): the aggregation orientation of merge_into."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("jobs", 3)
        b.inc("jobs", 2)
        b.inc("only_b")
        assert a.merge(b) is a
        assert a.counter("jobs").value == 5
        assert a.counter("only_b").value == 1

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("throughput", 1.0)
        b.set_gauge("throughput", 4.0)
        a.merge(b)
        assert a.gauge("throughput").value == 4.0

    def test_histograms_extend(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("seconds", 1.0)
        b.observe("seconds", 3.0)
        b.observe("seconds", 5.0)
        a.merge(b)
        assert a.histogram("seconds").count == 3
        assert a.histogram("seconds").values() == (1.0, 3.0, 5.0)

    def test_prefix_applies_to_merged_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("jobs")
        a.merge(b, prefix="fleet.")
        assert a.counter("fleet.jobs").value == 1
        assert "jobs" not in a.counters()

    def test_source_registry_unchanged(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("jobs", 1)
        b.inc("jobs", 2)
        a.merge(b)
        assert b.counter("jobs").value == 2

    def test_merge_is_associative_for_counters(self):
        parts = []
        for amount in (1, 2, 3):
            r = MetricsRegistry()
            r.inc("jobs", amount)
            parts.append(r)
        left = MetricsRegistry().merge(parts[0]).merge(parts[1]).merge(parts[2])
        right = MetricsRegistry()
        pair = MetricsRegistry().merge(parts[1]).merge(parts[2])
        right.merge(parts[0]).merge(pair)
        assert left.counters() == right.counters()
