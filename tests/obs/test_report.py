"""RunReport serialization and the repro.obs/1 schema validation."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    REPORT_FORMAT,
    ReportSchemaError,
    RunReport,
    validate_report,
)


def make_report():
    report = RunReport("test.run")
    report.set_meta(dataset="SYN")
    with report.span("stage", rows_in=10) as span:
        span.set(rows_out=5)
    report.metrics.inc("executor.retries", 2)
    report.metrics.set_gauge("selectivity", 0.5)
    report.metrics.observe("task_seconds", 0.01)
    return report


class TestRunReport:
    def test_to_dict_is_valid(self):
        payload = make_report().to_dict()
        assert validate_report(payload) is payload
        assert payload["format"] == REPORT_FORMAT
        assert payload["meta"] == {"dataset": "SYN"}
        assert payload["counters"]["executor.retries"] == 2

    def test_json_roundtrip_validates(self):
        text = make_report().to_json()
        payload = validate_report(text)
        assert payload["name"] == "test.run"

    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "report.json"
        make_report().write(str(path))
        payload = json.loads(path.read_text())
        validate_report(payload)

    def test_to_text_mentions_spans_and_metrics(self):
        text = make_report().to_text()
        assert "test.run" in text
        assert "stage" in text
        assert "executor.retries" in text
        assert "task_seconds" in text

    def test_merge_registry(self):
        report = RunReport("r")
        other = MetricsRegistry()
        other.inc("executor.tasks_run", 7)
        report.merge_registry(other)
        assert report.metrics.counter("executor.tasks_run").value == 7


class TestValidateReport:
    def test_rejects_wrong_format_tag(self):
        payload = make_report().to_dict()
        payload["format"] = "something/else"
        with pytest.raises(ReportSchemaError):
            validate_report(payload)

    def test_rejects_negative_span_seconds(self):
        payload = make_report().to_dict()
        payload["spans"][0]["seconds"] = -1.0
        with pytest.raises(ReportSchemaError):
            validate_report(payload)

    def test_rejects_non_integer_counter(self):
        payload = make_report().to_dict()
        payload["counters"]["executor.retries"] = "two"
        with pytest.raises(ReportSchemaError):
            validate_report(payload)

    def test_rejects_missing_spans(self):
        payload = make_report().to_dict()
        del payload["spans"]
        with pytest.raises(ReportSchemaError):
            validate_report(payload)

    def test_rejects_invalid_json_text(self):
        with pytest.raises(ReportSchemaError):
            validate_report("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ReportSchemaError):
            validate_report([1, 2, 3])

    def test_error_lists_every_problem(self):
        payload = make_report().to_dict()
        payload["format"] = "bad"
        payload["name"] = ""
        try:
            validate_report(payload)
        except ReportSchemaError as exc:
            message = str(exc)
        assert "format" in message and "name" in message

    def test_nested_span_children_checked(self):
        payload = make_report().to_dict()
        payload["spans"][0]["children"] = [{"name": "", "seconds": 0.0}]
        with pytest.raises(ReportSchemaError):
            validate_report(payload)


class TestReportMerge:
    def test_merge_combines_metrics_and_spans(self):
        a = make_report()
        b = make_report()
        before_seconds = a.spans.seconds("stage")
        assert a.merge(b) is a
        assert a.metrics.counter("executor.retries").value == 4
        assert a.metrics.histogram("task_seconds").count == 2
        assert a.spans.seconds("stage") >= before_seconds
        assert len(a.spans.spans) == 1

    def test_merge_keeps_existing_meta(self):
        a = RunReport("fleet").set_meta(dataset="SYN")
        b = RunReport("job").set_meta(dataset="LIG", trace="t1.trc")
        a.merge(b)
        assert a.meta == {"dataset": "SYN", "trace": "t1.trc"}

    def test_merge_prefix_scopes_metric_names(self):
        a = RunReport("fleet")
        b = RunReport("job")
        b.metrics.inc("rows_out", 5)
        a.merge(b, prefix="job.")
        assert a.metrics.counter("job.rows_out").value == 5

    def test_merged_report_still_validates(self):
        a = make_report()
        a.merge(make_report())
        assert validate_report(a.to_dict())
