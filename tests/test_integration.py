"""Cross-module integration: the full Fig. 1 story in one flow.

Simulate -> record to file -> reload -> DBC round-trip of the database
-> parameterize from a JSON document -> run Algorithm 1 -> downstream
mining -- checking the contracts *between* subsystems.
"""

import json

import pytest

from repro.core import PreprocessingPipeline
from repro.core.params import config_from_dict
from repro.datasets import SYN_SPEC, build_dataset
from repro.engine import EngineContext, TableStore
from repro.mining import AssociationRuleMiner, TransitionGraph, find_outliers
from repro.network.dbcio import dumps_database, loads_database
from repro.tracefile import binlog


@pytest.fixture(scope="module")
def flow(tmp_path_factory):
    """Run the whole chain once; tests inspect its artifacts."""
    tmp = tmp_path_factory.mktemp("integration")
    bundle = build_dataset(SYN_SPEC)
    ctx = EngineContext.serial()

    # 1. Simulate and persist the raw trace.
    trace_path = tmp / "journey.btrc"
    records = bundle.byte_records(40.0)
    binlog.dump_records(records, trace_path)

    # 2. Reload the trace and round-trip the database through DBC.
    k_b = binlog.load_table(ctx, trace_path)
    databases = {}
    for channel in bundle.database.channels():
        text = dumps_database(bundle.database, channels=[channel])
        databases[channel] = loads_database(text)

    # 3. Parameterize from a JSON document (as a user would).
    document = {
        "signals": list(bundle.signal_ids),
        "constraints": [
            {
                "signal": s,
                "type": "unchanged_within_cycle",
                "cycle_time": bundle.cycle_times[s],
            }
            for s in bundle.signal_ids
        ],
        "extensions": [
            {"signal": bundle.alpha_ids[0], "type": "gap"},
        ],
        "branch": {"sax_alphabet": 3},
    }
    config = config_from_dict(
        json.loads(json.dumps(document)), bundle.database
    )

    # 4. Run the pipeline and persist the output.
    result = PreprocessingPipeline(config).run(k_b)
    store = TableStore(tmp / "store")
    store.write("r_out", result.r_out)

    return {
        "bundle": bundle,
        "ctx": ctx,
        "records": records,
        "k_b": k_b,
        "databases": databases,
        "result": result,
        "store": store,
        "tmp": tmp,
    }


class TestTraceFileChain:
    def test_reloaded_trace_identical(self, flow):
        assert flow["k_b"].count() == len(flow["records"])
        assert sorted(flow["k_b"].collect()) == sorted(flow["records"])


class TestDbcChain:
    def test_dbc_databases_decode_recorded_payloads(self, flow):
        """A database round-tripped through DBC must decode the recorded
        trace identically to the original database."""
        bundle = flow["bundle"]
        checked = 0
        for t, payload, b_id, m_id, _mi in flow["records"][:500]:
            try:
                clone_msg = flow["databases"][b_id].message(b_id, m_id)
            except KeyError:
                continue  # channel round-trip keeps only its messages
            original_msg = bundle.database.message(b_id, m_id)
            assert clone_msg.decode(payload) == original_msg.decode(payload)
            checked += 1
        assert checked > 100


class TestPipelineChain:
    def test_every_signal_classified(self, flow):
        summary = flow["result"].classification_summary()
        assert set(summary) == set(flow["bundle"].signal_ids)

    def test_branch_distribution_matches_table5(self, flow):
        counts = {"alpha": 0, "beta": 0, "gamma": 0}
        for _dt, branch in flow["result"].classification_summary().values():
            counts[branch] += 1
        spec = flow["bundle"].spec
        assert counts == {
            "alpha": spec.alpha_types,
            "beta": spec.beta_types,
            "gamma": spec.gamma_types,
        }

    def test_gap_extension_produced(self, flow):
        s_id = flow["bundle"].alpha_ids[0]
        w = flow["result"].outcomes[s_id].extension_table
        assert w.count() > 0

    def test_persisted_output_reloads(self, flow):
        loaded = flow["store"].read(flow["ctx"], "r_out")
        assert loaded.count() == flow["result"].r_out.count()
        assert loaded.columns == flow["result"].r_out.columns


class TestMiningChain:
    def test_state_representation_feeds_miner(self, flow):
        bundle = flow["bundle"]
        columns = list(bundle.gamma_ids[:2]) + [bundle.beta_ids[0]]
        rep = flow["result"].state_representation(columns)
        assert len(rep) > 10
        miner = AssociationRuleMiner(min_support=0.05, min_confidence=0.6)
        rules = miner.mine(rep)  # must not raise; rules may be few
        assert isinstance(rules, list)

    def test_transition_graph_builds(self, flow):
        bundle = flow["bundle"]
        rep = flow["result"].state_representation([bundle.gamma_ids[0]])
        graph = TransitionGraph.from_representation(rep)
        assert graph.total_transitions > 0

    def test_outlier_findings_reference_real_rows(self, flow):
        findings = find_outliers(flow["result"])
        # α behaviours inject outliers at 0.3%; 40 s of fast signals
        # should surface at least one.
        assert findings
        r_out_rows = set(flow["result"].r_out.collect())
        for f in findings:
            assert any(
                r[0] == f.timestamp and str(r[1]) == f.signal_id
                for r in r_out_rows
            )


class TestDeterminismAcrossTheChain:
    def test_full_rerun_is_identical(self, flow, tmp_path):
        bundle = build_dataset(SYN_SPEC)
        ctx = EngineContext.serial()
        records = bundle.byte_records(40.0)
        assert records == flow["records"]
