"""Degradation harness: severity sweeps, report schema, CLI."""

import json

import pytest

from repro.core.pipeline import PipelineConfig
from repro.datasets import SPECS, build_dataset
from repro.obs import ReportSchemaError
from repro.testing.degradation import (
    DEGRADE_REPORT_FORMAT,
    KNOBS,
    DegradationError,
    DegradationReport,
    degradation_summary,
    lossy_config,
    run_degradation,
    validate_degrade_report,
)
SWEEP_KNOBS = (
    "frame_drop", "exact_duplicate", "payload_truncation", "clock_skew",
)


@pytest.fixture(scope="module")
def bundle():
    return build_dataset(SPECS["SYN"])


@pytest.fixture(scope="module")
def records(bundle):
    return bundle.byte_records(6.0)


@pytest.fixture(scope="module")
def config(bundle):
    return PipelineConfig(
        catalog=bundle.catalog(),
        constraints=bundle.default_constraints(),
    )


@pytest.fixture(scope="module")
def report(records, config):
    return run_degradation(
        records,
        config,
        knobs={name: KNOBS[name] for name in SWEEP_KNOBS},
        severities=(0.0, 1.0),
        seed=3,
    )


class TestSeverityZeroGate:
    """Severity 0 must reproduce the perfect run byte for byte."""

    @pytest.mark.parametrize("knob", SWEEP_KNOBS)
    def test_byte_identical(self, report, knob):
        (point,) = [
            p for p in report.points(knob) if p["severity"] == 0.0
        ]
        assert point["byte_identical"] is True
        assert point["records_out"] == point["records_in"]
        assert point["corruption_events"] == 0
        assert point["signal_recovery"] == 1.0
        assert point["spurious_rate"] == 0.0
        assert point["reduction_ratio_delta"] == 0.0
        assert point["r_out_recovery"] == 1.0
        assert point["dedup_correctness"] == 1.0


class TestSweepMetrics:
    def test_every_knob_and_severity_present(self, report):
        assert len(report.curves) == len(SWEEP_KNOBS) * 2
        for knob in SWEEP_KNOBS:
            assert sorted(
                p["severity"] for p in report.points(knob)
            ) == [0.0, 1.0]

    def test_frame_drop_loses_signal_rows(self, report):
        (point,) = [
            p for p in report.points("frame_drop") if p["severity"] == 1.0
        ]
        assert point["corruption_events"] > 0
        assert point["records_out"] < point["records_in"]
        assert point["signal_recovery"] < 1.0
        assert point["spurious_rate"] == 0.0

    def test_exact_duplicates_fully_absorbed(self, report):
        """Satellite fix: byte-identical gateway replays must not change
        the pipeline output at all."""
        (point,) = [
            p
            for p in report.points("exact_duplicate")
            if p["severity"] == 1.0
        ]
        assert point["corruption_events"] > 0
        assert point["exact_duplicates_dropped"] > 0
        assert point["signal_recovery"] == 1.0
        assert point["spurious_rate"] == 0.0
        assert point["r_out_recovery"] == 1.0
        assert point["dedup_correctness"] == 1.0
        assert point["reduction_ratio_delta"] == 0.0

    def test_truncation_skipped_not_fatal(self, report):
        """Satellite fix: truncated payloads surface as a counter, never
        as an aborted run or garbage values."""
        (point,) = [
            p
            for p in report.points("payload_truncation")
            if p["severity"] == 1.0
        ]
        assert point["corruption_events"] > 0
        assert point["short_payload_skipped"] > 0
        assert point["spurious_rate"] == 0.0

    def test_gauges_mirror_curves(self, report):
        gauges = report.metrics.gauges()
        for point in report.curves:
            name = "degrade.{}.{:g}.signal_recovery".format(
                point["knob"], point["severity"]
            )
            assert gauges[name] == point["signal_recovery"]

    def test_baseline_summary(self, report, records):
        assert report.baseline["records"] == len(records)
        assert report.baseline["k_s_rows"] > 0
        assert report.baseline["r_out_rows"] > 0

    def test_summary_text(self, report):
        text = degradation_summary(report)
        for knob in SWEEP_KNOBS:
            assert knob in text
        assert "yes" in text and "no" in text


class TestReportSchema:
    def test_round_trip_validates(self, report):
        payload = validate_degrade_report(report.to_dict())
        assert payload["format"] == DEGRADE_REPORT_FORMAT
        validate_degrade_report(report.to_json())

    def test_write_and_reload(self, report, tmp_path):
        path = report.write(tmp_path / "degrade.json")
        payload = validate_degrade_report(
            json.loads(path.read_text())
        )
        assert len(payload["curves"]) == len(report.curves)

    def test_rejects_wrong_format(self, report):
        payload = report.to_dict()
        payload["format"] = "repro.obs/1"
        with pytest.raises(ReportSchemaError, match="format"):
            validate_degrade_report(payload)

    def test_rejects_missing_baseline(self, report):
        payload = report.to_dict()
        del payload["baseline"]
        with pytest.raises(ReportSchemaError, match="baseline"):
            validate_degrade_report(payload)

    def test_rejects_bad_curve_point(self, report):
        payload = report.to_dict()
        payload["curves"][0]["signal_recovery"] = 1.5
        with pytest.raises(ReportSchemaError, match="signal_recovery"):
            validate_degrade_report(payload)
        payload = report.to_dict()
        payload["curves"][0]["byte_identical"] = "yes"
        with pytest.raises(ReportSchemaError, match="byte_identical"):
            validate_degrade_report(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ReportSchemaError):
            validate_degrade_report([])
        with pytest.raises(ReportSchemaError):
            validate_degrade_report("not json {")

    def test_empty_report_shape(self):
        report = DegradationReport()
        payload = report.to_dict()
        # An empty report lacks baseline counts, so it must NOT validate:
        # the schema demands at least the baseline summary.
        with pytest.raises(ReportSchemaError):
            validate_degrade_report(payload)


class TestHarnessValidation:
    def test_rejects_empty_knobs(self, records, config):
        with pytest.raises(DegradationError):
            run_degradation(records, config, knobs={})

    def test_rejects_empty_severities(self, records, config):
        with pytest.raises(DegradationError):
            run_degradation(records, config, severities=())

    def test_rejects_negative_severity(self, records, config):
        with pytest.raises(DegradationError):
            run_degradation(records, config, severities=(-1.0,))

    def test_lossy_config(self, config):
        hardened = lossy_config(config)
        assert hardened.short_payload == "skip"
        assert lossy_config(hardened) is hardened
        assert config.short_payload == "raise"


class TestDegradeCli:
    @pytest.fixture
    def trace(self, records, tmp_path):
        from repro.tracefile import binlog

        path = tmp_path / "journey.btrc"
        binlog.dump_records(records, path)
        return path

    def test_smoke(self, trace, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        out_report = tmp_path / "degrade.json"
        code = main(
            [
                "degrade", "--dataset", "SYN", "--trace", str(trace),
                "--severities", "0,1", "--knobs",
                "frame_drop,exact_duplicate", "--out-report",
                str(out_report),
            ],
            out=out,
        )
        assert code == 0
        payload = validate_degrade_report(
            json.loads(out_report.read_text())
        )
        assert {p["knob"] for p in payload["curves"]} == {
            "frame_drop", "exact_duplicate",
        }
        assert "frame_drop" in out.getvalue()
        assert "baseline:" in out.getvalue()

    def test_unknown_knob_is_structured_error(self, trace, capsys):
        from repro.cli import main

        code = main(
            [
                "degrade", "--dataset", "SYN", "--trace", str(trace),
                "--knobs", "nope",
            ]
        )
        assert code == 2
        assert "error: degrade:" in capsys.readouterr().err

    def test_bad_severities_is_structured_error(self, trace, capsys):
        from repro.cli import main

        code = main(
            [
                "degrade", "--dataset", "SYN", "--trace", str(trace),
                "--severities", "0,zap",
            ]
        )
        assert code == 2
        assert "error: degrade:" in capsys.readouterr().err

    def test_missing_trace_is_structured_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "degrade", "--dataset", "SYN", "--trace",
                str(tmp_path / "absent.btrc"),
            ]
        )
        assert code == 2
        assert "error: trace:" in capsys.readouterr().err
