"""Shared fixtures: engine contexts and the wiper example of Fig. 2."""

from __future__ import annotations

import pytest

from repro.engine import EngineContext
from repro.network import MessageDefinition, NetworkDatabase, SignalDefinition
from repro.protocols import SignalEncoding
from repro.vehicle import Cyclic, Ecu, Gateway, Route, VehicleSimulation
from repro.vehicle import behaviors as bhv


@pytest.fixture
def ctx():
    """A serial engine context with a few partitions."""
    return EngineContext.serial(default_parallelism=3)


@pytest.fixture
def wiper_database():
    """The paper's running example: wiper position/velocity on FA-CAN
    (Fig. 2) plus heater (LIN ordinal) and belt (binary)."""
    wpos = SignalDefinition(
        "wpos", SignalEncoding(0, 16, scale=0.5), unit="deg", data_class="numeric"
    )
    wvel = SignalDefinition(
        "wvel", SignalEncoding(16, 16), unit="rad/min", data_class="numeric"
    )
    wiper = MessageDefinition(
        "WIPER_STATUS", 3, "FC", "CAN", 4, (wpos, wvel), cycle_time=0.1
    )
    heat = SignalDefinition(
        "heat",
        SignalEncoding(
            0,
            3,
            value_table=(
                (0, "off"),
                (1, "low"),
                (2, "medium"),
                (3, "high"),
                (7, "invalid"),
            ),
        ),
        data_class="ordinal",
    )
    heater = MessageDefinition(
        "HEATER", 0x11, "K-LIN", "LIN", 1, (heat,), cycle_time=0.5
    )
    belt = SignalDefinition(
        "belt",
        SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
        data_class="binary",
    )
    belt_msg = MessageDefinition(
        "BELT", 7, "FC", "CAN", 1, (belt,), cycle_time=0.2
    )
    return NetworkDatabase((wiper, heater, belt_msg))


@pytest.fixture
def wiper_simulation(wiper_database):
    """A deterministic vehicle around the wiper database, with the wiper
    message gateway-routed from FC onto BC."""
    wiper_msg = wiper_database.message_by_name("WIPER_STATUS")
    heater_msg = wiper_database.message_by_name("HEATER")
    belt_msg = wiper_database.message_by_name("BELT")

    wiper_ecu = Ecu("WiperEcu").add_transmission(
        wiper_msg,
        {
            "wpos": bhv.Sawtooth(amplitude=90.0, period=4.0),
            "wvel": bhv.Constant(1),
        },
        Cyclic(0.1, seed=1),
    )
    body_ecu = (
        Ecu("BodyEcu")
        .add_transmission(
            heater_msg,
            {"heat": bhv.OrdinalSteps(("off", "low", "medium", "high"), 8.0)},
            Cyclic(0.5, seed=2),
        )
        .add_transmission(
            belt_msg,
            {"belt": bhv.Toggle(20.0, "ON", "OFF")},
            Cyclic(0.2, seed=3),
        )
    )
    sim = VehicleSimulation(wiper_database, [wiper_ecu, body_ecu])
    sim.add_gateway(Gateway("ZGW", (Route("FC", 3, "BC", delay=0.002),)))
    return sim


@pytest.fixture
def wiper_trace(ctx, wiper_simulation):
    """A 30-second K_b table of the wiper vehicle."""
    return wiper_simulation.record_table(ctx, 30.0).cache()
