"""Trace file formats (ASCII and binary logs) for raw ``K_b`` traces."""

from repro.tracefile import asciilog, binlog
from repro.tracefile.asciilog import TraceFormatError
from repro.tracefile.binlog import BinaryTraceError

__all__ = ["asciilog", "binlog", "TraceFormatError", "BinaryTraceError"]
