"""Trace file formats (ASCII, binary and columnar logs) for raw ``K_b``."""

from repro.tracefile import asciilog, binlog, colbin
from repro.tracefile.asciilog import TraceFormatError
from repro.tracefile.binlog import BinaryTraceError
from repro.tracefile.colbin import ColumnarTraceError


def codec_for(path):
    """Pick the trace codec from the file suffix.

    ``.btrc`` is the record-major binary format, ``.ctrc`` the
    mmap-able columnar format; everything else parses as ASCII.
    """
    name = str(path)
    if name.endswith(".btrc"):
        return binlog
    if name.endswith(".ctrc"):
        return colbin
    return asciilog


__all__ = [
    "asciilog",
    "binlog",
    "colbin",
    "codec_for",
    "TraceFormatError",
    "BinaryTraceError",
    "ColumnarTraceError",
]
