"""Trace file formats (ASCII and binary logs) for raw ``K_b`` traces."""

from repro.tracefile import asciilog, binlog
from repro.tracefile.asciilog import TraceFormatError
from repro.tracefile.binlog import BinaryTraceError


def codec_for(path):
    """Pick the trace codec from the file suffix (.btrc binary, else text)."""
    return binlog if str(path).endswith(".btrc") else asciilog


__all__ = [
    "asciilog",
    "binlog",
    "codec_for",
    "TraceFormatError",
    "BinaryTraceError",
]
