"""Columnar binary trace log format (mmap-able).

The record-major format of :mod:`repro.tracefile.binlog` must decode
every payload byte just to read a timestamp, so a preselection scan --
which only needs ``(t, b_id, m_id)`` -- pays the full decode cost of
the trace. This sibling format stores the same byte records
column-major in fixed-stride sections so a reader can ``mmap`` the file
and hand out zero-copy ``memoryview`` columns: scans touch only the
sections they name, and payload / ``m_info`` cells are materialized
per-index, only when asked for.

Layout (all little-endian, sections 8-byte aligned)::

    header:   8s magic | H version | Q record count | Q channel count
              | 9 x Q section offset table
    sections: 0 t            record count x d
              1 m_id         record count x Q
              2 channel idx  record count x H   (index into section 3)
              3 channel dict channel count x (H length + utf-8)
              4 payload offsets   (record count + 1) x Q
              5 payload blob      densely packed payload bytes
              6 m_info offsets    (record count + 1) x Q
              7 m_info blob       packed info tuples (binlog v1 codec)
    offset 8 is the end of section 7; every section is bounds-checked
    against its successor before a single struct unpack happens.

Channels are dictionary-encoded (automotive traces carry a handful of
bus names across millions of frames); ``m_info`` entries reuse the
binlog v1 key/tag/value codec byte for byte, so the two formats
round-trip identical record tuples -- float timestamps bit-exactly.

Malformed files (truncated sections, corrupt magic, offsets out of
order or out of bounds, bad channel indices) raise
:class:`ColumnarTraceError`, a :class:`~repro.engine.errors.PlanError`
subclass -- never a bare ``struct.error``.
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path

from repro.engine.columnar import BytesColumn, ColumnarPartition
from repro.engine.errors import PlanError

MAGIC = b"IVNCOLTR"
VERSION = 1

#: Number of entries in the header's section offset table: eight
#: section starts plus the end offset of the last section.
_NUM_OFFSETS = 9

_HEADER = struct.Struct("<8sHQQ" + "Q" * _NUM_OFFSETS)

_TAG_BOOL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3

_MAX_CHANNELS = 0xFFFF


class ColumnarTraceError(PlanError):
    """Raised for malformed columnar trace files."""


def _align(offset):
    return (offset + 7) & ~7


# -- m_info codec (byte-identical to binlog v1 info entries) -------------

def _pack_info(m_info):
    parts = [struct.pack("<B", len(m_info))]
    for key, value in m_info:
        key_data = str(key).encode("utf-8")
        parts.append(struct.pack("<B", len(key_data)))
        parts.append(key_data)
        if isinstance(value, bool):
            parts.append(struct.pack("<BB", _TAG_BOOL, int(value)))
        elif isinstance(value, int):
            parts.append(struct.pack("<Bq", _TAG_INT, value))
        elif isinstance(value, float):
            parts.append(struct.pack("<Bd", _TAG_FLOAT, value))
        else:
            data = str(value).encode("utf-8")
            parts.append(struct.pack("<BH", _TAG_STR, len(data)) + data)
    return b"".join(parts)


class _InfoDecoder:
    """Bounds-checked cursor over one packed info cell."""

    __slots__ = ("data", "pos")

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise ColumnarTraceError("truncated m_info entry")
        out = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return out

    def take_bytes(self, n):
        if self.pos + n > len(self.data):
            raise ColumnarTraceError("truncated m_info entry")
        out = bytes(self.data[self.pos : self.pos + n])
        self.pos += n
        return out


def _unpack_info(data):
    decoder = _InfoDecoder(data)
    (count,) = decoder.take("<B")
    info = []
    for _unused in range(count):
        (key_length,) = decoder.take("<B")
        key = decoder.take_bytes(key_length).decode("utf-8")
        (tag,) = decoder.take("<B")
        if tag == _TAG_BOOL:
            (v,) = decoder.take("<B")
            value = bool(v)
        elif tag == _TAG_INT:
            (v,) = decoder.take("<q")
            value = v
        elif tag == _TAG_FLOAT:
            (v,) = decoder.take("<d")
            value = v
        elif tag == _TAG_STR:
            (length,) = decoder.take("<H")
            value = decoder.take_bytes(length).decode("utf-8")
        else:
            raise ColumnarTraceError("unknown value tag {}".format(tag))
        info.append((key, value))
    return tuple(info)


class PackedInfoColumn:
    """An all-``m_info`` column decoded per cell from a packed blob.

    Shares the offsets-plus-blob shape of :class:`BytesColumn`; cells
    decode to the same info tuples :mod:`binlog` produces, but only the
    cells actually touched are decoded.
    """

    __slots__ = ("offsets", "blob")

    def __init__(self, offsets, blob):
        if len(offsets) == 0:
            raise ColumnarTraceError("info offsets must not be empty")
        self.offsets = offsets
        self.blob = blob

    def __len__(self):
        return len(self.offsets) - 1

    def __getitem__(self, index):
        offsets = self.offsets
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("PackedInfoColumn index out of range")
        return _unpack_info(self.blob[offsets[index] : offsets[index + 1]])

    def __iter__(self):
        blob = self.blob
        offsets = self.offsets
        start = offsets[0]
        for end in offsets[1:]:
            yield _unpack_info(blob[start:end])
            start = end

    def __reduce__(self):
        from array import array

        offsets = self.offsets
        if isinstance(offsets, memoryview):
            offsets = array(offsets.format, offsets)
        return (PackedInfoColumn, (offsets, bytes(self.blob)))


# -- writer --------------------------------------------------------------

def dump_records(records, path):
    """Write byte-record tuples to *path* column-major; returns count."""
    path = Path(path)
    records = list(records)
    count = len(records)

    times = bytearray()
    m_ids = bytearray()
    channel_index = {}
    channel_indices = bytearray()
    payload_offsets = bytearray(struct.pack("<Q", 0))
    payload_blob = bytearray()
    info_offsets = bytearray(struct.pack("<Q", 0))
    info_blob = bytearray()
    for t, payload, b_id, m_id, m_info in records:
        times += struct.pack("<d", float(t))
        m_ids += struct.pack("<Q", int(m_id))
        channel = str(b_id)
        index = channel_index.get(channel)
        if index is None:
            index = channel_index[channel] = len(channel_index)
            if index > _MAX_CHANNELS:
                raise ColumnarTraceError(
                    "too many distinct channels (> {})".format(
                        _MAX_CHANNELS + 1
                    )
                )
        channel_indices += struct.pack("<H", index)
        payload_blob += bytes(payload)
        payload_offsets += struct.pack("<Q", len(payload_blob))
        info_blob += _pack_info(m_info)
        info_offsets += struct.pack("<Q", len(info_blob))

    dictionary = bytearray()
    for channel in channel_index:
        data = channel.encode("utf-8")
        dictionary += struct.pack("<H", len(data))
        dictionary += data

    sections = [
        bytes(times),
        bytes(m_ids),
        bytes(channel_indices),
        bytes(dictionary),
        bytes(payload_offsets),
        bytes(payload_blob),
        bytes(info_offsets),
        bytes(info_blob),
    ]
    offsets = []
    cursor = _align(_HEADER.size)
    for section in sections:
        offsets.append(cursor)
        cursor += len(section)
        cursor = _align(cursor)
    # The end offset is the true end of the last section, not its
    # aligned successor -- padding never counts as data.
    offsets.append(offsets[-1] + len(sections[-1]))

    with open(path, "wb") as fh:
        fh.write(
            _HEADER.pack(MAGIC, VERSION, count, len(channel_index), *offsets)
        )
        position = _HEADER.size
        for start, section in zip(offsets, sections):
            fh.write(b"\x00" * (start - position))
            fh.write(section)
            position = start + len(section)
    return count


# -- reader --------------------------------------------------------------

class ColumnarTraceReader:
    """Zero-copy column access over an mmap'ed columnar trace file.

    All header and section bounds are validated once, up front; after
    construction every accessor is a view slice, not a parse. Keep the
    reader (or the views it handed out) alive while columns are in use
    -- the mmap stays open as long as any view references it.
    """

    def __init__(self, path):
        self.path = Path(path)
        try:
            with open(self.path, "rb") as fh:
                try:
                    buffer = mmap.mmap(
                        fh.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except ValueError:
                    # Zero-length files cannot be mapped; an empty
                    # buffer fails header validation below with the
                    # same structured error as any truncated file.
                    buffer = fh.read()
        except OSError as exc:
            raise ColumnarTraceError(
                "cannot open columnar trace {!r}: {}".format(
                    str(self.path), exc
                )
            )
        self._buffer = buffer
        view = memoryview(buffer)
        if len(view) < _HEADER.size:
            raise ColumnarTraceError(
                "truncated file: {} bytes is smaller than the {}-byte "
                "header".format(len(view), _HEADER.size)
            )
        fields = _HEADER.unpack_from(view, 0)
        magic, version, count, num_channels = fields[:4]
        offsets = fields[4:]
        if magic != MAGIC:
            raise ColumnarTraceError("bad magic {!r}".format(magic))
        if version != VERSION:
            raise ColumnarTraceError(
                "unsupported version {}".format(version)
            )
        if offsets[0] < _HEADER.size:
            raise ColumnarTraceError("section table overlaps header")
        for left, right in zip(offsets, offsets[1:]):
            if right < left:
                raise ColumnarTraceError("section offsets out of order")
        if offsets[-1] > len(view):
            raise ColumnarTraceError(
                "truncated file: sections end at {} but file has only "
                "{} bytes".format(offsets[-1], len(view))
            )
        self._count = count
        self._offsets = offsets
        self._view = view
        self.channels = self._parse_channels(num_channels)
        self._times = self._fixed_section(0, "d", count)
        self._m_ids = self._fixed_section(1, "Q", count)
        self._channel_indices = self._fixed_section(2, "H", count)
        self._payload_offsets = self._fixed_section(4, "Q", count + 1)
        self._payload_blob = self._section(5)
        self._info_offsets = self._fixed_section(6, "Q", count + 1)
        self._info_blob = self._section(7)
        self._check_offset_plane(self._payload_offsets, self._payload_blob,
                                 "payload")
        self._check_offset_plane(self._info_offsets, self._info_blob,
                                 "m_info")
        for index in self._channel_indices:
            if index >= len(self.channels):
                raise ColumnarTraceError(
                    "channel index {} out of range (dictionary has {} "
                    "entries)".format(index, len(self.channels))
                )

    def _section(self, number):
        return self._view[self._offsets[number] : self._offsets[number + 1]]

    def _fixed_section(self, number, fmt, expected):
        raw = self._section(number)
        itemsize = struct.calcsize("<" + fmt)
        need = expected * itemsize
        if len(raw) < need:
            raise ColumnarTraceError(
                "truncated section {}: expected {} bytes for {} "
                "entries, found {}".format(number, need, expected, len(raw))
            )
        return raw[:need].cast(fmt)

    def _parse_channels(self, num_channels):
        raw = self._section(3)
        channels = []
        position = 0
        for _unused in range(num_channels):
            if position + 2 > len(raw):
                raise ColumnarTraceError("truncated channel dictionary")
            (length,) = struct.unpack_from("<H", raw, position)
            position += 2
            if position + length > len(raw):
                raise ColumnarTraceError("truncated channel dictionary")
            channels.append(bytes(raw[position : position + length])
                            .decode("utf-8"))
            position += length
        return tuple(channels)

    def _check_offset_plane(self, offsets, blob, label):
        previous = 0
        for offset in offsets:
            if offset < previous:
                raise ColumnarTraceError(
                    "{} offsets out of order".format(label)
                )
            previous = offset
        if offsets[0] != 0 or offsets[-1] > len(blob):
            raise ColumnarTraceError(
                "{} offsets exceed their blob ({} > {})".format(
                    label, offsets[-1], len(blob)
                )
            )

    # -- columns (zero-copy where the layout allows) ----------------------
    def __len__(self):
        return self._count

    def times(self):
        """The ``t`` column as a ``memoryview('d')`` -- no decode."""
        return self._times

    def message_ids(self):
        """The ``m_id`` column as a ``memoryview('Q')`` -- no decode."""
        return self._m_ids

    def channel_indices(self):
        """Dictionary indices of the ``b_id`` column (``memoryview('H')``)."""
        return self._channel_indices

    def channel_column(self):
        """The ``b_id`` column as shared ``str`` objects."""
        channels = self.channels
        return [channels[i] for i in self._channel_indices]

    def payload_column(self):
        """The payload column as a lazily-materializing :class:`BytesColumn`."""
        return BytesColumn(self._payload_offsets, self._payload_blob)

    def info_column(self):
        """The ``m_info`` column, decoded per cell on access."""
        return PackedInfoColumn(self._info_offsets, self._info_blob)

    # -- records ----------------------------------------------------------
    def record(self, index):
        """Materialize byte record *index* as a ``(t, l, b_id, m_id, m_info)``
        tuple (decoding exactly one payload and one info cell)."""
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("record index out of range")
        payload = bytes(
            self._payload_blob[
                self._payload_offsets[index] : self._payload_offsets[index + 1]
            ]
        )
        info = _unpack_info(
            self._info_blob[
                self._info_offsets[index] : self._info_offsets[index + 1]
            ]
        )
        return (
            self._times[index],
            payload,
            self.channels[self._channel_indices[index]],
            self._m_ids[index],
            info,
        )

    def select(self, indices):
        """Materialize the records at *indices*, in the given order.

        This is the preselection contract: a scan decides survival from
        the ``(m_id, b_id)`` views alone, then pays payload/info decode
        for the survivors only.
        """
        return [self.record(i) for i in indices]

    def records(self):
        return self.select(range(self._count))

    # -- engine integration ------------------------------------------------
    def partitions(self, num_partitions):
        """Slice the trace into contiguous :class:`ColumnarPartition` blocks.

        Fixed-stride columns and both offset planes are sliced as
        sub-views -- no copies; each partition stays backed by the mmap.
        """
        if num_partitions < 1:
            raise ColumnarTraceError("num_partitions must be positive")
        count = self._count
        base, extra = divmod(count, num_partitions)
        parts = []
        start = 0
        for i in range(num_partitions):
            size = base + (1 if i < extra else 0)
            end = start + size
            channels = self.channels
            columns = [
                self._times[start:end],
                BytesColumn(
                    self._payload_offsets[start : end + 1],
                    self._payload_blob,
                ),
                [channels[j] for j in self._channel_indices[start:end]],
                self._m_ids[start:end],
                PackedInfoColumn(
                    self._info_offsets[start : end + 1], self._info_blob
                ),
            ]
            parts.append(ColumnarPartition(columns, size))
            start = end
        return parts

    def close(self):
        """Release the mapping once no exported column views remain."""
        self._view.release()
        if isinstance(self._buffer, mmap.mmap):
            try:
                self._buffer.close()
            except BufferError:
                # Column views are still alive; the map closes when
                # they are garbage-collected.
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def load_records(path):
    """Read byte-record tuples back from *path* (full materialization)."""
    reader = ColumnarTraceReader(path)
    return reader.records()


def dump_table(table, path):
    """Write a K_b engine table to *path* in time order."""
    return dump_records(table.sort(["t"]).collect(), path)


def load_table(context, path, num_partitions=None):
    """Load a columnar trace as a K_b table over mmap-backed partitions.

    The Source node holds :class:`ColumnarPartition` objects whose
    ``(t, m_id)`` columns are raw file views; nothing is decoded until
    a task touches the payload or info columns.
    """
    from repro.protocols.frames import BYTE_RECORD_COLUMNS

    if num_partitions is None:
        num_partitions = context.default_parallelism
    reader = ColumnarTraceReader(path)
    return context.table_from_columnar(
        list(BYTE_RECORD_COLUMNS),
        reader.partitions(max(num_partitions, 1)),
    )
