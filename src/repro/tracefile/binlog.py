"""Binary trace log format (BLF-style).

A compact binary container for raw traces ``K_b``, modelled on the
binary logging formats automotive loggers produce (e.g. Vector BLF):
a magic header, a record count and densely packed records. Unlike the
ASCII format it preserves float timestamps bit-exactly by construction.

Layout (all little-endian)::

    header:  8s magic | H version | Q record count
    record:  d t | B len(b_id) | b_id utf-8 | Q m_id
             | H len(payload) | payload
             | B num info entries
    info:    B len(key) | key utf-8 | B tag | value
    value:   tag 0 bool -> B; tag 1 int -> q; tag 2 float -> d;
             tag 3 str  -> H length + utf-8
"""

from __future__ import annotations

import struct
from pathlib import Path

MAGIC = b"IVNTRACE"
VERSION = 1

_TAG_BOOL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3


class BinaryTraceError(ValueError):
    """Raised for malformed binary trace files."""


def _pack_value(value):
    if isinstance(value, bool):
        return struct.pack("<BB", _TAG_BOOL, int(value))
    if isinstance(value, int):
        return struct.pack("<Bq", _TAG_INT, value)
    if isinstance(value, float):
        return struct.pack("<Bd", _TAG_FLOAT, value)
    data = str(value).encode("utf-8")
    return struct.pack("<BH", _TAG_STR, len(data)) + data


class _Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise BinaryTraceError("truncated file")
        out = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return out

    def take_bytes(self, n):
        if self.pos + n > len(self.data):
            raise BinaryTraceError("truncated file")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out


def _read_value(reader):
    (tag,) = reader.take("<B")
    if tag == _TAG_BOOL:
        (v,) = reader.take("<B")
        return bool(v)
    if tag == _TAG_INT:
        (v,) = reader.take("<q")
        return v
    if tag == _TAG_FLOAT:
        (v,) = reader.take("<d")
        return v
    if tag == _TAG_STR:
        (length,) = reader.take("<H")
        return reader.take_bytes(length).decode("utf-8")
    raise BinaryTraceError("unknown value tag {}".format(tag))


def dump_records(records, path):
    """Write byte-record tuples to *path*; returns the record count."""
    path = Path(path)
    records = list(records)
    with open(path, "wb") as fh:
        fh.write(struct.pack("<8sHQ", MAGIC, VERSION, len(records)))
        for t, payload, b_id, m_id, m_info in records:
            channel = str(b_id).encode("utf-8")
            fh.write(struct.pack("<dB", float(t), len(channel)))
            fh.write(channel)
            fh.write(struct.pack("<QH", int(m_id), len(payload)))
            fh.write(bytes(payload))
            fh.write(struct.pack("<B", len(m_info)))
            for key, value in m_info:
                key_data = str(key).encode("utf-8")
                fh.write(struct.pack("<B", len(key_data)))
                fh.write(key_data)
                fh.write(_pack_value(value))
    return len(records)


def load_records(path):
    """Read byte-record tuples back from *path*."""
    with open(Path(path), "rb") as fh:
        reader = _Reader(fh.read())
    magic, version, count = reader.take("<8sHQ")
    if magic != MAGIC:
        raise BinaryTraceError("bad magic {!r}".format(magic))
    if version != VERSION:
        raise BinaryTraceError("unsupported version {}".format(version))
    records = []
    for _unused in range(count):
        t, channel_length = reader.take("<dB")
        b_id = reader.take_bytes(channel_length).decode("utf-8")
        m_id, payload_length = reader.take("<QH")
        payload = bytes(reader.take_bytes(payload_length))
        (num_info,) = reader.take("<B")
        info = []
        for _unused2 in range(num_info):
            (key_length,) = reader.take("<B")
            key = reader.take_bytes(key_length).decode("utf-8")
            info.append((key, _read_value(reader)))
        records.append((t, payload, b_id, m_id, tuple(info)))
    return records


def dump_table(table, path):
    """Write a K_b engine table to *path* in time order."""
    return dump_records(table.sort(["t"]).collect(), path)


def load_table(context, path, num_partitions=None):
    """Load a binary trace into a K_b engine table."""
    from repro.protocols.frames import BYTE_RECORD_COLUMNS

    return context.table_from_rows(
        list(BYTE_RECORD_COLUMNS),
        load_records(path),
        num_partitions=num_partitions,
    )
