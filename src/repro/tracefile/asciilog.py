"""ASCII trace log format (ASC-style).

A human-readable text format for raw traces ``K_b``, modelled on the
Vector ASC logs automotive tooling exchanges: one line per recorded
frame with timestamp, channel, message id, protocol, payload bytes in
hex and the protocol-specific header fields as ``key=value`` pairs.

Round-trips byte-record tuples exactly (floats via ``repr``).
"""

from __future__ import annotations

from pathlib import Path

_HEADER = "// repro in-vehicle trace log v1"


class TraceFormatError(ValueError):
    """Raised for malformed trace files."""


def _encode_info(m_info):
    parts = []
    for key, value in m_info:
        if ";" in str(value) or "=" in str(value):
            raise TraceFormatError(
                "m_info value {!r} contains reserved characters".format(value)
            )
        if isinstance(value, bool):
            encoded = "b:{}".format(int(value))
        elif isinstance(value, int):
            encoded = "i:{}".format(value)
        elif isinstance(value, float):
            encoded = "f:{!r}".format(value)
        else:
            encoded = "s:{}".format(value)
        parts.append("{}={}".format(key, encoded))
    return ";".join(parts)


def _decode_info(text):
    if not text:
        return ()
    out = []
    for part in text.split(";"):
        key, _sep, encoded = part.partition("=")
        tag, _sep, raw = encoded.partition(":")
        if tag == "b":
            value = bool(int(raw))
        elif tag == "i":
            value = int(raw)
        elif tag == "f":
            value = float(raw)
        elif tag == "s":
            value = raw
        else:
            raise TraceFormatError("unknown m_info tag {!r}".format(tag))
        out.append((key, value))
    return tuple(out)


def dump_records(records, path):
    """Write byte-record tuples to *path*; returns the record count."""
    path = Path(path)
    count = 0
    with open(path, "w") as fh:
        fh.write(_HEADER + "\n")
        for t, payload, b_id, m_id, m_info in records:
            protocol = dict(m_info).get("protocol", "CAN")
            fh.write(
                "{!r} {} {} {} d {} {} // {}\n".format(
                    float(t),
                    b_id,
                    m_id,
                    protocol,
                    len(payload),
                    payload.hex() if payload else "-",
                    _encode_info(m_info),
                )
            )
            count += 1
    return count


def load_records(path):
    """Read byte-record tuples back from *path*."""
    path = Path(path)
    records = []
    with open(path) as fh:
        first = fh.readline().rstrip("\n")
        if first != _HEADER:
            raise TraceFormatError(
                "not a repro trace log (header {!r})".format(first)
            )
        for line_number, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("//"):
                continue
            body, sep, info_text = line.partition(" // ")
            if not sep and body.endswith(" //"):
                # Record with empty m_info: trailing separator only.
                body = body[: -len(" //")]
            fields = body.split()
            if len(fields) != 7 or fields[4] != "d":
                raise TraceFormatError(
                    "malformed record on line {}".format(line_number)
                )
            t = float(fields[0])
            b_id = fields[1]
            m_id = int(fields[2])
            length = int(fields[5])
            payload = b"" if fields[6] == "-" else bytes.fromhex(fields[6])
            if len(payload) != length:
                raise TraceFormatError(
                    "payload length mismatch on line {}: declared {}, "
                    "got {}".format(line_number, length, len(payload))
                )
            m_info = _decode_info(info_text)
            records.append((t, payload, b_id, m_id, m_info))
    return records


def dump_table(table, path):
    """Write a K_b engine table to *path* in time order."""
    return dump_records(table.sort(["t"]).collect(), path)


def load_table(context, path, num_partitions=None):
    """Load a trace log into a K_b engine table."""
    from repro.protocols.frames import BYTE_RECORD_COLUMNS

    return context.table_from_rows(
        list(BYTE_RECORD_COLUMNS),
        load_records(path),
        num_partitions=num_partitions,
    )
