"""Stage-level checkpointing of per-trace job results.

Every completed per-trace pipeline job is committed here before the
scheduler dispatches further work: one pickle file per job id, staged in
a hidden sibling and renamed into place so a kill at any instant leaves
each checkpoint either fully present or fully absent -- the property
``resume()`` relies on to re-run exactly the jobs whose commits did not
land. Failures are recorded as structured JSON rows next to the
checkpoints so ``status`` can print a failure table without re-running
anything, and so ``resume`` knows to retry them.

The streaming ingest service (:mod:`repro.stream`) reuses the same
store for *runner-state* payloads: each vehicle session repeatedly
commits its ``IncrementalRunner``/assembler snapshot under a stable job
id, relying on the atomic replace so a kill mid-commit always leaves
the previous complete snapshot in place.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from repro.fleet.catalog import atomic_write_text

_CHECKPOINT_DIR = "checkpoints"
_FAILURE_DIR = "failures"
_SUFFIX = ".pkl"


class CheckpointStore:
    """Durable per-job results and failure records of one run directory."""

    def __init__(self, run_dir):
        self.root = Path(run_dir)
        self._checkpoints = self.root / _CHECKPOINT_DIR
        self._failures = self.root / _FAILURE_DIR
        self._checkpoints.mkdir(parents=True, exist_ok=True)
        self._failures.mkdir(parents=True, exist_ok=True)

    # -- completed jobs --------------------------------------------------
    def _path(self, job_id):
        return self._checkpoints / (job_id + _SUFFIX)

    def has(self, job_id):
        return self._path(job_id).is_file()

    def save(self, job_id, payload):
        """Atomically commit one job's result payload."""
        path = self._path(job_id)
        staging = self._checkpoints / ".staging-{}-{}".format(
            job_id, os.getpid()
        )
        with open(staging, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(staging, path)
        # A retried job that now succeeded is no longer failed.
        self.clear_failure(job_id)
        return path

    def load(self, job_id):
        with open(self._path(job_id), "rb") as handle:
            return pickle.load(handle)

    def mtime(self, job_id):
        """Commit time (epoch seconds) of a checkpoint, or None.

        Repeatedly-saved runner-state checkpoints are distinguished by
        recency, not content; ``stream status`` reports this without
        unpickling anything.
        """
        try:
            return self._path(job_id).stat().st_mtime
        except FileNotFoundError:
            return None

    def completed_ids(self):
        """Sorted ids of all committed checkpoints (staging excluded)."""
        return sorted(
            p.name[: -len(_SUFFIX)]
            for p in self._checkpoints.iterdir()
            if p.name.endswith(_SUFFIX) and not p.name.startswith(".")
        )

    # -- failures --------------------------------------------------------
    def _failure_path(self, job_id):
        return self._failures / (job_id + ".json")

    def record_failure(self, job_id, failure_row):
        """Persist a structured failure row (a :meth:`JobError.to_dict`)."""
        text = json.dumps(failure_row, indent=2, sort_keys=True) + "\n"
        return atomic_write_text(self._failure_path(job_id), text)

    def clear_failure(self, job_id):
        path = self._failure_path(job_id)
        if path.is_file():
            path.unlink()

    def failures(self):
        """{job_id: failure row} for all recorded failures."""
        out = {}
        for path in sorted(self._failures.glob("*.json")):
            if path.name.startswith("."):
                continue
            try:
                out[path.name[:-5]] = json.loads(
                    path.read_text(encoding="utf-8")
                )
            except ValueError:
                # A failure row half-written by a dying process carries
                # no information worth aborting a resume over.
                out[path.name[:-5]] = {"error": "unreadable failure record"}
        return out

    def gc(self):
        """Remove staging debris left by a crash mid-commit."""
        removed = []
        for directory in (self._checkpoints, self._failures):
            for path in sorted(directory.glob(".staging-*")):
                path.unlink()
                removed.append(path.name)
        return removed
