"""Topological dispatch of a sweep's job DAG with bounded in-flight jobs.

A fleet sweep is a two-layer DAG: one independent pipeline job per trace
plus a fan-in aggregation job depending on all of them. The scheduler is
deliberately more general than that shape (any acyclic dependency set
validates), because follow-on stages -- per-vehicle merges feeding a
fleet merge, say -- are the obvious next layer.

Dispatch is topological and *bounded*: at most ``max_inflight`` jobs are
submitted to the runner at once, which is the backpressure that keeps a
77k-trace catalog from materializing 77k pending futures (and their
pickled payloads) in the driver. Failure semantics are per-node: a
failed job fails its strict dependents (they are marked ``skipped``
without running), while nodes created with ``allow_failed_deps`` --
the aggregation fan-in -- still run over the surviving subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.errors import FleetRunError

#: Terminal node states.
DONE = "done"
FAILED = "failed"
SKIPPED = "skipped"

_TERMINAL = (DONE, FAILED, SKIPPED)


@dataclass(frozen=True)
class JobOutcome:
    """Terminal result of one node: status plus value or structured error."""

    job_id: str
    status: str
    value: object = None
    error: object = None  # JobError (or its to_dict row) when failed


@dataclass
class JobNode:
    """One schedulable unit.

    ``payload`` is what the runner's job function receives (must be
    picklable for the process-pool runner). ``driver_fn``, when set,
    makes this a driver-side node: the scheduler calls it in-process
    with the outcomes of its dependencies instead of submitting it to
    the runner -- the aggregation fan-in runs this way because it needs
    the checkpoint store, not a worker process.
    """

    job_id: str
    payload: object = None
    deps: tuple = ()
    index: int = 0
    allow_failed_deps: bool = False
    driver_fn: object = None
    attrs: dict = field(default_factory=dict)


class DagScheduler:
    """Validates a job DAG and drives it to completion through a runner."""

    def __init__(self, nodes, max_inflight=4):
        if max_inflight < 1:
            raise FleetRunError("max_inflight must be >= 1")
        self.nodes = list(nodes)
        self.max_inflight = max_inflight
        self._by_id = {}
        for node in self.nodes:
            if node.job_id in self._by_id:
                raise FleetRunError(
                    "duplicate job id {!r} in DAG".format(node.job_id)
                )
            self._by_id[node.job_id] = node
        for node in self.nodes:
            for dep in node.deps:
                if dep not in self._by_id:
                    raise FleetRunError(
                        "job {!r} depends on unknown job {!r}".format(
                            node.job_id, dep
                        )
                    )
        self._check_acyclic()

    def _check_acyclic(self):
        """Kahn's algorithm; leftovers mean a cycle."""
        remaining = {n.job_id: set(n.deps) for n in self.nodes}
        ready = [j for j, deps in remaining.items() if not deps]
        seen = 0
        while ready:
            job_id = ready.pop()
            seen += 1
            for other, deps in remaining.items():
                if job_id in deps:
                    deps.discard(job_id)
                    if not deps:
                        ready.append(other)
        if seen != len(remaining):
            cyclic = sorted(j for j, deps in remaining.items() if deps)
            raise FleetRunError(
                "job DAG has a cycle involving {}".format(", ".join(cyclic))
            )

    # -- execution -------------------------------------------------------
    def run(self, runner, on_outcome=None):
        """Drive the DAG; returns {job_id: JobOutcome}.

        *runner* provides ``submit(node)`` and ``wait_any() ->
        JobOutcome``. *on_outcome*, when given, is called with every
        terminal outcome as it lands (the orchestrator's checkpoint
        commit hook); an exception it raises aborts the sweep -- that is
        the crash-injection point of the resume tests.
        """
        state = {node.job_id: "pending" for node in self.nodes}
        outcomes = {}
        inflight = set()

        def settle(outcome):
            state[outcome.job_id] = outcome.status
            outcomes[outcome.job_id] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

        def dep_status(node):
            """'ready', 'wait', or 'doomed' for *node*'s dependencies."""
            doomed = False
            for dep in node.deps:
                dep_state = state[dep]
                if dep_state not in _TERMINAL:
                    return "wait"
                if dep_state != DONE:
                    doomed = True
            if doomed and not node.allow_failed_deps:
                return "doomed"
            return "ready"

        while True:
            # Propagate failures: strict nodes with failed deps never run.
            progressed = True
            while progressed:
                progressed = False
                for node in self.nodes:
                    if state[node.job_id] != "pending":
                        continue
                    if dep_status(node) == "doomed":
                        failed_deps = sorted(
                            d for d in node.deps if state[d] != DONE
                        )
                        settle(
                            JobOutcome(
                                node.job_id,
                                SKIPPED,
                                error="dependencies failed: {}".format(
                                    ", ".join(failed_deps)
                                ),
                            )
                        )
                        progressed = True

            # Dispatch ready nodes up to the in-flight bound.
            for node in self.nodes:
                if len(inflight) >= self.max_inflight:
                    break
                if state[node.job_id] != "pending":
                    continue
                if dep_status(node) != "ready":
                    continue
                if node.driver_fn is not None:
                    state[node.job_id] = "running"
                    settle(self._run_driver_node(node, outcomes))
                else:
                    state[node.job_id] = "running"
                    runner.submit(node)
                    inflight.add(node.job_id)

            if inflight:
                outcome = runner.wait_any()
                inflight.discard(outcome.job_id)
                settle(outcome)
                continue
            if all(s in _TERMINAL for s in state.values()):
                return outcomes
            if not any(
                state[n.job_id] == "pending" and dep_status(n) == "ready"
                for n in self.nodes
            ):
                # Acyclicity was checked up front, so this is unreachable
                # unless a runner lost a job; fail loudly either way.
                raise FleetRunError(
                    "scheduler stalled with pending jobs: {}".format(
                        sorted(
                            j for j, s in state.items() if s == "pending"
                        )
                    )
                )

    @staticmethod
    def _run_driver_node(node, outcomes):
        from repro.fleet.errors import JobError

        dep_outcomes = {dep: outcomes[dep] for dep in node.deps}
        try:
            value = node.driver_fn(dep_outcomes)
        except JobError as exc:
            return JobOutcome(node.job_id, FAILED, error=exc)
        return JobOutcome(node.job_id, DONE, value=value)
