"""Exception hierarchy of the fleet orchestration layer.

Mirrors the engine's split between configuration problems, durable-state
problems and per-job execution failures. The important invariant is that
a :class:`JobError` is *contained*: one trace's crash marks that job
failed (with structured coordinates naming the trace and stage) and the
sweep continues -- it never takes down the whole run the way an
uncaught exception in the driver would.
"""

from __future__ import annotations


class FleetRunError(Exception):
    """Base class for fleet orchestration errors (driver-side)."""


class CatalogError(FleetRunError):
    """The job catalog is missing, corrupt, or inconsistent."""


class JobError(FleetRunError):
    """One job failed permanently (retries exhausted or genuine bug).

    Carries the structured coordinates of the failure -- which trace,
    which pipeline stage, how many attempts -- so failure tables and
    CLIs can name the problem without parsing message strings.
    """

    def __init__(self, message, job_id=None, trace=None, stage=None,
                 attempts=None, cause=None):
        super().__init__(message)
        self.job_id = job_id
        self.trace = trace
        self.stage = stage
        self.attempts = attempts
        self.cause = cause

    def to_dict(self):
        """JSON-safe failure row for checkpointing and reports."""
        return {
            "job_id": self.job_id,
            "trace": self.trace,
            "stage": self.stage,
            "attempts": self.attempts,
            "error": str(self),
            "cause": type(self.cause).__name__ if self.cause else None,
        }
