"""Fleet-level aggregated reporting: the ``repro.fleet/1`` format.

One sweep produces one fleet report: the per-trace
:class:`~repro.obs.report.RunReport` bundles (stored in each job's
checkpoint payload) merged into a single document with

* **per-stage histograms** -- ``fleet.stage_seconds.<stage>`` holds the
  distribution of each Algorithm-1 stage's wall time across traces, and
  ``fleet.rows_out`` the distribution of per-trace output sizes;
* **exact summed counters** -- every per-trace pipeline/executor counter
  (``pipeline.merge.rows_out``, ``executor.retries``, ...) added up
  fleet-wide, plus the orchestrator's own ``fleet.*`` counters;
* a **job table** (one row per catalog entry with its terminal status);
* a **failure table** (structured :class:`~repro.fleet.errors.JobError`
  rows);
* **throughput gauges** (traces/sec, rows/sec) set by the orchestrator.

The JSON shape extends ``repro.obs/1`` with the two tables, so
validation delegates the shared sections to
:func:`repro.obs.validate_report`.
"""

from __future__ import annotations

import json

from repro.obs import REPORT_FORMAT, ReportSchemaError, RunReport, validate_report

#: Version tag of the serialized fleet report shape.
FLEET_REPORT_FORMAT = "repro.fleet/1"

#: Terminal statuses a job row may carry. ``cached`` means the job's
#: checkpoint predates this sweep (it was skipped by resume).
JOB_STATUSES = ("done", "cached", "failed", "skipped", "pending")


class FleetReport:
    """A :class:`RunReport` plus the fleet's job and failure tables."""

    def __init__(self, name="fleet.run"):
        self.run = RunReport(name)
        self.jobs = []
        self.failures = []

    # Delegates so callers use the familiar RunReport surface.
    @property
    def metrics(self):
        return self.run.metrics

    @property
    def spans(self):
        return self.run.spans

    @property
    def meta(self):
        return self.run.meta

    def set_meta(self, **entries):
        self.run.set_meta(**entries)
        return self

    def add_job_row(self, job_id, index, trace, status, **extra):
        if status not in JOB_STATUSES:
            raise ValueError("unknown job status {!r}".format(status))
        row = {"job_id": job_id, "index": index, "trace": trace,
               "status": status}
        row.update(extra)
        self.jobs.append(row)
        return row

    def add_failure_row(self, row):
        self.failures.append(dict(row))
        return self

    def merge_job_payload(self, payload):
        """Fold one checkpointed per-trace result into the aggregate.

        Stage wall times become observations in the per-stage
        histograms; the per-trace report's counters (exact integers, so
        summation is lossless) accumulate fleet-wide.
        """
        for stage, seconds in sorted(payload.get("stage_seconds", {}).items()):
            self.metrics.observe(
                "fleet.stage_seconds.{}".format(stage), seconds
            )
        self.metrics.observe("fleet.rows_out", payload.get("rows_out", 0))
        self.metrics.observe("fleet.trace_rows", payload.get("trace_rows", 0))
        per_trace = payload.get("report", {})
        for name, value in per_trace.get("counters", {}).items():
            self.metrics.inc(name, value)
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self):
        payload = self.run.to_dict()
        payload["format"] = FLEET_REPORT_FORMAT
        payload["jobs"] = [dict(row) for row in self.jobs]
        payload["failures"] = [dict(row) for row in self.failures]
        return payload

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=str)

    def write(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path


def validate_fleet_report(payload):
    """Check a payload against the ``repro.fleet/1`` shape.

    Returns the payload when valid, raises
    :class:`~repro.obs.ReportSchemaError` listing every problem
    otherwise. Accepts a dict or a JSON string. The spans/counters/
    gauges/histograms sections share the ``repro.obs/1`` rules and are
    checked by delegating to :func:`repro.obs.validate_report`.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except ValueError as exc:
            raise ReportSchemaError(
                "fleet report is not valid JSON: {}".format(exc)
            )
    if not isinstance(payload, dict):
        raise ReportSchemaError("fleet report must be a JSON object")
    errors = []
    if payload.get("format") != FLEET_REPORT_FORMAT:
        errors.append("format must be {!r}, got {!r}".format(
            FLEET_REPORT_FORMAT, payload.get("format")))
    jobs = payload.get("jobs")
    if not isinstance(jobs, list):
        errors.append("jobs must be a list")
    else:
        for i, row in enumerate(jobs):
            prefix = "jobs[{}]".format(i)
            if not isinstance(row, dict):
                errors.append("{} must be an object".format(prefix))
                continue
            if not isinstance(row.get("job_id"), str) or not row["job_id"]:
                errors.append(
                    "{}.job_id must be a non-empty string".format(prefix)
                )
            if not isinstance(row.get("trace"), str):
                errors.append("{}.trace must be a string".format(prefix))
            if row.get("status") not in JOB_STATUSES:
                errors.append("{}.status must be one of {}".format(
                    prefix, "/".join(JOB_STATUSES)))
            for key in ("index", "trace_rows", "rows_out"):
                if key in row and (
                    not isinstance(row[key], int)
                    or isinstance(row[key], bool) or row[key] < 0
                ):
                    errors.append(
                        "{}.{} must be an int >= 0".format(prefix, key)
                    )
    failures = payload.get("failures")
    if not isinstance(failures, list):
        errors.append("failures must be a list")
    else:
        for i, row in enumerate(failures):
            prefix = "failures[{}]".format(i)
            if not isinstance(row, dict):
                errors.append("{} must be an object".format(prefix))
                continue
            if not isinstance(row.get("job_id"), str) or not row["job_id"]:
                errors.append(
                    "{}.job_id must be a non-empty string".format(prefix)
                )
            if not isinstance(row.get("error"), str) or not row["error"]:
                errors.append(
                    "{}.error must be a non-empty string".format(prefix)
                )
    if errors:
        raise ReportSchemaError(
            "invalid fleet report: {}".format("; ".join(errors))
        )
    obs_payload = {
        key: value for key, value in payload.items()
        if key not in ("jobs", "failures")
    }
    obs_payload["format"] = REPORT_FORMAT
    validate_report(obs_payload)
    return payload
