"""The job catalog: a durable manifest of traces -> job specs.

A fleet sweep is defined once, up front, as data: every trace file
becomes a :class:`JobSpec` whose id is *content-addressed* -- a digest
over the trace bytes, the shared parameter document and the dataset
name. Two runs over the same inputs therefore agree on every job id,
which is what makes checkpoints from a killed sweep safely reusable by
``resume`` (a changed trace or changed parameterization changes the id
and the stale checkpoint is simply never looked up).

The catalog is persisted the way :class:`~repro.engine.storage.TableStore`
persists tables: staged into a hidden sibling file and renamed over the
target, so a crash mid-write leaves either the old catalog or the new
one -- never a half-written JSON document.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.fleet.errors import CatalogError

#: Version tag of the serialized catalog shape.
CATALOG_FORMAT = "repro.fleet.catalog/1"

#: File name of the catalog inside a run directory.
CATALOG_FILE = "catalog.json"


def atomic_write_text(path, text):
    """Write *text* to *path* via a hidden staged sibling + rename."""
    path = Path(path)
    staging = path.parent / ".staging-{}-{}".format(path.name, os.getpid())
    with open(staging, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(staging, path)
    return path


def _canonical_json(payload):
    """Deterministic JSON rendering used for content addressing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def file_digest(path):
    """SHA-256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def job_id_for(trace_sha256, dataset, params):
    """Content-addressed job id: digest of (trace bytes, dataset, params)."""
    material = _canonical_json(
        {"trace": trace_sha256, "dataset": dataset, "params": params}
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One per-trace pipeline job of a sweep.

    ``trace`` is stored relative to the run directory so a run directory
    can be archived or moved wholesale; ``index`` is the job's position
    in catalog order, the deterministic coordinate fault policies and
    aggregation use.
    """

    job_id: str
    index: int
    trace: str
    trace_sha256: str
    trace_bytes: int

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "index": self.index,
            "trace": self.trace,
            "trace_sha256": self.trace_sha256,
            "trace_bytes": self.trace_bytes,
        }

    @classmethod
    def from_dict(cls, payload):
        try:
            return cls(
                job_id=payload["job_id"],
                index=payload["index"],
                trace=payload["trace"],
                trace_sha256=payload["trace_sha256"],
                trace_bytes=payload["trace_bytes"],
            )
        except (KeyError, TypeError) as exc:
            raise CatalogError(
                "malformed job entry in catalog: {}".format(exc)
            )


class JobCatalog:
    """An ordered, content-addressed set of jobs plus shared parameters."""

    def __init__(self, dataset, params, jobs):
        self.dataset = dataset
        self.params = params  # declarative parameter document (JSON dict)
        self.jobs = list(jobs)
        seen = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise CatalogError(
                    "duplicate job id {!r} (identical trace bytes under the "
                    "same parameterization)".format(job.job_id)
                )
            seen.add(job.job_id)

    def __len__(self):
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def job_ids(self):
        return [job.job_id for job in self.jobs]

    def job(self, job_id):
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise CatalogError("no job {!r} in catalog".format(job_id))

    # -- persistence -----------------------------------------------------
    def to_dict(self):
        return {
            "format": CATALOG_FORMAT,
            "dataset": self.dataset,
            "params": self.params,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def save(self, run_dir):
        """Atomically persist under *run_dir*; returns the catalog path."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        return atomic_write_text(run_dir / CATALOG_FILE, text)

    @classmethod
    def load(cls, run_dir):
        """Load the catalog of *run_dir*; :class:`CatalogError` on problems."""
        path = Path(run_dir) / CATALOG_FILE
        if not path.is_file():
            raise CatalogError(
                "no catalog at {!r} (not a fleet run directory?)".format(
                    str(path)
                )
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise CatalogError(
                "catalog {!r} is not valid JSON: {}".format(str(path), exc)
            )
        if not isinstance(payload, dict) \
                or payload.get("format") != CATALOG_FORMAT:
            raise CatalogError(
                "catalog {!r} has format {!r}, expected {!r}".format(
                    str(path),
                    payload.get("format") if isinstance(payload, dict)
                    else type(payload).__name__,
                    CATALOG_FORMAT,
                )
            )
        jobs = payload.get("jobs")
        if not isinstance(jobs, list):
            raise CatalogError(
                "catalog {!r} is missing its job list".format(str(path))
            )
        return cls(
            dataset=payload.get("dataset"),
            params=payload.get("params"),
            jobs=[JobSpec.from_dict(entry) for entry in jobs],
        )


def build_catalog(run_dir, trace_paths, dataset, params):
    """Digest *trace_paths* into a :class:`JobCatalog` rooted at *run_dir*.

    Traces must live under *run_dir* (they are recorded relative to it);
    missing files raise :class:`CatalogError` up front rather than
    surfacing later as mid-sweep job failures.
    """
    run_dir = Path(run_dir)
    jobs = []
    for index, trace in enumerate(trace_paths):
        trace = Path(trace)
        if not trace.is_file():
            raise CatalogError(
                "trace file {!r} does not exist".format(str(trace))
            )
        try:
            relative = str(trace.resolve().relative_to(run_dir.resolve()))
        except ValueError:
            raise CatalogError(
                "trace {!r} is outside the run directory {!r}".format(
                    str(trace), str(run_dir)
                )
            )
        sha = file_digest(trace)
        jobs.append(
            JobSpec(
                job_id=job_id_for(sha, dataset, params),
                index=index,
                trace=relative,
                trace_sha256=sha,
                trace_bytes=trace.stat().st_size,
            )
        )
    return JobCatalog(dataset=dataset, params=params, jobs=jobs)
