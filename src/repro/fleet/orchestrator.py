"""The fleet run driver: prepare, run, resume, status.

One run directory is one sweep: ``catalog.json`` (the durable
manifest), ``traces/`` (the inputs), ``checkpoints/`` + ``failures/``
(per-job durable state), ``output/`` (the aggregated
:class:`~repro.engine.storage.TableStore` table), ``fleet-summary.json``
(deterministic sweep summary) and ``fleet-report.json`` (the
``repro.fleet/1`` observability report, the only timing-bearing
artifact).

The crash-safety contract: every per-trace job result is checkpointed
atomically *as it lands*, so killing the driver at any instant and
calling :func:`resume` re-runs exactly the jobs whose commits had not
landed and produces final artifacts byte-identical to an uninterrupted
sweep (``output/`` and ``fleet-summary.json``; the report carries wall
times and is exempt). Orchestrator death is modelled the same way task
death is everywhere else in this repo -- a
:class:`~repro.engine.executor.FaultPolicy` rolled at coordinates
``(COMMIT_STAGE, commit_index)`` raises
:class:`~repro.engine.errors.InjectedFaultError` *before* the commit
would land, so tests can kill a sweep after exactly ``k`` checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine import EngineContext, TableStore
from repro.engine.errors import InjectedFaultError
from repro.fleet.catalog import JobCatalog, atomic_write_text, build_catalog
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.errors import CatalogError
from repro.fleet.report import FLEET_REPORT_FORMAT, FleetReport
from repro.fleet.scheduler import DONE, FAILED, DagScheduler, JobNode
from repro.fleet.workers import make_runner
from repro.obs import MetricsRegistry, stopwatch

#: Synthetic node id of the fan-in aggregation job ("." keeps it out of
#: the content-addressed hex-id namespace).
AGGREGATE_JOB_ID = "fleet.aggregate"

#: Stage name the commit-crash fault policy rolls against; the partition
#: coordinate is the number of commits already landed this process.
COMMIT_STAGE = "fleet.commit"

#: Subdirectory holding simulated/imported trace files.
TRACE_DIR = "traces"

#: TableStore table name of the merged fleet output.
OUTPUT_TABLE = "fleet_r_out"

SUMMARY_FILE = "fleet-summary.json"
REPORT_FILE = "fleet-report.json"


@dataclass
class FleetRunResult:
    """Everything a sweep produced, for callers and tests."""

    run_dir: Path
    catalog: JobCatalog
    statuses: dict  # job_id -> done | cached | failed | skipped
    executed: list = field(default_factory=list)
    cached: list = field(default_factory=list)
    failed: dict = field(default_factory=dict)  # job_id -> failure row
    summary: dict = field(default_factory=dict)
    report: object = None  # FleetReport
    registry: object = None  # MetricsRegistry

    @property
    def output_rows(self):
        return self.summary.get("rows_out", 0)


def default_params(dataset):
    """The CLI's default parameter document for *dataset*.

    One ``unchanged_within_cycle`` constraint per signal at the signal's
    true cycle time -- the same fallback ``repro pipeline`` applies when
    no ``--params`` file is given.
    """
    from repro.datasets import SPECS, build_dataset

    bundle = build_dataset(SPECS[dataset])
    return {
        "signals": list(bundle.signal_ids),
        "constraints": [
            {
                "signal": s,
                "type": "unchanged_within_cycle",
                "cycle_time": bundle.cycle_times[s],
            }
            for s in bundle.signal_ids
        ],
    }


def prepare_run(run_dir, dataset, num_traces, duration=6.0, params=None,
                trace_format="trc"):
    """Simulate *num_traces* journeys and write the catalog; returns it.

    Each trace is one journey of the data set's vehicle with a distinct
    seed offset (``repro simulate --journey i``), dumped under
    ``run_dir/traces/``.
    """
    from repro.datasets import SPECS, build_dataset
    from repro.tracefile import codec_for

    if dataset not in SPECS:
        raise CatalogError("unknown dataset {!r}".format(dataset))
    if num_traces < 1:
        raise CatalogError("num_traces must be >= 1")
    run_dir = Path(run_dir)
    trace_dir = run_dir / TRACE_DIR
    trace_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for journey in range(num_traces):
        bundle = build_dataset(SPECS[dataset], seed_offset=journey)
        path = trace_dir / "journey{:04d}.{}".format(journey, trace_format)
        codec_for(path).dump_records(bundle.byte_records(duration), path)
        paths.append(path)
    if params is None:
        params = default_params(dataset)
    catalog = build_catalog(run_dir, paths, dataset, params)
    catalog.save(run_dir)
    return catalog


def make_catalog(run_dir, trace_paths, dataset, params=None):
    """Catalog existing trace files under *run_dir* and persist it."""
    if params is None:
        params = default_params(dataset)
    catalog = build_catalog(run_dir, trace_paths, dataset, params)
    catalog.save(run_dir)
    return catalog


def run(run_dir, workers=1, max_inflight=4, fault_policy=None,
        commit_policy=None, max_retries=2, retry_backoff=0.01,
        rerun_failed=True, registry=None):
    """Execute (or continue) the sweep described by ``run_dir``'s catalog.

    Checkpoint-aware from the start: jobs whose checkpoints already
    exist are *cached* (never re-run), so ``run`` after a kill is
    already a resume -- :func:`resume` is the intention-revealing alias.
    ``rerun_failed`` controls whether previously-failed jobs get a fresh
    attempt (they do by default; their recorded failures are cleared on
    success).

    *fault_policy* injects faults into worker jobs at ``("fleet.job",
    index)``; *commit_policy* injects orchestrator death at
    ``(COMMIT_STAGE, commit_index)`` -- the crash fires *before* that
    commit lands.
    """
    run_dir = Path(run_dir)
    catalog = JobCatalog.load(run_dir)
    store = CheckpointStore(run_dir)
    store.gc()
    obs = registry if registry is not None else MetricsRegistry()
    for name in ("fleet.jobs_executed", "fleet.jobs_cached",
                 "fleet.jobs_checkpointed"):
        obs.counter(name)

    completed = set(store.completed_ids())
    known = set(catalog.job_ids())
    prior_failures = {} if rerun_failed else store.failures()
    statuses = {}
    nodes = []
    for job in catalog:
        if job.job_id in completed:
            statuses[job.job_id] = "cached"
            obs.inc("fleet.jobs_cached")
            continue
        if job.job_id in prior_failures:
            statuses[job.job_id] = "failed"
            continue
        trace_path = run_dir / job.trace
        nodes.append(
            JobNode(
                job_id=job.job_id,
                index=job.index,
                payload={
                    "job_id": job.job_id,
                    "index": job.index,
                    "trace": job.trace,
                    "trace_path": str(trace_path),
                    "dataset": catalog.dataset,
                    "params": catalog.params,
                },
            )
        )
    scheduled = tuple(node.job_id for node in nodes)
    obs.set_gauge("fleet.jobs_total", len(catalog))

    commits = 0

    def commit(outcome):
        """Durably record one per-trace outcome (the crash point)."""
        nonlocal commits
        if outcome.job_id == AGGREGATE_JOB_ID:
            return
        if commit_policy is not None and commit_policy.crashes_for(
            COMMIT_STAGE, commits
        ):
            raise InjectedFaultError(
                "injected orchestrator crash before commit {}".format(commits)
            )
        if outcome.status == DONE:
            store.save(outcome.job_id, outcome.value)
            obs.inc("fleet.jobs_checkpointed")
        elif outcome.status == FAILED:
            row = outcome.error.to_dict() \
                if hasattr(outcome.error, "to_dict") \
                else {"job_id": outcome.job_id, "error": str(outcome.error)}
            store.record_failure(outcome.job_id, row)
        commits += 1

    def aggregate(_dep_outcomes):
        return _aggregate(run_dir, catalog, store)

    nodes.append(
        JobNode(
            job_id=AGGREGATE_JOB_ID,
            deps=scheduled,
            index=len(catalog),
            allow_failed_deps=True,
            driver_fn=aggregate,
        )
    )

    runner = make_runner(
        workers=workers,
        fault_policy=fault_policy,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        registry=obs,
    )
    with stopwatch() as watch:
        with runner:
            outcomes = DagScheduler(nodes, max_inflight=max_inflight).run(
                runner, on_outcome=commit
            )
    for job_id in scheduled:
        outcome = outcomes[job_id]
        statuses[job_id] = outcome.status
        if outcome.status == DONE:
            obs.inc("fleet.jobs_executed")

    executed = [j for j in scheduled if statuses[j] == DONE]
    failed = store.failures()
    # Drop failure records for jobs that are not failed any more (or that
    # belong to a different catalog generation).
    failed = {
        job_id: row for job_id, row in failed.items()
        if job_id in known and not store.has(job_id)
    }
    summary = json.loads(
        (run_dir / SUMMARY_FILE).read_text(encoding="utf-8")
    ) if (run_dir / SUMMARY_FILE).is_file() else {}
    obs.set_gauge("fleet.wall_seconds", watch.seconds)
    if watch.seconds > 0:
        obs.set_gauge(
            "fleet.traces_per_second", len(executed) / watch.seconds
        )
        obs.set_gauge(
            "fleet.rows_per_second",
            summary.get("trace_rows", 0) / watch.seconds,
        )
    fleet_report = _build_report(
        run_dir, catalog, store, statuses, failed, obs, workers
    )
    fleet_report.write(run_dir / REPORT_FILE)
    return FleetRunResult(
        run_dir=run_dir,
        catalog=catalog,
        statuses=statuses,
        executed=executed,
        cached=[j for j, s in statuses.items() if s == "cached"],
        failed=failed,
        summary=summary,
        report=fleet_report,
        registry=obs,
    )


def resume(run_dir, **kwargs):
    """Continue a killed sweep: checkpointed jobs are skipped, the rest run.

    Same contract as :func:`run` (which is checkpoint-aware); provided
    as the intention-revealing entry point the CLI's ``fleet resume``
    uses. Raises :class:`CatalogError` if the directory holds no
    catalog.
    """
    return run(run_dir, **kwargs)


def status(run_dir):
    """Inspect a run directory without executing anything.

    Returns ``{"jobs": n, "completed": ..., "failed": ..., "pending":
    ..., "failures": [...]}.``
    """
    run_dir = Path(run_dir)
    catalog = JobCatalog.load(run_dir)
    store = CheckpointStore(run_dir)
    known = set(catalog.job_ids())
    completed = [j for j in store.completed_ids() if j in known]
    failures = {
        job_id: row for job_id, row in store.failures().items()
        if job_id in known and not store.has(job_id)
    }
    pending = [
        j for j in catalog.job_ids()
        if j not in set(completed) and j not in failures
    ]
    return {
        "run_dir": str(run_dir),
        "dataset": catalog.dataset,
        "jobs": len(catalog),
        "completed": len(completed),
        "failed": len(failures),
        "pending": len(pending),
        "aggregated": (run_dir / SUMMARY_FILE).is_file(),
        "failures": [
            dict(row, job_id=job_id)
            for job_id, row in sorted(failures.items())
        ],
    }


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _aggregate(run_dir, catalog, store):
    """Fan-in: merge all checkpointed results into the final artifacts.

    Reads *only* durable checkpoints (never in-memory outcome values),
    so an uninterrupted sweep and a kill-plus-resume sweep aggregate
    from bit-identical inputs -- the root of the byte-identical-output
    guarantee. Everything written here is deterministic: rows are merged
    in catalog order into a fixed partitioning, and the summary carries
    no timings.
    """
    payloads = []
    for job in catalog:
        if store.has(job.job_id):
            payloads.append((job, store.load(job.job_id)))
    rows = []
    columns = None
    for job, payload in payloads:
        columns = columns or list(payload["r_columns"])
        rows.extend(
            tuple(r) + (job.trace,) for r in payload["r_rows"]
        )
    if columns is not None:
        context = EngineContext.serial()
        table = context.table_from_rows(
            columns + ["trace"], rows, num_partitions=4
        )
        TableStore(run_dir / "output").write(OUTPUT_TABLE, table)
    failures = store.failures()
    summary = {
        "format": FLEET_REPORT_FORMAT,
        "dataset": catalog.dataset,
        "jobs": len(catalog),
        "completed": len(payloads),
        "failed": sum(
            1 for job in catalog
            if not store.has(job.job_id) and job.job_id in failures
        ),
        "trace_rows": sum(p["trace_rows"] for _, p in payloads),
        "rows_out": sum(p["rows_out"] for _, p in payloads),
        "per_trace": [
            {
                "job_id": job.job_id,
                "index": job.index,
                "trace": job.trace,
                "trace_rows": payload["trace_rows"],
                "rows_out": payload["rows_out"],
            }
            for job, payload in payloads
        ],
        "failures": [
            {
                "job_id": job.job_id,
                "index": job.index,
                "trace": job.trace,
                "stage": failures.get(job.job_id, {}).get("stage"),
            }
            for job in catalog
            if not store.has(job.job_id) and job.job_id in failures
        ],
    }
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    atomic_write_text(Path(run_dir) / SUMMARY_FILE, text)
    return summary


def _build_report(run_dir, catalog, store, statuses, failed, registry,
                  workers):
    """Assemble the ``repro.fleet/1`` report for this sweep."""
    report = FleetReport()
    report.set_meta(
        run_dir=str(run_dir),
        dataset=catalog.dataset,
        jobs=len(catalog),
        workers=workers,
    )
    report.run.merge_registry(registry)
    for job in catalog:
        status = statuses.get(job.job_id, "pending")
        extra = {}
        if store.has(job.job_id):
            payload = store.load(job.job_id)
            report.merge_job_payload(payload)
            extra = {
                "trace_rows": payload["trace_rows"],
                "rows_out": payload["rows_out"],
            }
        report.add_job_row(
            job.job_id, job.index, job.trace, status, **extra
        )
    for job_id, row in sorted(failed.items()):
        report.add_failure_row(dict(row, job_id=job_id))
    return report
