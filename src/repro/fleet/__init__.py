"""repro.fleet -- checkpointed, resumable fleet-run orchestration.

The paper's outer loop at operational scale: a durable catalog of
traces, one isolated pipeline job per trace, atomic per-job
checkpoints, a fan-in aggregation job, and a ``repro.fleet/1`` report.
Kill the driver at any instant; :func:`resume` re-runs exactly the jobs
whose checkpoints had not landed and produces byte-identical final
output.
"""

from repro.fleet.catalog import (
    CATALOG_FILE,
    CATALOG_FORMAT,
    JobCatalog,
    JobSpec,
    atomic_write_text,
    build_catalog,
    file_digest,
    job_id_for,
)
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.errors import CatalogError, FleetRunError, JobError
from repro.fleet.orchestrator import (
    AGGREGATE_JOB_ID,
    COMMIT_STAGE,
    OUTPUT_TABLE,
    REPORT_FILE,
    SUMMARY_FILE,
    FleetRunResult,
    default_params,
    make_catalog,
    prepare_run,
    resume,
    run,
    status,
)
from repro.fleet.report import (
    FLEET_REPORT_FORMAT,
    FleetReport,
    validate_fleet_report,
)
from repro.fleet.scheduler import (
    DONE,
    FAILED,
    SKIPPED,
    DagScheduler,
    JobNode,
    JobOutcome,
)
from repro.fleet.workers import (
    JOB_STAGE,
    ProcessPoolJobRunner,
    SerialJobRunner,
    execute_trace_job,
    make_runner,
)

__all__ = [
    "AGGREGATE_JOB_ID",
    "CATALOG_FILE",
    "CATALOG_FORMAT",
    "COMMIT_STAGE",
    "CatalogError",
    "CheckpointStore",
    "DONE",
    "DagScheduler",
    "FAILED",
    "FLEET_REPORT_FORMAT",
    "FleetReport",
    "FleetRunError",
    "FleetRunResult",
    "JOB_STAGE",
    "JobCatalog",
    "JobError",
    "JobNode",
    "JobOutcome",
    "JobSpec",
    "OUTPUT_TABLE",
    "ProcessPoolJobRunner",
    "REPORT_FILE",
    "SKIPPED",
    "SUMMARY_FILE",
    "SerialJobRunner",
    "atomic_write_text",
    "build_catalog",
    "default_params",
    "execute_trace_job",
    "file_digest",
    "job_id_for",
    "make_catalog",
    "make_runner",
    "prepare_run",
    "resume",
    "run",
    "status",
    "validate_fleet_report",
]
