"""Job runners: where per-trace pipeline jobs actually execute.

Two runners share one contract (``submit(node)`` / ``wait_any()``):

* :class:`SerialJobRunner` executes jobs in the driver, one at a time --
  the reference implementation and the deterministic baseline;
* :class:`ProcessPoolJobRunner` ships jobs to a pool of forked worker
  processes, the fleet-level analogue of the engine's
  :class:`~repro.engine.executor.MultiprocessingExecutor`.

Failure isolation is the point of this layer: one trace's crash or
poisoned input is *contained to its job*. Injected faults (a
:class:`~repro.engine.executor.FaultPolicy` at fleet coordinates
``("fleet.job", index)``) model transient worker loss and are retried
with the executor's exponential-backoff discipline; genuine exceptions
fail the job immediately -- a deterministic bug does not become less
buggy by retrying. Either way the runner returns a ``failed``
:class:`~repro.fleet.scheduler.JobOutcome` carrying a structured
:class:`~repro.fleet.errors.JobError` naming the trace and stage, and
the sweep continues.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time

from repro.engine.errors import ExecutionError, InjectedFaultError, TaskError
from repro.engine.executor import _FaultingTask
from repro.fleet.errors import JobError
from repro.fleet.scheduler import DONE, FAILED, JobOutcome
from repro.obs import MetricsRegistry, stopwatch

#: Stage name fault policies roll against for fleet jobs; the partition
#: coordinate is the job's catalog index, so tests can target one trace.
JOB_STAGE = "fleet.job"


def execute_trace_job(payload):
    """Run Algorithm 1 over one trace file; returns a checkpoint payload.

    Module-level (picklable) so the process-pool runner can ship it to
    workers. The payload dict carries everything needed to run
    self-contained in a fresh process: the absolute trace path, the
    dataset name and the declarative parameter document. The returned
    dict is plain data (rows, counts, the report's dict form) -- exactly
    what gets checkpointed and what the aggregation job consumes.
    """
    from repro.core.params import config_from_dict
    from repro.core.pipeline import PreprocessingPipeline
    from repro.datasets import SPECS, build_dataset
    from repro.engine import EngineContext
    from repro.tracefile import codec_for

    bundle = build_dataset(SPECS[payload["dataset"]])
    config = config_from_dict(payload["params"], bundle.database)
    context = EngineContext.serial()
    k_b = codec_for(payload["trace_path"]).load_table(
        context, payload["trace_path"]
    )
    result = PreprocessingPipeline(config).run(k_b)
    return {
        "job_id": payload["job_id"],
        "index": payload["index"],
        "trace": payload["trace"],
        "trace_rows": k_b.count(),
        "rows_out": result.counts["r_out"],
        "r_columns": list(result.r_out.columns),
        "r_rows": result.r_out.collect(),
        "counts": dict(result.counts),
        "classification": {
            s_id: list(pair)
            for s_id, pair in result.classification_summary().items()
        },
        "stage_seconds": dict(result.timings),
        "report": result.report.to_dict(),
    }


class _BaseJobRunner:
    """Shared retry/backoff/metrics machinery of both runners."""

    def __init__(self, fn=execute_trace_job, fault_policy=None,
                 max_retries=2, retry_backoff=0.01, registry=None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.fn = fn
        self.fault_policy = fault_policy
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.obs = registry if registry is not None else MetricsRegistry()
        for name in ("fleet.jobs_run", "fleet.jobs_failed",
                     "fleet.job_retries", "fleet.faults_injected"):
            self.obs.counter(name)

    def _call(self, node, attempt):
        if self.fault_policy is None:
            return self.fn(node.payload)
        return _FaultingTask(
            self.fn, self.fault_policy, JOB_STAGE, node.index, attempt
        )(node.payload)

    def _job_error(self, node, exc, attempts):
        trace = None
        if isinstance(node.payload, dict):
            trace = node.payload.get("trace")
        stage = getattr(exc, "stage", None) or JOB_STAGE
        return JobError(
            "job {!r} (trace {!r}) failed after {} attempt(s) in stage "
            "{!r}: {}".format(node.job_id, trace, attempts, stage, exc),
            job_id=node.job_id,
            trace=trace,
            stage=stage,
            attempts=attempts,
            cause=exc,
        )

    def _outcome(self, node, value=None, error=None):
        if error is None:
            self.obs.inc("fleet.jobs_run")
            return JobOutcome(node.job_id, DONE, value=value)
        self.obs.inc("fleet.jobs_failed")
        return JobOutcome(node.job_id, FAILED, error=error)

    def close(self):
        """Release worker resources (no-op for serial execution)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class SerialJobRunner(_BaseJobRunner):
    """Run submitted jobs in the driver process, FIFO, one at a time."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._queue = []

    def submit(self, node):
        self._queue.append(node)

    def wait_any(self):
        node = self._queue.pop(0)
        attempts = self.max_retries + 1
        value = None
        error = None
        last = None
        with stopwatch() as watch:
            for attempt in range(attempts):
                try:
                    value = self._call(node, attempt)
                    break
                except InjectedFaultError as exc:
                    last = exc
                    self.obs.inc("fleet.faults_injected")
                    if attempt < attempts - 1:
                        self.obs.inc("fleet.job_retries")
                        if self.retry_backoff:
                            time.sleep(self.retry_backoff * (2 ** attempt))
                except Exception as exc:
                    error = self._job_error(node, exc, attempt + 1)
                    break
            else:
                error = self._job_error(node, last, attempts)
        self.obs.observe("fleet.job_seconds", watch.seconds)
        return self._outcome(node, value=value, error=error)


class ProcessPoolJobRunner(_BaseJobRunner):
    """Run submitted jobs on a pool of forked worker processes.

    One apply_async handle per in-flight job; :meth:`wait_any` polls the
    handles and resubmits injected-fault failures (transient worker
    loss) until the retry budget is exhausted. The scheduler's
    ``max_inflight`` bound means only that many handles ever exist.
    """

    _POLL_SECONDS = 0.002

    def __init__(self, num_workers=2, **kwargs):
        super().__init__(**kwargs)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._pool = None
        self._inflight = {}  # job_id -> (node, attempt, handle, stopwatch)

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.num_workers)
        return self._pool

    def submit(self, node):
        try:
            pickle.dumps(node.payload)
        except Exception as exc:
            raise ExecutionError(
                "fleet job {!r} payload is not picklable: {}".format(
                    node.job_id, exc
                ),
                exc,
            )
        self._start(node, attempt=0, watch=stopwatch())

    def _start(self, node, attempt, watch):
        pool = self._ensure_pool()
        call = self.fn
        if self.fault_policy is not None:
            call = _FaultingTask(
                self.fn, self.fault_policy, JOB_STAGE, node.index, attempt
            )
        watch.__enter__()
        handle = pool.apply_async(call, (node.payload,))
        self._inflight[node.job_id] = (node, attempt, handle, watch)

    def wait_any(self):
        if not self._inflight:
            raise ExecutionError("wait_any() with no jobs in flight")
        while True:
            for job_id, (node, attempt, handle, watch) in list(
                self._inflight.items()
            ):
                if not handle.ready():
                    continue
                del self._inflight[job_id]
                watch.__exit__(None, None, None)
                try:
                    value = handle.get()
                except InjectedFaultError as exc:
                    self.obs.inc("fleet.faults_injected")
                    if attempt < self.max_retries:
                        self.obs.inc("fleet.job_retries")
                        if self.retry_backoff:
                            time.sleep(self.retry_backoff * (2 ** attempt))
                        self._start(node, attempt + 1, watch)
                        continue
                    self.obs.observe("fleet.job_seconds", watch.seconds)
                    return self._outcome(
                        node, error=self._job_error(node, exc, attempt + 1)
                    )
                except Exception as exc:
                    self.obs.observe("fleet.job_seconds", watch.seconds)
                    return self._outcome(
                        node, error=self._job_error(node, exc, attempt + 1)
                    )
                self.obs.observe("fleet.job_seconds", watch.seconds)
                return self._outcome(node, value=value)
            time.sleep(self._POLL_SECONDS)

    def close(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_runner(workers=1, **kwargs):
    """Serial runner for ``workers <= 1``, process pool otherwise."""
    if workers <= 1:
        return SerialJobRunner(**kwargs)
    return ProcessPoolJobRunner(num_workers=workers, **kwargs)


__all__ = [
    "JOB_STAGE",
    "JobOutcome",
    "ProcessPoolJobRunner",
    "SerialJobRunner",
    "TaskError",
    "execute_trace_job",
    "make_runner",
]
