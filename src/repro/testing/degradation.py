"""Degradation harness: perfect-vs-corrupted pipeline comparison.

Runs the *same* scenario twice through the full Algorithm-1 pipeline --
once perfect, once through a :mod:`repro.vehicle.corruption` model at a
given severity -- and quantifies what the corruption cost, against the
corruption log as ground truth:

* **signal recovery** -- fraction of the perfect run's ``K_s`` rows the
  corrupted run still produces (multiset intersection);
* **spurious rate** -- fraction of the corrupted run's ``K_s`` rows the
  perfect run never produced (bit flips and jittered duplicates);
* **reduction ratio delta** -- how far the corrupted run's constraint
  reduction drifts from the perfect run's;
* **R_out recovery** -- same recovery measure on the homogeneous output;
* **dedup correctness** -- fraction of signal types whose gateway
  equality-split channel grouping matches the perfect run (exact
  duplicates and per-channel drops break cross-channel correspondence);
* the pipeline's lossy-trace counters (``short_payload_skipped``,
  ``exact_duplicates_dropped``) and the corruption log's event counts.

A sweep over severities yields one :class:`DegradationReport` (format
``repro.degrade/1``): a :class:`~repro.obs.RunReport` extended with the
``baseline`` summary and the per-(knob, severity) ``curves`` table, each
point also mirrored into ``degrade.*`` gauges. Severity 0 is the
harness's self-check: every model is then a strict identity, so the
corrupted run must be *byte-identical* to the perfect one.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter

from repro.core.pipeline import PreprocessingPipeline
from repro.engine import EngineContext
from repro.obs import REPORT_FORMAT, ReportSchemaError, RunReport, validate_report
from repro.protocols import BYTE_RECORD_COLUMNS
from repro.vehicle.corruption import (
    BitFlip,
    ClockSkew,
    FrameDrop,
    GatewayDuplicate,
    PayloadTruncation,
    corrupt,
)

#: Version tag of the serialized degradation report shape.
DEGRADE_REPORT_FORMAT = "repro.degrade/1"

#: The named corruption knobs a sweep exercises. Each model's configured
#: values act as severity 1.0 (:meth:`CorruptionModel.at_severity`).
KNOBS = {
    "frame_drop": FrameDrop(rate=0.05),
    "burst_drop": FrameDrop(rate=0.01, burst_length=8),
    "exact_duplicate": GatewayDuplicate(rate=0.05),
    "gateway_duplicate": GatewayDuplicate(rate=0.05, jitter=0.002),
    "clock_skew": ClockSkew(drift=0.002, step_rate=0.01, step_scale=0.05),
    "payload_truncation": PayloadTruncation(rate=0.05),
    "bit_flip": BitFlip(rate=0.05),
}

DEFAULT_SEVERITIES = (0.0, 0.5, 1.0)

#: Numeric fields every curve point carries (all validated).
_POINT_RATES = (
    "signal_recovery", "spurious_rate", "r_out_recovery",
    "dedup_correctness",
)
_POINT_NUMBERS = _POINT_RATES + (
    "severity", "reduction_ratio", "reduction_ratio_delta",
)
_POINT_COUNTS = (
    "records_in", "records_out", "corruption_events",
    "short_payload_skipped", "exact_duplicates_dropped",
)


class DegradationError(ValueError):
    """Raised for invalid harness configuration."""


class DegradationReport:
    """A :class:`RunReport` plus the baseline summary and curve table."""

    def __init__(self, name="degrade.run"):
        self.run = RunReport(name)
        self.baseline = {}
        self.curves = []

    @property
    def metrics(self):
        return self.run.metrics

    @property
    def spans(self):
        return self.run.spans

    @property
    def meta(self):
        return self.run.meta

    def set_meta(self, **entries):
        self.run.set_meta(**entries)
        return self

    def points(self, knob=None):
        """Curve points, optionally restricted to one knob."""
        return [
            p for p in self.curves if knob is None or p["knob"] == knob
        ]

    # -- serialization ---------------------------------------------------
    def to_dict(self):
        payload = self.run.to_dict()
        payload["format"] = DEGRADE_REPORT_FORMAT
        payload["baseline"] = dict(self.baseline)
        payload["curves"] = [dict(p) for p in self.curves]
        return payload

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=str)

    def write(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path


def validate_degrade_report(payload):
    """Check a payload against the ``repro.degrade/1`` shape.

    Returns the payload when valid, raises
    :class:`~repro.obs.ReportSchemaError` listing every problem
    otherwise. Accepts a dict or a JSON string; the shared
    spans/counters/gauges/histograms sections delegate to
    :func:`repro.obs.validate_report`.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except ValueError as exc:
            raise ReportSchemaError(
                "degradation report is not valid JSON: {}".format(exc)
            )
    if not isinstance(payload, dict):
        raise ReportSchemaError("degradation report must be a JSON object")
    errors = []
    if payload.get("format") != DEGRADE_REPORT_FORMAT:
        errors.append("format must be {!r}, got {!r}".format(
            DEGRADE_REPORT_FORMAT, payload.get("format")))
    baseline = payload.get("baseline")
    if not isinstance(baseline, dict):
        errors.append("baseline must be an object")
    else:
        for key in ("records", "k_s_rows", "r_out_rows"):
            value = baseline.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                errors.append(
                    "baseline.{} must be an int >= 0".format(key)
                )
        ratio = baseline.get("reduction_ratio")
        if not isinstance(ratio, (int, float)) or isinstance(ratio, bool):
            errors.append("baseline.reduction_ratio must be a number")
    curves = payload.get("curves")
    if not isinstance(curves, list):
        errors.append("curves must be a list")
    else:
        for i, point in enumerate(curves):
            prefix = "curves[{}]".format(i)
            if not isinstance(point, dict):
                errors.append("{} must be an object".format(prefix))
                continue
            if not isinstance(point.get("knob"), str) or not point["knob"]:
                errors.append(
                    "{}.knob must be a non-empty string".format(prefix)
                )
            if not isinstance(point.get("byte_identical"), bool):
                errors.append(
                    "{}.byte_identical must be a bool".format(prefix)
                )
            for key in _POINT_NUMBERS:
                value = point.get(key)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    errors.append(
                        "{}.{} must be a number".format(prefix, key)
                    )
                elif key in _POINT_RATES and not 0.0 <= value <= 1.0:
                    errors.append(
                        "{}.{} must be in [0, 1]".format(prefix, key)
                    )
                elif key == "severity" and value < 0:
                    errors.append(
                        "{}.severity must be >= 0".format(prefix)
                    )
            for key in _POINT_COUNTS:
                value = point.get(key)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    errors.append(
                        "{}.{} must be an int >= 0".format(prefix, key)
                    )
            counts = point.get("corruption_counts", {})
            if not isinstance(counts, dict):
                errors.append(
                    "{}.corruption_counts must be an object".format(prefix)
                )
    if errors:
        raise ReportSchemaError(
            "invalid degradation report: {}".format("; ".join(errors))
        )
    obs_payload = {
        key: value for key, value in payload.items()
        if key not in ("baseline", "curves")
    }
    obs_payload["format"] = REPORT_FORMAT
    validate_report(obs_payload)
    return payload


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def _multiset(rows):
    return Counter(tuple(row) for row in rows)


def _recovery(baseline, observed):
    """|baseline ∩ observed| / |baseline| (1.0 for an empty baseline)."""
    total = sum(baseline.values())
    if not total:
        return 1.0
    common = sum((baseline & observed).values())
    return common / total


def _spurious(baseline, observed):
    """Fraction of *observed* rows absent from the baseline."""
    total = sum(observed.values())
    if not total:
        return 0.0
    extra = sum((observed - baseline).values())
    return extra / total


def _reduction_ratio(result):
    before = sum(
        o.rows_before_reduction for o in result.outcomes.values()
    )
    after = sum(o.rows_after_reduction for o in result.outcomes.values())
    if not before:
        return 0.0
    return 1.0 - after / before


def _grouping(result):
    """Canonical gateway-dedup grouping: s_id -> frozenset of channel
    groups (each a sorted tuple of the group's channels)."""
    out = {}
    for s_id, outcome in result.outcomes.items():
        out[s_id] = frozenset(
            tuple(sorted(map(str, g.all_channels())))
            for g in outcome.groups
        )
    return out


def _dedup_correctness(baseline_groups, groups):
    """Fraction of baseline signal types with an identical grouping."""
    if not baseline_groups:
        return 1.0
    matching = sum(
        1 for s_id, expected in baseline_groups.items()
        if groups.get(s_id) == expected
    )
    return matching / len(baseline_groups)


class _Run:
    """One pipeline execution's comparison-relevant footprint."""

    def __init__(self, config, records):
        context = EngineContext.serial()
        k_b = context.table_from_rows(
            list(BYTE_RECORD_COLUMNS), list(records)
        )
        result = PreprocessingPipeline(config).run(k_b)
        counters = result.report.metrics.counters()
        self.result = result
        self.k_s = _multiset(result.k_s.collect())
        self.r_out = _multiset(result.r_out.collect())
        self.reduction_ratio = _reduction_ratio(result)
        self.grouping = _grouping(result)
        self.short_payload_skipped = counters.get(
            "pipeline.interpret.short_payload_skipped", 0
        )
        self.exact_duplicates_dropped = counters.get(
            "pipeline.interpret.exact_duplicates_dropped", 0
        )


def lossy_config(config):
    """*config* hardened for corrupted input: truncated payloads are
    skipped (and counted) instead of aborting the run. A config already
    in a lossy mode (skip or keep) passes through unchanged."""
    if config.short_payload in ("skip", "keep"):
        return config
    return dataclasses.replace(config, short_payload="skip")


def run_degradation(records, config, knobs=None, severities=None, seed=0,
                    report_name="degrade.run"):
    """Severity sweep: one :class:`DegradationReport` for *records*.

    *records* are the scenario's perfect ``k_b`` byte records; *config*
    the domain's :class:`~repro.core.pipeline.PipelineConfig` (hardened
    via :func:`lossy_config`, so corrupted runs never abort on truncated
    payloads). *knobs* maps knob names to
    :class:`~repro.vehicle.corruption.CorruptionModel` instances
    (default: :data:`KNOBS`); every knob runs at every severity in
    *severities* (default: :data:`DEFAULT_SEVERITIES`) against the same
    baseline run.
    """
    records = list(records)
    if knobs is None:
        knobs = KNOBS
    if not knobs:
        raise DegradationError("need at least one corruption knob")
    severities = tuple(
        DEFAULT_SEVERITIES if severities is None else severities
    )
    if not severities:
        raise DegradationError("need at least one severity")
    if any(s < 0 for s in severities):
        raise DegradationError("severities must be >= 0")
    config = lossy_config(config)

    report = DegradationReport(report_name)
    report.set_meta(
        seed=seed,
        severities=list(severities),
        knobs=sorted(knobs),
    )
    with report.run.span("baseline"):
        baseline = _Run(config, records)
    report.baseline = {
        "records": len(records),
        "k_s_rows": sum(baseline.k_s.values()),
        "r_out_rows": sum(baseline.r_out.values()),
        "reduction_ratio": baseline.reduction_ratio,
    }

    for name in sorted(knobs):
        model = knobs[name]
        with report.run.span("knob.{}".format(name)):
            for severity in severities:
                corrupted, log = corrupt(
                    records, [model.at_severity(severity)], seed=seed
                )
                run = _Run(config, corrupted)
                point = {
                    "knob": name,
                    "severity": float(severity),
                    "records_in": len(records),
                    "records_out": len(corrupted),
                    "corruption_events": len(log),
                    "corruption_counts": log.counts(),
                    "byte_identical": (
                        corrupted == records
                        and run.k_s == baseline.k_s
                        and run.r_out == baseline.r_out
                    ),
                    "signal_recovery": _recovery(baseline.k_s, run.k_s),
                    "spurious_rate": _spurious(baseline.k_s, run.k_s),
                    "reduction_ratio": run.reduction_ratio,
                    "reduction_ratio_delta": (
                        run.reduction_ratio - baseline.reduction_ratio
                    ),
                    "r_out_recovery": _recovery(
                        baseline.r_out, run.r_out
                    ),
                    "dedup_correctness": _dedup_correctness(
                        baseline.grouping, run.grouping
                    ),
                    "short_payload_skipped": run.short_payload_skipped,
                    "exact_duplicates_dropped": (
                        run.exact_duplicates_dropped
                    ),
                }
                report.curves.append(point)
                prefix = "degrade.{}.{:g}".format(name, severity)
                metrics = report.metrics
                for key in (
                    "signal_recovery", "spurious_rate", "reduction_ratio",
                    "reduction_ratio_delta", "r_out_recovery",
                    "dedup_correctness",
                ):
                    metrics.set_gauge(
                        "{}.{}".format(prefix, key), point[key]
                    )
                metrics.counter(
                    "degrade.corruption_events"
                ).inc(point["corruption_events"])
    return report


def degradation_summary(report):
    """Terse per-point text table (the CLI's output)."""
    lines = [
        "{:20s} {:>8s} {:>7s} {:>9s} {:>9s} {:>7s} {:>6s}".format(
            "knob", "severity", "events", "recovery", "spurious",
            "dedup", "ident",
        )
    ]
    for p in report.curves:
        lines.append(
            "{:20s} {:8g} {:7d} {:9.3f} {:9.3f} {:7.3f} {:>6s}".format(
                p["knob"], p["severity"], p["corruption_events"],
                p["signal_recovery"], p["spurious_rate"],
                p["dedup_correctness"],
                "yes" if p["byte_identical"] else "no",
            )
        )
    return "\n".join(lines)
