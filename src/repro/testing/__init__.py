"""Differential testing harness for the dataflow engine.

The paper's framework is only trustworthy if Algorithm 1 executes
identically whether it runs serially or distributed; this package
enforces that promise mechanically instead of by a handful of
hand-written cases:

* :mod:`repro.testing.generator` -- seeded random trace-shaped tables
  (skewed keys, NULLs, empty partitions) and random logical plans drawn
  from the engine's operator grammar, encoded as pure-data *specs* so
  they serialize and shrink;
* :mod:`repro.testing.oracle` -- executes every generated plan under
  SerialExecutor, MultiprocessingExecutor and SimulatedClusterExecutor,
  with and without the optimizer, and asserts row-multiset equality
  against an unoptimized serial reference;
* :mod:`repro.testing.shrinker` -- minimizes a diverging (plan, input)
  pair to a small reproducer and writes it to disk as JSON;
* :mod:`repro.testing.fuzz` -- the CLI: ``python -m repro.testing.fuzz
  --seeds N`` for long offline runs, ``--reproduce file.json`` to
  re-execute a shrunk failure.
"""

from repro.testing.generator import (
    DatasetCase,
    apply_spec,
    build_table,
    corrupt_dataset,
    generate_case,
    generate_dataset,
    generate_journey_case,
    generate_spec,
)
from repro.testing.oracle import (
    DEFAULT_COMBOS,
    REFERENCE_COMBO,
    CaseReport,
    ComboSpec,
    DifferentialOracle,
    Divergence,
    run_seeds,
)
from repro.testing.degradation import (
    DEFAULT_SEVERITIES,
    DEGRADE_REPORT_FORMAT,
    KNOBS,
    DegradationError,
    DegradationReport,
    degradation_summary,
    lossy_config,
    run_degradation,
    validate_degrade_report,
)
from repro.testing.shrinker import (
    load_reproducer,
    shrink_case,
    write_reproducer,
)

__all__ = [
    "DatasetCase",
    "apply_spec",
    "build_table",
    "corrupt_dataset",
    "generate_case",
    "generate_dataset",
    "generate_journey_case",
    "generate_spec",
    "DEFAULT_COMBOS",
    "REFERENCE_COMBO",
    "CaseReport",
    "ComboSpec",
    "DifferentialOracle",
    "Divergence",
    "run_seeds",
    "load_reproducer",
    "shrink_case",
    "write_reproducer",
    "DEFAULT_SEVERITIES",
    "DEGRADE_REPORT_FORMAT",
    "KNOBS",
    "DegradationError",
    "DegradationReport",
    "degradation_summary",
    "lossy_config",
    "run_degradation",
    "validate_degrade_report",
]
