"""Seeded random generation of trace-shaped tables and logical plans.

Everything here is deterministic given a seed: the same seed always
produces the same dataset and the same plan spec, on any host (no use of
``hash`` on strings, no wall-clock input).

A *plan spec* is a tuple of pure-data op tuples -- ``("filter_cmp", "v",
"gt", 40)``, ``("groupby", ("m_id",), (("n", "count", None),))`` -- that
:func:`apply_spec` replays against a :class:`~repro.engine.table.Table`.
Keeping specs as plain data (JSON-serializable) is what makes shrinking
and on-disk reproducers possible; callables needed by flat-map and
window ops are reconstructed from their encoded parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine import aggregates, col
from repro.engine.window import (
    drop_consecutive_duplicates,
    forward_fill,
    with_gap,
    with_lag,
)

#: Value domains for the trace-shaped table. Mirrors a decoded CAN/LIN
#: signal table: timestamp, skewed message id, bus name, numeric signal
#: value with NULLs, sparse string annotation.
TRACE_COLUMNS = ("t", "m_id", "bus", "v", "flag")
CATALOG_COLUMNS = ("m_id", "scale", "label")
_BUSES = ("FC", "BC", "K-LIN")
_FLAGS = (None, None, None, "rise", "fall", "hold")
_MESSAGE_IDS = tuple(range(8))


@dataclass(frozen=True)
class DatasetCase:
    """One generated input: a trace table plus a small catalog table.

    ``trace_partitions`` preserves an explicit partition layout (possibly
    with empty partitions) because partition boundaries are exactly what
    distributed execution can get wrong.
    """

    trace_partitions: tuple  # tuple of tuples of row tuples
    catalog_rows: tuple

    def total_rows(self):
        return sum(len(p) for p in self.trace_partitions)


@dataclass(frozen=True)
class _ColumnInfo:
    """What the generator may safely do with a column."""

    orderable: bool  # usable as a sort / window-order key
    numeric: bool  # usable in arithmetic
    nullable: bool


_BASE_INFO = {
    "t": _ColumnInfo(True, True, False),
    "m_id": _ColumnInfo(True, True, False),
    "bus": _ColumnInfo(True, False, False),
    "v": _ColumnInfo(False, True, True),
    "flag": _ColumnInfo(False, False, True),
}


def generate_dataset(rng):
    """Draw a trace table and catalog from *rng* (a ``random.Random``)."""
    num_rows = rng.choice((0, rng.randint(1, 30), rng.randint(20, 120)))
    num_partitions = rng.randint(1, 6)
    t = 0.0
    rows = []
    for _unused in range(num_rows):
        t += rng.choice((0.0, 0.01, 0.1, 0.5))
        # Skewed message ids: low ids dominate, as real bus traffic does.
        m_id = _MESSAGE_IDS[min(int(rng.random() ** 2 * len(_MESSAGE_IDS)),
                                len(_MESSAGE_IDS) - 1)]
        v = None if rng.random() < 0.15 else rng.randint(0, 100)
        rows.append((t, m_id, rng.choice(_BUSES), v, rng.choice(_FLAGS)))
    partitions = [[] for _unused in range(num_partitions)]
    for row in rows:
        partitions[rng.randrange(num_partitions)].append(row)
    catalog = tuple(
        (m, rng.randint(1, 5), "msg-{}".format(m))
        for m in _MESSAGE_IDS
        if rng.random() < 0.8  # leave some ids unmatched for left joins
    )
    return DatasetCase(
        tuple(tuple(p) for p in partitions), catalog
    )


def corrupt_dataset(case, rng):
    """Return a lossy transport variant of *case*.

    Models what gateways and flaky loggers do to real traces: exact
    duplicate frames (replays, possibly landing in another partition),
    backwards clock steps (non-monotonic ``t``), and frames whose value
    was lost in transit (``v`` nulled, as a truncated payload decodes to
    nothing). The plan grammar has no ordering assumptions the engine
    does not enforce itself, so every combo must agree on lossy input
    exactly as it does on clean input.
    """
    partitions = [list(p) for p in case.trace_partitions]
    index = [
        (i, j) for i, p in enumerate(partitions) for j in range(len(p))
    ]
    if not index:
        return case
    for _unused in range(rng.randint(1, 3)):  # gateway replays
        i, j = index[rng.randrange(len(index))]
        partitions[rng.randrange(len(partitions))].append(partitions[i][j])
    if rng.random() < 0.7:  # backwards clock step
        i, j = index[rng.randrange(len(index))]
        row = partitions[i][j]
        back = rng.choice((0.01, 0.1, 1.0))
        partitions[i][j] = (max(0.0, row[0] - back),) + row[1:]
    if rng.random() < 0.5:  # payload truncated in transport
        i, j = index[rng.randrange(len(index))]
        row = partitions[i][j]
        partitions[i][j] = row[:3] + (None,) + row[4:]
    return DatasetCase(
        tuple(tuple(p) for p in partitions), case.catalog_rows
    )


# ---------------------------------------------------------------------------
# Plan specs
# ---------------------------------------------------------------------------

_COMPARISONS = ("lt", "le", "gt", "ge")
_AGG_KINDS = ("count", "sum", "mean", "min", "max", "count_distinct")


def generate_spec(rng, case, max_ops=8):
    """Draw a random plan spec valid for *case*'s schema.

    Tracks per-column orderability/nullability so every generated spec
    builds without schema errors; shrinking may still produce invalid
    specs, which the shrinker filters by attempting to build them.
    """
    info = dict(_BASE_INFO)
    joined = False
    unions = 0
    ops = []
    for _unused in range(rng.randint(1, max_ops)):
        choices = ["filter_cmp", "filter_null", "filter_in", "select",
                   "distinct", "repartition",
                   "flat_map_repeat", "keep_every", "sort", "groupby"]
        if unions < 2:  # each union doubles the executed subtree
            choices.append("union_self")
        if any(i.numeric and not i.nullable for i in info.values()):
            choices.append("with_column_scale")
        if "m_id" in info and not joined:
            choices.append("join")
        if any(n in info for n in ("m_id", "bus", "flag")):
            choices.append("split_pick")
        orderable = [n for n, i in info.items() if i.orderable]
        if orderable:
            choices += ["lag", "gap", "dropdup", "ffill"]
        op = _draw_op(rng, rng.choice(choices), info, joined)
        if op is None:
            continue
        ops.append(op)
        if op[0] == "union_self":
            unions += 1
        info, joined = _advance_schema(op, info, joined)
        if not info:  # defensive; should not happen
            break
    return tuple(ops)


def _draw_op(rng, kind, info, joined):
    names = list(info)
    orderable = [n for n, i in info.items() if i.orderable]
    numeric = [n for n, i in info.items() if i.numeric and not i.nullable]
    if kind == "filter_cmp":
        candidates = [n for n in orderable if info[n].numeric]
        if not candidates:
            return None
        return ("filter_cmp", rng.choice(candidates),
                rng.choice(_COMPARISONS), rng.randint(0, 60))
    if kind == "filter_null":
        name = rng.choice(names)
        return ("filter_null", name, rng.random() < 0.3)
    if kind == "split_pick":
        # Shuffle every row by a key column, keep one group's table.
        # Keys sometimes miss the data entirely (empty result table).
        candidates = [n for n in ("m_id", "bus", "flag") if n in info]
        if not candidates:
            return None
        name = rng.choice(candidates)
        if name == "m_id":
            value = rng.randint(0, len(_MESSAGE_IDS) - 1)
        elif name == "bus":
            value = rng.choice(_BUSES + ("GHOST",))
        else:
            value = rng.choice(("rise", "fall", "hold", "none"))
        return ("split_pick", name, value)
    if kind == "filter_in":
        name = rng.choice(names)
        if info[name].numeric:
            values = sorted(rng.sample(range(0, 101), rng.randint(1, 6)))
        else:
            values = sorted(
                rng.sample(_BUSES + ("rise", "fall", "none"),
                           rng.randint(1, 3))
            )
        return ("filter_in", name, tuple(values))
    if kind == "select":
        keep = rng.sample(names, rng.randint(1, len(names)))
        # Preserve original relative order half the time, shuffle otherwise.
        if rng.random() < 0.5:
            keep = [n for n in names if n in set(keep)]
        return ("select", tuple(keep))
    if kind == "with_column_scale":
        if not numeric:
            return None
        return ("with_column_scale", "d{}".format(rng.randint(0, 99)),
                rng.choice(numeric), rng.randint(2, 9))
    if kind == "join":
        return ("join", rng.choice(("inner", "left")))
    if kind == "union_self":
        return ("union_self",)
    if kind == "distinct":
        return ("distinct",)
    if kind == "repartition":
        keys = ()
        if orderable and rng.random() < 0.5:
            keys = (rng.choice(orderable),)
        return ("repartition", rng.randint(1, 6), keys)
    if kind == "flat_map_repeat":
        return ("flat_map_repeat", rng.randint(1, 3))
    if kind == "keep_every":
        return ("keep_every", rng.randint(1, 4))
    if kind == "sort":
        keys = rng.sample(orderable, min(len(orderable), rng.randint(1, 2)))
        ascending = tuple(rng.random() < 0.8 for _unused in keys)
        return ("sort", tuple(keys), ascending)
    if kind == "groupby":
        keys = tuple(rng.sample(names, rng.randint(1, min(2, len(names)))))
        aggs = []
        used = set(keys)
        for _unused in range(rng.randint(1, 3)):
            agg_kind = rng.choice(_AGG_KINDS)
            if agg_kind in ("sum", "mean", "min", "max"):
                if not numeric:
                    continue
                column = rng.choice(numeric)
            elif agg_kind == "count":
                column = None
            else:  # count_distinct works on any column
                column = rng.choice(names)
            out = "a{}".format(len(aggs))
            if out in used:
                continue
            used.add(out)
            aggs.append((out, agg_kind, column))
        if not aggs:
            return None
        return ("groupby", keys, tuple(aggs))
    if kind in ("lag", "gap"):
        order = rng.choice(orderable)
        if kind == "gap":
            candidates = numeric
        else:
            candidates = names
        if not candidates:
            return None
        value = rng.choice(candidates)
        groups = ()
        group_candidates = [n for n in orderable if n != order]
        if group_candidates and rng.random() < 0.5:
            groups = (rng.choice(group_candidates),)
        out = "w{}".format(rng.randint(0, 99))
        if out in info:  # appended window columns must not collide
            return None
        return (kind, value, order, out, groups)
    if kind == "dropdup":
        order = rng.choice(orderable)
        compare = tuple(rng.sample(names, rng.randint(1, min(2, len(names)))))
        groups = ()
        group_candidates = [n for n in orderable if n != order]
        if group_candidates and rng.random() < 0.5:
            groups = (rng.choice(group_candidates),)
        return ("dropdup", compare, order, groups)
    if kind == "ffill":
        nullable = [n for n, i in info.items() if i.nullable]
        if not nullable:
            return None
        order = rng.choice(orderable)
        fill = tuple(rng.sample(nullable, rng.randint(1, len(nullable))))
        return ("ffill", order, fill)
    raise ValueError("unknown op kind {!r}".format(kind))


def _advance_schema(op, info, joined):
    """Track column metadata across one op, mirroring apply_spec."""
    kind = op[0]
    info = dict(info)
    if kind == "select":
        info = {n: info[n] for n in op[1]}
    elif kind == "with_column_scale":
        info[op[1]] = _ColumnInfo(True, True, False)
    elif kind == "join":
        nullable = op[1] == "left"
        info["scale"] = _ColumnInfo(not nullable, True, nullable)
        info["label"] = _ColumnInfo(not nullable, False, nullable)
        joined = True
    elif kind == "groupby":
        keys, aggs = op[1], op[2]
        new = {k: info[k] for k in keys}
        for out, agg_kind, column in aggs:
            if agg_kind in ("count", "count_distinct"):
                new[out] = _ColumnInfo(True, True, False)
            elif agg_kind == "mean":
                new[out] = _ColumnInfo(True, True, False)
            else:  # sum/min/max inherit the input column's domain
                src = info[column]
                new[out] = _ColumnInfo(
                    src.orderable or (src.numeric and not src.nullable),
                    src.numeric,
                    src.nullable,
                )
        info = new
    elif kind == "lag":
        src = info[op[1]]
        info[op[3]] = _ColumnInfo(False, src.numeric, True)
    elif kind == "gap":
        info[op[3]] = _ColumnInfo(False, True, True)
    elif kind == "ffill":
        # Values may still be None before the first non-null; keep nullable.
        pass
    return info, joined


# ---------------------------------------------------------------------------
# Spec replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepeatRow:
    """Picklable flat-map body: emit each row ``n`` times."""

    n: int

    def __call__(self, row):
        return [row] * self.n


@dataclass(frozen=True)
class KeepEvery:
    """Picklable partition map: keep rows at indices 0, k, 2k, ..."""

    k: int

    def __call__(self, rows):
        return rows[:: self.k]


_AGG_FACTORIES = {
    "count": aggregates.Count,
    "sum": aggregates.Sum,
    "mean": aggregates.Mean,
    "min": aggregates.Min,
    "max": aggregates.Max,
    "count_distinct": aggregates.CountDistinct,
    "first": aggregates.First,
    "last": aggregates.Last,
}


def build_table(ctx, case):
    """Materialize the case's trace table, preserving its partitions."""
    return ctx.table_from_partitions(TRACE_COLUMNS, case.trace_partitions)


def _catalog_table(ctx, case):
    return ctx.table_from_rows(
        CATALOG_COLUMNS, case.catalog_rows, num_partitions=1
    )


def apply_spec(ctx, case, spec):
    """Replay *spec* over the case's tables; returns the final Table.

    Raises :class:`~repro.engine.errors.EngineError` subclasses when the
    spec is invalid for the current schema -- the shrinker relies on this
    to discard invalid shrink candidates.
    """
    table = build_table(ctx, case)
    for op in spec:
        table = _apply_op(ctx, case, table, op)
    return table


def _apply_op(ctx, case, table, op):
    kind = op[0]
    if kind == "filter_cmp":
        _unused, name, cmp_op, value = op
        column = col(name)
        predicate = {
            "lt": column < value,
            "le": column <= value,
            "gt": column > value,
            "ge": column >= value,
            "eq": column == value,
            "ne": column != value,
        }[cmp_op]
        return table.filter(predicate)
    if kind == "filter_null":
        _unused, name, want_null = op
        column = col(name)
        return table.filter(
            column.is_null() if want_null else column.is_not_null()
        )
    if kind == "filter_in":
        return table.filter(col(op[1]).is_in(op[2]))
    if kind == "split_pick":
        return table.split_by_key(op[1], keys=[op[2]])[op[2]]
    if kind == "select":
        return table.select(*op[1])
    if kind == "with_column_scale":
        _unused, name, src, factor = op
        return table.with_column(name, col(src) * factor)
    if kind == "join":
        return table.join(_catalog_table(ctx, case), on="m_id", how=op[1])
    if kind == "union_self":
        return table.union(table)
    if kind == "distinct":
        return table.distinct()
    if kind == "repartition":
        return table.repartition(op[1], keys=list(op[2]))
    if kind == "flat_map_repeat":
        return table.flat_map(RepeatRow(op[1]), list(table.columns))
    if kind == "keep_every":
        return table.map_partitions(KeepEvery(op[1]))
    if kind == "sort":
        return table.sort(list(op[1]), ascending=list(op[2]))
    if kind == "groupby":
        _unused, keys, aggs = op
        specs = tuple(
            (out, _AGG_FACTORIES[agg_kind](), column)
            for out, agg_kind, column in aggs
        )
        return table.group_by(*keys).agg(*specs)
    if kind == "lag":
        _unused, value, order, out, groups = op
        return with_lag(table, order, value, out, group_by=list(groups))
    if kind == "gap":
        _unused, value, order, out, groups = op
        return with_gap(table, order, value, out, group_by=list(groups))
    if kind == "dropdup":
        _unused, compare, order, groups = op
        return drop_consecutive_duplicates(
            table, order, list(compare), group_by=list(groups)
        )
    if kind == "ffill":
        return forward_fill(table, op[1], list(op[2]))
    raise ValueError("unknown op kind {!r}".format(kind))


def generate_case(seed, max_ops=8, lossy=False):
    """Generate the (dataset, spec) pair for one seed.

    With ``lossy=True`` the dataset is additionally passed through
    :func:`corrupt_dataset`. The corruption draws happen *after* every
    clean draw, so ``generate_case(seed)`` and the clean prefix of
    ``generate_case(seed, lossy=True)`` are identical for any seed —
    lossy fuzzing extends the corpus instead of reshuffling it.
    """
    rng = random.Random(seed)
    case = generate_dataset(rng)
    spec = generate_spec(rng, case, max_ops=max_ops)
    if lossy:
        case = corrupt_dataset(case, rng)
    return case, spec


# ---------------------------------------------------------------------------
# Journey cases: random vehicles with real payload encodings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JourneyCase:
    """A generated vehicle: network database, parameter doc, trace.

    ``records`` are time-ordered ``k_b`` byte-record tuples encoded
    through the real :meth:`MessageDefinition.encode` path, so
    preselection/interpretation exercise genuine payload decoding, not
    synthetic shortcuts. The shape respects the incremental-equivalence
    preconditions (one channel per signal, ``dedup_channels`` false,
    at least two frames per message).
    """

    database: object  # NetworkDatabase
    params: dict  # declarative parameter document (core.params schema)
    records: tuple  # k_b byte-record tuples, time-ordered

    def duration(self):
        return self.records[-1][0] - self.records[0][0] if self.records else 0.0


_JOURNEY_CYCLES = (0.05, 0.1, 0.2, 0.25)
_JOURNEY_LEVELS = (
    (0, "off"), (1, "low"), (2, "mid"), (3, "high"),
)


def generate_journey_case(rng, lossy=False):
    """Draw a :class:`JourneyCase` from *rng* (a ``random.Random``).

    With ``lossy=True`` the finished journey is additionally passed
    through the transport corruption models of
    :mod:`repro.vehicle.corruption` (replayed duplicates, clock skew
    with non-monotonic steps, dropped and truncated frames) and the
    parameter document switches to ``short_payload: skip``. Corruption
    draws come after every clean draw, so clean journeys per seed are
    stable across the two modes.

    1-3 CAN messages on one channel, each with 1-2 signals (numeric
    random walks or ordinal level machines), cyclic transmission with
    random dropouts (gaps), and a parameter document drawing random
    reduction constraints and extension rules per signal.
    """
    from repro.network import (
        MessageDefinition,
        NetworkDatabase,
        SignalDefinition,
    )
    from repro.protocols import SignalEncoding

    messages = []
    behaviours = {}  # signal name -> callable(step) -> physical value
    signal_meta = []  # (name, kind, cycle_time)
    for m_index in range(rng.randint(1, 3)):
        cycle = rng.choice(_JOURNEY_CYCLES)
        signals = []
        bit = 0
        for s_index in range(rng.randint(1, 2)):
            name = "sig{}_{}".format(m_index, s_index)
            if rng.random() < 0.7:
                scale = rng.choice((1.0, 0.5, 0.25))
                signals.append(SignalDefinition(
                    name, SignalEncoding(bit, 16, scale=scale),
                    data_class="numeric",
                ))
                behaviours[name] = _random_walk(rng, scale)
                signal_meta.append((name, "numeric", cycle))
            else:
                signals.append(SignalDefinition(
                    name,
                    SignalEncoding(bit, 2, value_table=_JOURNEY_LEVELS),
                    data_class="ordinal",
                ))
                behaviours[name] = _level_machine(rng)
                signal_meta.append((name, "ordinal", cycle))
            bit += 16
        messages.append(MessageDefinition(
            "MSG{}".format(m_index), 0x10 + m_index, "FC", "CAN", 4,
            tuple(signals), cycle_time=cycle,
        ))
    database = NetworkDatabase(tuple(messages))

    duration = rng.uniform(2.0, 6.0)
    records = []
    for message in messages:
        steps = max(2, int(duration / message.cycle_time))
        for i in range(steps):
            # Dropouts create the gaps the gap/cycle-violation rules
            # look for; keep the first two frames so every message is
            # observed at least twice.
            if i >= 2 and rng.random() < 0.1:
                continue
            t = round(i * message.cycle_time, 6)
            payload = message.encode({
                s.name: behaviours[s.name](i) for s in message.signals
            })
            records.append((
                t, bytes(payload), message.channel, message.message_id,
                (("protocol", "CAN"),),
            ))
    records.sort(key=lambda r: (r[0], str(r[2]), r[3]))

    constraints = []
    extensions = []
    for name, kind, cycle in signal_meta:
        draw = rng.random()
        if kind == "numeric":
            if draw < 0.4:
                constraints.append({
                    "signal": name, "type": "unchanged_within_cycle",
                    "cycle_time": cycle,
                    "tolerance": rng.choice((1.2, 1.5, 2.0)),
                })
            elif draw < 0.6:
                constraints.append({"signal": name, "type": "unchanged"})
            elif draw < 0.8:
                constraints.append({
                    "signal": name, "type": "minimum_gap",
                    "min_gap": cycle * rng.choice((1.5, 3.0)),
                })
            # else: unconstrained signal (kept verbatim)
        else:
            if draw < 0.5:
                constraints.append({"signal": name, "type": "unchanged"})
        ext_draw = rng.random()
        if ext_draw < 0.25:
            extensions.append({"signal": name, "type": "gap"})
        elif ext_draw < 0.4:
            extensions.append({
                "signal": name, "type": "cycle_violation",
                "expected_cycle": cycle,
                "tolerance": rng.choice((1.5, 1.8)),
            })
    params = {
        "signals": [name for name, _kind, _cycle in signal_meta],
        "constraints": constraints,
        "extensions": extensions,
        "branch": {
            "sax_alphabet": rng.choice((3, 4, 5)),
            "smoothing_window": rng.choice((3, 5)),
            "rate_threshold": rng.choice((0.5, 1.0, 2.0)),
        },
        # Equivalence precondition: gateway dedup compares copies across
        # channels, which windowed runs cannot see across boundaries.
        "dedup_channels": False,
    }
    case = JourneyCase(
        database=database, params=params, records=tuple(records)
    )
    if lossy:
        case = _corrupt_journey(case, rng)
    return case


def _corrupt_journey(case, rng):
    """Apply transport corruption models to a clean journey.

    Draws only *after* every clean draw, so the clean journey for a
    given rng state is unchanged. The parameter document switches to
    ``short_payload: skip`` because truncated frames are expected, not
    exceptional, on a lossy bus.
    """
    from repro.vehicle.corruption import (
        ClockSkew,
        FrameDrop,
        GatewayDuplicate,
        PayloadTruncation,
        corrupt,
    )

    models = []
    if rng.random() < 0.7:
        models.append(GatewayDuplicate(rate=rng.choice((0.05, 0.2))))
    if rng.random() < 0.7:
        models.append(ClockSkew(
            drift=rng.choice((0.0, 0.002)),
            step_rate=rng.choice((0.02, 0.08)),
            step_scale=0.05,
        ))
    if rng.random() < 0.4:
        models.append(FrameDrop(rate=0.05))
    if rng.random() < 0.5:
        models.append(PayloadTruncation(rate=0.1))
    if not models:
        models.append(GatewayDuplicate(rate=0.1))
    corrupted, _log = corrupt(
        case.records, models, seed=rng.randrange(2 ** 32)
    )
    params = dict(case.params)
    params["short_payload"] = "skip"
    return JourneyCase(
        database=case.database, params=params, records=tuple(corrupted)
    )


def _random_walk(rng, scale):
    """A bounded integer-step random walk in physical units."""
    state = {"v": rng.randint(20, 80)}
    hold = rng.randint(1, 6)  # plateaus make reduction worthwhile

    def behaviour(step):
        if step % hold == 0 and rng.random() < 0.7:
            state["v"] = min(120, max(0, state["v"] + rng.randint(-5, 5)))
        return state["v"] * scale

    return behaviour


def _level_machine(rng):
    """An ordinal level that dwells, then jumps to a neighbour level."""
    labels = [label for _raw, label in _JOURNEY_LEVELS]
    state = {"i": rng.randrange(len(labels))}
    dwell = rng.randint(3, 10)

    def behaviour(step):
        if step and step % dwell == 0:
            state["i"] = max(
                0, min(len(labels) - 1, state["i"] + rng.choice((-1, 1)))
            )
        return labels[state["i"]]

    return behaviour
