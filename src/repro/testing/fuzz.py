"""Fuzz-harness CLI for the differential oracle.

The reference combo runs interpreted while the default matrix runs
compiled kernels, so every fuzz case doubles as a
compiled-vs-interpreted equivalence check; dedicated serial combos add
the partition-layout axis, pinning row-interpreted == row-compiled ==
columnar-batch on every case (see :mod:`repro.testing.oracle` and
:mod:`repro.engine.codegen`).

Fast, deterministic budget (tier-1 CI runs a fixed one through
``tests/engine/test_differential.py``)::

    python -m repro.testing.fuzz --seeds 40

Longer offline runs, skipping the process pool::

    python -m repro.testing.fuzz --seeds 5000 --start 1000 --no-multiprocessing

Re-execute a shrunk reproducer written by a previous failing run::

    python -m repro.testing.fuzz --reproduce fuzz-failures/seed-17.json

Exit status is 0 when every combination agreed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs import RunReport
from repro.testing.generator import generate_case
from repro.testing.oracle import (
    DEFAULT_COMBOS,
    DifferentialOracle,
)
from repro.testing.shrinker import (
    load_reproducer,
    shrink_case,
    write_reproducer,
)


def run_fuzz(num_seeds, start=0, out_dir="fuzz-failures", max_ops=8,
             use_multiprocessing=True, fail_fast=False, shrink=True,
             lossy=False, log=None):
    """Run *num_seeds* differential cases; shrink and persist failures.

    Returns ``(failures, combos_run)`` where *failures* is a list of
    ``(seed, report, reproducer_path)`` tuples.
    """
    log = log or (lambda message: None)
    combos = DEFAULT_COMBOS
    if not use_multiprocessing:
        combos = tuple(
            c for c in combos if c.kind != "multiprocessing"
        )
    failures = []
    combos_run = 0
    with DifferentialOracle(combos=combos) as oracle:
        for seed in range(start, start + num_seeds):
            case, spec = generate_case(seed, max_ops=max_ops, lossy=lossy)
            report = oracle.check_case(case, spec, seed=seed)
            combos_run += report.combos_run
            if report.invalid:
                log("seed {}: invalid case ({})".format(seed, report.detail))
                continue
            if report.ok:
                continue
            log("seed {}: DIVERGENCE in {}".format(
                seed, ", ".join(d.combo for d in report.divergences)
            ))
            path = None
            if shrink:
                run_report = RunReport("fuzz.divergence")
                with run_report.span("shrink"):
                    small_case, small_spec = shrink_case(
                        case, spec, oracle.diverges
                    )
                with run_report.span("recheck"):
                    final = oracle.check_case(
                        small_case, small_spec, seed=seed
                    )
                run_report.set_meta(
                    seed=seed,
                    ops=len(small_spec),
                    trace_rows=small_case.total_rows(),
                    divergent_combos=[d.combo for d in final.divergences],
                )
                for name, executor in sorted(oracle.executors().items()):
                    run_report.merge_registry(
                        executor.obs, prefix="combo.{}.".format(name)
                    )
                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, "seed-{}.json".format(seed))
                write_reproducer(
                    path, small_case, small_spec,
                    seed=seed, divergences=final.divergences,
                    report=run_report,
                )
                log("seed {}: shrunk to {} ops / {} rows -> {}".format(
                    seed, len(small_spec), small_case.total_rows(), path
                ))
            failures.append((seed, report, path))
            if fail_fast:
                break
    return failures, combos_run


def reproduce(path, use_multiprocessing=True, log=print):
    """Re-run a reproducer file; returns the fresh CaseReport."""
    case, spec, payload = load_reproducer(path)
    combos = DEFAULT_COMBOS
    if not use_multiprocessing:
        combos = tuple(c for c in combos if c.kind != "multiprocessing")
    with DifferentialOracle(combos=combos) as oracle:
        report = oracle.check_case(case, spec, seed=payload.get("seed"))
    log("spec ({} ops): {}".format(len(spec), list(spec)))
    log("trace rows: {}  catalog rows: {}".format(
        case.total_rows(), len(case.catalog_rows)
    ))
    if report.ok:
        log("no divergence reproduced (bug fixed, or environment-specific)")
    for d in report.divergences:
        log("DIVERGENCE {} [{}]: {}".format(d.combo, d.kind, d.detail))
        if d.missing:
            log("  missing rows (sample): {}".format(list(d.missing)))
        if d.extra:
            log("  extra rows (sample): {}".format(list(d.extra)))
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential plan fuzzing for repro.engine.",
    )
    parser.add_argument("--seeds", type=int, default=40,
                        help="number of seeded cases to run (default 40)")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--max-ops", type=int, default=8,
                        help="max plan ops per generated spec (default 8)")
    parser.add_argument("--out", default="fuzz-failures",
                        help="directory for shrunk reproducers")
    parser.add_argument("--no-multiprocessing", action="store_true",
                        help="skip MultiprocessingExecutor combos")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first divergence")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without shrinking")
    parser.add_argument("--lossy", action="store_true",
                        help="corrupt each dataset with transport faults "
                             "(duplicate frames, clock steps, truncation)")
    parser.add_argument("--reproduce", metavar="FILE",
                        help="re-run a reproducer JSON instead of fuzzing")
    args = parser.parse_args(argv)

    if args.reproduce:
        try:
            report = reproduce(
                args.reproduce,
                use_multiprocessing=not args.no_multiprocessing,
            )
        except (OSError, ValueError) as exc:
            print(
                "error: cannot load reproducer {}: {}".format(
                    args.reproduce, exc
                ),
                file=sys.stderr,
            )
            return 2
        return 1 if report.divergences else 0

    failures, combos_run = run_fuzz(
        args.seeds,
        start=args.start,
        out_dir=args.out,
        max_ops=args.max_ops,
        use_multiprocessing=not args.no_multiprocessing,
        fail_fast=args.fail_fast,
        shrink=not args.no_shrink,
        lossy=args.lossy,
        log=print,
    )
    print("{} seeds, {} plan/executor/optimizer combinations, {} divergent".format(
        args.seeds, combos_run, len(failures)
    ))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
