"""The differential oracle: one plan, many executors, equal rows.

Every generated (dataset, spec) pair is executed under a matrix of
executor/optimizer/kernel combinations and compared -- as row
*multisets*, because only partition boundaries and intra-partition
order are execution details -- against an unoptimized serial reference.
Any mismatch, or any combo erroring where the reference succeeds, is a
:class:`Divergence`.

The reference runs *interpreted* (``compile_kernels=False``) while the
default combos run with compiled kernels, so compiled-vs-interpreted
equivalence is an axis of every fuzz case; dedicated serial combos
additionally isolate the pure columnar-batch axis (unoptimized +
columnar kernels, which since the wide-stage lowering also runs
broadcast joins, split routings and repartitions over columnar
buffers), the narrow-only columnar axis (columnar kernels with the
wide-stage exchange forced back to rows, separating wide-stage bugs
from kernel bugs), the pure row-codegen axis (unoptimized + row
kernels only) and the pure optimizer axis (optimized + interpreted).
Together they pin the layout-differential identity
``row-interpreted == row-compiled == columnar-narrow ==
columnar-wide`` on every case, including its join/split/shuffle
bucket assignments.

Executors are cached per combo so one process pool serves the whole
fuzz run; call :meth:`DifferentialOracle.close` (or use it as a context
manager) to release worker processes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.engine import EngineContext
from repro.engine.errors import EngineError
from repro.engine.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
)
from repro.testing.generator import apply_spec, generate_case


@dataclass(frozen=True)
class ComboSpec:
    """One executor/optimizer combination of the differential matrix.

    ``factory``, when given, overrides ``kind`` and must be a callable
    ``factory(parallelism) -> Executor``; tests use it to inject mutant
    or fault-injecting executors. ``compile`` selects the kernel axis:
    generated per-partition kernels (True) or the closure interpreter
    (False). ``columnar`` selects the partition-layout axis: columnar
    batch kernels for pure Filter/Project chains (True), row kernels
    only (False), or the executor's environment default (None).
    ``exchange`` selects the wide-stage axis: columnar partitions
    crossing joins/shuffles (True), row exchange (False), or the
    executor's default -- on exactly when both kernel layers are on
    (None).
    """

    name: str
    kind: str = "serial"  # "serial" | "multiprocessing" | "simulated"
    optimize: bool = True
    compile: bool = True
    columnar: object = None
    exchange: object = None
    factory: object = None

    def build(self, parallelism):
        if self.factory is not None:
            return self.factory(parallelism)
        if self.kind == "serial":
            return SerialExecutor(
                default_parallelism=parallelism,
                optimize_plans=self.optimize,
                compile_kernels=self.compile,
                columnar_kernels=self.columnar,
                columnar_exchange=self.exchange,
            )
        if self.kind == "simulated":
            return SimulatedClusterExecutor(
                num_workers=parallelism,
                default_parallelism=parallelism,
                optimize_plans=self.optimize,
                compile_kernels=self.compile,
                columnar_kernels=self.columnar,
                columnar_exchange=self.exchange,
            )
        if self.kind == "multiprocessing":
            return MultiprocessingExecutor(
                num_workers=2,
                default_parallelism=parallelism,
                optimize_plans=self.optimize,
                compile_kernels=self.compile,
                columnar_kernels=self.columnar,
                columnar_exchange=self.exchange,
                retry_backoff=0.0,
            )
        raise ValueError("unknown executor kind {!r}".format(self.kind))


#: The reference is the purest path: serial, unoptimized, interpreted.
#: Every compiled combo therefore checks compiled-vs-interpreted
#: equivalence on every case.
REFERENCE_COMBO = ComboSpec(
    "serial-unoptimized-interpreted", "serial", optimize=False, compile=False
)

DEFAULT_COMBOS = (
    ComboSpec("serial-optimized", "serial", optimize=True),
    # Pure columnar-batch axis: identical to the reference except that
    # fuseable chains run as columnar kernels over column buffers --
    # and, with the exchange default, joins/splits/shuffles run over
    # columnar partitions too (the columnar-wide end of the layout
    # axis).
    ComboSpec("serial-unoptimized-columnar", "serial", optimize=False,
              columnar=True),
    # Narrow-only columnar axis: same kernels, wide stages forced back
    # to the row exchange -- a wide-stage divergence shows up in the
    # combo above but not in this one, a kernel divergence in both.
    ComboSpec("serial-unoptimized-columnar-narrow", "serial",
              optimize=False, columnar=True, exchange=False),
    # Pure row-codegen axis: identical to the reference except for row
    # kernels (columnar lowering disabled).
    ComboSpec("serial-unoptimized-row-compiled", "serial", optimize=False,
              columnar=False),
    # Pure optimizer axis: identical to the reference except for rules.
    ComboSpec("serial-optimized-interpreted", "serial", optimize=True,
              compile=False),
    ComboSpec("simulated-optimized", "simulated", optimize=True),
    ComboSpec("simulated-unoptimized", "simulated", optimize=False),
    ComboSpec("multiprocessing-optimized", "multiprocessing", optimize=True),
    ComboSpec("multiprocessing-unoptimized", "multiprocessing",
              optimize=False),
)


@dataclass(frozen=True)
class Divergence:
    """One combo disagreeing with the reference on one case."""

    combo: str
    kind: str  # "rows" or "error"
    detail: str
    missing: tuple = ()  # rows the combo lost (sample)
    extra: tuple = ()  # rows the combo invented (sample)


@dataclass
class CaseReport:
    """Outcome of one differential case."""

    seed: object
    combos_run: int = 0
    reference_rows: int = 0
    divergences: list = field(default_factory=list)
    invalid: bool = False  # the reference itself failed to build/run
    detail: str = ""

    @property
    def ok(self):
        return not self.divergences


class DifferentialOracle:
    """Runs (dataset, spec) cases across the executor matrix."""

    def __init__(self, combos=DEFAULT_COMBOS, reference=REFERENCE_COMBO,
                 parallelism=4, sample=5):
        self.combos = tuple(combos)
        self.reference = reference
        self.parallelism = parallelism
        self.sample = sample
        self._executors = {}

    # -- lifecycle -------------------------------------------------------
    def _executor_for(self, combo):
        executor = self._executors.get(combo.name)
        if executor is None:
            executor = combo.build(self.parallelism)
            self._executors[combo.name] = executor
        return executor

    def executors(self):
        """Live ``{combo name: executor}`` map of this oracle's cache.

        The fuzz harness reads each executor's ``obs`` registry from
        here to embed task/retry/fault metrics into divergence
        reproducers.
        """
        return dict(self._executors)

    def close(self):
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- execution -------------------------------------------------------
    def _collect(self, combo, case, spec):
        executor = self._executor_for(combo)
        # Fault-injection rolls key on stage labels, which embed the
        # executor's stage sequence number; resetting it per case makes
        # divergence a pure function of (case, spec, combo), so the
        # shrinker's accepted reproducers stay divergent on recheck.
        executor.reset_stage_clock()
        ctx = EngineContext(executor)
        return apply_spec(ctx, case, spec).collect()

    def check_case(self, case, spec, seed=None):
        """Execute one case under every combo; report divergences."""
        report = CaseReport(seed=seed)
        try:
            reference_rows = self._collect(self.reference, case, spec)
        except EngineError as exc:
            # The case itself is invalid (shrinkers produce these);
            # nothing to compare.
            report.invalid = True
            report.divergences = []
            report.detail = str(exc)
            return report
        report.combos_run += 1
        expected = Counter(reference_rows)
        report.reference_rows = len(reference_rows)
        for combo in self.combos:
            try:
                actual_rows = self._collect(combo, case, spec)
            except EngineError as exc:
                report.combos_run += 1
                report.divergences.append(
                    Divergence(combo.name, "error",
                               "{}: {}".format(type(exc).__name__, exc))
                )
                continue
            report.combos_run += 1
            actual = Counter(actual_rows)
            if actual != expected:
                missing = tuple((expected - actual).elements())
                extra = tuple((actual - expected).elements())
                report.divergences.append(
                    Divergence(
                        combo.name,
                        "rows",
                        "expected {} rows, got {} ({} missing, {} extra)".format(
                            sum(expected.values()), sum(actual.values()),
                            len(missing), len(extra),
                        ),
                        missing=missing[: self.sample],
                        extra=extra[: self.sample],
                    )
                )
        return report

    def diverges(self, case, spec):
        """True when at least one combo disagrees with the reference.

        Invalid cases (reference fails to build or run) return False, so
        the shrinker never wanders into schema-invalid candidates.
        """
        return bool(self.check_case(case, spec).divergences)


def run_seeds(seeds, oracle=None, max_ops=8, on_report=None, lossy=False):
    """Run the differential oracle over an iterable of seeds.

    Returns ``(reports, total_combos_run)``. *on_report*, when given, is
    called with each :class:`CaseReport` as it completes (the fuzz CLI
    uses it for progress and fail-fast).
    """
    own = oracle is None
    if own:
        oracle = DifferentialOracle()
    reports = []
    total = 0
    try:
        for seed in seeds:
            case, spec = generate_case(seed, max_ops=max_ops, lossy=lossy)
            report = oracle.check_case(case, spec, seed=seed)
            total += report.combos_run
            reports.append(report)
            if on_report is not None:
                on_report(report)
    finally:
        if own:
            oracle.close()
    return reports, total
