"""Shrink a diverging (dataset, spec) pair to a minimal reproducer.

Greedy delta debugging: repeatedly try to delete plan ops, trace
partitions, trace rows and catalog rows, keeping any deletion that
preserves the divergence, until a full pass removes nothing. Candidate
specs that become schema-invalid after a deletion simply fail to build,
which the oracle reports as non-diverging, so they are rejected
automatically -- no separate validity tracking is needed.

The result is written to disk as JSON (:func:`write_reproducer`) and can
be re-executed with ``python -m repro.testing.fuzz --reproduce FILE`` or
loaded programmatically with :func:`load_reproducer`.
"""

from __future__ import annotations

import json

from repro.testing.generator import DatasetCase


def shrink_case(case, spec, diverges, max_checks=2000):
    """Minimize (*case*, *spec*) while ``diverges(case, spec)`` holds.

    *diverges* must already be True for the input pair; the shrinker
    only ever keeps candidates for which it stays True. ``max_checks``
    bounds the number of oracle invocations so pathological cases cannot
    stall a fuzz run.
    """
    budget = [max_checks]

    def check(candidate_case, candidate_spec):
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return diverges(candidate_case, candidate_spec)

    changed = True
    while changed and budget[0] > 0:
        changed = False
        spec, did = _shrink_spec(case, spec, check)
        changed = changed or did
        case, did = _shrink_partitions(case, spec, check)
        changed = changed or did
        case, did = _shrink_rows(case, spec, check)
        changed = changed or did
        case, did = _shrink_catalog(case, spec, check)
        changed = changed or did
    return case, spec


def _shrink_spec(case, spec, check):
    changed = False
    i = 0
    while i < len(spec):
        candidate = spec[:i] + spec[i + 1:]
        if check(case, candidate):
            spec = candidate
            changed = True
        else:
            i += 1
    return spec, changed


def _shrink_partitions(case, spec, check):
    changed = False
    parts = list(case.trace_partitions)
    i = 0
    # Dropping a whole partition also perturbs carry/partition-boundary
    # behaviour, so only keep the deletion when divergence survives.
    while i < len(parts) and len(parts) > 1:
        candidate = DatasetCase(
            tuple(parts[:i] + parts[i + 1:]), case.catalog_rows
        )
        if check(candidate, spec):
            del parts[i]
            case = candidate
            changed = True
        else:
            i += 1
    return case, changed


def _shrink_rows(case, spec, check):
    changed = False
    for index, part in enumerate(case.trace_partitions):
        rows = list(part)
        # First try halves (log-time progress on big partitions)...
        for half in (slice(len(rows) // 2, None), slice(None, len(rows) // 2)):
            if len(rows) > 1:
                candidate = _with_partition(case, index, rows[half])
                if check(candidate, spec):
                    rows = rows[half]
                    case = candidate
                    changed = True
        # ...then individual rows.
        i = 0
        while i < len(rows):
            candidate = _with_partition(case, index, rows[:i] + rows[i + 1:])
            if check(candidate, spec):
                del rows[i]
                case = candidate
                changed = True
            else:
                i += 1
    return case, changed


def _shrink_catalog(case, spec, check):
    changed = False
    rows = list(case.catalog_rows)
    i = 0
    while i < len(rows):
        candidate = DatasetCase(
            case.trace_partitions, tuple(rows[:i] + rows[i + 1:])
        )
        if check(candidate, spec):
            del rows[i]
            case = candidate
            changed = True
        else:
            i += 1
    return case, changed


def _with_partition(case, index, rows):
    parts = list(case.trace_partitions)
    parts[index] = tuple(rows)
    return DatasetCase(tuple(parts), case.catalog_rows)


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------


def write_reproducer(path, case, spec, seed=None, divergences=(),
                     report=None):
    """Persist a shrunk failure as JSON; returns the path written.

    *report*, when given, is a :class:`repro.obs.RunReport` (shrink
    timing + per-combo executor metrics) embedded under ``"report"``.
    """
    payload = {
        "format": "repro.testing/1",
        "seed": seed,
        "spec": _encode(spec),
        "trace_partitions": _encode(case.trace_partitions),
        "catalog_rows": _encode(case.catalog_rows),
        "divergences": [
            {
                "combo": d.combo,
                "kind": d.kind,
                "detail": d.detail,
                "missing": _encode(d.missing),
                "extra": _encode(d.extra),
            }
            for d in divergences
        ],
    }
    if report is not None:
        payload["report"] = report.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


def load_reproducer(path):
    """Load a reproducer file; returns ``(case, spec, payload)``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "trace_partitions" not in payload:
        raise ValueError(
            "{} is not a repro.testing reproducer (expected the JSON "
            "written by write_reproducer)".format(path)
        )
    case = DatasetCase(
        _decode(payload["trace_partitions"]),
        _decode(payload["catalog_rows"]),
    )
    spec = _decode(payload["spec"])
    return case, spec, payload


def _encode(value):
    """Tuples -> lists, recursively (JSON has no tuple)."""
    if isinstance(value, (tuple, list)):
        return [_encode(v) for v in value]
    return value


def _decode(value):
    """Lists -> tuples, recursively (specs and rows are tuple-shaped)."""
    if isinstance(value, list):
        return tuple(_decode(v) for v in value)
    return value
