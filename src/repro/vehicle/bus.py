"""Channel (bus) models with arbitration.

Buses take the frames their ECUs want to send and produce the frames a
monitoring device actually observes. CAN/LIN use priority arbitration
with a per-frame transmission time; FlexRay snaps frames onto its
slot/cycle TDMA grid and stamps cycle counters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.protocols import flexray

#: Default bit rates used to derive frame transmission times.
CAN_BITRATE = 500_000.0
LIN_BITRATE = 19_200.0
ETH_BITRATE = 100_000_000.0


class BusError(ValueError):
    """Raised for bus configuration problems."""


def can_frame_time(dlc, bitrate=CAN_BITRATE):
    """Approximate classic CAN frame duration: 47 framing + 8*DLC bits,
    plus a worst-case stuffing allowance."""
    bits = 47 + 8 * dlc
    bits += (34 + 8 * dlc - 1) // 4  # stuff bits upper bound
    return bits / bitrate


def lin_frame_time(length, bitrate=LIN_BITRATE):
    """LIN frame duration: header (34 bits) + (length+1) response bytes
    of 10 bits each, plus the nominal 40% inter-byte allowance."""
    bits = 34 + 10 * (length + 1)
    return 1.4 * bits / bitrate


@dataclass
class PriorityBus:
    """Event-triggered bus (CAN or LIN master schedule simplification).

    Frames competing for the medium are serialized: within a busy period
    the lowest message id (highest CAN priority) wins arbitration and
    later frames are delayed until the medium is free.
    """

    channel: str
    frame_time: object  # callable payload_length -> seconds
    max_queue_delay: float = 0.050

    def arbitrate(self, frames):
        """Serialize *frames* (any order) into observed frames."""
        pending = sorted(frames, key=lambda f: (f.timestamp, f.message_id))
        out = []
        busy_until = 0.0
        for frame in pending:
            start = max(frame.timestamp, busy_until)
            if start - frame.timestamp > self.max_queue_delay:
                # Overloaded bus: the frame is lost (never observed). Real
                # controllers would retry; trace-wise this shows up as a
                # cycle-time violation, which the framework must surface.
                continue
            duration = self.frame_time(len(frame.payload))
            busy_until = start + duration
            observed = dataclasses.replace(frame, timestamp=start + duration)
            out.append(observed)
        return out


def can_bus(channel, bitrate=CAN_BITRATE):
    return PriorityBus(channel, _CanFrameTime(bitrate))


def lin_bus(channel, bitrate=LIN_BITRATE):
    return PriorityBus(channel, _LinFrameTime(bitrate))


@dataclass(frozen=True)
class _CanFrameTime:
    bitrate: float

    def __call__(self, length):
        return can_frame_time(length, self.bitrate)


@dataclass(frozen=True)
class _LinFrameTime:
    bitrate: float

    def __call__(self, length):
        return lin_frame_time(length, self.bitrate)


@dataclass
class EthernetBus:
    """Switched Ethernet carrying SOME/IP: no arbitration, store-and-
    forward latency per frame."""

    channel: str
    latency: float = 0.0002

    def arbitrate(self, frames):
        out = [
            dataclasses.replace(f, timestamp=f.timestamp + self.latency)
            for f in frames
        ]
        out.sort(key=lambda f: f.timestamp)
        return out


@dataclass
class FlexRayBus:
    """Time-triggered bus: frames snap onto the slot/cycle TDMA grid.

    Each 64-cycle round consists of ``cycle_length`` seconds per cycle
    divided into equal static slots. A frame for slot *s* requested at
    time *t* is transmitted at the next occurrence of slot *s*.
    """

    channel: str
    cycle_length: float = 0.005
    num_slots: int = 64
    slot_assignment: dict = field(default_factory=dict)  # m_id -> slot

    def arbitrate(self, frames):
        out = []
        occupied = set()
        for frame in sorted(frames, key=lambda f: f.timestamp):
            slot = self.slot_assignment.get(frame.message_id, frame.message_id)
            if not 1 <= slot <= self.num_slots:
                raise BusError(
                    "slot {} outside schedule of {} slots".format(
                        slot, self.num_slots
                    )
                )
            slot_offset = (slot - 1) * self.cycle_length / self.num_slots
            cycle_index = int(
                max(frame.timestamp - slot_offset, 0.0) / self.cycle_length
            )
            while (cycle_index * self.cycle_length + slot_offset) < frame.timestamp or (
                cycle_index,
                slot,
            ) in occupied:
                cycle_index += 1
            occupied.add((cycle_index, slot))
            send_time = cycle_index * self.cycle_length + slot_offset
            fr = flexray.frame_from_record(frame)
            stamped = dataclasses.replace(fr, cycle=cycle_index % 64)
            out.append(stamped.to_frame(send_time, self.channel))
        out.sort(key=lambda f: f.timestamp)
        return out
