"""Deterministic signal behaviour models.

Each behaviour produces the physical value of one signal over time. The
simulator samples behaviours at the send times of their carrying message,
so behaviours may keep state as long as they are deterministic for a
fixed seed and a fixed, monotonically increasing sampling schedule --
this preserves the framework's determinism requirement.

The models cover the value-stream shapes the paper's classification
stage distinguishes (Table 3): fast-changing numerics (speed, angles),
slowly stepping ordinals (heater level), nominal state machines (driving
state), binaries (belt ON/OFF) and validity flags, plus an outlier
injector used to exercise the α/β outlier paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class Behavior:
    """Base class: ``sample(t)`` returns the signal value at time *t*."""

    def sample(self, t):
        raise NotImplementedError

    def reset(self):
        """Restore initial state so a rerun reproduces the same stream."""


@dataclass
class Constant(Behavior):
    """A signal stuck at one value (typical for configuration signals)."""

    value: object

    def sample(self, t):
        return self.value


@dataclass
class Sine(Behavior):
    """Smooth periodic numeric signal with optional deterministic noise."""

    amplitude: float
    period: float
    mean: float = 0.0
    phase: float = 0.0
    noise: float = 0.0
    seed: int = 0

    def sample(self, t):
        value = self.mean + self.amplitude * math.sin(
            2 * math.pi * t / self.period + self.phase
        )
        if self.noise:
            value += self.noise * _hash_noise(self.seed, t)
        return value


@dataclass
class Ramp(Behavior):
    """Linear ramp clamped to [minimum, maximum] (e.g. warm-up curves)."""

    rate: float
    start: float = 0.0
    minimum: float = -math.inf
    maximum: float = math.inf

    def sample(self, t):
        return min(max(self.start + self.rate * t, self.minimum), self.maximum)


@dataclass
class Sawtooth(Behavior):
    """Repeating ramp, e.g. a wiper position sweeping 0..amplitude."""

    amplitude: float
    period: float
    minimum: float = 0.0

    def sample(self, t):
        frac = (t % self.period) / self.period
        # Up-down triangle so the value is continuous like a real wiper.
        frac = 2 * frac if frac < 0.5 else 2 * (1 - frac)
        return self.minimum + self.amplitude * frac


@dataclass
class RandomWalk(Behavior):
    """Bounded random walk (e.g. vehicle speed), seeded and stateful."""

    step: float
    seed: int
    start: float = 0.0
    minimum: float = -math.inf
    maximum: float = math.inf

    def __post_init__(self):
        self.reset()

    def reset(self):
        self._rng = np.random.default_rng(self.seed)
        self._value = self.start

    def sample(self, t):
        self._value += float(self._rng.normal(0.0, self.step))
        self._value = min(max(self._value, self.minimum), self.maximum)
        return self._value


@dataclass
class Toggle(Behavior):
    """Binary signal flipping between two labels with a fixed period."""

    period: float
    on_value: object = "ON"
    off_value: object = "OFF"
    duty: float = 0.5

    def sample(self, t):
        return (
            self.on_value
            if (t % self.period) < self.duty * self.period
            else self.off_value
        )


@dataclass
class OrdinalSteps(Behavior):
    """Slowly stepping ordered levels (e.g. heater low/medium/high).

    The level follows a deterministic up-down staircase with ``dwell``
    seconds per level, optionally with seeded jitter in dwell times.
    """

    levels: tuple
    dwell: float
    seed: int = 0

    def sample(self, t):
        n = len(self.levels)
        if n == 1:
            return self.levels[0]
        cycle = 2 * (n - 1)
        step = int(t // self.dwell) % cycle
        index = step if step < n else cycle - step
        return self.levels[index]


@dataclass
class StateMachine(Behavior):
    """Nominal signal driven by a seeded Markov chain over named states.

    ``transitions`` maps each state to a tuple of (next_state, weight)
    pairs. The machine re-evaluates after ``dwell`` seconds of simulated
    time, making output a pure function of the sampling schedule + seed.
    """

    states: tuple
    transitions: dict
    dwell: float
    seed: int = 0
    initial: str = None

    def __post_init__(self):
        for state in self.states:
            if state not in self.transitions:
                raise ValueError(
                    "state {!r} has no transition row".format(state)
                )
        self.reset()

    def reset(self):
        self._rng = np.random.default_rng(self.seed)
        self._state = self.initial if self.initial is not None else self.states[0]
        self._next_change = self.dwell

    def sample(self, t):
        while t >= self._next_change:
            choices = self.transitions[self._state]
            names = [c[0] for c in choices]
            weights = np.array([c[1] for c in choices], dtype=float)
            weights /= weights.sum()
            self._state = str(self._rng.choice(names, p=weights))
            self._next_change += self.dwell
        return self._state


@dataclass
class EventPulse(Behavior):
    """Value that is ``active`` during configured [start, end) windows."""

    windows: tuple  # ((start, end), ...)
    active: object = "ON"
    idle: object = "OFF"

    def sample(self, t):
        for start, end in self.windows:
            if start <= t < end:
                return self.active
        return self.idle


@dataclass
class ValidityFlag(Behavior):
    """Validity signal: mostly 'valid' with seeded invalid bursts.

    Models the paper's affiliation-V signals (message/signal/object
    invalid) used by the β and γ branch splits.
    """

    invalid_rate: float
    seed: int = 0
    valid_value: object = "valid"
    invalid_value: object = "invalid"

    def sample(self, t):
        return (
            self.invalid_value
            if _hash_uniform(self.seed, t) < self.invalid_rate
            else self.valid_value
        )


@dataclass
class OutlierInjector(Behavior):
    """Wrap a numeric behaviour, rarely replacing values with outliers.

    Used to plant the "potential errors" the α branch must peel off and
    merge back (Algorithm 1 lines 16-18) and the outlier row of Table 4.
    """

    inner: Behavior
    rate: float
    magnitude: float
    seed: int = 0

    def sample(self, t):
        value = self.inner.sample(t)
        if _hash_uniform(self.seed, t) < self.rate:
            sign = 1.0 if _hash_uniform(self.seed + 1, t) < 0.5 else -1.0
            return value + sign * self.magnitude
        return value

    def reset(self):
        self.inner.reset()


@dataclass
class Occasionally(Behavior):
    """Rarely replace the inner behaviour's value with a fixed one.

    Used to sprinkle validity values ('invalid') into ordinal/nominal
    streams, exercising the functional/validity splits of the β and γ
    branches.
    """

    inner: Behavior
    replacement: object
    rate: float
    seed: int = 0

    def sample(self, t):
        if _hash_uniform(self.seed + 0x51A5, t) < self.rate:
            return self.replacement
        return self.inner.sample(t)

    def reset(self):
        self.inner.reset()


@dataclass
class Quantized(Behavior):
    """Quantize an inner numeric behaviour to a step (sensor resolution)."""

    inner: Behavior
    step: float

    def sample(self, t):
        return round(self.inner.sample(t) / self.step) * self.step

    def reset(self):
        self.inner.reset()


@dataclass
class Derived(Behavior):
    """A signal computed from another behaviour's value (picklable func)."""

    inner: Behavior
    func: object

    def sample(self, t):
        return self.func(self.inner.sample(t))

    def reset(self):
        self.inner.reset()


def _hash_noise(seed, t):
    """Deterministic standard-normal-ish noise from (seed, t)."""
    u = _hash_uniform(seed, t)
    v = _hash_uniform(seed + 0x9E3779B9, t)
    # Box-Muller; clamp u away from 0 to avoid log(0).
    u = max(u, 1e-12)
    return math.sqrt(-2.0 * math.log(u)) * math.cos(2 * math.pi * v)


def _hash_uniform(seed, t):
    """Deterministic uniform(0,1) from (seed, t) via integer mixing."""
    x = (hash((int(seed), round(float(t) * 1e6))) & 0xFFFFFFFFFFFF) + 1
    x = (x * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
    return (x >> 16) / float(1 << 48)
