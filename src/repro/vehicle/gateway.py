"""Gateway model: signal routing between channels.

"When signals are forwarded through gateways they are recorded multiple
times in the trace" (paper Sec. 4.1) -- the splitting stage exploits
exactly this redundancy. A :class:`Gateway` forwards selected messages
from a source channel onto a destination channel with a forwarding
delay, producing the duplicated signal instances the equality check
``e`` later collapses.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


class GatewayError(ValueError):
    """Raised for invalid routes."""


@dataclass(frozen=True)
class Route:
    """Forward (src_channel, message_id) onto dst_channel.

    The forwarded frame keeps payload and protocol; optionally it is
    re-identified (``dst_message_id``), as gateways commonly remap ids.
    """

    src_channel: str
    message_id: int
    dst_channel: str
    delay: float = 0.001
    dst_message_id: int = None

    def __post_init__(self):
        if self.src_channel == self.dst_channel:
            raise GatewayError("route must change the channel")
        if self.delay < 0:
            raise GatewayError("delay must be non-negative")

    @property
    def target_message_id(self):
        return (
            self.dst_message_id
            if self.dst_message_id is not None
            else self.message_id
        )


@dataclass(frozen=True)
class SignalRoute:
    """Signal-level routing: decode signals from a source message and
    re-encode them into a differently laid-out destination message.

    Real gateways repackage signals ("signals are forwarded through
    gateways"), often into frames with different ids, byte positions
    and cycle alignment. The *values* stay identical -- which is exactly
    why the equality check ``e`` can still collapse the copies even
    though the byte layouts differ.

    The destination message must define every routed signal with a
    lossless encoding for the source's value range (same scale/offset
    granularity), or values would quantize differently and the copies
    would legitimately diverge.
    """

    src_channel: str
    src_message_id: int
    signal_names: tuple
    dst_message: object  # MessageDefinition on the destination channel
    delay: float = 0.001

    def __post_init__(self):
        if self.dst_message.channel == self.src_channel:
            raise GatewayError("signal route must change the channel")
        missing = set(self.signal_names) - set(self.dst_message.signal_names())
        if missing:
            raise GatewayError(
                "destination message lacks routed signals: {}".format(
                    sorted(missing)
                )
            )
        if self.delay < 0:
            raise GatewayError("delay must be non-negative")


@dataclass
class SignalGateway:
    """A gateway that repackages selected signals into new frames.

    Unlike :class:`Gateway` (frame-level forwarding), this decodes the
    routed signals using the communication database and encodes them
    into the destination message definition -- different id, layout and
    channel, same values.
    """

    name: str
    database: object  # NetworkDatabase covering the source messages
    routes: tuple = field(default_factory=tuple)

    def forward(self, frames):
        """Produce repackaged frames for all matching source frames."""
        from repro.vehicle.ecu import _wrap_payload

        by_key = {}
        for route in self.routes:
            by_key.setdefault(
                (route.src_channel, route.src_message_id), []
            ).append(route)
        forwarded = []
        for frame in frames:
            routes = by_key.get((frame.channel, frame.message_id))
            if not routes:
                continue
            source = self.database.message(frame.channel, frame.message_id)
            decoded = source.decode(frame.payload)
            for route in routes:
                values = {
                    name: decoded[name]
                    for name in route.signal_names
                    if decoded.get(name) is not None
                }
                if not values:
                    continue
                payload = route.dst_message.encode(values)
                forwarded.append(
                    _wrap_payload(
                        route.dst_message,
                        payload,
                        frame.timestamp + route.delay,
                        session=1,
                    )
                )
        return forwarded

    def extend_database(self, database):
        """Add every route's destination message to *database*."""
        from repro.network.database import NetworkDatabase

        extra = []
        existing = {(m.channel, m.message_id): m for m in database.messages}
        for route in self.routes:
            key = (route.dst_message.channel, route.dst_message.message_id)
            if key in existing:
                if existing[key] is route.dst_message:
                    continue
                raise GatewayError(
                    "destination message id {} collides on channel "
                    "{!r}".format(key[1], key[0])
                )
            extra.append(route.dst_message)
            existing[key] = route.dst_message
        return NetworkDatabase(database.messages + tuple(extra))


@dataclass
class Gateway:
    """A gateway ECU defined by its routing table."""

    name: str
    routes: tuple = field(default_factory=tuple)

    def forward(self, frames):
        """Produce the forwarded copies for *frames* (originals untouched)."""
        by_key = {}
        for route in self.routes:
            by_key.setdefault((route.src_channel, route.message_id), []).append(
                route
            )
        forwarded = []
        for frame in frames:
            for route in by_key.get((frame.channel, frame.message_id), ()):
                forwarded.append(
                    dataclasses.replace(
                        frame,
                        timestamp=frame.timestamp + route.delay,
                        channel=route.dst_channel,
                        message_id=route.target_message_id,
                    )
                )
        return forwarded

    def extend_database(self, database):
        """Database entries for routed copies, so ``U_rel`` covers them.

        Returns a new :class:`~repro.network.database.NetworkDatabase`
        including, per route, a clone of the source message definition on
        the destination channel. The cloned message keeps its signal
        layout: the gateway forwards payloads verbatim.
        """
        from repro.network.database import NetworkDatabase

        extra = []
        existing = {(m.channel, m.message_id): m for m in database.messages}
        for route in self.routes:
            source = database.message(route.src_channel, route.message_id)
            key = (route.dst_channel, route.target_message_id)
            if key in existing:
                # Re-extending an already-cloned route is fine; colliding
                # with a *different* native message would silently
                # misinterpret forwarded payloads -- refuse that.
                if existing[key].signals == source.signals:
                    continue
                raise GatewayError(
                    "route {} -> {} collides with native message {!r} on "
                    "{}".format(
                        route.message_id,
                        route.target_message_id,
                        existing[key].name,
                        route.dst_channel,
                    )
                )
            clone = dataclasses.replace(
                source,
                name="{}_via_{}".format(source.name, self.name),
                channel=route.dst_channel,
                message_id=route.target_message_id,
            )
            extra.append(clone)
            existing[key] = clone
        return NetworkDatabase(database.messages + tuple(extra))
