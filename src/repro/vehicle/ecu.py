"""Electronic Control Unit model.

An ECU owns a set of *transmissions*: (message definition, behaviour per
signal, schedule). Given a duration it deterministically produces the
protocol frames it would put on its channels; the bus layer then
arbitrates and the recorder timestamps them into the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols import can, flexray, lin, someip
from repro.vehicle.schedules import Cyclic, OnChange


class EcuError(ValueError):
    """Raised for inconsistent ECU configuration."""


@dataclass
class Transmission:
    """One message an ECU sends, with its value sources and schedule."""

    message: object  # MessageDefinition
    behaviors: dict  # signal name -> Behavior
    schedule: object  # Cyclic or OnChange

    def __post_init__(self):
        known = set(self.message.signal_names())
        unknown = set(self.behaviors) - known
        if unknown:
            raise EcuError(
                "behaviors for signals not in message {!r}: {}".format(
                    self.message.name, sorted(unknown)
                )
            )


@dataclass
class Ecu:
    """An ECU with a name and its transmissions."""

    name: str
    transmissions: list = field(default_factory=list)

    def add_transmission(self, message, behaviors, schedule):
        self.transmissions.append(Transmission(message, behaviors, schedule))
        return self

    def generate_frames(self, duration):
        """All frames this ECU sends within [0, duration), time-ordered."""
        frames = []
        for tx in self.transmissions:
            frames.extend(_frames_for_transmission(tx, duration))
        frames.sort(key=lambda f: f.timestamp)
        return frames


def _frames_for_transmission(tx, duration):
    for behavior in tx.behaviors.values():
        behavior.reset()
    if isinstance(tx.schedule, Cyclic):
        send_times = tx.schedule.send_times(duration)
        sampled = [
            (t, _sample_values(tx.behaviors, t)) for t in send_times
        ]
    elif isinstance(tx.schedule, OnChange):
        sampled = _on_change_samples(tx, duration)
    else:
        raise EcuError(
            "unknown schedule type {!r}".format(type(tx.schedule).__name__)
        )
    frames = []
    session = 1
    for t, values in sampled:
        payload = tx.message.encode(values)
        frames.append(_wrap_payload(tx.message, payload, t, session))
        session = (session + 1) & 0xFFFF or 1
    return frames


def _sample_values(behaviors, t):
    return {name: behavior.sample(t) for name, behavior in behaviors.items()}


def _on_change_samples(tx, duration):
    schedule = tx.schedule
    sampled = []
    last_values = None
    last_send = None
    for t in schedule.poll_times(duration):
        values = _sample_values(tx.behaviors, t)
        changed = values != last_values
        heartbeat_due = (
            schedule.heartbeat is not None
            and last_send is not None
            and t - last_send >= schedule.heartbeat
        )
        if not changed and not heartbeat_due:
            continue
        if (
            changed
            and last_send is not None
            and t - last_send < schedule.min_gap
        ):
            continue
        sampled.append((t, values))
        last_values = values
        last_send = t
    return sampled


def _wrap_payload(message, payload, t, session):
    """Build the protocol-correct frame for a message's payload."""
    if message.protocol == "CAN":
        extended = message.message_id > can.STANDARD_ID_MAX
        return can.CanFrame(message.message_id, payload, extended).to_frame(
            t, message.channel
        )
    if message.protocol == "LIN":
        return lin.LinFrame(message.message_id, payload).to_frame(
            t, message.channel
        )
    if message.protocol == "SOMEIP":
        service_id, method_id = someip.split_message_id(message.message_id)
        msg = someip.SomeIpMessage(
            service_id, method_id, payload, session_id=session
        )
        return msg.to_frame(t, message.channel)
    if message.protocol == "FLEXRAY":
        # Cycle counter is assigned by the FlexRay bus scheduler; use a
        # placeholder here, padded to an even byte count.
        if len(payload) % 2:
            payload = payload + b"\x00"
        return flexray.FlexRayFrame(message.message_id, 0, payload).to_frame(
            t, message.channel
        )
    raise EcuError("unknown protocol {!r}".format(message.protocol))
