"""Deterministic in-vehicle network simulator (trace substrate).

Stands in for the paper's recorded 20-hour premium-vehicle trace: ECUs
with behaviour models send protocol-correct frames on CAN / LIN /
SOME-IP / FlexRay channels, gateways duplicate traffic across channels
and a recorder emits the raw trace ``K_b``.
"""

from repro.vehicle import behaviors, corruption, faults, scenarios
from repro.vehicle.bus import (
    EthernetBus,
    FlexRayBus,
    PriorityBus,
    can_bus,
    lin_bus,
)
from repro.vehicle.ecu import Ecu, Transmission
from repro.vehicle.gateway import Gateway, Route, SignalGateway, SignalRoute
from repro.vehicle.recorder import TraceRecorder
from repro.vehicle.schedules import Cyclic, OnChange
from repro.vehicle.vehicle import VehicleSimulation

__all__ = [
    "behaviors",
    "corruption",
    "faults",
    "scenarios",
    "Ecu",
    "Transmission",
    "Cyclic",
    "OnChange",
    "Gateway",
    "Route",
    "SignalGateway",
    "SignalRoute",
    "TraceRecorder",
    "VehicleSimulation",
    "PriorityBus",
    "EthernetBus",
    "FlexRayBus",
    "can_bus",
    "lin_bus",
]
