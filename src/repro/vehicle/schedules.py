"""Message send schedules.

In-vehicle messages are sent either cyclically (the dominant pattern the
paper's reduction exploits: "information is sent cyclically without
changes") or event-driven on value changes. Schedules enumerate send
times deterministically for a given duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vehicle.behaviors import _hash_uniform


@dataclass(frozen=True)
class Cyclic:
    """Send every ``cycle_time`` seconds, with optional bounded jitter.

    ``jitter`` is the maximum absolute deviation (seconds) applied
    deterministically per send index; ``drop_rate`` occasionally skips a
    send, modelling the cycle-time violations the paper's extensions are
    designed to detect.
    """

    cycle_time: float
    offset: float = 0.0
    jitter: float = 0.0
    drop_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.cycle_time <= 0:
            raise ValueError("cycle_time must be positive")
        if self.jitter < 0 or not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("invalid jitter or drop_rate")

    def send_times(self, duration):
        times = []
        index = 0
        while True:
            t = self.offset + index * self.cycle_time
            if t >= duration:
                break
            if self.drop_rate and _hash_uniform(self.seed + 7, t) < self.drop_rate:
                index += 1
                continue
            if self.jitter:
                t += self.jitter * (2 * _hash_uniform(self.seed, t) - 1)
                t = max(t, 0.0)
            times.append(t)
            index += 1
        return times


@dataclass(frozen=True)
class OnChange:
    """Event-driven sending: poll behaviours and send on value change.

    The schedule itself only defines the poll grid; the ECU decides which
    polls become sends by comparing sampled values. ``min_gap`` suppresses
    sends closer than the protocol's minimum spacing; ``heartbeat``
    forces a send after that many seconds without a change (common for
    event-driven automotive messages).
    """

    poll_interval: float
    offset: float = 0.0
    min_gap: float = 0.0
    heartbeat: float = None

    def __post_init__(self):
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def poll_times(self, duration):
        times = []
        t = self.offset
        while t < duration:
            times.append(t)
            t += self.poll_interval
        return times
