"""Composable driving scenarios.

Realistic traces come from *correlated* signals: speed falls in city
phases, wipers run while it rains, lights follow darkness. This module
provides a phase-based scenario layer on top of the behaviour models --
a :class:`PhasedBehavior` switches inner behaviours on a shared timeline
-- plus a pre-built standard vehicle (drive + body + comfort messages)
whose journeys exercise every pipeline branch with correlated content
for the mining applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.database import (
    BINARY,
    MessageDefinition,
    NetworkDatabase,
    NOMINAL,
    NUMERIC,
    ORDINAL,
    SignalDefinition,
)
from repro.protocols.signalcodec import SignalEncoding
from repro.vehicle import behaviors as bhv
from repro.vehicle.ecu import Ecu
from repro.vehicle.schedules import Cyclic
from repro.vehicle.vehicle import VehicleSimulation


class ScenarioError(ValueError):
    """Raised for inconsistent scenario definitions."""


@dataclass(frozen=True)
class Phase:
    """One named segment of a journey timeline."""

    name: str
    duration: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ScenarioError("phase duration must be positive")


@dataclass
class Timeline:
    """An ordered sequence of phases shared by all scenario behaviours."""

    phases: tuple

    def __post_init__(self):
        if not self.phases:
            raise ScenarioError("timeline needs at least one phase")

    @property
    def total_duration(self):
        return sum(p.duration for p in self.phases)

    def phase_at(self, t):
        """The active phase at time *t* (last phase holds afterwards)."""
        clock = 0.0
        for phase in self.phases:
            clock += phase.duration
            if t < clock:
                return phase
        return self.phases[-1]

    def phase_start(self, name):
        """Start time of the first phase with this name."""
        clock = 0.0
        for phase in self.phases:
            if phase.name == name:
                return clock
            clock += phase.duration
        raise ScenarioError("no phase named {!r}".format(name))


@dataclass
class PhasedBehavior(bhv.Behavior):
    """Selects one inner behaviour per phase name.

    ``behaviors`` maps phase name -> Behavior; ``default`` covers phases
    without an entry. Inner behaviours see the global time, so smooth
    behaviours stay continuous across repeats of the same phase.
    """

    timeline: Timeline
    behaviors: dict
    default: bhv.Behavior = None

    def sample(self, t):
        phase = self.timeline.phase_at(t)
        inner = self.behaviors.get(phase.name, self.default)
        if inner is None:
            raise ScenarioError(
                "no behaviour for phase {!r} and no default".format(phase.name)
            )
        return inner.sample(t)

    def reset(self):
        for inner in self.behaviors.values():
            inner.reset()
        if self.default is not None:
            self.default.reset()


@dataclass
class PhaseLabel(bhv.Behavior):
    """Emits the current phase name (a nominal context signal)."""

    timeline: Timeline

    def sample(self, t):
        return self.timeline.phase_at(t).name


#: The default commute: city -> highway -> city -> parked.
COMMUTE = Timeline(
    (
        Phase("city", 60.0),
        Phase("highway", 120.0),
        Phase("city", 40.0),
        Phase("parked", 20.0),
    )
)


@dataclass
class StandardVehicle:
    """A drive+body vehicle whose signals follow a scenario timeline.

    Signals: speed (α, phase-dependent level), engine temperature
    (slow β ramp), drive phase label (γ nominal), rain + wiper
    (correlated binaries: the wiper runs exactly while it rains), and
    low-beam light (on in the configured dark phases).
    """

    timeline: Timeline = field(default_factory=lambda: COMMUTE)
    rain_windows: tuple = ((70.0, 130.0),)
    dark_phases: tuple = ("highway",)
    seed: int = 0

    def build(self):
        timeline = self.timeline
        speed = SignalDefinition(
            "speed", SignalEncoding(0, 16, scale=0.1), unit="km/h",
            data_class=NUMERIC,
        )
        temp = SignalDefinition(
            "engine_temp", SignalEncoding(16, 8), unit="degC",
            data_class=ORDINAL,
        )
        drive_msg = MessageDefinition(
            "DRIVE", 0x100, "DC", "CAN", 3, (speed, temp), cycle_time=0.05
        )
        phase = SignalDefinition(
            "drive_phase",
            SignalEncoding(
                0, 2,
                value_table=((0, "city"), (1, "highway"), (2, "parked")),
            ),
            data_class=NOMINAL,
        )
        phase_msg = MessageDefinition(
            "PHASE", 0x101, "DC", "CAN", 1, (phase,), cycle_time=0.5
        )
        rain = SignalDefinition(
            "rain", SignalEncoding(0, 1, value_table=((0, "OFF"), (1, "ON"))),
            data_class=BINARY,
        )
        wiper = SignalDefinition(
            "wiper_active",
            SignalEncoding(1, 1, value_table=((0, "OFF"), (1, "ON"))),
            data_class=BINARY,
        )
        light = SignalDefinition(
            "low_beam",
            SignalEncoding(2, 1, value_table=((0, "OFF"), (1, "ON"))),
            data_class=BINARY,
        )
        body_msg = MessageDefinition(
            "BODY", 0x200, "BC", "CAN", 1, (rain, wiper, light),
            cycle_time=0.2,
        )
        database = NetworkDatabase((drive_msg, phase_msg, body_msg))

        speed_behavior = PhasedBehavior(
            timeline,
            {
                "city": bhv.RandomWalk(
                    step=1.0, seed=self.seed + 1, start=40.0,
                    minimum=0.0, maximum=70.0,
                ),
                "highway": bhv.RandomWalk(
                    step=1.5, seed=self.seed + 2, start=110.0,
                    minimum=80.0, maximum=160.0,
                ),
                "parked": bhv.Constant(0.0),
            },
        )
        temp_behavior = bhv.Quantized(
            bhv.Ramp(rate=0.2, start=20.0, maximum=95.0), step=1.0
        )
        rain_behavior = bhv.EventPulse(self.rain_windows, "ON", "OFF")
        wiper_behavior = bhv.EventPulse(self.rain_windows, "ON", "OFF")
        dark_windows = tuple(
            (
                timeline.phase_start(name),
                timeline.phase_start(name)
                + timeline.phase_at(timeline.phase_start(name)).duration,
            )
            for name in self.dark_phases
        )
        light_behavior = bhv.EventPulse(dark_windows, "ON", "OFF")

        drive_ecu = (
            Ecu("DriveEcu")
            .add_transmission(
                drive_msg,
                {"speed": speed_behavior, "engine_temp": temp_behavior},
                Cyclic(0.05, seed=self.seed + 3),
            )
            .add_transmission(
                phase_msg,
                {"drive_phase": PhaseLabel(timeline)},
                Cyclic(0.5, seed=self.seed + 4),
            )
        )
        body_ecu = Ecu("BodyEcu").add_transmission(
            body_msg,
            {
                "rain": rain_behavior,
                "wiper_active": wiper_behavior,
                "low_beam": light_behavior,
            },
            Cyclic(0.2, seed=self.seed + 5),
        )
        return VehicleSimulation(database, [drive_ecu, body_ecu])

    def run(self, context, duration=None):
        """Build and record: the K_b table of one scenario journey."""
        sim = self.build()
        if duration is None:
            duration = self.timeline.total_duration
        return sim, sim.record_table(context, duration)
