"""Trace recorder: the monitoring device of Fig. 1.

Collects the frames observed on all channels, orders them by time and
emits the common trace ``K_b`` as byte-record tuples
``(t, l, b_id, m_id, m_info)``, either as a Python list or directly as a
partitioned engine table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.frames import BYTE_RECORD_COLUMNS


@dataclass
class TraceRecorder:
    """Records frames into the paper's byte-sequence trace format.

    ``time_resolution`` models the monitoring hardware's timestamp
    granularity (seconds); timestamps are quantized to it, which also
    makes gateway-duplicated instances align the way real loggers show
    them.
    """

    time_resolution: float = 1e-6

    def record(self, frames):
        """Time-ordered list of ``k_b`` tuples for *frames*."""
        records = []
        for frame in frames:
            t = round(frame.timestamp / self.time_resolution) * self.time_resolution
            records.append((round(t, 9),) + frame.to_byte_record()[1:])
        records.sort(key=lambda r: (r[0], str(r[2]), r[3]))
        return records

    def to_table(self, context, frames, num_partitions=None):
        """Record *frames* into a K_b engine table."""
        return context.table_from_rows(
            list(BYTE_RECORD_COLUMNS),
            self.record(frames),
            num_partitions=num_partitions,
        )
