"""Fault injection for recorded traces.

The paper's motivation is data-driven verification: finding faults in
massive traces. This module injects the canonical in-vehicle fault
classes into recorded frame streams, so the pipeline's detection paths
(outlier isolation, cycle-time violations, validity splits, CRC checks)
can be exercised and measured against known ground truth.

All injectors are deterministic (seeded) and operate on frame lists, so
they compose: ``inject(frames, [StuckSignal(...), MessageDropout(...)])``.
Each returns the modified frames plus a ground-truth log of what was
injected where.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np


class FaultError(ValueError):
    """Raised for invalid fault configuration."""


@dataclass(frozen=True)
class InjectionEvent:
    """Ground truth: one injected fault occurrence."""

    fault: str
    timestamp: float
    channel: str
    message_id: int
    detail: str = ""


class FaultModel:
    """Base class: ``apply(frames, rng)`` -> (frames, [InjectionEvent])."""

    def apply(self, frames, rng):
        raise NotImplementedError


@dataclass
class MessageDropout(FaultModel):
    """Drop whole bursts of one message type (ECU brown-out).

    Creates the cycle-time violations the extension rules must locate.
    """

    channel: str
    message_id: int
    burst_length: int = 5
    num_bursts: int = 2

    def __post_init__(self):
        if self.burst_length < 1 or self.num_bursts < 1:
            raise FaultError("burst_length and num_bursts must be >= 1")

    def apply(self, frames, rng):
        indices = [
            i
            for i, f in enumerate(frames)
            if f.channel == self.channel and f.message_id == self.message_id
        ]
        if len(indices) <= self.burst_length:
            return list(frames), []
        events = []
        dropped = set()
        for _burst in range(self.num_bursts):
            start = int(rng.integers(0, len(indices) - self.burst_length))
            burst = indices[start : start + self.burst_length]
            dropped.update(burst)
            events.append(
                InjectionEvent(
                    "dropout",
                    frames[burst[0]].timestamp,
                    self.channel,
                    self.message_id,
                    detail="{} frames".format(len(burst)),
                )
            )
        out = [f for i, f in enumerate(frames) if i not in dropped]
        return out, events


@dataclass
class StuckSignal(FaultModel):
    """Freeze a message's payload for a time window (stuck sensor).

    The unchanged-value reduction collapses the stuck period to almost
    nothing -- which is itself the detectable signature (a signal that
    "never changes" for far longer than usual).
    """

    channel: str
    message_id: int
    start: float
    duration: float

    def __post_init__(self):
        if self.duration <= 0:
            raise FaultError("duration must be positive")

    def apply(self, frames, rng):
        out = []
        frozen_payload = None
        events = []
        end = self.start + self.duration
        for frame in frames:
            if (
                frame.channel == self.channel
                and frame.message_id == self.message_id
                and self.start <= frame.timestamp < end
            ):
                if frozen_payload is None:
                    frozen_payload = frame.payload
                    events.append(
                        InjectionEvent(
                            "stuck",
                            frame.timestamp,
                            self.channel,
                            self.message_id,
                            detail="until {:.3f}s".format(end),
                        )
                    )
                frame = dataclasses.replace(frame, payload=frozen_payload)
            out.append(frame)
        return out, events


@dataclass
class PayloadCorruption(FaultModel):
    """Flip random payload bits in a fraction of one message's frames.

    Corrupted frames keep their recorded header CRC, so protocol-level
    validation (``can.frame_from_record``) detects them -- and value-level
    analysis sees outliers.
    """

    channel: str
    message_id: int
    rate: float = 0.01

    def __post_init__(self):
        if not 0 < self.rate <= 1:
            raise FaultError("rate must be in (0, 1]")

    def apply(self, frames, rng):
        out = []
        events = []
        for frame in frames:
            if (
                frame.channel == self.channel
                and frame.message_id == self.message_id
                and frame.payload
                and rng.random() < self.rate
            ):
                payload = bytearray(frame.payload)
                bit = int(rng.integers(0, len(payload) * 8))
                payload[bit // 8] ^= 1 << (bit % 8)
                frame = dataclasses.replace(frame, payload=bytes(payload))
                events.append(
                    InjectionEvent(
                        "corruption",
                        frame.timestamp,
                        self.channel,
                        self.message_id,
                        detail="bit {}".format(bit),
                    )
                )
            out.append(frame)
        return out, events


@dataclass
class EcuReset(FaultModel):
    """Silence *all* messages of a channel for a window, then resume.

    Models an ECU reset: every signal of that ECU shows a simultaneous
    gap -- the cross-signal pattern transition graphs make visible.
    """

    channel: str
    start: float
    duration: float

    def __post_init__(self):
        if self.duration <= 0:
            raise FaultError("duration must be positive")

    def apply(self, frames, rng):
        end = self.start + self.duration
        out = []
        silenced = 0
        for frame in frames:
            if frame.channel == self.channel and self.start <= frame.timestamp < end:
                silenced += 1
                continue
            out.append(frame)
        events = []
        if silenced:
            events.append(
                InjectionEvent(
                    "ecu_reset",
                    self.start,
                    self.channel,
                    -1,
                    detail="{} frames silenced".format(silenced),
                )
            )
        return out, events


@dataclass
class InjectionReport:
    """All ground-truth events of one injection run."""

    events: list = field(default_factory=list)

    def __len__(self):
        return len(self.events)

    def by_fault(self, fault):
        return [e for e in self.events if e.fault == fault]

    def timestamps(self, fault=None):
        return sorted(
            e.timestamp
            for e in self.events
            if fault is None or e.fault == fault
        )


def inject(frames, faults, seed=0):
    """Apply *faults* in order; returns (frames, InjectionReport)."""
    rng = np.random.default_rng(seed)
    report = InjectionReport()
    current = list(frames)
    for fault in faults:
        current, events = fault.apply(current, rng)
        report.events.extend(events)
    return current, report
