"""Transport-level corruption of recorded traces.

Where :mod:`repro.vehicle.faults` injects *signal-level* faults (stuck
sensors, ECU resets) into live frame streams, this module models what
the *recording path* does to an otherwise-correct trace: dropped frames
(lossy logger, bus-off bursts), gateway duplication glitches, clock
skew between channel recorders, truncated payloads and flipped bits.
Real fleet captures exhibit all of these; the perfect traces the
simulator emits do not.

Corruption models operate on ``k_b`` byte-record tuples
``(t, l, b_id, m_id, m_info)`` -- the layer *below* interpretation --
so corrupted traces round-trip through every trace codec and feed the
pipeline unchanged. All models are deterministic (seeded), composable
(``corrupt(records, [FrameDrop(...), ClockSkew(...)])``) and return a
ground-truth :class:`CorruptionLog` alongside the corrupted records.

Every model supports :meth:`CorruptionModel.at_severity`: the
configured knob values act as severity 1.0 and scale linearly. At
severity 0 every model is a strict identity -- ``apply`` returns the
input records unchanged, byte for byte -- which the degradation
harness uses as its "perfect run equals corrupted run" gate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np


class CorruptionError(ValueError):
    """Raised for invalid corruption configuration."""


@dataclass(frozen=True)
class CorruptionEvent:
    """Ground truth: one corruption occurrence on one frame.

    ``timestamp``/``channel``/``message_id`` identify the affected
    frame by its *original* (pre-corruption) coordinates.
    """

    kind: str
    timestamp: float
    channel: str
    message_id: int
    detail: str = ""


@dataclass
class CorruptionLog:
    """All ground-truth events of one corruption run."""

    events: list = field(default_factory=list)

    def __len__(self):
        return len(self.events)

    def by_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def counts(self):
        """Event count per corruption kind."""
        out = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def timestamps(self, kind=None):
        return sorted(
            e.timestamp
            for e in self.events
            if kind is None or e.kind == kind
        )

    def to_rows(self):
        """Event tuples ``(kind, t, b_id, m_id, detail)`` for tables."""
        return [
            (e.kind, e.timestamp, e.channel, e.message_id, e.detail)
            for e in self.events
        ]


class CorruptionModel:
    """Base class: ``apply(records, rng)`` -> (records, [CorruptionEvent]).

    Subclasses declare ``SEVERITY_FIELDS`` (knobs scaled linearly by
    :meth:`at_severity`) and ``RATE_FIELDS`` (the subset clamped to
    1.0, since probabilities cannot exceed certainty).
    """

    kind = "corruption"
    SEVERITY_FIELDS = ()
    RATE_FIELDS = ()

    def apply(self, records, rng):
        raise NotImplementedError

    def at_severity(self, severity):
        """A copy with every severity knob scaled by *severity*.

        Severity 0 yields a strict identity model; severity 1 returns
        the configured values unchanged.
        """
        if severity < 0:
            raise CorruptionError("severity must be >= 0")
        changes = {}
        for name in self.SEVERITY_FIELDS:
            value = getattr(self, name) * severity
            if name in self.RATE_FIELDS:
                value = min(1.0, value)
            changes[name] = value
        return dataclasses.replace(self, **changes)

    @property
    def is_identity(self):
        """True when every severity knob is zero (apply is a no-op)."""
        return all(
            getattr(self, name) == 0 for name in self.SEVERITY_FIELDS
        )

    def _matches(self, record):
        channel = getattr(self, "channel", None)
        return channel is None or record[2] == channel


@dataclass(frozen=True)
class FrameDrop(CorruptionModel):
    """Drop frames: uniformly, or in bursts (bus-off / logger stall).

    Each frame independently *starts* a drop with probability ``rate``;
    with ``burst_length > 1`` the drop extends over the following
    frames of the same scope (the whole stream, or one channel when
    ``channel`` is set), modelling a bus-off recovery window.
    """

    rate: float = 0.01
    burst_length: int = 1
    channel: str = None

    kind = "drop"
    SEVERITY_FIELDS = ("rate",)
    RATE_FIELDS = ("rate",)

    def __post_init__(self):
        if not 0 <= self.rate <= 1:
            raise CorruptionError("rate must be in [0, 1]")
        if self.burst_length < 1:
            raise CorruptionError("burst_length must be >= 1")

    def apply(self, records, rng):
        if self.is_identity:
            return list(records), []
        out = []
        events = []
        remaining = 0
        for record in records:
            if not self._matches(record):
                out.append(record)
                continue
            if remaining > 0:
                remaining -= 1
                in_burst = True
            elif rng.random() < self.rate:
                remaining = self.burst_length - 1
                in_burst = self.burst_length > 1
            else:
                out.append(record)
                continue
            events.append(
                CorruptionEvent(
                    self.kind, record[0], record[2], record[3],
                    detail="burst" if in_burst else "uniform",
                )
            )
        return out, events


@dataclass(frozen=True)
class GatewayDuplicate(CorruptionModel):
    """Replay frames as a glitching gateway does.

    Each frame is re-emitted immediately after itself with probability
    ``rate``. With ``jitter == 0`` the copy is byte-identical --
    including ``(t, b_id, m_id)`` -- the exact-duplicate case the
    dedup/statistics paths must not double-count. With ``jitter > 0``
    the copy's timestamp shifts by ``U(0, jitter)`` seconds, which may
    land it behind the next recorded frame (non-monotonic streams).
    """

    rate: float = 0.01
    jitter: float = 0.0
    channel: str = None

    kind = "duplicate"
    SEVERITY_FIELDS = ("rate",)
    RATE_FIELDS = ("rate",)

    def __post_init__(self):
        if not 0 <= self.rate <= 1:
            raise CorruptionError("rate must be in [0, 1]")
        if self.jitter < 0:
            raise CorruptionError("jitter must be >= 0")

    def apply(self, records, rng):
        if self.is_identity:
            return list(records), []
        out = []
        events = []
        for record in records:
            out.append(record)
            if not self._matches(record) or rng.random() >= self.rate:
                continue
            shift = rng.random() * self.jitter if self.jitter else 0.0
            copy = (record[0] + shift,) + tuple(record[1:])
            out.append(copy)
            events.append(
                CorruptionEvent(
                    self.kind, record[0], record[2], record[3],
                    detail="jitter={:.9f}".format(shift),
                )
            )
        return out, events


@dataclass(frozen=True)
class ClockSkew(CorruptionModel):
    """Per-channel recorder clock drift plus occasional backwards steps.

    Each channel's recorder runs at rate ``1 + U(-drift, drift)``
    relative to true time (anchored at the channel's first frame). On
    top, with probability ``step_rate`` per frame the channel clock
    jumps *backwards* by ``U(0, step_scale)`` seconds (an NTP-style
    correction), producing the non-monotonic timestamps real merged
    captures contain.
    """

    drift: float = 0.001
    step_rate: float = 0.0
    step_scale: float = 0.05
    channel: str = None

    kind = "clock"
    SEVERITY_FIELDS = ("drift", "step_rate", "step_scale")
    RATE_FIELDS = ("step_rate",)

    def __post_init__(self):
        if self.drift < 0:
            raise CorruptionError("drift must be >= 0")
        if not 0 <= self.step_rate <= 1:
            raise CorruptionError("step_rate must be in [0, 1]")
        if self.step_scale < 0:
            raise CorruptionError("step_scale must be >= 0")

    def apply(self, records, rng):
        if self.drift == 0 and self.step_rate == 0:
            return list(records), []
        out = []
        events = []
        anchors = {}  # b_id -> (t0, drift_factor)
        offsets = {}  # b_id -> accumulated step offset
        for record in records:
            if not self._matches(record):
                out.append(record)
                continue
            b_id = record[2]
            if b_id not in anchors:
                factor = float(rng.uniform(-self.drift, self.drift))
                anchors[b_id] = (record[0], factor)
                offsets[b_id] = 0.0
                events.append(
                    CorruptionEvent(
                        "clock_drift", record[0], b_id, record[3],
                        detail="factor={:+.9f}".format(factor),
                    )
                )
            t0, factor = anchors[b_id]
            if self.step_rate and rng.random() < self.step_rate:
                step = float(rng.random() * self.step_scale)
                offsets[b_id] -= step
                events.append(
                    CorruptionEvent(
                        "clock_step", record[0], b_id, record[3],
                        detail="-{:.9f}s".format(step),
                    )
                )
            skewed = t0 + (record[0] - t0) * (1.0 + factor) + offsets[b_id]
            out.append((skewed,) + tuple(record[1:]))
        return out, events


@dataclass(frozen=True)
class PayloadTruncation(CorruptionModel):
    """Cut frames short, as overrun loggers and DMA glitches do.

    Affected frames keep a uniformly-drawn prefix of their payload
    (possibly empty). Interpretation must surface these as structured
    short-payload conditions, never as garbage values.
    """

    rate: float = 0.01
    channel: str = None

    kind = "truncate"
    SEVERITY_FIELDS = ("rate",)
    RATE_FIELDS = ("rate",)

    def __post_init__(self):
        if not 0 <= self.rate <= 1:
            raise CorruptionError("rate must be in [0, 1]")

    def apply(self, records, rng):
        if self.is_identity:
            return list(records), []
        out = []
        events = []
        for record in records:
            payload = record[1]
            if (
                not self._matches(record)
                or not payload
                or rng.random() >= self.rate
            ):
                out.append(record)
                continue
            keep = int(rng.integers(0, len(payload)))
            out.append(
                (record[0], bytes(payload[:keep])) + tuple(record[2:])
            )
            events.append(
                CorruptionEvent(
                    self.kind, record[0], record[2], record[3],
                    detail="{} -> {} bytes".format(len(payload), keep),
                )
            )
        return out, events


@dataclass(frozen=True)
class BitFlip(CorruptionModel):
    """Flip one random payload bit per affected frame.

    Unlike :class:`repro.vehicle.faults.PayloadCorruption` this is not
    scoped to one message type: transport-level bit errors hit any
    frame of the stream (or one channel when ``channel`` is set).
    """

    rate: float = 0.01
    channel: str = None

    kind = "bitflip"
    SEVERITY_FIELDS = ("rate",)
    RATE_FIELDS = ("rate",)

    def __post_init__(self):
        if not 0 <= self.rate <= 1:
            raise CorruptionError("rate must be in [0, 1]")

    def apply(self, records, rng):
        if self.is_identity:
            return list(records), []
        out = []
        events = []
        for record in records:
            payload = record[1]
            if (
                not self._matches(record)
                or not payload
                or rng.random() >= self.rate
            ):
                out.append(record)
                continue
            bit = int(rng.integers(0, len(payload) * 8))
            mutated = bytearray(payload)
            mutated[bit // 8] ^= 1 << (bit % 8)
            out.append(
                (record[0], bytes(mutated)) + tuple(record[2:])
            )
            events.append(
                CorruptionEvent(
                    self.kind, record[0], record[2], record[3],
                    detail="bit {}".format(bit),
                )
            )
        return out, events


def corrupt(records, models, seed=0):
    """Apply *models* in order; returns (records, CorruptionLog)."""
    rng = np.random.default_rng(seed)
    log = CorruptionLog()
    current = list(records)
    for model in models:
        current, events = model.apply(current, rng)
        log.events.extend(events)
    return current, log
