"""Whole-vehicle simulation.

Assembles the substrate: a network database, ECUs with behaviours and
schedules, per-channel buses, gateways and a trace recorder. ``run``
produces the observed frames; ``record_table`` produces the raw trace
``K_b`` as an engine table, which is exactly the input of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vehicle.bus import EthernetBus, FlexRayBus, can_bus, lin_bus
from repro.vehicle.recorder import TraceRecorder


class VehicleError(ValueError):
    """Raised for inconsistent vehicle configuration."""


@dataclass
class VehicleSimulation:
    """A simulated vehicle producing in-vehicle network traces."""

    database: object  # NetworkDatabase (possibly gateway-extended)
    ecus: list = field(default_factory=list)
    gateways: list = field(default_factory=list)
    buses: dict = field(default_factory=dict)  # channel -> bus
    recorder: TraceRecorder = field(default_factory=TraceRecorder)

    def add_ecu(self, ecu):
        self.ecus.append(ecu)
        return self

    def add_gateway(self, gateway):
        """Register a gateway and extend the database with routed copies."""
        self.gateways.append(gateway)
        self.database = gateway.extend_database(self.database)
        return self

    def bus_for(self, channel):
        """The bus model of *channel*, creating a default by protocol."""
        if channel not in self.buses:
            protocols = {
                m.protocol for m in self.database.messages if m.channel == channel
            }
            if len(protocols) != 1:
                raise VehicleError(
                    "channel {!r} has ambiguous protocols {}".format(
                        channel, sorted(protocols)
                    )
                )
            protocol = protocols.pop()
            if protocol == "CAN":
                self.buses[channel] = can_bus(channel)
            elif protocol == "LIN":
                self.buses[channel] = lin_bus(channel)
            elif protocol == "SOMEIP":
                self.buses[channel] = EthernetBus(channel)
            elif protocol == "FLEXRAY":
                self.buses[channel] = FlexRayBus(channel)
            else:
                raise VehicleError("unknown protocol {!r}".format(protocol))
        return self.buses[channel]

    def run(self, duration):
        """Simulate [0, duration) and return all observed frames."""
        requested = []
        for ecu in self.ecus:
            requested.extend(ecu.generate_frames(duration))
        by_channel = {}
        for frame in requested:
            by_channel.setdefault(frame.channel, []).append(frame)
        observed = []
        for channel, frames in sorted(by_channel.items()):
            observed.extend(self.bus_for(channel).arbitrate(frames))
        # Gateways listen on the observed traffic and forward copies; the
        # forwarded frames pass their destination channel's bus too.
        for gateway in self.gateways:
            forwarded = gateway.forward(observed)
            by_dst = {}
            for frame in forwarded:
                by_dst.setdefault(frame.channel, []).append(frame)
            for channel, frames in sorted(by_dst.items()):
                observed.extend(self.bus_for(channel).arbitrate(frames))
        observed.sort(key=lambda f: f.timestamp)
        return observed

    def byte_records(self, duration):
        """Run and record: the trace ``K_b`` as a list of tuples."""
        return self.recorder.record(self.run(duration))

    def record_table(self, context, duration, num_partitions=None):
        """Run and record: the trace ``K_b`` as an engine table."""
        return self.recorder.to_table(
            context, self.run(duration), num_partitions=num_partitions
        )
