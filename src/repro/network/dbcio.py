"""DBC-style text format for communication databases.

OEMs document "which message carries which signal at which bytes with
which scaling" in exchange formats such as Vector DBC. This module
implements a faithful subset of the DBC grammar so that
:class:`~repro.network.NetworkDatabase` objects round-trip through the
industry's on-disk representation:

* ``VERSION "..."``
* ``BU_:`` node list (informational)
* ``BO_ <id> <name>: <dlc> <sender>`` — message definitions
* ``SG_ <name> : <start>|<len>@<order><sign> (<factor>,<offset>)
  [<min>|<max>] "<unit>" <receivers>`` — signal definitions
  (@1 = Intel/little-endian, @0 = Motorola/big-endian; + unsigned,
  - signed)
* ``VAL_ <id> <signal> <raw> "<label>" ... ;`` — value tables
* ``BA_DEF_`` / ``BA_`` attributes, of which the canonical
  ``GenMsgCycleTime`` (ms) carries the cycle time and the custom
  ``BusChannel`` / ``BusProtocol`` attributes carry what multi-bus DBC
  deployments encode in separate files per channel
* ``CM_ SG_ <id> <signal> "<comment>";`` — signal comments; the markers
  ``[validity]``, ``[ordinal]``, ``[nominal]``, ``[binary]`` in comments
  preserve this library's signal kind / data-class metadata, and
  ``[section<N>]`` marks a signal as living in the presence-conditional
  section gated by mask bit ``N``.

SOME/IP presence-conditional layouts have no standard DBC equivalent;
they round-trip through the custom ``SectionLayout`` message attribute
(``"mask_bit:length,..."``) plus the ``[section<N>]`` comment markers,
the same mechanism ``BusChannel`` / ``BusProtocol`` use for multi-bus
metadata.

:func:`diff_databases` structurally compares two databases (an OEM
ground truth vs a reverse-engineered recovery, two DBC revisions, ...)
into per-message and per-signal deltas; the discovery validation
harness and the ``repro dbc diff`` CLI build on it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.model import FUNCTIONAL, VALIDITY
from repro.network.database import (
    BINARY,
    MessageDefinition,
    NetworkDatabase,
    NOMINAL,
    NUMERIC,
    ORDINAL,
    SignalDefinition,
)
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding

_DATA_CLASSES = (NUMERIC, ORDINAL, NOMINAL, BINARY)


class DbcError(ValueError):
    """Raised for unsupported or malformed DBC content."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def dump_database(database, path, version="repro-1.0", channels=None):
    """Write *database* to *path* in DBC format; returns the text."""
    text = dumps_database(database, version=version, channels=channels)
    Path(path).write_text(text)
    return text


def dumps_database(database, version="repro-1.0", channels=None):
    """Render *database* as DBC text.

    DBC identifies messages by their frame id alone; real deployments
    keep one file per bus. Pass *channels* to export a per-bus subset.
    A database reusing a message id across the exported channels cannot
    be represented and is rejected.
    """
    if channels is not None:
        wanted = set(channels)
        database = type(database)(
            tuple(m for m in database.messages if m.channel in wanted)
        )
    seen = {}
    for message in database.messages:
        if message.message_id in seen:
            raise DbcError(
                "message id {} appears on channels {!r} and {!r}; export "
                "one channel per file (channels=...)".format(
                    message.message_id,
                    seen[message.message_id],
                    message.channel,
                )
            )
        seen[message.message_id] = message.channel
    lines = ['VERSION "{}"'.format(version), ""]
    lines.append("BU_: {}".format(" ".join(_node_names(database))))
    lines.append("")
    for message in database.messages:
        lines.append(
            "BO_ {} {}: {} {}".format(
                message.message_id,
                message.name,
                message.payload_length,
                "ECU",
            )
        )
        for signal in message.signals:
            lines.append(
                " " + _render_signal(signal, message.multiplexor)
            )
        lines.append("")
    # Attribute definitions.
    lines.append('BA_DEF_ BO_ "GenMsgCycleTime" INT 0 3600000;')
    lines.append('BA_DEF_ BO_ "BusChannel" STRING;')
    lines.append('BA_DEF_ BO_ "BusProtocol" STRING;')
    lines.append('BA_DEF_ BO_ "SectionLayout" STRING;')
    lines.append('BA_DEF_DEF_ "GenMsgCycleTime" 0;')
    lines.append('BA_DEF_DEF_ "BusChannel" "";')
    lines.append('BA_DEF_DEF_ "BusProtocol" "CAN";')
    lines.append('BA_DEF_DEF_ "SectionLayout" "";')
    for message in database.messages:
        if message.cycle_time is not None:
            lines.append(
                'BA_ "GenMsgCycleTime" BO_ {} {};'.format(
                    message.message_id, int(round(message.cycle_time * 1000))
                )
            )
        lines.append(
            'BA_ "BusChannel" BO_ {} "{}";'.format(
                message.message_id, message.channel
            )
        )
        lines.append(
            'BA_ "BusProtocol" BO_ {} "{}";'.format(
                message.message_id, message.protocol
            )
        )
        if message.layout is not None:
            lines.append(
                'BA_ "SectionLayout" BO_ {} "{}";'.format(
                    message.message_id,
                    ",".join(
                        "{}:{}".format(sec.mask_bit, sec.length)
                        for sec in message.layout.sections
                    ),
                )
            )
    lines.append("")
    # Value tables.
    for message in database.messages:
        for signal in message.signals:
            if signal.encoding.value_table:
                entries = " ".join(
                    '{} "{}"'.format(raw, label)
                    for raw, label in signal.encoding.value_table
                )
                lines.append(
                    "VAL_ {} {} {} ;".format(
                        message.message_id, signal.name, entries
                    )
                )
    lines.append("")
    # Comments carrying kind / data class metadata.
    for message in database.messages:
        for signal in message.signals:
            markers = "[{}]{}{}".format(
                signal.data_class,
                "[validity]" if signal.kind == VALIDITY else "",
                "[section{}]".format(signal.section_bit)
                if signal.section_bit is not None
                else "",
            )
            comment = "{} {}".format(markers, signal.comment).strip()
            lines.append(
                'CM_ SG_ {} {} "{}";'.format(
                    message.message_id, signal.name, comment
                )
            )
    lines.append("")
    return "\n".join(lines)


def _node_names(database):
    names = sorted({m.name.split("_")[0] for m in database.messages})
    return names or ["ECU"]


def _render_signal(signal, multiplexor=None):
    encoding = signal.encoding
    order = 1 if encoding.byte_order == INTEL else 0
    sign = "-" if encoding.signed else "+"
    lo, hi = encoding.physical_bounds()
    mux = ""
    if multiplexor is not None and signal.name == multiplexor:
        mux = " M"
    elif signal.mux_value is not None:
        mux = " m{}".format(signal.mux_value)
    return (
        'SG_ {}{} : {}|{}@{}{} ({},{}) [{}|{}] "{}" Vector__XXX'.format(
            signal.name,
            mux,
            encoding.start_bit,
            encoding.bit_length,
            order,
            sign,
            _number(encoding.scale),
            _number(encoding.offset),
            _number(lo),
            _number(hi),
            signal.unit,
        )
    )


def _number(x):
    """Render floats DBC-style (no trailing .0 for integral values)."""
    if float(x).is_integer():
        return str(int(x))
    return repr(float(x))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_BO_RE = re.compile(r"^BO_ (\d+) (\w+)\s*: (\d+) (\w+)\s*$")
_SG_RE = re.compile(
    r"^SG_ (\w+)(?: (M|m\d+))?\s*: (\d+)\|(\d+)@([01])([+-]) "
    r"\(([^,]+),([^)]+)\) \[([^|]*)\|([^\]]*)\] \"([^\"]*)\" (.*)$"
)
_VAL_RE = re.compile(r"^VAL_ (\d+) (\w+) (.*);$")
_VAL_ENTRY_RE = re.compile(r"(-?\d+) \"([^\"]*)\"")
_BA_RE = re.compile(r"^BA_ \"(\w+)\" BO_ (\d+) (.+);$")
_CM_SG_RE = re.compile(r"^CM_ SG_ (\d+) (\w+) \"(.*)\";$")


def load_database(path):
    """Parse a DBC file into a :class:`NetworkDatabase`."""
    return loads_database(Path(path).read_text())


def loads_database(text):
    """Parse DBC text into a :class:`NetworkDatabase`."""
    messages = {}  # id -> dict
    current = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith(("VERSION", "BU_", "BA_DEF", "NS_")):
            current = None if not line.startswith(" ") else current
            continue
        bo = _BO_RE.match(line)
        if bo:
            message_id = int(bo.group(1))
            current = {
                "name": bo.group(2),
                "message_id": message_id,
                "dlc": int(bo.group(3)),
                "signals": [],
                "cycle_ms": None,
                "channel": "CAN1",
                "protocol": "CAN",
                "value_tables": {},
                "comments": {},
                "multiplexor": None,
                "layout_spec": None,
            }
            messages[message_id] = current
            continue
        sg = _SG_RE.match(line)
        if sg:
            if current is None:
                raise DbcError(
                    "SG_ outside a BO_ block on line {}".format(line_number)
                )
            mux = sg.group(2)
            if mux == "M":
                current["multiplexor"] = sg.group(1)
            current["signals"].append(
                {
                    "name": sg.group(1),
                    "start_bit": int(sg.group(3)),
                    "bit_length": int(sg.group(4)),
                    "byte_order": INTEL if sg.group(5) == "1" else MOTOROLA,
                    "signed": sg.group(6) == "-",
                    "scale": float(sg.group(7)),
                    "offset": float(sg.group(8)),
                    "unit": sg.group(11),
                    "mux_value": (
                        int(mux[1:]) if mux and mux.startswith("m") else None
                    ),
                }
            )
            continue
        val = _VAL_RE.match(line)
        if val:
            message_id = int(val.group(1))
            if message_id not in messages:
                raise DbcError(
                    "VAL_ for unknown message {} on line {}".format(
                        message_id, line_number
                    )
                )
            entries = tuple(
                (int(raw), label)
                for raw, label in _VAL_ENTRY_RE.findall(val.group(3))
            )
            messages[message_id]["value_tables"][val.group(2)] = entries
            continue
        ba = _BA_RE.match(line)
        if ba:
            name, message_id, value = ba.group(1), int(ba.group(2)), ba.group(3)
            if message_id not in messages:
                raise DbcError(
                    "BA_ for unknown message {} on line {}".format(
                        message_id, line_number
                    )
                )
            if name == "GenMsgCycleTime":
                messages[message_id]["cycle_ms"] = int(value)
            elif name == "BusChannel":
                messages[message_id]["channel"] = value.strip('"')
            elif name == "BusProtocol":
                messages[message_id]["protocol"] = value.strip('"')
            elif name == "SectionLayout":
                messages[message_id]["layout_spec"] = _parse_layout(
                    value.strip('"'), line_number
                )
            continue
        cm = _CM_SG_RE.match(line)
        if cm:
            message_id = int(cm.group(1))
            if message_id in messages:
                messages[message_id]["comments"][cm.group(2)] = cm.group(3)
            continue
        # Unknown statements (CM_ BO_, BA_DEF_DEF_, SIG_VALTYPE_ ...) are
        # tolerated, as real-world DBC consumers must be.
    return NetworkDatabase(
        tuple(_build_message(m) for m in messages.values())
    )


def _parse_layout(value, line_number):
    """Parse a ``SectionLayout`` attribute value ("mask_bit:length,...")."""
    sections = []
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        match = re.match(r"^(\d+):(\d+)$", part)
        if match is None:
            raise DbcError(
                "malformed SectionLayout entry {!r} on line {}".format(
                    part, line_number
                )
            )
        sections.append((int(match.group(1)), int(match.group(2))))
    if not sections:
        raise DbcError(
            "empty SectionLayout on line {}".format(line_number)
        )
    return tuple(sections)


def _build_layout(layout_spec):
    if layout_spec is None:
        return None
    from repro.protocols.someip import ConditionalLayout, OptionalSection

    return ConditionalLayout(
        tuple(
            OptionalSection(mask_bit, length)
            for mask_bit, length in layout_spec
        )
    )


def _build_message(spec):
    signals = []
    for s in spec["signals"]:
        value_table = spec["value_tables"].get(s["name"], ())
        comment = spec["comments"].get(s["name"], "")
        data_class, kind, section_bit, clean_comment = _parse_markers(
            comment, value_table
        )
        encoding = SignalEncoding(
            start_bit=s["start_bit"],
            bit_length=s["bit_length"],
            byte_order=s["byte_order"],
            signed=s["signed"],
            scale=s["scale"],
            offset=s["offset"],
            value_table=value_table,
        )
        signals.append(
            SignalDefinition(
                name=s["name"],
                encoding=encoding,
                unit=s["unit"],
                kind=kind,
                data_class=data_class,
                section_bit=section_bit,
                comment=clean_comment,
                mux_value=s.get("mux_value"),
            )
        )
    return MessageDefinition(
        name=spec["name"],
        message_id=spec["message_id"],
        channel=spec["channel"],
        protocol=spec["protocol"],
        payload_length=spec["dlc"],
        signals=tuple(signals),
        cycle_time=(
            spec["cycle_ms"] / 1000.0 if spec["cycle_ms"] else None
        ),
        layout=_build_layout(spec.get("layout_spec")),
        multiplexor=spec.get("multiplexor"),
    )


def _parse_markers(comment, value_table):
    """Extract [data_class] / [validity] / [sectionN] comment markers."""
    kind = FUNCTIONAL
    data_class = None
    section_bit = None
    rest = comment
    for marker in re.findall(r"\[(\w+)\]", comment):
        if marker == "validity":
            kind = VALIDITY
        elif marker in _DATA_CLASSES:
            data_class = marker
        else:
            section = re.match(r"^section(\d+)$", marker)
            if section:
                section_bit = int(section.group(1))
        rest = rest.replace("[{}]".format(marker), "")
    if data_class is None:
        # Sensible default: tabled signals are categorical, others numeric.
        if value_table:
            data_class = BINARY if len(value_table) == 2 else NOMINAL
        else:
            data_class = NUMERIC
    return data_class, kind, section_bit, rest.strip()


# ---------------------------------------------------------------------------
# Structural diffing
# ---------------------------------------------------------------------------

#: Signal delta kinds, in severity order.
SIGNAL_DELTA_KINDS = (
    "missing", "spurious", "geometry_mismatch", "scaling_mismatch",
)
MESSAGE_DELTA_KINDS = ("missing", "spurious")


@dataclass(frozen=True)
class MessageDelta:
    """A message present in only one of the two databases."""

    kind: str  # "missing" (actual only) | "spurious" (recovered only)
    channel: str
    message_id: int
    name: str

    def describe(self):
        return "{} message {} 0x{:X} ({})".format(
            self.kind, self.channel, self.message_id, self.name
        )


@dataclass(frozen=True)
class SignalDelta:
    """A per-signal discrepancy inside a message both databases share."""

    kind: str  # one of SIGNAL_DELTA_KINDS
    channel: str
    message_id: int
    actual: str = None     # signal name in the actual database
    recovered: str = None  # signal name in the recovered database
    detail: str = ""

    def describe(self):
        name = self.actual if self.actual is not None else self.recovered
        out = "{} signal {} 0x{:X} {}".format(
            self.kind, self.channel, self.message_id, name
        )
        if self.recovered is not None and self.actual is not None \
                and self.recovered != self.actual:
            out += " (recovered as {})".format(self.recovered)
        if self.detail:
            out += ": " + self.detail
        return out


@dataclass(frozen=True)
class DatabaseDiff:
    """Structured delta between an actual and a recovered database."""

    message_deltas: tuple = ()
    signal_deltas: tuple = ()

    def is_empty(self):
        return not self.message_deltas and not self.signal_deltas

    def counts(self):
        """{kind: count} over both delta planes (zero-filled)."""
        out = {
            "messages.missing": 0,
            "messages.spurious": 0,
        }
        for kind in SIGNAL_DELTA_KINDS:
            out["signals." + kind] = 0
        for delta in self.message_deltas:
            out["messages." + delta.kind] += 1
        for delta in self.signal_deltas:
            out["signals." + delta.kind] += 1
        return out

    def describe(self):
        """One human-readable line per delta, messages first."""
        return [d.describe() for d in self.message_deltas] + [
            d.describe() for d in self.signal_deltas
        ]


def _geometry(encoding):
    return tuple(encoding.bit_positions())


def _scaling(signal):
    encoding = signal.encoding
    return (
        encoding.signed,
        encoding.scale,
        encoding.offset,
        tuple(encoding.value_table),
    )


def _scaling_detail(actual, recovered):
    parts = []
    for label, a, r in (
        ("signed", actual.encoding.signed, recovered.encoding.signed),
        ("scale", actual.encoding.scale, recovered.encoding.scale),
        ("offset", actual.encoding.offset, recovered.encoding.offset),
        (
            "value_table",
            tuple(actual.encoding.value_table),
            tuple(recovered.encoding.value_table),
        ),
    ):
        if a != r:
            parts.append("{} {!r} != {!r}".format(label, a, r))
    return ", ".join(parts)


def diff_databases(actual, recovered):
    """Structurally compare *recovered* against the *actual* database.

    Messages pair by ``(channel, message_id)``. Within a shared
    message, signals pair by name first, then -- since recovered
    databases use synthetic names -- by identical bit-position sets
    among the still-unpaired. Each pair is then checked for
    ``geometry_mismatch`` (different absolute bit positions or
    significance order; single-byte Intel/Motorola equivalents compare
    equal because their position walks are identical) and
    ``scaling_mismatch`` (same geometry, different
    signed/scale/offset/value-table). Unpaired actual signals are
    ``missing``, unpaired recovered ones ``spurious``; whole messages
    present on one side only become :class:`MessageDelta` s.
    """
    actual_by_key = {(m.channel, m.message_id): m for m in actual.messages}
    recovered_by_key = {
        (m.channel, m.message_id): m for m in recovered.messages
    }
    message_deltas = []
    signal_deltas = []
    for key, message in actual_by_key.items():
        if key not in recovered_by_key:
            message_deltas.append(
                MessageDelta("missing", message.channel,
                             message.message_id, message.name)
            )
    for key, message in recovered_by_key.items():
        if key not in actual_by_key:
            message_deltas.append(
                MessageDelta("spurious", message.channel,
                             message.message_id, message.name)
            )
    for key in actual_by_key:
        if key not in recovered_by_key:
            continue
        signal_deltas.extend(
            _diff_message(actual_by_key[key], recovered_by_key[key])
        )
    return DatabaseDiff(tuple(message_deltas), tuple(signal_deltas))


def _diff_message(actual, recovered):
    channel, message_id = actual.channel, actual.message_id
    recovered_by_name = {s.name: s for s in recovered.signals}
    pairs = []
    unpaired_actual = []
    paired_recovered = set()
    for signal in actual.signals:
        twin = recovered_by_name.get(signal.name)
        if twin is not None:
            pairs.append((signal, twin))
            paired_recovered.add(signal.name)
        else:
            unpaired_actual.append(signal)
    remaining = [
        s for s in recovered.signals if s.name not in paired_recovered
    ]
    by_bits = {}
    for signal in remaining:
        by_bits.setdefault(
            frozenset(_geometry(signal.encoding)), []
        ).append(signal)
    still_missing = []
    for signal in unpaired_actual:
        bucket = by_bits.get(frozenset(_geometry(signal.encoding)))
        if bucket:
            pairs.append((signal, bucket.pop(0)))
        else:
            still_missing.append(signal)
    spurious = [s for bucket in by_bits.values() for s in bucket]
    deltas = []
    for signal in still_missing:
        deltas.append(
            SignalDelta(
                "missing", channel, message_id, actual=signal.name,
                detail="bits {}".format(_geometry(signal.encoding)),
            )
        )
    for signal in spurious:
        deltas.append(
            SignalDelta(
                "spurious", channel, message_id, recovered=signal.name,
                detail="bits {}".format(_geometry(signal.encoding)),
            )
        )
    for signal, twin in pairs:
        if _geometry(signal.encoding) != _geometry(twin.encoding):
            deltas.append(
                SignalDelta(
                    "geometry_mismatch", channel, message_id,
                    actual=signal.name, recovered=twin.name,
                    detail="bits {} != {}".format(
                        _geometry(signal.encoding),
                        _geometry(twin.encoding),
                    ),
                )
            )
        elif _scaling(signal) != _scaling(twin):
            deltas.append(
                SignalDelta(
                    "scaling_mismatch", channel, message_id,
                    actual=signal.name, recovered=twin.name,
                    detail=_scaling_detail(signal, twin),
                )
            )
    return deltas
