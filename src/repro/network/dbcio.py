"""DBC-style text format for communication databases.

OEMs document "which message carries which signal at which bytes with
which scaling" in exchange formats such as Vector DBC. This module
implements a faithful subset of the DBC grammar so that
:class:`~repro.network.NetworkDatabase` objects round-trip through the
industry's on-disk representation:

* ``VERSION "..."``
* ``BU_:`` node list (informational)
* ``BO_ <id> <name>: <dlc> <sender>`` — message definitions
* ``SG_ <name> : <start>|<len>@<order><sign> (<factor>,<offset>)
  [<min>|<max>] "<unit>" <receivers>`` — signal definitions
  (@1 = Intel/little-endian, @0 = Motorola/big-endian; + unsigned,
  - signed)
* ``VAL_ <id> <signal> <raw> "<label>" ... ;`` — value tables
* ``BA_DEF_`` / ``BA_`` attributes, of which the canonical
  ``GenMsgCycleTime`` (ms) carries the cycle time and the custom
  ``BusChannel`` / ``BusProtocol`` attributes carry what multi-bus DBC
  deployments encode in separate files per channel
* ``CM_ SG_ <id> <signal> "<comment>";`` — signal comments; the markers
  ``[validity]``, ``[ordinal]``, ``[nominal]``, ``[binary]`` in comments
  preserve this library's signal kind / data-class metadata.

SOME/IP presence-conditional layouts have no DBC equivalent and are
rejected on write (export such messages to code instead).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.model import FUNCTIONAL, VALIDITY
from repro.network.database import (
    BINARY,
    MessageDefinition,
    NetworkDatabase,
    NOMINAL,
    NUMERIC,
    ORDINAL,
    SignalDefinition,
)
from repro.protocols.signalcodec import INTEL, MOTOROLA, SignalEncoding

_DATA_CLASSES = (NUMERIC, ORDINAL, NOMINAL, BINARY)


class DbcError(ValueError):
    """Raised for unsupported or malformed DBC content."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def dump_database(database, path, version="repro-1.0", channels=None):
    """Write *database* to *path* in DBC format; returns the text."""
    text = dumps_database(database, version=version, channels=channels)
    Path(path).write_text(text)
    return text


def dumps_database(database, version="repro-1.0", channels=None):
    """Render *database* as DBC text.

    DBC identifies messages by their frame id alone; real deployments
    keep one file per bus. Pass *channels* to export a per-bus subset.
    A database reusing a message id across the exported channels cannot
    be represented and is rejected.
    """
    if channels is not None:
        wanted = set(channels)
        database = type(database)(
            tuple(m for m in database.messages if m.channel in wanted)
        )
    seen = {}
    for message in database.messages:
        if message.message_id in seen:
            raise DbcError(
                "message id {} appears on channels {!r} and {!r}; export "
                "one channel per file (channels=...)".format(
                    message.message_id,
                    seen[message.message_id],
                    message.channel,
                )
            )
        seen[message.message_id] = message.channel
    lines = ['VERSION "{}"'.format(version), ""]
    lines.append("BU_: {}".format(" ".join(_node_names(database))))
    lines.append("")
    for message in database.messages:
        if message.layout is not None:
            raise DbcError(
                "message {!r} uses a presence-conditional layout; DBC "
                "cannot express it".format(message.name)
            )
        lines.append(
            "BO_ {} {}: {} {}".format(
                message.message_id,
                message.name,
                message.payload_length,
                "ECU",
            )
        )
        for signal in message.signals:
            lines.append(
                " " + _render_signal(signal, message.multiplexor)
            )
        lines.append("")
    # Attribute definitions.
    lines.append('BA_DEF_ BO_ "GenMsgCycleTime" INT 0 3600000;')
    lines.append('BA_DEF_ BO_ "BusChannel" STRING;')
    lines.append('BA_DEF_ BO_ "BusProtocol" STRING;')
    lines.append('BA_DEF_DEF_ "GenMsgCycleTime" 0;')
    lines.append('BA_DEF_DEF_ "BusChannel" "";')
    lines.append('BA_DEF_DEF_ "BusProtocol" "CAN";')
    for message in database.messages:
        if message.cycle_time is not None:
            lines.append(
                'BA_ "GenMsgCycleTime" BO_ {} {};'.format(
                    message.message_id, int(round(message.cycle_time * 1000))
                )
            )
        lines.append(
            'BA_ "BusChannel" BO_ {} "{}";'.format(
                message.message_id, message.channel
            )
        )
        lines.append(
            'BA_ "BusProtocol" BO_ {} "{}";'.format(
                message.message_id, message.protocol
            )
        )
    lines.append("")
    # Value tables.
    for message in database.messages:
        for signal in message.signals:
            if signal.encoding.value_table:
                entries = " ".join(
                    '{} "{}"'.format(raw, label)
                    for raw, label in signal.encoding.value_table
                )
                lines.append(
                    "VAL_ {} {} {} ;".format(
                        message.message_id, signal.name, entries
                    )
                )
    lines.append("")
    # Comments carrying kind / data class metadata.
    for message in database.messages:
        for signal in message.signals:
            markers = "[{}]{}".format(
                signal.data_class,
                "[validity]" if signal.kind == VALIDITY else "",
            )
            comment = "{} {}".format(markers, signal.comment).strip()
            lines.append(
                'CM_ SG_ {} {} "{}";'.format(
                    message.message_id, signal.name, comment
                )
            )
    lines.append("")
    return "\n".join(lines)


def _node_names(database):
    names = sorted({m.name.split("_")[0] for m in database.messages})
    return names or ["ECU"]


def _render_signal(signal, multiplexor=None):
    encoding = signal.encoding
    order = 1 if encoding.byte_order == INTEL else 0
    sign = "-" if encoding.signed else "+"
    lo, hi = encoding.physical_bounds()
    mux = ""
    if multiplexor is not None and signal.name == multiplexor:
        mux = " M"
    elif signal.mux_value is not None:
        mux = " m{}".format(signal.mux_value)
    return (
        'SG_ {}{} : {}|{}@{}{} ({},{}) [{}|{}] "{}" Vector__XXX'.format(
            signal.name,
            mux,
            encoding.start_bit,
            encoding.bit_length,
            order,
            sign,
            _number(encoding.scale),
            _number(encoding.offset),
            _number(lo),
            _number(hi),
            signal.unit,
        )
    )


def _number(x):
    """Render floats DBC-style (no trailing .0 for integral values)."""
    if float(x).is_integer():
        return str(int(x))
    return repr(float(x))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_BO_RE = re.compile(r"^BO_ (\d+) (\w+)\s*: (\d+) (\w+)\s*$")
_SG_RE = re.compile(
    r"^SG_ (\w+)(?: (M|m\d+))?\s*: (\d+)\|(\d+)@([01])([+-]) "
    r"\(([^,]+),([^)]+)\) \[([^|]*)\|([^\]]*)\] \"([^\"]*)\" (.*)$"
)
_VAL_RE = re.compile(r"^VAL_ (\d+) (\w+) (.*);$")
_VAL_ENTRY_RE = re.compile(r"(-?\d+) \"([^\"]*)\"")
_BA_RE = re.compile(r"^BA_ \"(\w+)\" BO_ (\d+) (.+);$")
_CM_SG_RE = re.compile(r"^CM_ SG_ (\d+) (\w+) \"(.*)\";$")


def load_database(path):
    """Parse a DBC file into a :class:`NetworkDatabase`."""
    return loads_database(Path(path).read_text())


def loads_database(text):
    """Parse DBC text into a :class:`NetworkDatabase`."""
    messages = {}  # id -> dict
    current = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith(("VERSION", "BU_", "BA_DEF", "NS_")):
            current = None if not line.startswith(" ") else current
            continue
        bo = _BO_RE.match(line)
        if bo:
            message_id = int(bo.group(1))
            current = {
                "name": bo.group(2),
                "message_id": message_id,
                "dlc": int(bo.group(3)),
                "signals": [],
                "cycle_ms": None,
                "channel": "CAN1",
                "protocol": "CAN",
                "value_tables": {},
                "comments": {},
                "multiplexor": None,
            }
            messages[message_id] = current
            continue
        sg = _SG_RE.match(line)
        if sg:
            if current is None:
                raise DbcError(
                    "SG_ outside a BO_ block on line {}".format(line_number)
                )
            mux = sg.group(2)
            if mux == "M":
                current["multiplexor"] = sg.group(1)
            current["signals"].append(
                {
                    "name": sg.group(1),
                    "start_bit": int(sg.group(3)),
                    "bit_length": int(sg.group(4)),
                    "byte_order": INTEL if sg.group(5) == "1" else MOTOROLA,
                    "signed": sg.group(6) == "-",
                    "scale": float(sg.group(7)),
                    "offset": float(sg.group(8)),
                    "unit": sg.group(11),
                    "mux_value": (
                        int(mux[1:]) if mux and mux.startswith("m") else None
                    ),
                }
            )
            continue
        val = _VAL_RE.match(line)
        if val:
            message_id = int(val.group(1))
            if message_id not in messages:
                raise DbcError(
                    "VAL_ for unknown message {} on line {}".format(
                        message_id, line_number
                    )
                )
            entries = tuple(
                (int(raw), label)
                for raw, label in _VAL_ENTRY_RE.findall(val.group(3))
            )
            messages[message_id]["value_tables"][val.group(2)] = entries
            continue
        ba = _BA_RE.match(line)
        if ba:
            name, message_id, value = ba.group(1), int(ba.group(2)), ba.group(3)
            if message_id not in messages:
                raise DbcError(
                    "BA_ for unknown message {} on line {}".format(
                        message_id, line_number
                    )
                )
            if name == "GenMsgCycleTime":
                messages[message_id]["cycle_ms"] = int(value)
            elif name == "BusChannel":
                messages[message_id]["channel"] = value.strip('"')
            elif name == "BusProtocol":
                messages[message_id]["protocol"] = value.strip('"')
            continue
        cm = _CM_SG_RE.match(line)
        if cm:
            message_id = int(cm.group(1))
            if message_id in messages:
                messages[message_id]["comments"][cm.group(2)] = cm.group(3)
            continue
        # Unknown statements (CM_ BO_, BA_DEF_DEF_, SIG_VALTYPE_ ...) are
        # tolerated, as real-world DBC consumers must be.
    return NetworkDatabase(
        tuple(_build_message(m) for m in messages.values())
    )


def _build_message(spec):
    signals = []
    for s in spec["signals"]:
        value_table = spec["value_tables"].get(s["name"], ())
        comment = spec["comments"].get(s["name"], "")
        data_class, kind, clean_comment = _parse_markers(comment, value_table)
        encoding = SignalEncoding(
            start_bit=s["start_bit"],
            bit_length=s["bit_length"],
            byte_order=s["byte_order"],
            signed=s["signed"],
            scale=s["scale"],
            offset=s["offset"],
            value_table=value_table,
        )
        signals.append(
            SignalDefinition(
                name=s["name"],
                encoding=encoding,
                unit=s["unit"],
                kind=kind,
                data_class=data_class,
                comment=clean_comment,
                mux_value=s.get("mux_value"),
            )
        )
    return MessageDefinition(
        name=spec["name"],
        message_id=spec["message_id"],
        channel=spec["channel"],
        protocol=spec["protocol"],
        payload_length=spec["dlc"],
        signals=tuple(signals),
        cycle_time=(
            spec["cycle_ms"] / 1000.0 if spec["cycle_ms"] else None
        ),
        multiplexor=spec.get("multiplexor"),
    )


def _parse_markers(comment, value_table):
    """Extract [data_class] / [validity] markers from a signal comment."""
    kind = FUNCTIONAL
    data_class = None
    rest = comment
    for marker in re.findall(r"\[(\w+)\]", comment):
        if marker == "validity":
            kind = VALIDITY
        elif marker in _DATA_CLASSES:
            data_class = marker
        rest = rest.replace("[{}]".format(marker), "")
    if data_class is None:
        # Sensible default: tabled signals are categorical, others numeric.
        if value_table:
            data_class = BINARY if len(value_table) == 2 else NOMINAL
        else:
            data_class = NUMERIC
    return data_class, kind, rest.strip()
