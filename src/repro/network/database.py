"""DBC/FIBEX-style network database.

The paper assumes signals "are documented and known per domain"
(Sec. 3.1): every OEM maintains a communication database describing which
message carries which signal at which bytes with which scaling. This
module is that database. It validates message layouts, encodes and
decodes payloads for the simulator, and -- crucially for the framework --
derives the translation catalog ``U_rel`` consumed by the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import FUNCTIONAL, VALIDITY, Alphabet, MessageType, SignalType
from repro.core.rules import InterpretationRule, RuleCatalog, TranslationTuple
from repro.protocols import can, flexray, lin, someip
from repro.protocols.signalcodec import SignalEncoding, overlaps

#: Data-class hints used by the dataset generators and ground truth for
#: the classification stage (Table 3): what the signal's value stream is.
NUMERIC = "numeric"
ORDINAL = "ordinal"
NOMINAL = "nominal"
BINARY = "binary"

_PROTOCOL_MODULES = {
    "CAN": can,
    "LIN": lin,
    "SOMEIP": someip,
    "FLEXRAY": flexray,
}


class DatabaseError(ValueError):
    """Raised for inconsistent database definitions."""


@dataclass(frozen=True)
class SignalDefinition:
    """One documented signal within a message.

    ``section_bit`` marks SOME/IP presence-conditional signals; their
    encoding is relative to the optional section body.
    """

    name: str
    encoding: SignalEncoding
    unit: str = ""
    kind: str = FUNCTIONAL
    data_class: str = NUMERIC
    section_bit: int = None
    comment: str = ""
    #: CAN multiplexing: raw selector value under which this signal is
    #: present (None = always present). The message names its selector
    #: signal via ``MessageDefinition.multiplexor``.
    mux_value: int = None

    def __post_init__(self):
        if self.kind not in (FUNCTIONAL, VALIDITY):
            raise DatabaseError(
                "signal kind must be functional or validity"
            )
        if self.data_class not in (NUMERIC, ORDINAL, NOMINAL, BINARY):
            raise DatabaseError(
                "unknown data class {!r}".format(self.data_class)
            )

    def to_signal_type(self):
        return SignalType(self.name, self.unit, self.kind, self.comment)


@dataclass(frozen=True)
class MessageDefinition:
    """One documented message type on one channel."""

    name: str
    message_id: int
    channel: str
    protocol: str
    payload_length: int
    signals: tuple
    cycle_time: float = None  # seconds; None = event-driven
    layout: object = None  # someip.ConditionalLayout for conditional payloads
    multiplexor: str = None  # selector signal name for mux_value signals

    def __post_init__(self):
        if self.protocol not in _PROTOCOL_MODULES:
            raise DatabaseError(
                "unknown protocol {!r}; expected one of {}".format(
                    self.protocol, sorted(_PROTOCOL_MODULES)
                )
            )
        names = [s.name for s in self.signals]
        if len(set(names)) != len(names):
            raise DatabaseError(
                "duplicate signal names in message {!r}".format(self.name)
            )
        self._validate_geometry()

    def _validate_geometry(self):
        muxed = [s for s in self.signals if s.mux_value is not None]
        if muxed and self.multiplexor is None:
            raise DatabaseError(
                "message {!r} has multiplexed signals but names no "
                "multiplexor".format(self.name)
            )
        if self.multiplexor is not None:
            names = [s.name for s in self.signals]
            if self.multiplexor not in names:
                raise DatabaseError(
                    "multiplexor {!r} is not a signal of message "
                    "{!r}".format(self.multiplexor, self.name)
                )
            selector = self.signal(self.multiplexor)
            if selector.mux_value is not None:
                raise DatabaseError("the multiplexor cannot itself be muxed")
        fixed = [s for s in self.signals if s.section_bit is None]
        for s in fixed:
            if s.encoding.required_payload_length() > self.payload_length:
                raise DatabaseError(
                    "signal {!r} does not fit in {}-byte payload".format(
                        s.name, self.payload_length
                    )
                )
        for i, a in enumerate(fixed):
            for b in fixed[i + 1 :]:
                if a.mux_value is not None and b.mux_value is not None:
                    if a.mux_value != b.mux_value:
                        # Different selector values never coexist.
                        continue
                if overlaps(a.encoding, b.encoding):
                    raise DatabaseError(
                        "signals {!r} and {!r} overlap in message {!r}".format(
                            a.name, b.name, self.name
                        )
                    )
        sectioned = [s for s in self.signals if s.section_bit is not None]
        if sectioned and self.layout is None:
            raise DatabaseError(
                "message {!r} has sectioned signals but no layout".format(
                    self.name
                )
            )
        if self.layout is not None:
            known_bits = {sec.mask_bit for sec in self.layout.sections}
            for s in sectioned:
                if s.section_bit not in known_bits:
                    raise DatabaseError(
                        "signal {!r} references unknown section bit {}".format(
                            s.name, s.section_bit
                        )
                    )

    # -- introspection -----------------------------------------------------
    def signal(self, name):
        for s in self.signals:
            if s.name == name:
                return s
        raise KeyError(name)

    def signal_names(self):
        return tuple(s.name for s in self.signals)

    def to_message_type(self):
        return MessageType(self.signal_names(), self.message_id, self.channel)

    # -- payload encode/decode ------------------------------------------------
    def encode(self, values):
        """Encode a {signal name: physical value} dict into payload bytes.

        Signals missing from *values* -- or mapped to None -- are left
        at zero (fixed layout) or omitted (sectioned signals: their
        presence bit stays clear; multiplexed signals: treated as not
        part of this instance). A None value is how behaviours express
        "absent in this instance".
        """
        values = {k: v for k, v in values.items() if v is not None}
        if self.layout is None:
            payload = bytearray(self.payload_length)
            active_mux = None
            if self.multiplexor is not None and self.multiplexor in values:
                selector = self.signal(self.multiplexor)
                selector.encoding.encode(
                    payload, values[self.multiplexor], clamp=True
                )
                active_mux = selector.encoding.extract_raw(payload)
            for s in self.signals:
                if s.name not in values or s.name == self.multiplexor:
                    continue
                if s.mux_value is not None and s.mux_value != active_mux:
                    raise DatabaseError(
                        "signal {!r} requires selector value {}, but the "
                        "instance encodes {}".format(
                            s.name, s.mux_value, active_mux
                        )
                    )
                s.encoding.encode(payload, values[s.name], clamp=True)
            return bytes(payload)
        # Conditional layout: assemble per-section bodies first.
        sections = {}
        for section in self.layout.sections:
            members = [
                s for s in self.signals if s.section_bit == section.mask_bit
            ]
            present = [s for s in members if s.name in values]
            if not present:
                continue
            body = bytearray(section.length)
            for s in present:
                s.encoding.encode(body, values[s.name], clamp=True)
            sections[section.mask_bit] = bytes(body)
        payload = bytearray(self.layout.build_payload(sections))
        for s in self.signals:
            if s.section_bit is None and s.name in values:
                s.encoding.encode(payload, values[s.name], clamp=True)
        return bytes(payload)

    def decode(self, payload):
        """Decode payload bytes into {signal name: value}; absent -> None."""
        out = {}
        for s in self.signals:
            rule = self.interpretation_rule(s.name)
            out[s.name] = rule.interpret(payload)
        return out

    def interpretation_rule(self, signal_name):
        """Build the ``u_info`` rule for one of this message's signals."""
        s = self.signal(signal_name)
        mux_selector = None
        if s.mux_value is not None:
            mux_selector = self.signal(self.multiplexor).encoding
        return InterpretationRule(
            encoding=s.encoding,
            layout=self.layout if s.section_bit is not None else None,
            section_bit=s.section_bit,
            mux_selector=mux_selector,
            mux_value=s.mux_value,
        )


@dataclass(frozen=True)
class NetworkDatabase:
    """The full communication database of one vehicle."""

    messages: tuple = field(default_factory=tuple)

    def __post_init__(self):
        seen = set()
        for m in self.messages:
            key = (m.channel, m.message_id)
            if key in seen:
                raise DatabaseError(
                    "duplicate message id {} on channel {!r}".format(
                        m.message_id, m.channel
                    )
                )
            seen.add(key)

    def __len__(self):
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def message(self, channel, message_id):
        for m in self.messages:
            if m.channel == channel and m.message_id == message_id:
                return m
        raise KeyError((channel, message_id))

    def message_by_name(self, name):
        for m in self.messages:
            if m.name == name:
                return m
        raise KeyError(name)

    def channels(self):
        return tuple(sorted({m.channel for m in self.messages}))

    def alphabet(self):
        """The alphabet Σ of every signal type in the database.

        The same signal may appear in several messages (gateway-routed
        copies); it contributes one signal type.
        """
        seen = {}
        for m in self.messages:
            for s in m.signals:
                seen.setdefault(s.name, s.to_signal_type())
        return Alphabet(tuple(seen.values()))

    def signal_data_class(self, signal_id):
        """Documented data class of a signal (ground truth for Table 3)."""
        for m in self.messages:
            for s in m.signals:
                if s.name == signal_id:
                    return s.data_class
        raise KeyError(signal_id)

    def translation_catalog(self, signal_ids=None):
        """Derive ``U_rel`` -- one translation tuple per (signal, message).

        When *signal_ids* is given, only those signals are included
        (building ``U_comb`` directly).
        """
        wanted = set(signal_ids) if signal_ids is not None else None
        tuples = []
        for m in self.messages:
            for s in m.signals:
                if wanted is not None and s.name not in wanted:
                    continue
                tuples.append(
                    TranslationTuple(
                        signal_id=s.name,
                        channel_id=m.channel,
                        message_id=m.message_id,
                        rule=m.interpretation_rule(s.name),
                    )
                )
        if wanted is not None:
            missing = wanted - {t.signal_id for t in tuples}
            if missing:
                raise DatabaseError(
                    "signals not in database: {}".format(sorted(missing))
                )
        return RuleCatalog(tuple(tuples))

    def statistics(self):
        """Summary statistics in the spirit of the paper's Table 5."""
        signal_types = self.alphabet()
        per_message = [len(m.signals) for m in self.messages]
        return {
            "num_messages": len(self.messages),
            "num_signal_types": len(signal_types),
            "num_channels": len(self.channels()),
            "avg_signals_per_message": (
                sum(per_message) / len(per_message) if per_message else 0.0
            ),
        }
