"""In-vehicle network description layer (communication database)."""

from repro.network.database import (
    BINARY,
    NOMINAL,
    NUMERIC,
    ORDINAL,
    DatabaseError,
    MessageDefinition,
    NetworkDatabase,
    SignalDefinition,
)

__all__ = [
    "NetworkDatabase",
    "MessageDefinition",
    "SignalDefinition",
    "DatabaseError",
    "NUMERIC",
    "ORDINAL",
    "NOMINAL",
    "BINARY",
]
