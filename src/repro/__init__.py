"""Reproduction of "Automated Interpretation and Reduction of In-Vehicle
Network Traces at a Large Scale" (Mrowca et al., DAC 2018).

Subpackages
-----------
``repro.core``
    The paper's contribution: the parameterizable end-to-end
    preprocessing pipeline (Algorithm 1).
``repro.engine``
    Distributed-style tabular dataflow engine (Spark stand-in).
``repro.protocols`` / ``repro.network`` / ``repro.vehicle``
    The in-vehicle network substrate: protocol codecs, communication
    database and a deterministic vehicle simulator producing traces.
``repro.analysis``
    SWAB segmentation, SAX symbolization, outlier detection, smoothing
    and trend estimation.
``repro.mining``
    Downstream applications: association rules, transition graphs,
    anomaly detection and error diagnosis.
``repro.baseline``
    The sequential in-house tool used as comparison baseline.
``repro.datasets``
    Synthetic SYN / LIG / STA data sets mirroring Table 5.
``repro.tracefile``
    ASCII / binary trace log formats.
"""

__version__ = "1.0.0"
