"""Type-dependent processing branches α, β, γ (Sec. 4.2, lines 13-28).

All three branches homogenize a reduced signal sequence into the common
output layout ``R_COLUMNS = (t, s_id, b_id, kind, value, trend)``:

* α (fast numerics): outlier removal -> smoothing -> SWAB segmentation
  -> trend per segment + SAX symbol per segment, outliers merged back as
  potential errors;
* β (ordinals): split functional/validity parts, translate the
  functional part to numeric ranks, outlier detection, per-element trend
  from the gradient, outliers merged back;
* γ (binary/nominal): no transformation; functional/validity split only.

``kind`` is one of ``symbol`` (α/β output), ``outlier``, ``binary``,
``nominal`` or ``validity``; ``value`` is a level label (α/β), the
original label (γ) or the raw numeric value (outliers); ``trend`` is
increasing/decreasing/steady or None.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.outliers import ZScoreDetector
from repro.analysis.sax import SaxEncoder
from repro.analysis.segmentation import swab
from repro.analysis.smoothing import MovingAverage
from repro.analysis.trend import STEADY, TrendClassifier
from repro.core.classification import (
    ALPHA,
    BETA,
    BINARY,
    GAMMA,
    ClassifierConfig,
)

#: Homogeneous output layout of every branch.
R_COLUMNS = ("t", "s_id", "b_id", "kind", "value", "trend")

KIND_SYMBOL = "symbol"
KIND_OUTLIER = "outlier"
KIND_BINARY = "binary"
KIND_NOMINAL = "nominal"
KIND_VALIDITY = "validity"
KIND_EXTENSION = "extension"

#: Semantic level labels per SAX alphabet size (Table 4 prints "high",
#: not a raw SAX letter). Sizes without labels fall back to letters.
LEVEL_LABELS = {
    2: ("low", "high"),
    3: ("low", "medium", "high"),
    4: ("low", "medium_low", "medium_high", "high"),
    5: ("very_low", "low", "medium", "high", "very_high"),
}


class BranchError(ValueError):
    """Raised for invalid branch configuration."""


@dataclass(frozen=True)
class BranchConfig:
    """Tuning knobs of the three branches.

    ``swab_error_fraction`` scales the SWAB error bound relative to the
    sequence variance (so one setting works across physical units);
    ``trend_fraction`` scales the steady-slope threshold relative to the
    sequence's value spread per sample.
    """

    outlier_detector: object = field(default_factory=ZScoreDetector)
    smoother: object = field(default_factory=lambda: MovingAverage(window=5))
    sax: SaxEncoder = field(default_factory=lambda: SaxEncoder(alphabet_size=3))
    swab_error_fraction: float = 0.05
    swab_buffer: int = 40
    trend_fraction: float = 0.02
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    def level_label(self, symbol_index):
        labels = LEVEL_LABELS.get(self.sax.alphabet_size)
        if labels is None:
            return "abcdefghijklmnopqrstuvwxyz"[symbol_index]
        return labels[symbol_index]


def process_alpha(rows, schema, config=None):
    """Branch α: lines 14-19 of Algorithm 1."""
    config = config or BranchConfig()
    t_i, v_i, s_i, b_i = _indices(schema)
    if not rows:
        return []
    # typeSplit: peel off non-numeric elements (e.g. embedded validity
    # strings) as nominal side output.
    numeric_rows = [r for r in rows if _is_number(r[v_i])]
    nominal_rows = [r for r in rows if not _is_number(r[v_i])]
    out = [
        (r[t_i], r[s_i], r[b_i], KIND_VALIDITY
         if str(r[v_i]) in config.classifier.validity_values
         else KIND_NOMINAL, str(r[v_i]), None)
        for r in nominal_rows
    ]
    if not numeric_rows:
        return sorted(out)
    values = np.array([float(r[v_i]) for r in numeric_rows])
    mask = config.outlier_detector.mask(values)
    outlier_rows = [r for r, m in zip(numeric_rows, mask) if m]
    clean_rows = [r for r, m in zip(numeric_rows, mask) if not m]
    out.extend(
        (r[t_i], r[s_i], r[b_i], KIND_OUTLIER, float(r[v_i]), None)
        for r in outlier_rows
    )
    if not clean_rows:
        return sorted(out, key=_row_key)
    clean_values = np.array([float(r[v_i]) for r in clean_rows])
    smoothed = config.smoother.smooth(clean_values)
    mean, std = float(smoothed.mean()), float(smoothed.std())
    variance = float(smoothed.var())
    max_error = config.swab_error_fraction * max(variance, 1e-12) * config.swab_buffer
    segments = swab(smoothed, max_error, buffer_size=config.swab_buffer)
    trend = TrendClassifier(
        steady_threshold=config.trend_fraction * max(std, 1e-12)
    )
    for seg in segments:
        first = clean_rows[seg.start]
        level = float(smoothed[seg.start : seg.end + 1].mean())
        symbol = config.sax.symbol_for_level(level, mean, std)
        label = config.level_label("abcdefghijklmnopqrstuvwxyz".index(symbol))
        out.append(
            (
                first[t_i],
                first[s_i],
                first[b_i],
                KIND_SYMBOL,
                label,
                trend.classify_slope(seg.slope),
            )
        )
    out.sort(key=_row_key)
    return out


def process_beta(rows, schema, config=None):
    """Branch β: lines 20-25 of Algorithm 1."""
    config = config or BranchConfig()
    t_i, v_i, s_i, b_i = _indices(schema)
    if not rows:
        return []
    validity = config.classifier.validity_values
    # functionSplit on z_aff.
    functional = [r for r in rows if r[v_i] not in validity]
    validity_rows = [r for r in rows if r[v_i] in validity]
    out = [
        (r[t_i], r[s_i], r[b_i], KIND_VALIDITY, str(r[v_i]), None)
        for r in validity_rows
    ]
    if not functional:
        return sorted(out, key=_row_key)
    ranks, labels = _numeric_translation(
        [r[v_i] for r in functional], config
    )
    values = np.asarray(ranks, dtype=float)
    mask = config.outlier_detector.mask(values)
    outlier_rows = [r for r, m in zip(functional, mask) if m]
    clean = [(r, rank, label) for (r, rank, label), m in zip(
        zip(functional, ranks, labels), mask
    ) if not m]
    out.extend(
        (r[t_i], r[s_i], r[b_i], KIND_OUTLIER, r[v_i], None)
        for r in outlier_rows
    )
    if clean:
        clean_ranks = [rank for _r, rank, _label in clean]
        trend = TrendClassifier(steady_threshold=config.trend_fraction)
        trends = trend.classify_gradient(clean_ranks)
        for (row, _rank, label), trend_label in zip(clean, trends):
            out.append(
                (row[t_i], row[s_i], row[b_i], KIND_SYMBOL, label, trend_label)
            )
    out.sort(key=_row_key)
    return out


def process_gamma(rows, schema, data_type, config=None):
    """Branch γ: lines 26-28 -- no transformation, F/V split only."""
    config = config or BranchConfig()
    t_i, v_i, s_i, b_i = _indices(schema)
    validity = config.classifier.validity_values
    kind = KIND_BINARY if data_type == BINARY else KIND_NOMINAL
    out = []
    for r in rows:
        if r[v_i] in validity:
            out.append((r[t_i], r[s_i], r[b_i], KIND_VALIDITY, str(r[v_i]), None))
        else:
            out.append((r[t_i], r[s_i], r[b_i], kind, str(r[v_i]), None))
    out.sort(key=_row_key)
    return out


def process_branch(rows, schema, classification, config=None):
    """Dispatch one classified sequence to its branch (line 13)."""
    if classification.branch == ALPHA:
        return process_alpha(rows, schema, config)
    if classification.branch == BETA:
        return process_beta(rows, schema, config)
    if classification.branch == GAMMA:
        return process_gamma(rows, schema, classification.data_type, config)
    raise BranchError("unknown branch {!r}".format(classification.branch))


def _numeric_translation(values, config):
    """Translate ordinal values to ranks; return (ranks, display labels).

    String labels are ranked by a matching configured vocabulary (so
    low < medium < high) or, failing that, by sorted order; numeric
    values rank as themselves.
    """
    if all(_is_number(v) for v in values):
        return [float(v) for v in values], [str(v) for v in values]
    labels = [str(v) for v in values]
    distinct = set(labels)
    order = None
    for vocabulary in config.classifier.ordinal_vocabularies:
        if distinct <= set(vocabulary):
            order = {label: i for i, label in enumerate(vocabulary)}
            break
    if order is None:
        order = {label: i for i, label in enumerate(sorted(distinct))}
    return [float(order[label]) for label in labels], labels


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _indices(schema):
    return (
        schema.index_of("t"),
        schema.index_of("v"),
        schema.index_of("s_id"),
        schema.index_of("b_id"),
    )


def _row_key(row):
    return (row[0], str(row[1]), str(row[3]))


_ = (GAMMA, STEADY)  # names used in docs/tests
