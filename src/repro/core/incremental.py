"""Incremental (windowed) trace processing.

The fleets of Fig. 1 deliver traces continuously ("500 cars produce
1.5 TB per day"); a daily batch cannot hold a vehicle's full history in
memory. :class:`IncrementalRunner` applies the front of Algorithm 1
(preselection, interpretation, per-signal reduction -- lines 3-11) to
consecutive time windows of a trace, carrying the last raw element per
(signal, channel) across window boundaries so reduction decisions are
*identical* to a whole-trace run. The type-dependent processing (lines
13-28) runs once at ``finalize`` over the accumulated reduced sequences,
because classification criteria (Eq. 2) are sequence-level statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.branches import R_COLUMNS, process_branch
from repro.core.classification import classify
from repro.core.extension import apply_extensions
from repro.core.interpretation import interpret
from repro.core.model import K_S_COLUMNS
from repro.core.preselection import preselect
from repro.core.reduction import value_order_key
from repro.core.representation import merge_results
from repro.core.rules import TRUNCATED


class IncrementalError(ValueError):
    """Raised for out-of-order windows or misuse."""


#: Schema tag of :meth:`IncrementalRunner.export_state` payloads.
STATE_FORMAT = "repro.incremental-state/1"


@dataclass
class _SignalState:
    """Accumulated per-(signal, channel) reduction state.

    The only cross-window reduction state is :attr:`carries` -- the
    per-marker-function carry protocol (PR 4) replaced the earlier
    whole-element ``last_raw`` field, which by then was written every
    window but never read; it is gone so checkpoint/restore cannot
    resurrect stale raw elements.
    """

    reduced_rows: list = field(default_factory=list)
    #: Per-marker-function carry, keyed by position in the signal's
    #: function tuple -- each marker defines its own carry semantics
    #: (see :meth:`MarkerFunction.carry_after`).
    carries: dict = field(default_factory=dict)


@dataclass
class IncrementalRunner:
    """Windowed execution of a pipeline parameterization.

    Feed windows in time order with :meth:`process_window`; call
    :meth:`finalize` once at the end. Gateway-channel deduplication is
    not applied (copies may drift across window boundaries); restrict
    the catalog to representative channels instead, as the evaluation
    does ("one channel per signal type is analyzed").
    """

    config: object  # PipelineConfig
    _states: dict = field(default_factory=dict)
    _last_window_end: float = None
    _finalized: bool = False
    #: Truncated-payload rows dropped so far (short_payload="skip").
    short_payload_skipped: int = 0
    #: TRUNCATED marker rows retained so far (short_payload="keep").
    short_payload_kept: int = 0
    #: Exact K_s duplicates dropped so far (drop_exact_duplicates).
    exact_duplicates_dropped: int = 0

    def process_window(self, k_b_window):
        """Run lines 3-11 on one window's K_b table; returns row count.

        Windows must arrive in time order (their minimum timestamp must
        not precede the previous window's maximum). Timestamps *inside*
        a window may be unordered (clock-skewed recorders step
        backwards); rows are sorted here before reduction, so window
        runs match the whole-trace pipeline, which sorts per signal.
        """
        if self._finalized:
            raise IncrementalError("runner already finalized")
        mode = getattr(self.config, "short_payload", "raise")
        if mode not in ("raise", "skip", "keep"):
            raise IncrementalError(
                "short_payload must be 'raise', 'skip' or 'keep', "
                "got {!r}".format(mode)
            )
        # Interpret tolerantly for both lossy modes so truncated rows
        # can be counted; "skip" then drops the markers, "keep" lets
        # them flow into reduction exactly as the whole-trace pipeline
        # does (they classify as nominal TRUNCATED evidence downstream).
        on_short = "raise" if mode == "raise" else "keep"
        k_pre = preselect(k_b_window, self.config.catalog)
        k_s = interpret(k_pre, self.config.catalog, on_short=on_short)
        collected = k_s.collect()
        if mode == "skip":
            kept = [r for r in collected if r[1] is not TRUNCATED]
            self.short_payload_skipped += len(collected) - len(kept)
            collected = kept
        elif mode == "keep":
            self.short_payload_kept += sum(
                1 for r in collected if r[1] is TRUNCATED
            )
        if getattr(self.config, "drop_exact_duplicates", True):
            # Exact duplicates share their timestamp, so window
            # assignment puts every copy of a row into the same window:
            # per-window dedup equals the whole-trace distinct().
            seen = set()
            unique = []
            for row in collected:
                if row in seen:
                    continue
                seen.add(row)
                unique.append(row)
            self.exact_duplicates_dropped += len(collected) - len(unique)
            collected = unique
        # Sort on (t, s_id, b_id, value-order): comparing whole rows
        # would reach the value column, whose type varies across
        # signals; value_order_key breaks same-timestamp ties exactly
        # as the whole-trace reduction's canonical order does.
        rows = sorted(
            collected,
            key=lambda r: (
                r[0], str(r[2]), str(r[3]), value_order_key(r[1])
            ),
        )
        if rows:
            window_start = rows[0][0]
            window_end = rows[-1][0]
            if (
                self._last_window_end is not None
                and window_start < self._last_window_end
            ):
                raise IncrementalError(
                    "window starting at {} precedes previous end {}".format(
                        window_start, self._last_window_end
                    )
                )
            self._last_window_end = window_end
        processed = 0
        by_key = {}
        for t, v, s_id, b_id in rows:
            by_key.setdefault((s_id, b_id), []).append((t, v, s_id, b_id))
        for key, sequence in sorted(by_key.items()):
            state = self._states.setdefault(key, _SignalState())
            kept = self._reduce_chunk(key[0], sequence, state)
            state.reduced_rows.extend(kept)
            processed += len(sequence)
        return processed

    def _reduce_chunk(self, signal_id, sequence, state):
        constraints = self.config.constraints.for_signal(signal_id)
        functions = tuple(f for c in constraints for f in c.functions)
        if not functions:
            return list(sequence)
        times = [row[0] for row in sequence]
        values = [row[1] for row in sequence]
        redundant = [False] * len(sequence)
        for index, func in enumerate(functions):
            prev = state.carries.get(index)
            for i, flag in enumerate(func.flags(times, values, prev)):
                if flag:
                    redundant[i] = True
            state.carries[index] = func.carry_after(times, values, prev)
        return [row for row, e in zip(sequence, redundant) if not e]

    def finalize(self, context):
        """Run classification, branches, extensions and the merge."""
        if self._finalized:
            raise IncrementalError("runner already finalized")
        self._finalized = True
        schema_names = list(K_S_COLUMNS)
        branch_tables = []
        extension_tables = []
        outcomes = {}
        for (s_id, b_id), state in sorted(self._states.items()):
            rows = state.reduced_rows
            if not rows:
                continue
            table = context.table_from_rows(schema_names, rows)
            times = [r[0] for r in rows]
            values = [r[1] for r in rows]
            classification = classify(
                times, values, self.config.branch_config.classifier
            )
            result_rows = process_branch(
                rows, table.schema, classification, self.config.branch_config
            )
            branch_tables.append(
                context.table_from_rows(list(R_COLUMNS), result_rows)
            )
            ext_rules = self.config.extensions.for_signal(s_id)
            if ext_rules:
                extension_tables.append(apply_extensions(table, ext_rules))
            outcomes[(s_id, b_id)] = classification
        r_out = merge_results(context, branch_tables, extension_tables)
        return IncrementalResult(r_out=r_out.cache(), classifications=outcomes)

    def reduced_rows(self, signal_id, channel_id):
        """Accumulated reduced rows of one (signal, channel)."""
        state = self._states.get((signal_id, channel_id))
        return list(state.reduced_rows) if state else []

    # -- checkpoint/restore hooks (streaming ingest) ---------------------
    def export_state(self):
        """Picklable snapshot of all cross-window progress.

        The payload captures everything :meth:`process_window` mutates
        -- accumulated reduced rows, per-marker carries, the in-order
        watermark and the lossy-trace counters -- so a fresh runner
        restored from it and fed the *remaining* windows produces
        byte-identical :meth:`finalize` output to an uninterrupted run.
        The config is deliberately not part of the payload (it lives in
        the stream/fleet catalog); the caller reattaches it on restore.
        """
        return {
            "format": STATE_FORMAT,
            "last_window_end": self._last_window_end,
            "finalized": self._finalized,
            "short_payload_skipped": self.short_payload_skipped,
            "short_payload_kept": self.short_payload_kept,
            "exact_duplicates_dropped": self.exact_duplicates_dropped,
            "states": {
                key: {
                    "reduced_rows": list(state.reduced_rows),
                    "carries": dict(state.carries),
                }
                for key, state in self._states.items()
            },
        }

    @classmethod
    def from_state(cls, config, payload):
        """Rebuild a runner from an :meth:`export_state` payload."""
        if not isinstance(payload, dict) or payload.get("format") != \
                STATE_FORMAT:
            raise IncrementalError(
                "not an incremental-state payload (format {!r})".format(
                    payload.get("format") if isinstance(payload, dict)
                    else type(payload).__name__
                )
            )
        runner = cls(config)
        runner._last_window_end = payload["last_window_end"]
        runner._finalized = payload["finalized"]
        runner.short_payload_skipped = payload["short_payload_skipped"]
        runner.short_payload_kept = payload.get("short_payload_kept", 0)
        runner.exact_duplicates_dropped = payload["exact_duplicates_dropped"]
        for key, entry in payload["states"].items():
            runner._states[key] = _SignalState(
                reduced_rows=list(entry["reduced_rows"]),
                carries=dict(entry["carries"]),
            )
        return runner


@dataclass
class IncrementalResult:
    """Finalized output of an incremental run."""

    r_out: object
    classifications: dict  # (s_id, b_id) -> Classification

    def state_representation(self, signal_order=None):
        from repro.core.representation import build_state_representation

        return build_state_representation(self.r_out, signal_order)


def split_into_windows(records, window_seconds):
    """Partition byte records into time-ordered window-sized chunks.

    Records need not arrive time-ordered (lossy recorders step
    backwards): they are stable-sorted by timestamp first, so window
    membership is a pure function of each record's timestamp and
    :meth:`IncrementalRunner.process_window`'s in-order-windows check
    holds for the produced sequence.
    """
    if window_seconds <= 0:
        raise IncrementalError("window_seconds must be positive")
    windows = []
    current = []
    boundary = None
    for record in sorted(records, key=lambda r: (r[0],)):
        t = record[0]
        if boundary is None:
            boundary = t + window_seconds
        if t >= boundary:
            windows.append(current)
            current = []
            while t >= boundary:
                boundary += window_seconds
        current.append(record)
    if current:
        windows.append(current)
    return windows
