"""Common representation and the state representation (Sec. 4.3).

The branch outputs ``K_α, K_β, K_γ`` and the extension tables ``W`` are
merged into one sequence ``K_rep`` of unified shape (``R_COLUMNS``). From
it, the *state representation* of Table 4 is formed: one column per
signal type, one row per timestamp at which any signal changed, missing
cells forward-filled with the signal's last value -- "each row resembles
the state of all signal instances at a time". It is built from
concatenation, sort and lag (forward-fill) operations, all scalable
database operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.branches import (
    KIND_EXTENSION,
    KIND_OUTLIER,
    KIND_SYMBOL,
    R_COLUMNS,
)
from repro.engine.window import ForwardFill


class RepresentationError(ValueError):
    """Raised for malformed representation inputs."""


def merge_results(context, branch_tables, extension_tables=()):
    """Line 29: ``R_out = ∪ K_res ∪ W`` as one engine table.

    *branch_tables* are tables with ``R_COLUMNS``; *extension_tables*
    have the W layout ``(t, v, w_id, s_id, b_id)`` and are reshaped to
    ``R_COLUMNS`` with ``kind='extension'`` and the ``w_id`` as the
    signal type.
    """
    tables = []
    for table in branch_tables:
        if tuple(table.schema.names) != R_COLUMNS:
            raise RepresentationError(
                "branch table has columns {}, expected {}".format(
                    list(table.schema.names), list(R_COLUMNS)
                )
            )
        tables.append(table)
    for w_table in extension_tables:
        tables.append(
            w_table.flat_map(_reshape_extension_row, list(R_COLUMNS))
        )
    if not tables:
        return context.empty_table(list(R_COLUMNS)).sort(["t", "s_id"])
    # Balanced union tree: hundreds of per-signal tables would otherwise
    # form a linear chain deep enough to exhaust recursive plan walks.
    while len(tables) > 1:
        paired = []
        for i in range(0, len(tables) - 1, 2):
            paired.append(tables[i].union(tables[i + 1]))
        if len(tables) % 2:
            paired.append(tables[-1])
        tables = paired
    return tables[0].sort(["t", "s_id"])


def _reshape_extension_row(row):
    t, v, w_id, _s_id, b_id = row
    return [(t, w_id, b_id, KIND_EXTENSION, v, None)]


def format_cell(kind, value, trend):
    """Render one homogeneous element the way Table 4 prints it."""
    if kind == KIND_OUTLIER:
        return "outlier v = {}".format(value)
    if kind == KIND_SYMBOL and trend is not None:
        return "({},{})".format(value, trend)
    return str(value)


@dataclass
class StateRepresentation:
    """The pivoted state table of Table 4.

    ``columns`` are the signal types (and extension ids); ``rows`` are
    ``(t, cell_0, ..., cell_k)`` tuples with every cell forward-filled.
    """

    columns: tuple
    rows: list

    def __len__(self):
        return len(self.rows)

    def signal_column(self, signal_id):
        """All (t, cell) pairs of one signal column."""
        index = self.columns.index(signal_id) + 1
        return [(row[0], row[index]) for row in self.rows]

    def state_at(self, t):
        """The state dict at the latest row with timestamp <= t."""
        chosen = None
        for row in self.rows:
            if row[0] <= t:
                chosen = row
            else:
                break
        if chosen is None:
            raise RepresentationError("no state at or before t={}".format(t))
        return dict(zip(("t",) + self.columns, chosen))

    def iter_states(self):
        """Iterate state dicts row by row."""
        header = ("t",) + self.columns
        for row in self.rows:
            yield dict(zip(header, row))

    def to_markdown(self, max_rows=None):
        """Markdown table in the style of Table 4."""
        header = ("t",) + self.columns
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _unused in header) + "|",
        ]
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        for row in rows:
            cells = [str(row[0])] + [
                "" if c is None else str(c) for c in row[1:]
            ]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def transitions(self, signal_id):
        """Consecutive (from, to) value pairs of one column (for mining)."""
        cells = [c for _t, c in self.signal_column(signal_id)]
        return [
            (a, b) for a, b in zip(cells, cells[1:]) if a is not None
        ]


def build_state_representation(r_out, signal_order=None, round_time=9):
    """Pivot ``R_out`` into a :class:`StateRepresentation`.

    The pivot runs on the engine: rows are expanded to sparse wide rows,
    sorted by time, coalesced per timestamp and forward-filled with a
    windowed partition map (a lag operation).
    """
    rows = r_out.collect()
    schema = r_out.schema
    t_i = schema.index_of("t")
    s_i = schema.index_of("s_id")
    k_i = schema.index_of("kind")
    v_i = schema.index_of("value")
    tr_i = schema.index_of("trend")
    if signal_order is None:
        signal_order = tuple(sorted({str(r[s_i]) for r in rows}))
    else:
        signal_order = tuple(signal_order)
    col_index = {s: i for i, s in enumerate(signal_order)}
    sparse = {}
    # The cell for (t, s_id) is last-write-wins; iterate in a total
    # order so the pivot is a pure function of the row multiset, not of
    # the collect order (which shuffles may permute).
    rows = sorted(
        rows,
        key=lambda r: (
            r[t_i], str(r[s_i]), str(r[k_i]), repr(r[v_i]), repr(r[tr_i])
        ),
    )
    for r in rows:
        s_id = str(r[s_i])
        if s_id not in col_index:
            continue
        t = round(r[t_i], round_time)
        cell = format_cell(r[k_i], r[v_i], r[tr_i])
        wide = sparse.setdefault(t, [None] * len(signal_order))
        wide[col_index[s_id]] = cell
    context = r_out.context
    wide_rows = [
        (t,) + tuple(cells) for t, cells in sorted(sparse.items())
    ]
    if not wide_rows:
        return StateRepresentation(signal_order, [])
    table = context.table_from_rows(
        ["t"] + ["c{}".format(i) for i in range(len(signal_order))],
        wide_rows,
    ).repartition(1)
    fill = ForwardFill(tuple(range(1, len(signal_order) + 1)))
    filled = table.sorted_map_partitions(fill, carry_rows=0)
    return StateRepresentation(signal_order, filled.sort(["t"]).collect())
