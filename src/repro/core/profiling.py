"""Per-signal trace profiling.

Before parameterizing the framework, domain experts inspect what a trace
contains: which signals occur, how often, with what value ranges, gaps
and change behaviour. The paper's heterogeneity challenge ("over 10 000
signal types are verified ... this requires per-signal analyses")
motivates exactly this profiling step; its output also suggests the
reduction constraints (observed cycle time) and classification
expectations (rate, distinct values) for a signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import ClassifierConfig, classify
from repro.core.splitting import split_signal_types
from repro.obs import median, percentile


@dataclass(frozen=True)
class SignalProfile:
    """Summary of one signal type's instances in a trace."""

    signal_id: str
    count: int
    channels: tuple
    first_seen: float
    last_seen: float
    distinct_values: int
    numeric: bool
    value_min: object
    value_max: object
    median_gap: float
    p95_gap: float
    change_ratio: float  # fraction of instances that changed the value
    data_type: str
    branch: str

    @property
    def duration(self):
        return self.last_seen - self.first_seen

    @property
    def rate(self):
        """Average instances per second over the observed span."""
        if self.duration <= 0:
            return 0.0
        return (self.count - 1) / self.duration

    def suggested_cycle_time(self):
        """The observed median gap, rounded -- a starting point for
        ``UnchangedWithinCycle`` constraints."""
        return round(self.median_gap, 6)


def profile_signal(rows, signal_id, config=None):
    """Profile one signal's time-ordered (t, v, s_id, b_id) rows."""
    if not rows:
        raise ValueError("cannot profile an empty sequence")
    rows = sorted(rows, key=lambda r: r[0])
    times = [r[0] for r in rows]
    values = [r[1] for r in rows]
    channels = tuple(sorted({str(r[3]) for r in rows}))
    gaps = sorted(b - a for a, b in zip(times, times[1:]))
    numeric = all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values
    )
    changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
    classification = classify(times, values, config or ClassifierConfig())
    return SignalProfile(
        signal_id=signal_id,
        count=len(rows),
        channels=channels,
        first_seen=times[0],
        last_seen=times[-1],
        distinct_values=len(set(map(str, values))),
        numeric=numeric,
        value_min=min(values) if numeric else None,
        value_max=max(values) if numeric else None,
        median_gap=median(gaps) if gaps else 0.0,
        p95_gap=percentile(gaps, 95) if gaps else 0.0,
        change_ratio=changes / (len(rows) - 1) if len(rows) > 1 else 0.0,
        data_type=classification.data_type,
        branch=classification.branch,
    )


def profile_trace(k_s, signal_ids=None, config=None):
    """Profile every signal type of a K_s table.

    Returns {s_id: SignalProfile}, skipping signals without instances.
    """
    per_signal = split_signal_types(k_s, signal_ids)
    out = {}
    for s_id, table in per_signal.items():
        rows = table.collect()
        if rows:
            out[s_id] = profile_signal(rows, s_id, config)
    return out


def profile_report(profiles, sort_by="count"):
    """Plain-text report table over a profile dict."""
    key_funcs = {
        "count": lambda p: -p.count,
        "rate": lambda p: -p.rate,
        "signal": lambda p: p.signal_id,
    }
    if sort_by not in key_funcs:
        raise ValueError("sort_by must be one of {}".format(sorted(key_funcs)))
    ordered = sorted(profiles.values(), key=key_funcs[sort_by])
    header = (
        "signal", "count", "rate/s", "distinct", "median gap",
        "change%", "type", "branch", "channels",
    )
    rows = [
        (
            p.signal_id,
            p.count,
            round(p.rate, 2),
            p.distinct_values,
            round(p.median_gap, 4),
            round(100 * p.change_ratio, 1),
            p.data_type,
            p.branch,
            ",".join(p.channels),
        )
        for p in ordered
    ]
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
