"""Structuring and preselection (paper Sec. 3.1, Algorithm 1 lines 2-3).

"To perform less interpretations, reductions need to be performed
directly on K_b": the raw trace is filtered to the (m_id, b_id) pairs
referenced by the domain's parameter set ``U_comb`` *before* any
byte-to-signal mapping happens, so interpretation cost is paid only for
relevant message types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rules import RuleCatalog
from repro.engine.expressions import apply


@dataclass(frozen=True)
class _KeyMember:
    """Picklable predicate: (m_id, b_id) of a row is in the key set."""

    keys: frozenset

    def __call__(self, m_id, b_id):
        return (m_id, b_id) in self.keys


def preselect(k_b, catalog):
    """Filter the raw trace to messages carrying ``U_comb`` signals.

    Parameters
    ----------
    k_b:
        Engine table with the K_b layout ``(t, l, b_id, m_id, m_info)``.
    catalog:
        The domain's :class:`~repro.core.rules.RuleCatalog` (``U_comb``).

    Returns
    -------
    Table
        ``K_pre``: the subsequence of ``k_b`` whose rows have
        ``(m_id, b_id)`` in the catalog's preselection keys.
    """
    if not isinstance(catalog, RuleCatalog):
        raise TypeError("catalog must be a RuleCatalog")
    keys = catalog.preselection_keys()
    return k_b.filter(apply(_KeyMember(keys), "m_id", "b_id"))


def preselect_file(context, path, catalog, num_partitions=None):
    """Preselect straight from a columnar trace file, payload-blind.

    The record-major path (:func:`preselect` over a loaded table) must
    decode every payload before the filter can drop a row. This path
    scans only the mmap'ed ``(m_id, b_id)`` column views of a
    :mod:`~repro.tracefile.colbin` trace, then materializes (payload
    and ``m_info`` decode included) just the surviving records.

    Returns ``K_pre`` as an engine table with the K_b layout.
    """
    from repro.protocols.frames import BYTE_RECORD_COLUMNS
    from repro.tracefile.colbin import ColumnarTraceReader

    if not isinstance(catalog, RuleCatalog):
        raise TypeError("catalog must be a RuleCatalog")
    keys = catalog.preselection_keys()
    reader = ColumnarTraceReader(path)
    # Per-channel admissible m_id sets turn the scan's membership test
    # into two array reads and one set probe per record.
    allowed = [
        frozenset(m_id for m_id, b_id in keys if b_id == channel)
        for channel in reader.channels
    ]
    m_ids = reader.message_ids()
    surviving = [
        index
        for index, (m_id, channel) in enumerate(
            zip(m_ids, reader.channel_indices())
        )
        if m_id in allowed[channel]
    ]
    return context.table_from_rows(
        list(BYTE_RECORD_COLUMNS),
        reader.select(surviving),
        num_partitions=num_partitions,
    )


def preselection_ratio(k_b, k_pre):
    """Fraction of trace rows surviving preselection (diagnostics)."""
    total = k_b.count()
    if total == 0:
        return 0.0
    return k_pre.count() / total
