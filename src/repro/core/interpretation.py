"""Information interpretation (paper Sec. 3.2, Algorithm 1 lines 4-6).

The byte-to-signal mapping is made row-wise distributable by joining the
preselected trace ``K_pre`` with the translation tuples ``U_comb`` on
``(m_id, b_id)`` (line 4), then applying

* ``u_1 : (l, u_info) -> l_rel`` -- relevant-byte extraction (line 5) and
* ``u_2 : (l_rel, m_info, u_info) -> (t, (v, s_id))`` -- evaluation
  (line 6)

per row. The result is the signal-instance sequence ``K_s`` with columns
``(t, v, s_id, b_id)``. Rows whose signal is absent in the instance
(presence-conditional SOME/IP sections) are dropped.

Truncated payloads (shorter than a rule's relevant bytes) surface as
:class:`~repro.protocols.signalcodec.ShortPayloadError` by default.
``on_short`` selects the lossy-trace alternative: ``"skip"`` drops the
affected rows, ``"keep"`` retains them with ``v`` set to the
:data:`~repro.core.rules.TRUNCATED` sentinel so callers can count them
before dropping. All three modes behave identically across the join and
fused strategies and across the interpreted, compiled and columnar
execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import K_S_COLUMNS  # noqa: F401 (used by both paths)
from repro.core.rules import ABSENT, TRUNCATED, U_REL_COLUMNS
from repro.engine.expressions import apply, col
from repro.protocols.signalcodec import ShortPayloadError

_ON_SHORT_MODES = ("raise", "skip", "keep")


def _check_on_short(on_short):
    if on_short not in _ON_SHORT_MODES:
        raise ValueError(
            "on_short must be one of {}, got {!r}".format(
                "/".join(_ON_SHORT_MODES), on_short
            )
        )


@dataclass(frozen=True)
class _U1:
    """``u_1``: extract the relevant payload bytes per row.

    ``batch_call`` is the columnar batch form the engine's columnar
    kernels invoke once per partition: element-for-element identical to
    calling the row form, but the per-rule setup (byte spans, mux
    geometry) is compiled once per distinct rule instead of re-derived
    per row. Rules repeat massively (one per catalog entry across
    thousands of trace rows), so the cache is tiny and hot.

    With ``on_short`` other than ``"raise"``, truncated payloads map to
    the :data:`TRUNCATED` sentinel instead of raising; downstream
    filters decide whether the marker rows are counted or dropped.
    """

    on_short: str = "raise"

    def __call__(self, payload, rule):
        if self.on_short == "raise":
            return rule.extract_relevant(payload)
        try:
            return rule.extract_relevant(payload)
        except ShortPayloadError:
            return TRUNCATED

    def batch_call(self, payloads, rules):
        tolerant = self.on_short != "raise"
        compiled = {}
        out = []
        append = out.append
        for payload, rule in zip(payloads, rules):
            extract = compiled.get(id(rule))
            if extract is None:
                extract = rule.compile_extractor()
                compiled[id(rule)] = extract
            if tolerant:
                try:
                    append(extract(payload))
                except ShortPayloadError:
                    append(TRUNCATED)
            else:
                append(extract(payload))
        return out


@dataclass(frozen=True)
class _U2:
    """``u_2``: evaluate relevant bytes to the physical signal value.

    ``m_info`` is accepted for protocol-specific evaluation; the bundled
    rules are self-contained, but data-dependent rules (e.g. scaling
    switched by a header field) can inspect it. ``batch_call`` mirrors
    :meth:`_U1.batch_call` with per-rule compiled evaluators.
    """

    def __call__(self, l_rel, m_info, rule):
        if l_rel is TRUNCATED:
            return TRUNCATED
        return rule.evaluate(l_rel, m_info)

    def batch_call(self, l_rels, m_infos, rules):
        compiled = {}
        out = []
        append = out.append
        for l_rel, m_info, rule in zip(l_rels, m_infos, rules):
            if l_rel is TRUNCATED:
                append(TRUNCATED)
                continue
            evaluate = compiled.get(id(rule))
            if evaluate is None:
                evaluate = rule.compile_evaluator()
                compiled[id(rule)] = evaluate
            append(evaluate(l_rel, m_info))
        return out


def join_rules(k_pre, catalog_table):
    """Line 4: ``K_join = K_pre ⋈ U_comb`` on (b_id, m_id).

    *catalog_table* must have the ``U_REL_COLUMNS`` layout (built by
    :meth:`RuleCatalog.to_table`). Every trace row is replicated once per
    signal to extract from it.

    Physically this is a broadcast join (the catalog always fits in
    memory), and under the columnar exchange it runs as a columnar
    broadcast join: the (b_id, m_id) keys hash straight off the trace's
    key columns and matching rows are index-gathered, never transposed
    to row tuples. The executor falls back to the row join per task
    when a key column holds non-scalar objects or NaN floats (NaN keys
    would depend on object identity in the row path's dict probe).
    """
    missing = [c for c in ("b_id", "m_id") if c not in catalog_table.schema]
    if missing:
        raise ValueError(
            "catalog table lacks join columns {}".format(missing)
        )
    return k_pre.join(catalog_table, on=["b_id", "m_id"], how="inner")


def extract_relevant_bytes(k_join, on_short="raise"):
    """Line 5: ``K_join2 = F_u1(K_join)`` -- add the ``l_rel`` column."""
    return k_join.with_column(
        "l_rel", apply(_U1(on_short=on_short), "l", "u_info")
    )


@dataclass(frozen=True)
class _NotTruncated:
    """Picklable filter body: keep rows whose value is not TRUNCATED."""

    def __call__(self, v):
        return v is not TRUNCATED

    def batch_call(self, values):
        return [v is not TRUNCATED for v in values]


@dataclass(frozen=True)
class _IsTruncated:
    """Picklable filter body: keep only TRUNCATED marker rows."""

    def __call__(self, v):
        return v is TRUNCATED

    def batch_call(self, values):
        return [v is TRUNCATED for v in values]


def drop_truncated(k_s):
    """``K_s`` without the TRUNCATED marker rows of keep-mode runs."""
    return k_s.filter(apply(_NotTruncated(), "v"))


def count_truncated(k_s):
    """Number of TRUNCATED marker rows in a keep-mode ``K_s``."""
    return k_s.filter(apply(_IsTruncated(), "v")).count()


def evaluate_signals(k_join2, on_short="raise"):
    """Line 6: ``K_s = F_u2(K_join2)`` -- signal instances per row."""
    with_value = k_join2.with_column(
        "v", apply(_U2(), "l_rel", "m_info", "u_info")
    )
    present = with_value.filter(col("v").is_not_null() if ABSENT is None
                                else col("v") != ABSENT)
    if on_short == "skip":
        present = present.filter(apply(_NotTruncated(), "v"))
    return present.select(*K_S_COLUMNS)


@dataclass(frozen=True)
class _FusedInterpreter:
    """Broadcast-style interpretation: one flat-map over trace rows.

    ``rules_by_key`` maps (m_id, b_id) -> ((s_id, rule), ...). Each trace
    row expands directly into its signal-instance rows, fusing lines 4-6
    into a single narrow stage (the mapPartitions formulation a Spark
    implementation would use when the rule catalog fits in a broadcast
    variable).
    """

    rules_by_key: dict
    on_short: str = "raise"

    def __call__(self, row):
        t, payload, b_id, m_id, m_info = row
        tolerant = self.on_short != "raise"
        out = []
        for s_id, rule in self.rules_by_key.get((m_id, b_id), ()):
            if tolerant:
                try:
                    l_rel = rule.extract_relevant(payload)
                except ShortPayloadError:
                    if self.on_short == "keep":
                        out.append((t, TRUNCATED, s_id, b_id))
                    continue
                value = rule.evaluate(l_rel, m_info)
            else:
                value = rule.evaluate(rule.extract_relevant(payload), m_info)
            if value is not ABSENT:
                out.append((t, value, s_id, b_id))
        return out


def interpret_fused(k_pre, catalog, on_short="raise"):
    """Lines 4-6 as one fused flat-map stage (broadcast rules).

    Produces exactly the rows of :func:`interpret`; preferable when the
    catalog is small (it always is) and the engine benefits from fewer
    stages.
    """
    rules_by_key = {}
    for u in catalog:
        rules_by_key.setdefault((u.message_id, u.channel_id), []).append(
            (u.signal_id, u.rule)
        )
    frozen = {k: tuple(v) for k, v in rules_by_key.items()}
    return k_pre.flat_map(
        _FusedInterpreter(frozen, on_short=on_short), list(K_S_COLUMNS)
    )


def interpret(k_pre, catalog, context=None, strategy="join",
              on_short="raise"):
    """Lines 4-6 composed: preselected trace + catalog -> ``K_s``.

    *catalog* may be a :class:`~repro.core.rules.RuleCatalog` (loaded into
    the trace's context) or an already-loaded engine table. *strategy*
    selects the physical formulation: ``"join"`` (the paper's relational
    join of line 4) or ``"fused"`` (broadcast flat-map; same output,
    fewer stages; requires a RuleCatalog). *on_short* selects truncated-
    payload handling: ``"raise"`` (default), ``"skip"`` (drop affected
    rows) or ``"keep"`` (retain them with ``v = TRUNCATED``).
    """
    _check_on_short(on_short)
    if strategy == "fused":
        if not hasattr(catalog, "preselection_keys"):
            raise ValueError("fused interpretation needs a RuleCatalog")
        return interpret_fused(k_pre, catalog, on_short=on_short)
    if strategy != "join":
        raise ValueError("unknown interpretation strategy {!r}".format(strategy))
    if hasattr(catalog, "to_table"):
        context = context if context is not None else k_pre.context
        catalog_table = catalog.to_table(context)
    else:
        catalog_table = catalog
    k_join = join_rules(k_pre, catalog_table)
    k_join2 = extract_relevant_bytes(k_join, on_short=on_short)
    return evaluate_signals(k_join2, on_short=on_short)


_ = U_REL_COLUMNS  # re-exported context for readers of this module
