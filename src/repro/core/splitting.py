"""Signal splitting and gateway deduplication (Sec. 4.1, lines 7-9).

``K_s`` is split per remaining signal type Σ*, and per type the equality
check ``e`` exploits gateway routing: "by exploiting that identical
signal instances are routed on multiple channels computational cost is
reduced by processing signal instances for one channel only and using
the result for corresponding signal instances."

``e`` compares the per-channel value sequences of one signal type. The
channel with the most instances becomes the representative ``K_sep``;
channels with an identical value sequence are recorded as corresponding
``K_scor`` (processed for free); channels whose sequence differs (frame
loss, different sampling) become their own representatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ChannelGroup:
    """One equivalence group found by ``e`` for a signal type."""

    signal_id: str
    representative: str  # b_id processed
    corresponding: tuple  # b_ids whose results are shared

    def all_channels(self):
        return (self.representative,) + self.corresponding


@dataclass
class SplitResult:
    """Outcome of splitting + dedup for one signal type.

    ``k_sep`` is the representative sequence (engine table, K_s layout
    restricted to one channel); ``groups`` document which channels the
    representative stands for; ``extra`` holds additional representative
    tables for non-corresponding channels.
    """

    signal_id: str
    k_sep: object
    groups: list = field(default_factory=list)
    extra: list = field(default_factory=list)  # (ChannelGroup, table)

    def tables(self):
        """All (group, table) pairs that must be processed."""
        head_group = self.groups[0] if self.groups else None
        return [(head_group, self.k_sep)] + list(self.extra)


def split_signal_types(k_s, signal_ids=None):
    """Line 7-8: one table per signal type ``K_s^{s_id}``.

    One routed pass over ``K_s`` (a single shuffle stage, the engine's
    :meth:`~repro.engine.table.Table.split_by_key`) produces *every*
    per-signal table at once, replacing the previous
    one-filter-scan-per-signal fan-out -- a trace with S signal types
    was scanned S+1 times, now once.

    Returns a dict s_id -> table. When *signal_ids* is None the ids are
    discovered from the data during the same pass.
    """
    keys = None if signal_ids is None else sorted(signal_ids)
    return k_s.split_by_key("s_id", keys=keys)


def equality_split(k_s_sid, signal_id):
    """Line 9: the equality check ``e`` for one signal type's table.

    Compares per-channel value sequences (time-ordered). Returns a
    :class:`SplitResult` whose ``k_sep`` covers the representative
    channel only.
    """
    ordered = k_s_sid.sort(["b_id", "t"]).cache()
    # One routed pass yields every channel's table; each inherits the
    # (b_id, t) sort, so its value column is already time-ordered.
    per_channel = ordered.split_by_key("b_id")
    # Only the value column matters for ``e``: projecting to it keeps
    # the comparison a narrow single-column read of each split group
    # (which arrives as a columnar partition under the columnar
    # exchange) instead of materializing every full row.
    sequences = {
        b_id: table.column_values("v")
        for b_id, table in per_channel.items()
    }
    if not sequences:
        return SplitResult(signal_id, k_s_sid, groups=[])
    # Deterministic representative choice: longest sequence, ties by name.
    channels = sorted(sequences, key=lambda b: (-len(sequences[b]), str(b)))
    groups = []
    assigned = set()
    for channel in channels:
        if channel in assigned:
            continue
        corresponding = [
            other
            for other in channels
            if other != channel
            and other not in assigned
            and sequences[other] == sequences[channel]
        ]
        assigned.add(channel)
        assigned.update(corresponding)
        groups.append(
            ChannelGroup(signal_id, channel, tuple(sorted(map(str, corresponding))))
        )
    head = groups[0]
    k_sep = per_channel[head.representative]
    extra = [
        (group, per_channel[group.representative]) for group in groups[1:]
    ]
    return SplitResult(signal_id, k_sep, groups=groups, extra=extra)


def dedup_savings(result):
    """Fraction of channels whose processing is saved by ``e``.

    E.g. a signal routed on 3 identical channels yields 2/3 savings.
    """
    total = sum(len(g.all_channels()) for g in result.groups)
    if total == 0:
        return 0.0
    processed = len(result.groups)
    return 1.0 - processed / total
