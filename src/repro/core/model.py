"""Formal trace model (paper Sec. 2).

Implements the paper's formalization: signal types ``s`` with identifiers
``s_id`` forming the alphabet Σ, message types ``m = (S, m_id, b_id)``,
their instances, and the three sequence views of a trace:

* ``K_b`` -- the recorded byte sequence of tuples
  ``k_b = (t, l, b_id, m_id, m_info)``;
* ``K_n`` -- the interpreted message-instance sequence;
* ``K_s`` -- the per-occurrence signal-instance sequence
  ``(t, s_hat, b_id)`` with ``s_hat = (v, s_id)``.

The distributed pipeline works on engine tables with these exact column
layouts; the dataclasses here give the formal objects a concrete API for
tests, documentation and in-memory use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Signal kind: carries a functional property (paper's affiliation F) ...
FUNCTIONAL = "functional"
#: ... or defines validity of a message/signal/component (affiliation V).
VALIDITY = "validity"

#: Column layout of a K_b table.
K_B_COLUMNS = ("t", "l", "b_id", "m_id", "m_info")
#: Column layout of a K_s table.
K_S_COLUMNS = ("t", "v", "s_id", "b_id")


@dataclass(frozen=True)
class SignalType:
    """A signal type ``s`` with identifier ``s_id``.

    Per ``s_id``, information on either a function (e.g. steering angle),
    a control unit (e.g. reset) or the network (e.g. frame qualifier) is
    exchanged.
    """

    signal_id: str
    unit: str = ""
    kind: str = FUNCTIONAL
    comment: str = ""

    def __post_init__(self):
        if not self.signal_id:
            raise ValueError("signal_id must be non-empty")
        if self.kind not in (FUNCTIONAL, VALIDITY):
            raise ValueError(
                "kind must be 'functional' or 'validity', got {!r}".format(
                    self.kind
                )
            )


@dataclass(frozen=True)
class SignalInstance:
    """An occurrence ``s_hat = (v, s_id)`` of a signal type."""

    value: object
    signal_id: str


@dataclass(frozen=True)
class MessageType:
    """A message type ``m = (S, m_id, b_id)``.

    ``signal_ids`` is the set ``S ⊆ Σ`` of signal types each instance
    carries; ``|S|`` can vary per message type.
    """

    signal_ids: tuple
    message_id: int
    channel_id: str

    def __post_init__(self):
        if len(set(self.signal_ids)) != len(self.signal_ids):
            raise ValueError("duplicate signal ids in message type")

    def carries(self, signal_id):
        return signal_id in self.signal_ids


@dataclass(frozen=True)
class MessageInstance:
    """An occurrence ``m_hat = (S_hat, m_id, b_id)`` at time ``t``."""

    timestamp: float
    signals: tuple  # of SignalInstance
    message_id: int
    channel_id: str

    def signal_values(self):
        """Mapping s_id -> value for this instance."""
        return {s.signal_id: s.value for s in self.signals}


@dataclass(frozen=True)
class Alphabet:
    """The alphabet Σ of all vehicle signal types."""

    signal_types: tuple = field(default_factory=tuple)

    def __post_init__(self):
        ids = [s.signal_id for s in self.signal_types]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(
                "duplicate signal types in alphabet: {}".format(
                    sorted(duplicates)
                )
            )

    def __len__(self):
        return len(self.signal_types)

    def __iter__(self):
        return iter(self.signal_types)

    def __contains__(self, signal_id):
        return any(s.signal_id == signal_id for s in self.signal_types)

    def get(self, signal_id):
        for s in self.signal_types:
            if s.signal_id == signal_id:
                return s
        raise KeyError(signal_id)

    def ids(self):
        return tuple(s.signal_id for s in self.signal_types)

    def restrict(self, signal_ids):
        """The sub-alphabet Σ* of the given ids (order preserved)."""
        wanted = set(signal_ids)
        return Alphabet(
            tuple(s for s in self.signal_types if s.signal_id in wanted)
        )


def message_instances_from_k_s(rows):
    """Group K_s rows back into message instances by (t, b_id).

    Mainly used in tests to check the K_n <-> K_s correspondence of the
    formalization; expects rows as ``(t, v, s_id, b_id, m_id)`` tuples.
    """
    grouped = {}
    for t, v, s_id, b_id, m_id in rows:
        grouped.setdefault((t, m_id, b_id), []).append(SignalInstance(v, s_id))
    out = []
    for (t, m_id, b_id), signals in sorted(
        grouped.items(), key=lambda kv: (kv[0][0], str(kv[0][2]), kv[0][1])
    ):
        out.append(MessageInstance(t, tuple(signals), m_id, b_id))
    return out
