"""Declarative pipeline parameterization.

The paper's framework "requires one-time parameterization" per domain
(abstract). This module gives that parameterization a durable, reviewable
form: a JSON-compatible dict describing the signals to extract, the
reduction constraints ``C``, the extension rules ``E`` and the branch
tuning -- convertible to a :class:`~repro.core.pipeline.PipelineConfig`
against a communication database, and back.

Schema::

    {
      "signals": ["wpos", "wvel"],
      "constraints": [
        {"signal": "wvel", "type": "unchanged_within_cycle",
         "cycle_time": 0.1, "tolerance": 1.5},
        {"signal": "heat", "type": "unchanged"},
        {"signal": "x", "type": "minimum_gap", "min_gap": 0.5},
        {"signal": "y", "type": "value_in_set", "values": ["idle"]}
      ],
      "extensions": [
        {"signal": "wpos", "type": "gap"},
        {"signal": "status", "type": "cycle_violation",
         "expected_cycle": 0.1, "tolerance": 1.8},
        {"signal": "wpos", "type": "rolling",
         "window": 10.0, "statistic": "mean"}
      ],
      "branch": {"sax_alphabet": 3, "swab_error_fraction": 0.05,
                 "trend_fraction": 0.02, "smoothing_window": 5,
                 "rate_threshold": 1.0},
      "dedup_channels": true
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.outliers import ZScoreDetector
from repro.analysis.sax import SaxEncoder
from repro.analysis.smoothing import MovingAverage
from repro.core.branches import BranchConfig
from repro.core.classification import ClassifierConfig
from repro.core.extension import (
    CycleViolationExtension,
    ExtensionSet,
    GapExtension,
    RollingAggregateExtension,
)
from repro.core.pipeline import PipelineConfig
from repro.core.reduction import (
    Constraint,
    ConstraintSet,
    MinimumGap,
    UnchangedValue,
    UnchangedWithinCycle,
    ValueInSet,
)


class ParameterizationError(ValueError):
    """Raised for unknown rule types or malformed parameter documents."""


def _build_constraint(spec):
    kind = spec.get("type")
    signal = spec.get("signal")
    if not signal:
        raise ParameterizationError("constraint needs a 'signal'")
    if kind == "unchanged":
        function = UnchangedValue()
    elif kind == "unchanged_within_cycle":
        function = UnchangedWithinCycle(
            cycle_time=spec["cycle_time"],
            tolerance=spec.get("tolerance", 1.5),
        )
    elif kind == "minimum_gap":
        function = MinimumGap(min_gap=spec["min_gap"])
    elif kind == "value_in_set":
        function = ValueInSet(frozenset(spec["values"]))
    else:
        raise ParameterizationError(
            "unknown constraint type {!r}".format(kind)
        )
    return Constraint(signal, spec.get("enabled", True), (function,))


def _constraint_to_dict(constraint):
    (function,) = constraint.functions
    out = {"signal": constraint.signal_id}
    if not constraint.enabled:
        out["enabled"] = False
    if isinstance(function, UnchangedValue):
        out["type"] = "unchanged"
    elif isinstance(function, UnchangedWithinCycle):
        out.update(
            type="unchanged_within_cycle",
            cycle_time=function.cycle_time,
            tolerance=function.tolerance,
        )
    elif isinstance(function, MinimumGap):
        out.update(type="minimum_gap", min_gap=function.min_gap)
    elif isinstance(function, ValueInSet):
        out.update(type="value_in_set", values=sorted(function.values))
    else:
        raise ParameterizationError(
            "constraint function {!r} has no declarative form".format(
                type(function).__name__
            )
        )
    return out


def _build_extension(spec):
    kind = spec.get("type")
    signal = spec.get("signal")
    if not signal:
        raise ParameterizationError("extension needs a 'signal'")
    if kind == "gap":
        return GapExtension(signal, suffix=spec.get("suffix", "Gap"))
    if kind == "cycle_violation":
        return CycleViolationExtension(
            signal,
            expected_cycle=spec["expected_cycle"],
            tolerance=spec.get("tolerance", 1.5),
        )
    if kind == "rolling":
        return RollingAggregateExtension(
            signal,
            window=spec["window"],
            statistic=spec.get("statistic", "mean"),
        )
    raise ParameterizationError("unknown extension type {!r}".format(kind))


def _extension_to_dict(rule):
    if isinstance(rule, GapExtension):
        return {"signal": rule.signal_id, "type": "gap", "suffix": rule.suffix}
    if isinstance(rule, CycleViolationExtension):
        return {
            "signal": rule.signal_id,
            "type": "cycle_violation",
            "expected_cycle": rule.expected_cycle,
            "tolerance": rule.tolerance,
        }
    if isinstance(rule, RollingAggregateExtension):
        return {
            "signal": rule.signal_id,
            "type": "rolling",
            "window": rule.window,
            "statistic": rule.statistic,
        }
    raise ParameterizationError(
        "extension {!r} has no declarative form".format(type(rule).__name__)
    )


def _build_branch_config(spec):
    classifier = ClassifierConfig(
        rate_threshold=spec.get("rate_threshold", 1.0),
    )
    return BranchConfig(
        outlier_detector=ZScoreDetector(
            threshold=spec.get("outlier_threshold", 3.5)
        ),
        smoother=MovingAverage(window=spec.get("smoothing_window", 5)),
        sax=SaxEncoder(alphabet_size=spec.get("sax_alphabet", 3)),
        swab_error_fraction=spec.get("swab_error_fraction", 0.05),
        swab_buffer=spec.get("swab_buffer", 40),
        trend_fraction=spec.get("trend_fraction", 0.02),
        classifier=classifier,
    )


def config_from_dict(document, database):
    """Build a :class:`PipelineConfig` from a parameter document.

    *database* supplies the translation catalog (``U_rel``); the
    document's ``signals`` select ``U_comb`` from it.
    """
    signals = document.get("signals")
    if not signals:
        raise ParameterizationError("document must list 'signals'")
    catalog = database.translation_catalog(signals)
    constraints = ConstraintSet(
        tuple(_build_constraint(c) for c in document.get("constraints", ()))
    )
    extensions = ExtensionSet(
        tuple(_build_extension(e) for e in document.get("extensions", ()))
    )
    return PipelineConfig(
        catalog=catalog,
        constraints=constraints,
        extensions=extensions,
        branch_config=_build_branch_config(document.get("branch", {})),
        dedup_channels=document.get("dedup_channels", True),
        short_payload=document.get("short_payload", "raise"),
        drop_exact_duplicates=document.get("drop_exact_duplicates", True),
    )


def config_to_dict(config):
    """Serialize a :class:`PipelineConfig` back to a parameter document.

    Only declaratively-expressible constraints/extensions (one function
    per constraint, the bundled rule types) are supported -- which is
    exactly what :func:`config_from_dict` produces.
    """
    branch = config.branch_config
    out = {
        "signals": sorted(set(config.catalog.signal_ids())),
        "constraints": [
            _constraint_to_dict(c) for c in config.constraints
        ],
        "extensions": [
            _extension_to_dict(e) for e in config.extensions
        ],
        "branch": {
            "sax_alphabet": branch.sax.alphabet_size,
            "swab_error_fraction": branch.swab_error_fraction,
            "swab_buffer": branch.swab_buffer,
            "trend_fraction": branch.trend_fraction,
            "rate_threshold": branch.classifier.rate_threshold,
        },
        "dedup_channels": config.dedup_channels,
    }
    # Lossy-trace knobs are emitted only when non-default, keeping older
    # documents byte-stable (like interpretation_strategy, which has no
    # declarative form at all).
    if config.short_payload != "raise":
        out["short_payload"] = config.short_payload
    if not config.drop_exact_duplicates:
        out["drop_exact_duplicates"] = False
    return out


def load_config(path, database):
    """Read a JSON parameter file into a :class:`PipelineConfig`."""
    with open(Path(path)) as fh:
        document = json.load(fh)
    return config_from_dict(document, database)


def save_config(config, path):
    """Write a :class:`PipelineConfig` as a JSON parameter file."""
    document = config_to_dict(config)
    with open(Path(path), "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
    return document
