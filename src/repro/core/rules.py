"""Interpretation rules and the parameterization catalog (paper Sec. 3.1).

A domain parameterizes the framework once with a set of translation
tuples ``u_rel = (s_id_rel, b_id, m_id, u_info)`` -- Table 1 of the paper.
``u_info`` contains what is needed to locate and evaluate a signal inside
a raw payload: the relevant byte positions ("rel.B") and the
interpretation rule (scaling, coding, data-dependent presence for
SOME/IP).

Interpretation is split exactly as in the paper:

* ``u_1 : (l, u_info) -> l_rel`` extracts the relevant payload bytes;
* ``u_2 : (l_rel, m_info, u_info) -> (v, s_id)`` evaluates them to the
  signal value.

Both are methods of :class:`InterpretationRule`, which is a picklable
dataclass so rule evaluation can run row-wise on worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.protocols.signalcodec import ShortPayloadError, SignalEncoding
from repro.protocols.someip import ConditionalLayout

#: Sentinel value for "signal not present in this instance" (e.g. a
#: SOME/IP optional section whose presence bit is clear).
ABSENT = None


class RuleError(ValueError):
    """Raised for inconsistent rules or catalogs."""


class _TruncatedType:
    """Singleton marker type behind :data:`TRUNCATED`."""

    __slots__ = ()

    def __repr__(self):
        return "TRUNCATED"

    def __reduce__(self):
        return (_get_truncated, ())


def _get_truncated():
    return TRUNCATED


#: Sentinel value for "payload too short to extract this signal": the
#: skip-mode interpretation marks truncated rows with it (so they can
#: be counted) before dropping them from ``K_s``. Picklable as the one
#: singleton, so identity checks survive worker-process round trips.
TRUNCATED = _TruncatedType()


@dataclass(frozen=True)
class InterpretationRule:
    """``u_info``: how to locate and evaluate one signal in a payload.

    Parameters
    ----------
    encoding:
        Bit-level layout and physical scaling. For sectioned (SOME/IP)
        signals the start bit is relative to the section body.
    layout:
        Optional :class:`ConditionalLayout` for presence-conditional
        payloads; required when ``section_bit`` is set.
    section_bit:
        Presence-mask bit governing the signal's optional section, or
        None for a fixed layout.
    required_info:
        Protocol-field preconditions as ((key, value), ...): the signal
        is only present in instances whose ``m_info`` matches all of
        them. This is the ``m_info`` dependence of ``u_2`` in the paper
        -- e.g. a SOME/IP field only carried by NOTIFICATION messages,
        not by ERROR responses.
    mux_selector / mux_value:
        CAN-style multiplexing: the signal exists only in instances
        where the selector signal (given by its encoding) decodes to the
        raw value ``mux_value`` -- the classic in-payload case of
        "values of preceding bytes define the presence of a signal type
        in succeeding bytes".
    """

    encoding: SignalEncoding
    layout: ConditionalLayout = None
    section_bit: int = None
    required_info: tuple = ()
    mux_selector: SignalEncoding = None
    mux_value: int = None

    def __post_init__(self):
        if (self.section_bit is None) != (self.layout is None):
            raise RuleError(
                "section_bit and layout must be given together or not at all"
            )
        if (self.mux_selector is None) != (self.mux_value is None):
            raise RuleError(
                "mux_selector and mux_value must be given together"
            )

    # -- u_1: relevant byte extraction --------------------------------------
    def relevant_bytes(self):
        """The paper's "rel.B": byte positions holding the signal.

        For sectioned signals the positions are relative to the section
        body (the absolute position is data-dependent).
        """
        first, last = self.encoding.byte_span()
        return tuple(range(first, last + 1))

    def extract_relevant(self, payload):
        """``u_1``: slice the relevant bytes out of *payload*.

        Returns None (ABSENT) when a presence-conditional signal is not
        in this instance.
        """
        if self.mux_selector is not None:
            if self.mux_selector.extract_raw(payload) != self.mux_value:
                return ABSENT
        if self.section_bit is not None:
            section = self.layout.extract_section(payload, self.section_bit)
            if section is None:
                return ABSENT
            payload = section
        first, last = self.encoding.byte_span()
        if last >= len(payload):
            raise ShortPayloadError(
                "payload of {} bytes too short for relevant bytes {}..{}".format(
                    len(payload), first, last
                )
            )
        return bytes(payload[first : last + 1])

    # -- u_2: evaluation -------------------------------------------------------
    def evaluate(self, l_rel, m_info=None):
        """``u_2 : (l_rel, m_info, u_info) -> v``.

        *m_info* carries the protocol-specific header fields; when the
        rule declares ``required_info``, non-matching instances do not
        carry the signal (ABSENT).
        """
        if l_rel is ABSENT:
            return ABSENT
        if self.required_info and not self.info_matches(m_info):
            return ABSENT
        return self._relative_encoding().decode(l_rel)

    def info_matches(self, m_info):
        """True if *m_info* satisfies every ``required_info`` entry."""
        fields = dict(m_info) if m_info else {}
        return all(
            fields.get(key) == value for key, value in self.required_info
        )

    def interpret(self, payload, m_info=None):
        """Convenience composition ``u_2(u_1(l), m_info)``."""
        return self.evaluate(self.extract_relevant(payload), m_info)

    def _relative_encoding(self):
        first, _last = self.encoding.byte_span()
        if first == 0:
            return self.encoding
        return replace(self.encoding, start_bit=self.encoding.start_bit - 8 * first)

    # -- compiled fast paths ---------------------------------------------
    def compile_extractor(self):
        """Build a closure equivalent to :meth:`extract_relevant`.

        The byte span, mux-selector raw extractor and section layout
        are resolved once; the engine's columnar batch kernels run the
        returned closure over whole payload columns.
        """
        first, last = self.encoding.byte_span()
        end = last + 1
        mux_raw = (
            self.mux_selector.compile_raw_extractor()
            if self.mux_selector is not None
            else None
        )
        mux_value = self.mux_value
        layout = self.layout
        section_bit = self.section_bit

        def extract(payload):
            if mux_raw is not None and mux_raw(payload) != mux_value:
                return ABSENT
            if section_bit is not None:
                section = layout.extract_section(payload, section_bit)
                if section is None:
                    return ABSENT
                payload = section
            if last >= len(payload):
                raise ShortPayloadError(
                    "payload of {} bytes too short for relevant bytes "
                    "{}..{}".format(len(payload), first, last)
                )
            return bytes(payload[first:end])

        return extract

    def compile_evaluator(self):
        """Build a closure equivalent to :meth:`evaluate`.

        The relative encoding's decoder and the ``required_info``
        preconditions are hoisted out of the per-row path.
        """
        decode = self._relative_encoding().compile_decoder()
        required = self.required_info
        if not required:

            def evaluate(l_rel, m_info=None):
                if l_rel is ABSENT:
                    return ABSENT
                return decode(l_rel)

            return evaluate

        def evaluate(l_rel, m_info=None):
            if l_rel is ABSENT:
                return ABSENT
            fields = dict(m_info) if m_info else {}
            for key, value in required:
                if fields.get(key) != value:
                    return ABSENT
            return decode(l_rel)

        return evaluate

    def describe(self):
        """Human-readable summary in the style of Table 1."""
        enc = self.encoding
        rule = "v = {} * raw + {}".format(enc.scale, enc.offset)
        if enc.value_table:
            rule = "v = table{}".format(
                {r: l for r, l in enc.value_table}
            )
        rel = "rel.B = {}".format(list(self.relevant_bytes()))
        if self.section_bit is not None:
            rel += " (in optional section bit {})".format(self.section_bit)
        return "Int.rule: {}; {}".format(rule, rel)


@dataclass(frozen=True)
class TranslationTuple:
    """``u_rel = (s_id_rel, b_id, m_id, u_info)`` -- one row of Table 1."""

    signal_id: str
    channel_id: str
    message_id: int
    rule: InterpretationRule

    def key(self):
        """The (m_id, b_id) preselection key."""
        return (self.message_id, self.channel_id)


#: Column layout of a U_rel / U_comb table in the engine.
U_REL_COLUMNS = ("s_id", "b_id", "m_id", "u_info")


@dataclass(frozen=True)
class RuleCatalog:
    """``U_rel``: all translation tuples known to the framework.

    A domain selects its subset ``U_comb ⊆ U_rel`` with :meth:`select`;
    :meth:`to_table` loads either catalog into the engine for the join of
    Algorithm 1 line 4.
    """

    tuples: tuple = field(default_factory=tuple)

    def __post_init__(self):
        seen = set()
        for u in self.tuples:
            key = (u.signal_id, u.channel_id, u.message_id)
            if key in seen:
                raise RuleError(
                    "duplicate translation tuple for {}".format(key)
                )
            seen.add(key)

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def signal_ids(self):
        return tuple(u.signal_id for u in self.tuples)

    def get(self, signal_id, channel_id=None):
        """All tuples for a signal id (optionally on one channel)."""
        out = [
            u
            for u in self.tuples
            if u.signal_id == signal_id
            and (channel_id is None or u.channel_id == channel_id)
        ]
        if not out:
            raise KeyError(signal_id)
        return out

    def select(self, signal_ids):
        """Build the domain subset ``U_comb`` for the given signal ids."""
        wanted = set(signal_ids)
        unknown = wanted - set(self.signal_ids())
        if unknown:
            raise RuleError(
                "cannot select unknown signals: {}".format(sorted(unknown))
            )
        return RuleCatalog(
            tuple(u for u in self.tuples if u.signal_id in wanted)
        )

    def restrict_channels(self, channel_ids):
        """Keep only tuples on the given channels."""
        wanted = set(channel_ids)
        return RuleCatalog(
            tuple(u for u in self.tuples if u.channel_id in wanted)
        )

    def preselection_keys(self):
        """The set of (m_id, b_id) pairs for Algorithm 1 line 3."""
        return frozenset(u.key() for u in self.tuples)

    def to_table(self, context):
        """Load the catalog as an engine table with U_REL_COLUMNS."""
        rows = [
            (u.signal_id, u.channel_id, u.message_id, u.rule)
            for u in self.tuples
        ]
        return context.table_from_rows(
            list(U_REL_COLUMNS), rows, num_partitions=1
        )

    def merge(self, other):
        """Union of two catalogs (duplicate tuples rejected)."""
        return RuleCatalog(self.tuples + other.tuples)
