"""Extension rules (Sec. 4.1 "Extension Rules", Algorithm 1 line 12).

Extensions associate meta-data with a reduced signal sequence: "the gap
to previous elements or results from computations based on other
signals" become new sequence elements ``w_hat`` with
``w = (v, w_id)`` (Table 2: the ``wposGap`` sequence).

Extension output tables have the homogeneous layout
``(t, v, w_id, s_id, b_id)`` -- value, the meta-signal identifier, the
signal type the meta-data is associated with, and the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Column layout of an extension (W) table.
W_COLUMNS = ("t", "v", "w_id", "s_id", "b_id")


class ExtensionError(ValueError):
    """Raised for invalid extension rules."""


class ExtensionRule:
    """Base class: derives meta-data rows from one reduced sequence.

    ``derive(rows, schema)`` receives the time-ordered K_red rows and the
    table schema and returns W rows. Implementations must be picklable;
    they run on the driver orchestration level but may be shipped with
    partition functions.
    """

    w_id = None

    def derive(self, rows, schema):
        raise NotImplementedError


@dataclass(frozen=True)
class GapExtension(ExtensionRule):
    """Temporal gap to the previous element (Table 2's ``wposGap``)."""

    signal_id: str
    suffix: str = "Gap"

    @property
    def w_id(self):
        return "{}{}".format(self.signal_id, self.suffix)

    def derive(self, rows, schema):
        t_i = schema.index_of("t")
        b_i = schema.index_of("b_id")
        out = []
        prev_t = None
        for row in rows:
            t = row[t_i]
            if prev_t is not None:
                out.append(
                    (t, round(t - prev_t, 9), self.w_id, self.signal_id, row[b_i])
                )
            prev_t = t
        return out


@dataclass(frozen=True)
class CycleViolationExtension(ExtensionRule):
    """Flags gaps exceeding the expected cycle time.

    "By extending traces with expected cycle times, locations of
    violations of such times can be detected" (Sec. 4.4). The value of
    each meta-element is the factor gap / expected cycle, emitted only
    where the factor exceeds *tolerance*.
    """

    signal_id: str
    expected_cycle: float
    tolerance: float = 1.5
    suffix: str = "CycleViolation"

    def __post_init__(self):
        if self.expected_cycle <= 0:
            raise ExtensionError("expected_cycle must be positive")
        if self.tolerance <= 1.0:
            raise ExtensionError("tolerance must exceed 1.0")

    @property
    def w_id(self):
        return "{}{}".format(self.signal_id, self.suffix)

    def derive(self, rows, schema):
        t_i = schema.index_of("t")
        b_i = schema.index_of("b_id")
        out = []
        prev_t = None
        for row in rows:
            t = row[t_i]
            if prev_t is not None:
                factor = (t - prev_t) / self.expected_cycle
                if factor > self.tolerance:
                    out.append(
                        (t, round(factor, 6), self.w_id, self.signal_id, row[b_i])
                    )
            prev_t = t
        return out


@dataclass(frozen=True)
class DerivedValueExtension(ExtensionRule):
    """Meta-data computed per element by a picklable ``func(t, v)``.

    ``func`` returns the meta value, or None to emit nothing for that
    element.
    """

    signal_id: str
    name: str
    func: object

    @property
    def w_id(self):
        return self.name

    def derive(self, rows, schema):
        t_i = schema.index_of("t")
        v_i = schema.index_of("v")
        b_i = schema.index_of("b_id")
        out = []
        for row in rows:
            value = self.func(row[t_i], row[v_i])
            if value is not None:
                out.append((row[t_i], value, self.w_id, self.signal_id, row[b_i]))
        return out


@dataclass(frozen=True)
class RollingAggregateExtension(ExtensionRule):
    """Windowed aggregate over the last *window* seconds of values.

    Demonstrates "results from computations" as meta-data: e.g. the mean
    wiper speed over the last 10 s. ``statistic`` is ``"mean"``,
    ``"min"``, ``"max"`` or ``"count"``.
    """

    signal_id: str
    window: float
    statistic: str = "mean"

    _FUNCS = ("mean", "min", "max", "count")

    def __post_init__(self):
        if self.window <= 0:
            raise ExtensionError("window must be positive")
        if self.statistic not in self._FUNCS:
            raise ExtensionError(
                "statistic must be one of {}".format(self._FUNCS)
            )

    @property
    def w_id(self):
        return "{}Rolling{}".format(
            self.signal_id, self.statistic.capitalize()
        )

    def derive(self, rows, schema):
        t_i = schema.index_of("t")
        v_i = schema.index_of("v")
        b_i = schema.index_of("b_id")
        out = []
        window = []  # (t, v) within the horizon
        for row in rows:
            t, v = row[t_i], row[v_i]
            window.append((t, v))
            window = [(wt, wv) for wt, wv in window if t - wt <= self.window]
            numeric = [wv for _wt, wv in window if isinstance(wv, (int, float))]
            if self.statistic == "count":
                value = len(window)
            elif not numeric:
                continue
            elif self.statistic == "mean":
                value = sum(numeric) / len(numeric)
            elif self.statistic == "min":
                value = min(numeric)
            else:
                value = max(numeric)
            out.append((t, value, self.w_id, self.signal_id, row[b_i]))
        return out


@dataclass(frozen=True)
class ExtensionSet:
    """``E``: all extension rules of one domain, indexed by signal type."""

    rules: tuple = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def for_signal(self, signal_id):
        return [r for r in self.rules if r.signal_id == signal_id]


def apply_extensions(k_red, rules):
    """Line 12: ``W = F_E(K_red)`` for one reduced sequence.

    Returns an engine table with ``W_COLUMNS`` (empty when no rule
    applies). The sequence is collected in time order per signal type --
    the per-type sequences are small after reduction; rule evaluation
    itself is sequential per type but independent (and thus parallel)
    across types.
    """
    context = k_red.context
    if not rules:
        return context.empty_table(list(W_COLUMNS))
    ordered = k_red.sort(["t"])
    rows = ordered.collect()
    schema = ordered.schema
    out = []
    for rule in rules:
        out.extend(rule.derive(rows, schema))
    out.sort(key=lambda r: (r[0], r[2]))
    return context.table_from_rows(list(W_COLUMNS), out)
