"""Constraint reduction (Sec. 4.1, Algorithm 1 lines 10-11).

A constraint set ``C = {c_i}`` with ``c = (s_id, d, F)`` is joined to
each signal sequence on the signal type (line 10). If the enable flag
``d`` holds, all marker functions ``f ∈ F`` run; per element the flag
``e`` becomes true if any ``f`` is true (Eq. 1). Line 11 keeps the
elements where the flag is false -- markers flag *redundant* elements,
"leaving task-relevant elements only".

Marker functions receive the time-ordered (t, v) sequence (plus the
previous element as carry) so they can express the paper's examples:
repeated data points, temporal-gap conditions, sending-condition checks.
Aggregation-based markers (inherently distributable operations in Big
Data systems) are supported through a pre-pass computing sequence
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.expressions import apply


class ReductionError(ValueError):
    """Raised for invalid constraints."""


def value_order_key(value):
    """Canonical tiebreak for rows sharing a timestamp.

    ``repr`` yields a deterministic, comparable string across the
    mixed value types a sequence can hold (floats, labels, the
    TRUNCATED sentinel), so every execution path -- whole-trace,
    windowed, streamed -- orders same-timestamp rows identically.
    """
    return repr(value)


@dataclass(frozen=True)
class _ValueOrderKey:
    """Picklable column body computing :func:`value_order_key`."""

    def __call__(self, v):
        return value_order_key(v)

    def batch_call(self, values):
        return [value_order_key(v) for v in values]


_TIEBREAK_COLUMN = "__v_order"


def order_signal_rows(k_sep, order_by="t", value_column="v"):
    """Sort one signal's rows into the canonical sequence order.

    Sorting on the timestamp alone is not a total order once transport
    corruption is in play: a gateway duplicate whose copy lost payload
    bytes yields two rows of one (s_id, b_id) at the same ``t`` with
    *different* values, and windowed vs whole-trace runs could then
    disagree about which one a repeat-removal marker sees first. The
    value's :func:`value_order_key` breaks such ties deterministically.
    """
    keyed = k_sep.with_column(
        _TIEBREAK_COLUMN, apply(_ValueOrderKey(), value_column)
    )
    return keyed.sort([order_by, _TIEBREAK_COLUMN]).drop(_TIEBREAK_COLUMN)


class MarkerFunction:
    """Base class of the ``f ∈ F`` marker functions.

    ``flags(times, values, prev)`` returns one boolean per element; True
    marks the element redundant (to be removed). ``prev`` is the (t, v)
    of the element preceding the sequence, or None. Implementations must
    be picklable.
    """

    #: Set by aggregation markers; the reducer then provides statistics.
    needs_statistics = False

    #: True when flags depend only on ``prev`` and the chunk itself, so a
    #: one-row carry makes partitioned evaluation exact. Markers whose
    #: decisions propagate from the start of the sequence (``MinimumGap``:
    #: which element was last *kept* depends on every earlier decision)
    #: set this False; ``reduce_signal`` then replays the full preceding
    #: prefix per partition so the result matches a serial pass.
    parallel_safe = True

    def flags(self, times, values, prev, statistics=None):
        raise NotImplementedError

    def carry_after(self, times, values, prev):
        """The ``prev`` a windowed run must pass to the *next* chunk.

        The default -- the chunk's last raw element -- is correct for
        markers that compare against the previous raw element
        (``UnchangedValue``, ``UnchangedWithinCycle``). Markers whose
        state is not the last raw element (``MinimumGap`` tracks the
        last *kept* element) override this; incremental execution
        threads each function's own carry so chunked reduction stays
        element-for-element identical to a whole-trace run.
        """
        if not times:
            return prev
        return (times[-1], values[-1])


@dataclass(frozen=True)
class UnchangedValue(MarkerFunction):
    """Marks elements repeating the previous value.

    This is the reduction the paper's evaluation applies: "Signal
    instances are often sent repeatedly without change of values. Thus,
    identical subsequent signal instances are removed".
    """

    def flags(self, times, values, prev, statistics=None):
        out = []
        prev_value = prev[1] if prev is not None else _SENTINEL
        for v in values:
            out.append(v == prev_value)
            prev_value = v
        return out


@dataclass(frozen=True)
class UnchangedWithinCycle(MarkerFunction):
    """Repeat-removal that *preserves cycle-time violations*.

    An element is redundant only if its value repeats AND the temporal
    gap to the previous element stays within ``tolerance`` times the
    expected cycle time -- "important state changes such as violations of
    cycle times need to be preserved" (Sec. 1).
    """

    cycle_time: float
    tolerance: float = 1.5

    def __post_init__(self):
        if self.cycle_time <= 0 or self.tolerance <= 0:
            raise ReductionError("cycle_time and tolerance must be positive")

    def flags(self, times, values, prev, statistics=None):
        out = []
        prev_t, prev_v = prev if prev is not None else (None, _SENTINEL)
        limit = self.cycle_time * self.tolerance
        for t, v in zip(times, values):
            gap_ok = prev_t is not None and (t - prev_t) <= limit
            out.append(v == prev_v and gap_ok)
            prev_t, prev_v = t, v
        return out


@dataclass(frozen=True)
class MinimumGap(MarkerFunction):
    """Downsampling: marks elements closer than ``min_gap`` to the last
    *kept* element (gap-based decimation)."""

    min_gap: float

    parallel_safe = False

    def __post_init__(self):
        if self.min_gap <= 0:
            raise ReductionError("min_gap must be positive")

    def flags(self, times, values, prev, statistics=None):
        out = []
        last_kept = prev[0] if prev is not None else None
        for t in times:
            if last_kept is not None and (t - last_kept) < self.min_gap:
                out.append(True)
            else:
                out.append(False)
                last_kept = t
        return out

    def carry_after(self, times, values, prev):
        """Carry the last element *this marker kept*, not the last raw
        one -- seeding the next chunk with a later (discarded) element
        would shrink gaps and over-reduce at window boundaries."""
        last_kept = prev[0] if prev is not None else None
        for t in times:
            if last_kept is None or (t - last_kept) >= self.min_gap:
                last_kept = t
        if last_kept is None:
            return prev
        return (last_kept, None)


@dataclass(frozen=True)
class ValueInSet(MarkerFunction):
    """Marks elements whose value is in a configured idle set."""

    values: frozenset

    def flags(self, times, values, prev, statistics=None):
        member = self.values
        return [v in member for v in values]


@dataclass(frozen=True)
class Predicate(MarkerFunction):
    """Row-wise marker from a picklable callable ``func(t, v) -> bool``."""

    func: object

    def flags(self, times, values, prev, statistics=None):
        f = self.func
        return [bool(f(t, v)) for t, v in zip(times, values)]


@dataclass(frozen=True)
class OutsideQuantileRange(MarkerFunction):
    """Aggregation marker: drop numeric elements outside a quantile band.

    Demonstrates ``f`` as an aggregation operation: the band is computed
    over the whole sequence first (a distributable aggregation), then
    applied row-wise.
    """

    lower: float = 0.0
    upper: float = 1.0

    needs_statistics = True

    def __post_init__(self):
        if not 0.0 <= self.lower < self.upper <= 1.0:
            raise ReductionError("need 0 <= lower < upper <= 1")

    def flags(self, times, values, prev, statistics=None):
        stats = statistics or {}
        lo = stats.get("q_lower")
        hi = stats.get("q_upper")
        if lo is None or hi is None:
            numeric = [v for v in values if isinstance(v, (int, float))]
            if not numeric:
                return [False] * len(values)
            lo = float(np.quantile(numeric, self.lower))
            hi = float(np.quantile(numeric, self.upper))
        out = []
        for v in values:
            if isinstance(v, (int, float)):
                out.append(v < lo or v > hi)
            else:
                out.append(False)
        return out


_SENTINEL = object()

#: Carry depth that in practice hands a partition its entire preceding
#: prefix (partitions hold far fewer rows than this).
_FULL_CARRY = 2**31


@dataclass(frozen=True)
class Constraint:
    """``c = (s_id, d, F)``: marker functions for one signal type."""

    signal_id: str
    enabled: bool = True  # the paper's d
    functions: tuple = field(default_factory=tuple)

    def __post_init__(self):
        for f in self.functions:
            if not isinstance(f, MarkerFunction):
                raise ReductionError(
                    "constraint functions must be MarkerFunction instances"
                )


@dataclass(frozen=True)
class ConstraintSet:
    """``C``: the full constraint parameterization of one domain."""

    constraints: tuple = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def for_signal(self, signal_id):
        """All enabled constraints joined to *signal_id* (line 10)."""
        return [
            c
            for c in self.constraints
            if c.signal_id == signal_id and c.enabled
        ]


@dataclass(frozen=True)
class _ReducePartition:
    """Partition function computing Eq. 1 and filtering e == false.

    Applied via ``sorted_map_partitions`` after a sort on t, so it is a
    scalable ordered-tabular operation; ``t_index``/``v_index`` locate
    the time and value columns.
    """

    functions: tuple
    t_index: int
    v_index: int
    #: Replay mode for serial-state markers: the carry then holds the
    #: *entire* preceding prefix, flags are recomputed from the sequence
    #: start and only the partition's suffix is emitted.
    full_carry: bool = False

    def __call__(self, partition, carry):
        if not partition:
            return []
        prefix = len(carry) if self.full_carry else 0
        rows = list(carry) + list(partition) if prefix else partition
        times = [row[self.t_index] for row in rows]
        values = [row[self.v_index] for row in rows]
        prev = None
        if carry and not prefix:
            prev = (carry[-1][self.t_index], carry[-1][self.v_index])
        redundant = [False] * len(rows)
        for func in self.functions:
            for i, flag in enumerate(func.flags(times, values, prev)):
                if flag:
                    redundant[i] = True
        return [
            row
            for row, e in zip(partition, redundant[prefix:])
            if not e
        ]


def reduce_signal(k_sep, constraints, order_by="t", value_column="v"):
    """Lines 10-11 for one signal sequence.

    Joins the applicable *constraints* (a list of :class:`Constraint`)
    with the sequence, evaluates Eq. 1 and keeps elements whose flag
    ``e`` is false. With no constraints the sequence passes through
    (sorted), matching the σ over an empty condition set.
    """
    ordered = order_signal_rows(k_sep, order_by, value_column)
    functions = tuple(
        f for c in constraints for f in c.functions
    )
    if not functions:
        return ordered
    schema = ordered.schema
    serial = any(not f.parallel_safe for f in functions)
    func = _ReducePartition(
        functions,
        schema.index_of(order_by),
        schema.index_of(value_column),
        full_carry=serial,
    )
    return ordered.sorted_map_partitions(
        func, carry_rows=_FULL_CARRY if serial else 1
    )


def reduction_ratio(before_count, after_count):
    """Fraction of elements removed by reduction."""
    if before_count == 0:
        return 0.0
    return 1.0 - after_count / before_count
