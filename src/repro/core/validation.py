"""Parameterization validation.

A domain's configuration is written once and applied to many traces
(abstract: "requires one-time parameterization"), so mistakes are
expensive: a constraint on a signal that is not extracted silently does
nothing; a cycle-time constraint far from the documented cycle reduces
wrongly. :func:`validate_config` cross-checks a
:class:`~repro.core.pipeline.PipelineConfig` against the communication
database and reports findings before any trace is processed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reduction import UnchangedWithinCycle

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: str
    subject: str
    message: str

    def __str__(self):
        return "[{}] {}: {}".format(self.severity, self.subject, self.message)


@dataclass
class ValidationResult:
    findings: list

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == WARNING]

    def ok(self):
        return not self.errors

    def raise_on_error(self):
        if self.errors:
            raise ValueError(
                "invalid parameterization:\n" + "\n".join(
                    str(f) for f in self.errors
                )
            )
        return self


def validate_config(config, database=None):
    """Cross-check *config*; optionally against its *database*.

    Checks performed:

    * every constraint / extension references a signal in the catalog
      (otherwise it silently never applies -- ERROR);
    * duplicate constraints for one signal (WARNING: their markers OR
      together, which is often unintended);
    * with a database: every cataloged signal exists in the database
      (ERROR) and ``UnchangedWithinCycle`` cycle times lie within a
      factor 3 of the documented message cycle (WARNING otherwise);
    * gateway-duplicated signals without channel dedup (WARNING: copies
      will be processed repeatedly).
    """
    findings = []
    cataloged = set(config.catalog.signal_ids())

    for constraint in config.constraints:
        if constraint.signal_id not in cataloged:
            findings.append(
                Finding(
                    ERROR,
                    constraint.signal_id,
                    "constraint references a signal that is not extracted",
                )
            )
    seen = set()
    for constraint in config.constraints:
        if constraint.signal_id in seen:
            findings.append(
                Finding(
                    WARNING,
                    constraint.signal_id,
                    "multiple constraints; their markers OR together (Eq. 1)",
                )
            )
        seen.add(constraint.signal_id)

    for rule in config.extensions:
        if rule.signal_id not in cataloged:
            findings.append(
                Finding(
                    ERROR,
                    rule.signal_id,
                    "extension references a signal that is not extracted",
                )
            )

    if database is not None:
        documented = set(database.alphabet().ids())
        for s_id in sorted(cataloged - documented):
            findings.append(
                Finding(ERROR, s_id, "signal is not in the database")
            )
        cycle_by_signal = {}
        for message in database.messages:
            if message.cycle_time is None:
                continue
            for signal in message.signals:
                cycle_by_signal.setdefault(signal.name, message.cycle_time)
        for constraint in config.constraints:
            documented_cycle = cycle_by_signal.get(constraint.signal_id)
            for function in constraint.functions:
                if not isinstance(function, UnchangedWithinCycle):
                    continue
                if documented_cycle is None:
                    findings.append(
                        Finding(
                            WARNING,
                            constraint.signal_id,
                            "cycle constraint on an event-driven message",
                        )
                    )
                elif not (
                    documented_cycle / 3
                    <= function.cycle_time
                    <= documented_cycle * 3
                ):
                    findings.append(
                        Finding(
                            WARNING,
                            constraint.signal_id,
                            "constraint cycle {}s far from documented "
                            "{}s".format(
                                function.cycle_time, documented_cycle
                            ),
                        )
                    )
        if not config.dedup_channels:
            per_signal_channels = {}
            for u in config.catalog:
                per_signal_channels.setdefault(u.signal_id, set()).add(
                    u.channel_id
                )
            for s_id, channels in sorted(per_signal_channels.items()):
                if len(channels) > 1:
                    findings.append(
                        Finding(
                            WARNING,
                            s_id,
                            "extracted on {} channels with dedup disabled; "
                            "copies are processed repeatedly".format(
                                len(channels)
                            ),
                        )
                    )
    return ValidationResult(findings)
